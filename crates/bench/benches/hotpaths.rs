//! Criterion micro-benchmarks for the hot code paths of the JMB stack.
//!
//! These measure the *code*, not the experiments: FFT, Viterbi decoding,
//! precoder construction, phase-sync correction, the sample-level medium,
//! and an end-to-end packet through the full PHY.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use jmb_channel::oscillator::PhaseTrajectory;
use jmb_channel::Link;
use jmb_dsp::rng::{complex_gaussian, rng_from_seed};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::frame::{FrameRx, FrameTx};
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;
use jmb_phy::{convcode, viterbi};
use jmb_sim::Medium;

fn bench_fft(c: &mut Criterion) {
    let plan = jmb_dsp::fft::plan(64);
    let input: Vec<Complex64> = (0..64).map(|i| Complex64::cis(i as f64 * 0.37)).collect();
    c.bench_function("fft64_forward", |b| {
        b.iter_batched(
            || input.clone(),
            |mut buf| plan.forward(&mut buf),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("fft64_plan_lookup", |b| b.iter(|| jmb_dsp::fft::plan(64)));
}

fn bench_viterbi(c: &mut Criterion) {
    let data: Vec<u8> = (0..864).map(|i| ((i * 31 + 7) % 2) as u8).collect();
    let coded = convcode::encode(&data);
    let soft: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("viterbi_864b", |b| {
        b.iter(|| viterbi::decode(&soft).unwrap())
    });
    // The add-compare-select kernel alone (no traceback, no allocation):
    // the dominant cost of every decode.
    let n_steps = soft.len() / 2;
    let mut decision = vec![0u8; n_steps * viterbi::N_STATES];
    c.bench_function("viterbi_acs_block", |b| {
        b.iter(|| {
            let mut metric = [viterbi::NEG_INF; viterbi::N_STATES];
            metric[0] = 0.0;
            viterbi::acs_block(&soft, &mut metric, &mut decision)
        })
    });
}

fn bench_demap(c: &mut Criterion) {
    use jmb_phy::modulation::Modulation;
    // One OFDM symbol's worth of QAM-64 values near constellation points,
    // through the batched soft demapper (the rx pipeline's per-symbol call).
    let mut rng = rng_from_seed(7);
    let m = Modulation::Qam64;
    let ys: Vec<Complex64> = (0..48).map(|_| complex_gaussian(&mut rng, 1.0)).collect();
    let csi = vec![1.0f64; ys.len()];
    let mut llrs = Vec::new();
    c.bench_function("demap_soft_stream", |b| {
        b.iter(|| {
            llrs.clear();
            let mut evm = 0.0;
            m.demap_soft_evm_into(&ys, 0.1, &csi, &mut llrs, &mut evm);
            evm
        })
    });
}

fn bench_precoder(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let hs: Vec<CMat> = (0..52)
        .map(|_| {
            CMat::from_vec(
                10,
                10,
                (0..100).map(|_| complex_gaussian(&mut rng, 1.0)).collect(),
            )
        })
        .collect();
    c.bench_function("zf_precoder_10x10_52sc", |b| {
        b.iter(|| jmb_core::precoder::Precoder::zero_forcing(&hs).unwrap())
    });
    // Gram-matrix assembly alone (G = H·Hᴴ, lower triangle): the first and
    // heaviest stage of each per-subcarrier pseudo-inverse.
    let mut solver = jmb_dsp::ZfSolver::new(10, 10);
    c.bench_function("zf_gram_assembly", |b| {
        b.iter(|| solver.gram_assembly(&hs[0]).unwrap())
    });
}

fn bench_phasesync(c: &mut Criterion) {
    use jmb_phy::chanest::ChannelEstimate;
    let params = OfdmParams::default();
    let subs = params.occupied_subcarriers();
    let reference = ChannelEstimate {
        subcarriers: subs.clone(),
        gains: subs
            .iter()
            .map(|&k| Complex64::cis(0.05 * k as f64))
            .collect(),
    };
    let now = ChannelEstimate {
        subcarriers: subs.clone(),
        gains: subs
            .iter()
            .map(|&k| Complex64::cis(0.05 * k as f64 + 0.8))
            .collect(),
    };
    let mut ps = jmb_core::phasesync::PhaseSync::new();
    ps.set_reference(reference);
    c.bench_function("phasesync_correction", |b| {
        b.iter(|| ps.correction(&now).unwrap())
    });
}

fn bench_medium(c: &mut Criterion) {
    let params = OfdmParams::default();
    let mut m = Medium::new(params.clone(), 1);
    let tx = m.add_node(PhaseTrajectory::fixed(2.437e9, 1000.0), 0.0);
    let rx = m.add_node(PhaseTrajectory::fixed(2.437e9, -500.0), 1e-6);
    m.set_link(tx, rx, Link::ideal());
    let wave = jmb_phy::preamble::preamble(&params);
    m.transmit(tx, 0.0, wave);
    c.bench_function("medium_render_320_samples", |b| {
        b.iter(|| m.render_rx(rx, 0.0, 320))
    });
}

fn bench_e2e_packet(c: &mut Criterion) {
    let params = OfdmParams::default();
    let tx = FrameTx::new(params.clone());
    let rx = FrameRx::new(params);
    let payload: Vec<u8> = (0..1500).map(|i| i as u8).collect();
    c.bench_function("phy_tx_1500B_qam16", |b| {
        b.iter(|| tx.tx_frame(Mcs::ALL[5], &payload).unwrap())
    });
    let wave = tx.tx_frame(Mcs::ALL[5], &payload).unwrap();
    c.bench_function("phy_rx_1500B_qam16", |b| {
        b.iter(|| rx.rx_frame(&wave).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_fft, bench_viterbi, bench_demap, bench_precoder, bench_phasesync, bench_medium, bench_e2e_packet
}
criterion_main!(benches);
