//! Ablation: the paper's interleaved channel-measurement symbols (§5.1a)
//! vs one back-to-back block per AP.
//!
//! Metric: RMS relative error of the measured channel's column ratios
//! against the medium's ground truth — the quantity beamforming nulls
//! depend on. (Our client refines its per-AP CFO across rounds, which
//! narrows the gap relative to the paper's single-shot estimation; the
//! interleaved layout still wins.)

use jmb_bench::{banner, FigOpts};
use jmb_core::experiment::{measurement_interleaving_ablation, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner(
        "ablation",
        "interleaved vs sequential measurement slots",
        &opts,
    );
    let runs = if opts.quick { 2 } else { 6 };
    println!("n_aps  layout       h_error_db");
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        let pts = measurement_interleaving_ablation(n, runs, opts.seed).expect("ablation");
        for p in &pts {
            let label = if p.interleaved {
                "interleaved"
            } else {
                "sequential"
            };
            println!("{n:>5}  {label:<11}  {:>9.2}", p.h_error_db);
            rows.push(vec![
                format!("{n}"),
                label.to_string(),
                format!("{}", p.h_error_db),
            ]);
        }
    }
    write_csv(
        &opts.csv_path("ablation_interleaving.csv"),
        "n_aps,layout,h_error_db",
        rows,
    )
    .expect("write csv");
    println!("§5.1a: symbols are interleaved \"because we want the channels to be");
    println!("measured as if they were measured at the same time\".");
}
