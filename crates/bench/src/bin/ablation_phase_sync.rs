//! Ablation: Fig. 9's experiment with the slave phase corrections disabled.
//!
//! Demonstrates that distributed phase synchronization — not merely joint
//! scheduling — is what makes the throughput scale: without it the
//! oscillators drift apart within milliseconds and joint transmissions
//! stop decoding.

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{aggregate_scaling, throughput_scaling, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("ablation", "throughput with phase sync disabled", &opts);
    let counts = [2usize, 4, 6, 8, 10];
    let sweep = opts.sweep(8);
    println!("band              n_aps  with_sync_mbps  without_sync_mbps");
    let mut rows = Vec::new();
    for band in [SnrBand::High] {
        let with = aggregate_scaling(&throughput_scaling(&[band], &counts, &sweep, true));
        let without = aggregate_scaling(&throughput_scaling(&[band], &counts, &sweep, false));
        for (w, wo) in with.iter().zip(&without) {
            println!(
                "{:<17} {:>5}  {:>14.1}  {:>17.1}",
                w.band.to_string(),
                w.n_aps,
                w.jmb_mean / 1e6,
                wo.jmb_mean / 1e6
            );
            rows.push(vec![
                w.band.to_string(),
                format!("{}", w.n_aps),
                format!("{}", w.jmb_mean),
                format!("{}", wo.jmb_mean),
            ]);
        }
    }
    write_csv(
        &opts.csv_path("ablation_phase_sync.csv"),
        "band,n_aps,with_sync_bps,without_sync_bps",
        rows,
    )
    .expect("write csv");
}
