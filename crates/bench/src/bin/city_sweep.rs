//! City sweep: area capacity vs frequency-reuse factor on a sharded
//! multi-cell deployment.
//!
//! Lays hundreds of JMB cells on a rectangular grid (`jmb-city`), couples
//! co-channel cells through distance-based path loss, and runs every cell's
//! traffic event loop as a deterministic shard. The full sweep deploys a
//! 16×16 grid with 4 APs and 400 clients per cell — 1024 APs serving
//! 102,400 clients — at reuse 1, 3, and 7; `--quick` shrinks it to an 8×8
//! grid with small cells for smoke runs.
//!
//! The headline trade: reuse 1 gives every cell the full band but the most
//! interference; reuse 7 is quiet but splits the band seven ways. Which
//! wins in bits/s/km² depends on load and cell pitch — that is the
//! figure this binary draws.
//!
//! Every simulation is seeded; the CSV is byte-identical across runs and
//! `--threads` settings, and the row generation lives in
//! [`jmb_bench::sweeps`], shared with the `sync_equivalence` fixture test.
//! Exit codes follow the sweep contract: 0 pass, 1 failed acceptance
//! property or runtime error, 2 invalid CLI.

use jmb_bench::sweeps::{self, SweepSettings};
use jmb_bench::{accept, banner, or_fail, FigOpts, USAGE};
use jmb_city::Reuse;
use jmb_core::experiment::write_csv;

const EXTRA_USAGE: &str =
    "  --reuse LIST   comma-separated reuse factors from {1,3,7} (default 1,3,7)";

fn main() {
    // Strip --reuse before handing the rest to the shared parser.
    let mut reuses: Vec<Reuse> = Reuse::ALL.to_vec();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--reuse" {
            let spec = args.next().unwrap_or_default();
            let parsed: Option<Vec<Reuse>> = spec.split(',').map(Reuse::parse).collect();
            match parsed {
                Some(list) if !list.is_empty() => reuses = list,
                _ => {
                    eprintln!(
                        "error: --reuse needs factors from {{1,3,7}}\n{USAGE}\n{EXTRA_USAGE}"
                    );
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    let opts = match FigOpts::parse(rest) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}\n{EXTRA_USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}\n{EXTRA_USAGE}");
            std::process::exit(2);
        }
    };
    banner(
        "city_sweep",
        "area capacity vs frequency-reuse factor",
        &opts,
    );
    let set = SweepSettings::from_opts(&opts);

    let mut rows: Vec<Vec<String>> = Vec::new();
    println!(
        "{:>5} {:>6} {:>8} {:>9} {:>12} {:>13} {:>9}",
        "reuse", "cells", "aps", "clients", "mean_inr_db", "area_mbps_km2", "delivery"
    );
    for (ri, &reuse) in reuses.iter().enumerate() {
        // Trace the first reuse point's city-level event feed if asked.
        let trace_out = if ri == 0 {
            opts.trace_out.as_deref()
        } else {
            None
        };
        let report = or_fail(
            sweeps::city_point(&set, reuse, trace_out, &mut rows),
            "run city",
        );
        // The acceptance property: every reuse point delivers.
        accept(
            report.pooled.delivered > 0,
            &format!("reuse-{} city delivered nothing", reuse.factor()),
        );
        if let Some(path) = trace_out {
            println!(
                "trace of the reuse-{} city → {}",
                reuse.factor(),
                path.display()
            );
        }
        let cfg = sweeps::city_config(set.quick, reuse, set.seed, set.threads);
        println!(
            "{:>5} {:>6} {:>8} {:>9} {:>12.2} {:>13.2} {:>8.1}%",
            reuse.factor(),
            report.cells.len(),
            cfg.total_aps(),
            cfg.total_clients(),
            report.mean_inr_db(),
            report.area_capacity_bps_per_km2() / 1e6,
            report.delivery_ratio() * 100.0
        );
    }

    or_fail(
        write_csv(
            &opts.csv_path("city_sweep.csv"),
            &sweeps::city_header(),
            rows,
        ),
        "write city_sweep.csv",
    );
    println!(
        "\n§11 at city scale: spectral aggression (reuse 1) vs isolation (reuse 7) in bits/s/km²."
    );
}
