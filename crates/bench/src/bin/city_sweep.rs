//! City sweep: area capacity vs frequency-reuse factor on a sharded
//! multi-cell deployment.
//!
//! Lays hundreds of JMB cells on a rectangular grid (`jmb-city`), couples
//! co-channel cells through distance-based path loss, and runs every cell's
//! traffic event loop as a deterministic shard. The full sweep deploys a
//! 16×16 grid with 4 APs and 400 clients per cell — 1024 APs serving
//! 102,400 clients — at reuse 1, 3, and 7; `--quick` shrinks it to an 8×8
//! grid with small cells for smoke runs.
//!
//! The headline trade: reuse 1 gives every cell the full band but the most
//! interference; reuse 7 is quiet but splits the band seven ways. Which
//! wins in bits/s/km² depends on load and cell pitch — that is the
//! figure this binary draws.
//!
//! Every simulation is seeded; the CSV is byte-identical across runs and
//! `--threads` settings. Exit codes follow the sweep contract: 0 pass,
//! 1 failed acceptance property or runtime error, 2 invalid CLI.

use jmb_bench::{accept, banner, or_fail, FigOpts, USAGE};
use jmb_city::{City, CityConfig, Reuse};
use jmb_core::experiment::write_csv;
use jmb_sim::JsonLinesSink;
use jmb_traffic::TrafficMetrics;

const EXTRA_USAGE: &str =
    "  --reuse LIST   comma-separated reuse factors from {1,3,7} (default 1,3,7)";

/// The city configuration for one reuse point of the sweep.
fn city_config(quick: bool, reuse: Reuse, seed: u64, threads: Option<usize>) -> CityConfig {
    let mut cfg = if quick {
        // 8×8 grid of small cells: 128 APs, 512 clients.
        let mut c = CityConfig::default_with(8, 8, reuse, seed);
        c.aps_per_cell = 2;
        c.clients_per_cell = 8;
        c.duration_s = 0.05;
        c.rate_pps = 200.0;
        c
    } else {
        // 16×16 grid: 1024 APs, 102,400 clients. 10 pps × 700 B × 400
        // clients ≈ 22 Mb/s of offered load per cell — near the clean-cell
        // capacity, so the interference epochs bite without drowning the
        // run in retry work.
        let mut c = CityConfig::default_with(16, 16, reuse, seed);
        c.aps_per_cell = 4;
        c.clients_per_cell = 400;
        c.duration_s = 0.1;
        c.rate_pps = 10.0;
        c
    };
    if let Some(t) = threads {
        cfg.threads = t;
    } else {
        cfg.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    cfg
}

fn main() {
    // Strip --reuse before handing the rest to the shared parser.
    let mut reuses: Vec<Reuse> = Reuse::ALL.to_vec();
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--reuse" {
            let spec = args.next().unwrap_or_default();
            let parsed: Option<Vec<Reuse>> = spec.split(',').map(Reuse::parse).collect();
            match parsed {
                Some(list) if !list.is_empty() => reuses = list,
                _ => {
                    eprintln!(
                        "error: --reuse needs factors from {{1,3,7}}\n{USAGE}\n{EXTRA_USAGE}"
                    );
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    let opts = match FigOpts::parse(rest) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}\n{EXTRA_USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}\n{EXTRA_USAGE}");
            std::process::exit(2);
        }
    };
    banner(
        "city_sweep",
        "area capacity vs frequency-reuse factor",
        &opts,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    println!(
        "{:>5} {:>6} {:>8} {:>9} {:>12} {:>13} {:>9}",
        "reuse", "cells", "aps", "clients", "mean_inr_db", "area_mbps_km2", "delivery"
    );
    for (ri, &reuse) in reuses.iter().enumerate() {
        let cfg = city_config(opts.quick, reuse, opts.seed, opts.threads);
        let mut city = or_fail(City::new(cfg), "build city");
        // Trace the first reuse point's city-level event feed if asked.
        // Events are emitted outside the cell shards, so tracing cannot
        // perturb the sweep rows.
        let traced = ri == 0 && opts.trace_out.is_some();
        if traced {
            let path = opts.trace_out.as_ref().unwrap();
            city.trace.enable();
            city.trace.set_buffering(false);
            city.trace
                .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
        }
        let report = or_fail(city.run(), "run city");
        // The acceptance property: every reuse point delivers.
        accept(
            report.pooled.delivered > 0,
            &format!("reuse-{} city delivered nothing", reuse.factor()),
        );
        if traced {
            city.trace.flush();
            println!(
                "trace of the reuse-{} city → {}",
                reuse.factor(),
                opts.trace_out.as_ref().unwrap().display()
            );
        }
        let cfg = city.config();
        println!(
            "{:>5} {:>6} {:>8} {:>9} {:>12.2} {:>13.2} {:>8.1}%",
            reuse.factor(),
            report.cells.len(),
            cfg.total_aps(),
            cfg.total_clients(),
            report.mean_inr_db(),
            report.area_capacity_bps_per_km2() / 1e6,
            report.delivery_ratio() * 100.0
        );
        for c in &report.cells {
            let mut row = vec![
                reuse.factor().to_string(),
                c.cell.to_string(),
                c.color.to_string(),
                format!("{:.6}", c.inr_db),
            ];
            row.extend(c.metrics.csv_row());
            rows.push(row);
        }
        let mut pooled = vec![
            reuse.factor().to_string(),
            "all".to_string(),
            "-".to_string(),
            format!("{:.6}", report.mean_inr_db()),
        ];
        pooled.extend(report.pooled.csv_row());
        rows.push(pooled);
    }

    let header = format!("reuse,cell,color,inr_db,{}", TrafficMetrics::csv_header());
    or_fail(
        write_csv(&opts.csv_path("city_sweep.csv"), &header, rows),
        "write city_sweep.csv",
    );
    println!(
        "\n§11 at city scale: spectral aggression (reuse 1) vs isolation (reuse 7) in bits/s/km²."
    );
}
