//! Adversarial schedule-perturbation determinism harness.
//!
//! The workspace's determinism contract (DESIGN.md §3.15) says every sweep
//! artifact is byte-identical across runs, `--threads` settings, and — the
//! part nothing exercised before this harness — the *order in which
//! workers claim work*. `parallel_map` merges results by index, so claim
//! order cannot change output through the merge; but shared global state
//! (plan caches, thread-locals, lock contention paths) could still leak
//! execution order into values. This harness falsifies that by
//! construction: it re-runs the traffic, sync-shootout, and city quick
//! sweeps under a matrix of adversarial [`SchedulePolicy`] claim orders ×
//! thread counts and byte-compares every artifact — CSVs, the city trace
//! JSONL, and the merged metrics registry — against the natural-order
//! baseline.
//!
//! A deterministic race detector, in effect: a real race may or may not
//! fire under the thread scheduler CI happens to get, but a claim-order
//! dependence *always* shows up as a byte diff here.
//!
//! ```text
//! det_harness [--quick] [--seed N] [--out DIR]
//!             [--policies natural,reversed,random[,strided,starve]]
//!             [--threads-list 1,4]
//! ```
//!
//! Exit status: 0 all artifacts byte-identical, 1 any mismatch (diffs are
//! written under `--out` for CI artifact upload), 2 invalid CLI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use jmb_bench::sweeps::{self, SweepSettings};
use jmb_city::Reuse;
use jmb_core::experiment::SchedulePolicy;

const USAGE: &str = "\
det_harness: schedule-perturbation determinism harness

USAGE:
    det_harness [OPTIONS]

OPTIONS:
    --quick            small sweep dimensions (what CI runs)
    --seed <N>         master seed (default 1)
    --out <dir>        artifact directory (default results/det_harness)
    --policies <list>  comma-separated claim-order policies
                       (natural|reversed|strided[:K]|random[:SEED]|starve;
                       default natural,reversed,random)
    --threads-list <l> comma-separated worker counts (default 1,4)
    -h, --help         this text";

struct Opts {
    quick: bool,
    seed: u64,
    out: PathBuf,
    policies: Vec<SchedulePolicy>,
    threads: Vec<usize>,
}

fn parse_opts() -> Result<Option<Opts>, String> {
    let mut o = Opts {
        quick: false,
        seed: 1,
        out: PathBuf::from("results/det_harness"),
        policies: vec![
            SchedulePolicy::Natural,
            SchedulePolicy::Reversed,
            SchedulePolicy::RandomPermutation(0x5EED),
        ],
        threads: vec![1, 4],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--seed" => {
                o.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed takes an integer")?;
            }
            "--out" => {
                o.out = PathBuf::from(args.next().ok_or("--out takes a directory")?);
            }
            "--policies" => {
                let spec = args.next().ok_or("--policies takes a list")?;
                let parsed: Option<Vec<SchedulePolicy>> =
                    spec.split(',').map(SchedulePolicy::from_token).collect();
                o.policies = parsed
                    .ok_or("--policies takes natural|reversed|strided[:K]|random[:SEED]|starve")?;
                if o.policies.is_empty() {
                    return Err("--policies needs at least one policy".into());
                }
            }
            "--threads-list" => {
                let spec = args.next().ok_or("--threads-list takes a list")?;
                let parsed: Option<Vec<usize>> = spec.split(',').map(|t| t.parse().ok()).collect();
                o.threads = parsed.ok_or("--threads-list takes integers")?;
                if o.threads.is_empty() {
                    return Err("--threads-list needs at least one count".into());
                }
            }
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(o))
}

/// Every artifact one (policy, threads) combo produces, as bytes.
struct ComboArtifacts {
    /// `(file name, content)` — compared and written in this order.
    files: Vec<(&'static str, String)>,
}

/// Render the merged city registry in row order — `Registry::rows()` is
/// already deterministic (BTreeMap), so this is a pure formatting step.
fn registry_text(reg: &jmb_obs::Registry) -> String {
    let mut out = String::new();
    for (name, label, value) in reg.rows() {
        let _ = writeln!(out, "{name}|{label:?}|{value:?}");
    }
    out
}

fn run_combo(opts: &Opts, policy: SchedulePolicy, threads: usize, dir: &Path) -> ComboArtifacts {
    let set = SweepSettings {
        seed: opts.seed,
        quick: opts.quick,
        threads: Some(threads),
        schedule: policy,
    };

    // Traffic quick sweep → one CSV.
    let tr = sweeps::traffic_sweep(&set);
    let traffic_csv = sweeps::csv_text(&tr.header, &tr.rows);

    // Sync shootout → goodput CSV + phase CDF CSV.
    let sh = sweeps::sync_shootout(&set).expect("sync_shootout");
    let shootout_csv = sweeps::csv_text(&sh.header, &sh.rows);
    let phase_csv = sweeps::csv_text(&sh.phase_header, &sh.phase_rows);

    // City point (one reuse factor keeps the matrix affordable) → CSV +
    // trace JSONL + merged registry dump.
    let trace_path = dir.join("city_trace.jsonl");
    let mut rows = Vec::new();
    let report =
        sweeps::city_point(&set, Reuse::Three, Some(&trace_path), &mut rows).expect("city_point");
    let city_csv = sweeps::csv_text(&sweeps::city_header(), &rows);
    let registry_txt = registry_text(&report.registry);
    let trace_jsonl = std::fs::read_to_string(&trace_path).expect("read city trace");

    ComboArtifacts {
        files: vec![
            ("traffic.csv", traffic_csv),
            ("shootout.csv", shootout_csv),
            ("shootout_phase.csv", phase_csv),
            ("city.csv", city_csv),
            ("city_trace.jsonl", trace_jsonl),
            ("registry.txt", registry_txt),
        ],
    }
}

fn main() {
    let opts = match parse_opts() {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let combos: Vec<(SchedulePolicy, usize)> = opts
        .policies
        .iter()
        .flat_map(|&p| opts.threads.iter().map(move |&t| (p, t)))
        .collect();
    println!(
        "det_harness: {} combo(s) — policies [{}] × threads {:?}{}",
        combos.len(),
        opts.policies
            .iter()
            .map(|p| p.token())
            .collect::<Vec<_>>()
            .join(","),
        opts.threads,
        if opts.quick { " (quick)" } else { "" }
    );

    let mut baseline: Option<(String, ComboArtifacts)> = None;
    let mut mismatches: Vec<String> = Vec::new();
    for (policy, threads) in combos {
        let tag = format!("{}-t{}", policy.token(), threads);
        let dir = opts.out.join(&tag);
        std::fs::create_dir_all(&dir).expect("create artifact dir");
        let art = run_combo(&opts, policy, threads, &dir);
        for (name, content) in &art.files {
            std::fs::write(dir.join(name), content).expect("write artifact");
        }
        match &baseline {
            None => {
                println!("  {tag}: baseline ({} artifacts)", art.files.len());
                baseline = Some((tag, art));
            }
            Some((base_tag, base)) => {
                let mut combo_ok = true;
                for ((name, content), (_, base_content)) in art.files.iter().zip(base.files.iter())
                {
                    if content != base_content {
                        combo_ok = false;
                        let diff_lines = content
                            .lines()
                            .zip(base_content.lines())
                            .filter(|(a, b)| a != b)
                            .count()
                            + content
                                .lines()
                                .count()
                                .abs_diff(base_content.lines().count());
                        mismatches.push(format!(
                            "{tag}/{name}: differs from {base_tag}/{name} ({diff_lines} line(s))"
                        ));
                    }
                }
                println!(
                    "  {tag}: {}",
                    if combo_ok {
                        "byte-identical to baseline"
                    } else {
                        "MISMATCH (see diff artifacts)"
                    }
                );
            }
        }
    }

    if mismatches.is_empty() {
        println!("det_harness: PASS — every artifact byte-identical across the schedule matrix");
    } else {
        eprintln!("det_harness: FAIL — claim-order dependence detected:");
        for m in &mismatches {
            eprintln!("  {m}");
        }
        eprintln!(
            "  artifacts for all combos are under {}",
            opts.out.display()
        );
        std::process::exit(1);
    }
}
