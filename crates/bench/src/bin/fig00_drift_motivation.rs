//! §1/§5.2 motivation: phase error of naive CFO extrapolation vs JMB's
//! direct phase measurement, as elapsed time grows.
//!
//! Paper's numbers: a 10 Hz estimation error reaches 0.35 rad (20°) within
//! 5.5 ms; 100 Hz reaches π within 20 ms. Direct measurement stays flat.

use jmb_bench::{banner, FigOpts};
use jmb_core::experiment::{drift_motivation, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig00", "naive extrapolation vs direct measurement", &opts);
    let horizons: Vec<f64> = [0.5e-3, 1e-3, 2e-3, 5.5e-3, 10e-3, 20e-3, 50e-3].to_vec();
    let trials = if opts.quick { 100 } else { 1000 };
    let mut rows = Vec::new();
    println!("cfo_err_hz  t_ms   naive_rad  direct_rad");
    for err in [1.0, 10.0, 100.0] {
        for p in drift_motivation(err, &horizons, trials, opts.seed) {
            println!(
                "{err:>9.0}  {:>5.1}  {:>9.4}  {:>9.4}",
                p.elapsed_s * 1e3,
                p.naive_err_rad,
                p.direct_err_rad
            );
            rows.push(vec![
                format!("{err}"),
                format!("{}", p.elapsed_s),
                format!("{}", p.naive_err_rad),
                format!("{}", p.direct_err_rad),
            ]);
        }
    }
    write_csv(
        &opts.csv_path("fig00_drift_motivation.csv"),
        "cfo_error_hz,elapsed_s,naive_err_rad,direct_err_rad",
        rows,
    )
    .expect("write csv");
    println!("paper anchor: 10 Hz × 5.5 ms → 0.35 rad (20°); direct stays ≈ 0.01 rad");
}
