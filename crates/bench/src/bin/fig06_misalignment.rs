//! Fig. 6 — degradation of SNR due to phase misalignment.
//!
//! 2×2 zero-forcing, 100 random channel matrices, misalignment 0–0.5 rad,
//! at 10 and 20 dB. Paper: 0.35 rad costs ≈ 8 dB at 20 dB SNR, and the
//! reduction is larger at higher SNR.

use jmb_bench::{banner, FigOpts};
use jmb_core::experiment::{snr_reduction_vs_misalignment, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig06", "SNR reduction vs phase misalignment", &opts);
    let phis: Vec<f64> = (0..=10).map(|i| i as f64 * 0.05).collect();
    let n_mat = if opts.quick { 30 } else { 100 };
    let pts = snr_reduction_vs_misalignment(&phis, &[10.0, 20.0], n_mat, opts.seed);
    println!("misalign_rad  snr_db  reduction_db");
    let mut rows = Vec::new();
    for p in &pts {
        println!(
            "{:>12.2}  {:>6.0}  {:>12.2}",
            p.misalignment_rad, p.snr_db, p.reduction_db
        );
        rows.push(vec![
            format!("{}", p.misalignment_rad),
            format!("{}", p.snr_db),
            format!("{}", p.reduction_db),
        ]);
    }
    write_csv(
        &opts.csv_path("fig06_misalignment.csv"),
        "misalignment_rad,snr_db,reduction_db",
        rows,
    )
    .expect("write csv");
    let anchor = pts
        .iter()
        .find(|p| p.snr_db == 20.0 && (p.misalignment_rad - 0.35).abs() < 0.026);
    if let Some(a) = anchor {
        println!(
            "paper anchor: 0.35 rad @ 20 dB → paper ≈ 8 dB, measured {:.1} dB",
            a.reduction_db
        );
    }
}
