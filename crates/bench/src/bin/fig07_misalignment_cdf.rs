//! Fig. 7 — CDF of the phase misalignment JMB actually achieves.
//!
//! Full sample-level probe: lead and slave alternate OFDM symbols after the
//! real synchronisation pipeline; the receiver tracks the deviation of
//! their relative phase from its first observation.
//!
//! Paper: median 0.017 rad, 95th percentile 0.05 rad.

use jmb_bench::{banner, FigOpts};
use jmb_core::experiment::{misalignment_samples, write_csv};
use jmb_dsp::stats::Cdf;

fn main() {
    let opts = FigOpts::from_args();
    banner("fig07", "CDF of achieved phase misalignment", &opts);
    let (runs, rounds) = if opts.quick { (4, 15) } else { (12, 40) };
    let samples = misalignment_samples(runs, rounds, opts.seed).expect("probe");
    let cdf = Cdf::new(&samples);
    println!("fraction  misalignment_rad");
    let mut rows = Vec::new();
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        println!("{q:>8.2}  {:>16.4}", cdf.quantile(q));
    }
    for (v, f) in cdf.values.iter().zip(&cdf.fractions) {
        rows.push(vec![format!("{f}"), format!("{v}")]);
    }
    write_csv(
        &opts.csv_path("fig07_misalignment_cdf.csv"),
        "fraction,misalignment_rad",
        rows,
    )
    .expect("write csv");
    println!(
        "paper anchors: median 0.017 rad (measured {:.4}), 95th pct 0.05 rad (measured {:.4})",
        cdf.quantile(0.5),
        cdf.quantile(0.95)
    );
}
