//! Fig. 8 — interference-to-noise ratio at a nulled client vs the number
//! of AP-client pairs, per SNR band.
//!
//! Paper: INR stays below 1.5 dB up to 10 pairs, growing ≈ 0.13 dB per
//! added pair at high SNR.

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{inr_scaling, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig08", "INR vs number of AP-client pairs", &opts);
    let pairs: Vec<usize> = (2..=10).collect();
    let sweep = opts.sweep(12);
    let pts = inr_scaling(&SnrBand::ALL, &pairs, &sweep);
    println!("band              n_pairs  inr_db");
    let mut rows = Vec::new();
    for p in &pts {
        println!(
            "{:<17} {:>7}  {:>6.2}",
            p.band.to_string(),
            p.n_pairs,
            p.inr_db
        );
        rows.push(vec![
            p.band.to_string(),
            format!("{}", p.n_pairs),
            format!("{}", p.inr_db),
        ]);
    }
    write_csv(
        &opts.csv_path("fig08_inr_scaling.csv"),
        "band,n_pairs,inr_db",
        rows,
    )
    .expect("write csv");
    // Slope at high SNR.
    let high: Vec<&_> = pts
        .iter()
        .filter(|p| matches!(p.band, SnrBand::High))
        .collect();
    if high.len() >= 2 {
        let slope = (high.last().unwrap().inr_db - high[0].inr_db)
            / (high.last().unwrap().n_pairs - high[0].n_pairs) as f64;
        println!("paper anchor: ≈0.13 dB per added pair at high SNR; measured {slope:.3} dB/pair");
    }
}
