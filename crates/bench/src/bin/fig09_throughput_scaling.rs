//! Fig. 9 — network throughput vs the number of APs, per SNR band.
//!
//! The headline result: JMB's total throughput grows with every AP added
//! on the same channel, while 802.11's stays flat. Paper: median gains of
//! 9.4×/9.1×/8.1× at high/medium/low SNR with 10 APs; 802.11 totals
//! ≈ 23.6/14.9/7.75 Mbps.

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{aggregate_scaling, throughput_scaling, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig09", "throughput scaling with the number of APs", &opts);
    let counts: Vec<usize> = (2..=10).collect();
    let sweep = opts.sweep(20);
    let runs = throughput_scaling(&SnrBand::ALL, &counts, &sweep, true);
    let agg = aggregate_scaling(&runs);
    println!("band              n_aps  jmb_mbps  dot11_mbps  median_gain");
    let mut rows = Vec::new();
    for p in &agg {
        println!(
            "{:<17} {:>5}  {:>8.1}  {:>10.1}  {:>11.2}",
            p.band.to_string(),
            p.n_aps,
            p.jmb_mean / 1e6,
            p.dot11_mean / 1e6,
            p.median_gain
        );
        rows.push(vec![
            p.band.to_string(),
            format!("{}", p.n_aps),
            format!("{}", p.jmb_mean),
            format!("{}", p.dot11_mean),
            format!("{}", p.median_gain),
        ]);
    }
    write_csv(
        &opts.csv_path("fig09_throughput_scaling.csv"),
        "band,n_aps,jmb_bps,dot11_bps,median_gain",
        rows,
    )
    .expect("write csv");
    println!("paper anchors at 10 APs: gains 9.4× (high) / 9.1× (medium) / 8.1× (low);");
    println!("802.11 totals ≈ 23.6 / 14.9 / 7.75 Mbps (flat in the number of APs)");
}
