//! Fig. 10 — CDFs of per-client throughput gain (fairness).
//!
//! Paper: all clients see roughly the same gain; the CDF is wider at low
//! SNR (greater measurement noise).

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{throughput_scaling, write_csv};
use jmb_dsp::stats::Cdf;

fn main() {
    let opts = FigOpts::from_args();
    banner("fig10", "per-client gain CDFs", &opts);
    let sweep = opts.sweep(20);
    let mut rows = Vec::new();
    println!("band              n_aps  p10_gain  median_gain  p90_gain");
    for band in SnrBand::ALL {
        for n in [2usize, 6, 10] {
            let runs = throughput_scaling(&[band], &[n], &sweep, true);
            let gains: Vec<f64> = runs
                .iter()
                .flat_map(|r| r.per_client_gain.iter().copied())
                .filter(|g| g.is_finite())
                .collect();
            if gains.is_empty() {
                continue;
            }
            let cdf = Cdf::new(&gains);
            println!(
                "{:<17} {:>5}  {:>8.2}  {:>11.2}  {:>8.2}",
                band.to_string(),
                n,
                cdf.quantile(0.1),
                cdf.quantile(0.5),
                cdf.quantile(0.9)
            );
            for (v, f) in cdf.values.iter().zip(&cdf.fractions) {
                rows.push(vec![
                    band.to_string(),
                    format!("{n}"),
                    format!("{f}"),
                    format!("{v}"),
                ]);
            }
        }
    }
    write_csv(
        &opts.csv_path("fig10_fairness.csv"),
        "band,n_aps,fraction,gain",
        rows,
    )
    .expect("write csv");
    println!(
        "paper anchor: per-client gains cluster around the aggregate gain; wider CDF at low SNR"
    );
}
