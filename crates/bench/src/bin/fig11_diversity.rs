//! Fig. 11 — diversity throughput vs SNR for 2–10 APs.
//!
//! All APs beamform the *same* packet coherently to one client (§8).
//! Paper: a client at 0 dB (no throughput under 802.11) reaches ≈ 21 Mbps
//! with 10 APs.

use jmb_bench::{banner, FigOpts};
use jmb_core::experiment::{diversity_sweep, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig11", "diversity throughput vs SNR", &opts);
    let ap_counts = [2usize, 4, 6, 8, 10];
    let snrs: Vec<f64> = (0..=25)
        .step_by(if opts.quick { 5 } else { 2 })
        .map(|s| s as f64)
        .collect();
    let sweep = opts.sweep(8);
    let pts = diversity_sweep(&ap_counts, &snrs, &sweep);
    println!("n_aps  snr_db  jmb_mbps  dot11_mbps");
    let mut rows = Vec::new();
    for p in &pts {
        println!(
            "{:>5}  {:>6.0}  {:>8.2}  {:>10.2}",
            p.n_aps,
            p.snr_db,
            p.jmb / 1e6,
            p.dot11 / 1e6
        );
        rows.push(vec![
            format!("{}", p.n_aps),
            format!("{}", p.snr_db),
            format!("{}", p.jmb),
            format!("{}", p.dot11),
        ]);
    }
    write_csv(
        &opts.csv_path("fig11_diversity.csv"),
        "n_aps,snr_db,jmb_bps,dot11_bps",
        rows,
    )
    .expect("write csv");
    if let Some(p) = pts.iter().find(|p| p.n_aps == 10 && p.snr_db == 0.0) {
        println!(
            "paper anchor: 0 dB client, 10 APs → ≈ 21 Mbps (measured {:.1} Mbps; 802.11 {:.1})",
            p.jmb / 1e6,
            p.dot11 / 1e6
        );
    }
}
