//! Fig. 12 — throughput with off-the-shelf 802.11n clients.
//!
//! Two 2-antenna APs jointly serve two 2-antenna clients (a distributed
//! 4×4) using the §6 compatibility flow, vs single-AP 802.11n with equal
//! medium shares. Paper: average gain 1.67–1.83× across bands.

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{compat_runs, write_csv};

fn main() {
    let opts = FigOpts::from_args();
    banner("fig12", "802.11n-compat throughput per band", &opts);
    let sweep = opts.sweep(16);
    let runs = compat_runs(&SnrBand::ALL, &sweep);
    println!("band              jmb_mbps  dot11n_mbps  gain");
    let mut rows = Vec::new();
    for band in SnrBand::ALL {
        let sel: Vec<&_> = runs.iter().filter(|r| r.band == band).collect();
        if sel.is_empty() {
            continue;
        }
        let jmb = jmb_dsp::stats::mean(&sel.iter().map(|r| r.jmb_total).collect::<Vec<_>>());
        let dot = jmb_dsp::stats::mean(&sel.iter().map(|r| r.dot11n_total).collect::<Vec<_>>());
        println!(
            "{:<17} {:>8.1}  {:>11.1}  {:>4.2}",
            band.to_string(),
            jmb / 1e6,
            dot / 1e6,
            jmb / dot
        );
    }
    for r in &runs {
        rows.push(vec![
            r.band.to_string(),
            format!("{}", r.jmb_total),
            format!("{}", r.dot11n_total),
            format!("{}", r.gain),
        ]);
    }
    write_csv(
        &opts.csv_path("fig12_compat_throughput.csv"),
        "band,jmb_bps,dot11n_bps,gain",
        rows,
    )
    .expect("write csv");
    println!("paper anchor: average gain 1.67–1.83× across bands (theoretical max 2×)");
}
