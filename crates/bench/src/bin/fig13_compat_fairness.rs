//! Fig. 13 — CDF of the 802.11n-compat network throughput gain.
//!
//! Paper: gains between 1.65× and 2× across all runs, median 1.8×.

use jmb_bench::{banner, FigOpts};
use jmb_channel::SnrBand;
use jmb_core::experiment::{compat_runs, write_csv};
use jmb_dsp::stats::Cdf;

fn main() {
    let opts = FigOpts::from_args();
    banner("fig13", "CDF of 802.11n-compat gain", &opts);
    let sweep = opts.sweep(24);
    let runs = compat_runs(&SnrBand::ALL, &sweep);
    let gains: Vec<f64> = runs.iter().map(|r| r.gain).collect();
    assert!(!gains.is_empty(), "no successful compat runs");
    let cdf = Cdf::new(&gains);
    println!("fraction  gain");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        println!("{q:>8.2}  {:>5.2}", cdf.quantile(q));
    }
    let rows = cdf
        .values
        .iter()
        .zip(&cdf.fractions)
        .map(|(v, f)| vec![format!("{f}"), format!("{v}")])
        .collect::<Vec<_>>();
    write_csv(
        &opts.csv_path("fig13_compat_fairness.csv"),
        "fraction,gain",
        rows,
    )
    .expect("write csv");
    println!(
        "paper anchors: range 1.65–2.0×, median 1.8× (measured median {:.2}×)",
        cdf.quantile(0.5)
    );
}
