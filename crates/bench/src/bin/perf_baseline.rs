//! Machine-readable performance baseline for the hot code paths.
//!
//! Runs the same suite as `benches/hotpaths.rs` — FFT, Viterbi, precoder,
//! phase-sync correction, sample-level medium, end-to-end PHY packet — plus
//! a full `FastNet::joint_transmit` step, and writes the medians to
//! `BENCH_<date>.json` at the repo root so perf regressions are diffable
//! across commits.
//!
//! `--quick` (or `JMB_QUICK=1`) shrinks the measurement budget for smoke
//! runs; the JSON shape is identical.
//!
//! `--compare PATH` diffs this run against a previously written
//! `BENCH_<date>.json` and exits nonzero when any shared entry regressed by
//! more than `--regress-threshold PCT` (default 10%), so CI can gate on the
//! checked-in baseline.

use jmb_bench::{FigOpts, USAGE};
use jmb_channel::oscillator::PhaseTrajectory;
use jmb_channel::Link;
use jmb_dsp::rng::{complex_gaussian, rng_from_seed};
use jmb_dsp::{fft, CMat, Complex64};
use jmb_phy::frame::{FrameRx, FrameTx};
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;
use jmb_phy::{convcode, viterbi};
use jmb_sim::Medium;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One benchmark result row.
struct Entry {
    name: &'static str,
    ns_per_op: f64,
    /// Optional derived throughput: `(value, unit)`.
    throughput: Option<(f64, &'static str)>,
}

/// Median ns/op of `f`, measured in adaptive batches like the criterion
/// harness: batch size doubles until one batch takes ≥ `min_batch`, then
/// `samples` batches are timed and the median per-op time is returned.
fn time_median(samples: usize, min_batch: Duration, mut f: impl FnMut()) -> f64 {
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        if t0.elapsed() >= min_batch || batch >= 1 << 20 {
            break;
        }
        batch *= 2;
    }
    let mut per_op: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.total_cmp(b));
    per_op[per_op.len() / 2]
}

/// Civil date (UTC) from the Unix epoch via days-to-date conversion, so we
/// need no date dependency. Algorithm: Howard Hinnant's `civil_from_days`.
fn today_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn json_escape_free(name: &str) -> &str {
    // Benchmark names are static identifiers; assert rather than escape.
    assert!(name
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    name
}

/// `(name, ns_per_op)` rows extracted from a `BENCH_<date>.json` written by
/// this binary. The format is our own (flat, one `"name"`/`"ns_per_op"` pair
/// per entry), so a string scan is enough — no JSON dependency.
fn parse_bench_entries(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"name\":").skip(1) {
        let Some(q0) = chunk.find('"') else { continue };
        let rest = &chunk[q0 + 1..];
        let Some(q1) = rest.find('"') else { continue };
        let name = rest[..q1].to_string();
        let Some(p) = rest.find("\"ns_per_op\":") else {
            continue;
        };
        let num: String = rest[p + "\"ns_per_op\":".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

const EXTRA_USAGE: &str =
    "  --compare PATH           diff against a prior BENCH_<date>.json; exit 1 on regression
  --regress-threshold PCT  regression tolerance for --compare (default 10)";

fn main() {
    // Strip the compare-specific flags before handing the rest to the
    // shared parser (which rejects unknown arguments).
    let mut compare: Option<std::path::PathBuf> = None;
    let mut threshold = 10.0f64;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--compare" => match args.next() {
                Some(p) => compare = Some(std::path::PathBuf::from(p)),
                None => {
                    eprintln!("error: --compare needs a path\n{USAGE}\n{EXTRA_USAGE}");
                    std::process::exit(2);
                }
            },
            "--regress-threshold" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(p) if p.is_finite() && p >= 0.0 => threshold = p,
                _ => {
                    eprintln!(
                            "error: --regress-threshold needs a non-negative percentage\n{USAGE}\n{EXTRA_USAGE}"
                        );
                    std::process::exit(2);
                }
            },
            _ => rest.push(a),
        }
    }
    let opts = match FigOpts::parse(rest) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}\n{EXTRA_USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}\n{EXTRA_USAGE}");
            std::process::exit(2);
        }
    };
    // Span-instrumented kernels (FFT, ZF precoder, traffic event loop)
    // accumulate wall-clock stats into the global jmb-obs span table; the
    // report at the end cross-checks the medians measured here.
    jmb_obs::set_spans_enabled(true);
    let (samples, min_batch) = if opts.quick {
        (5, Duration::from_micros(200))
    } else {
        (15, Duration::from_millis(2))
    };
    let mut entries: Vec<Entry> = Vec::new();
    let params = OfdmParams::default();

    // --- FFT (cached plan, in place) -----------------------------------
    {
        let mut buf: Vec<Complex64> = (0..64).map(|i| Complex64::cis(i as f64 * 0.37)).collect();
        let ns = time_median(samples, min_batch, || {
            fft::fft_in_place(&mut buf);
        });
        entries.push(Entry {
            name: "fft64_forward_cached",
            ns_per_op: ns,
            throughput: Some((64.0 / (ns * 1e-9), "samples/s")),
        });
        println!("fft64_forward_cached        {ns:>12.1} ns/op");
    }

    // --- Viterbi --------------------------------------------------------
    {
        let data: Vec<u8> = (0..864).map(|i| ((i * 31 + 7) % 2) as u8).collect();
        let coded = convcode::encode(&data);
        let soft: Vec<f64> = coded
            .iter()
            .map(|&b| if b == 0 { 1.0 } else { -1.0 })
            .collect();
        let ns = time_median(samples, min_batch, || {
            viterbi::decode(&soft).unwrap();
        });
        entries.push(Entry {
            name: "viterbi_864b",
            ns_per_op: ns,
            throughput: Some((864.0 / (ns * 1e-9), "bits/s")),
        });
        println!("viterbi_864b                {ns:>12.1} ns/op");
    }

    // --- ZF precoder, 10×10 over 52 subcarriers -------------------------
    {
        let mut rng = rng_from_seed(1);
        let hs: Vec<CMat> = (0..52)
            .map(|_| {
                CMat::from_vec(
                    10,
                    10,
                    (0..100).map(|_| complex_gaussian(&mut rng, 1.0)).collect(),
                )
            })
            .collect();
        let ns = time_median(samples, min_batch, || {
            jmb_core::precoder::Precoder::zero_forcing(&hs).unwrap();
        });
        entries.push(Entry {
            name: "zf_precoder_10x10_52sc",
            ns_per_op: ns,
            throughput: Some((52.0 / (ns * 1e-9), "subcarriers/s")),
        });
        println!("zf_precoder_10x10_52sc      {ns:>12.1} ns/op");
    }

    // --- Phase-sync correction ------------------------------------------
    {
        use jmb_phy::chanest::ChannelEstimate;
        let subs = params.occupied_subcarriers();
        let reference = ChannelEstimate {
            subcarriers: subs.clone(),
            gains: subs
                .iter()
                .map(|&k| Complex64::cis(0.05 * k as f64))
                .collect(),
        };
        let now = ChannelEstimate {
            subcarriers: subs.clone(),
            gains: subs
                .iter()
                .map(|&k| Complex64::cis(0.05 * k as f64 + 0.8))
                .collect(),
        };
        let mut ps = jmb_core::phasesync::PhaseSync::new();
        ps.set_reference(reference);
        let ns = time_median(samples, min_batch, || {
            ps.correction(&now).unwrap();
        });
        entries.push(Entry {
            name: "phasesync_correction",
            ns_per_op: ns,
            throughput: None,
        });
        println!("phasesync_correction        {ns:>12.1} ns/op");
    }

    // --- Sample-level medium render -------------------------------------
    {
        let mut m = Medium::new(params.clone(), 1);
        let tx = m.add_node(PhaseTrajectory::fixed(2.437e9, 1000.0), 0.0);
        let rx = m.add_node(PhaseTrajectory::fixed(2.437e9, -500.0), 1e-6);
        m.set_link(tx, rx, Link::ideal());
        let wave = jmb_phy::preamble::preamble(&params);
        m.transmit(tx, 0.0, wave);
        let ns = time_median(samples, min_batch, || {
            m.render_rx(rx, 0.0, 320);
        });
        entries.push(Entry {
            name: "medium_render_320_samples",
            ns_per_op: ns,
            throughput: Some((320.0 / (ns * 1e-9), "samples/s")),
        });
        println!("medium_render_320_samples   {ns:>12.1} ns/op");
    }

    // --- End-to-end PHY packet ------------------------------------------
    {
        let tx = FrameTx::new(params.clone());
        let rx = FrameRx::new(params.clone());
        let payload: Vec<u8> = (0..1500).map(|i| i as u8).collect();
        let ns_tx = time_median(samples, min_batch, || {
            tx.tx_frame(Mcs::ALL[5], &payload).unwrap();
        });
        entries.push(Entry {
            name: "phy_tx_1500B_qam16",
            ns_per_op: ns_tx,
            throughput: Some((1500.0 * 8.0 / (ns_tx * 1e-9), "bits/s")),
        });
        println!("phy_tx_1500B_qam16          {ns_tx:>12.1} ns/op");
        let wave = tx.tx_frame(Mcs::ALL[5], &payload).unwrap();
        let ns_rx = time_median(samples, min_batch, || {
            rx.rx_frame(&wave).unwrap();
        });
        entries.push(Entry {
            name: "phy_rx_1500B_qam16",
            ns_per_op: ns_rx,
            throughput: Some((1500.0 * 8.0 / (ns_rx * 1e-9), "bits/s")),
        });
        println!("phy_rx_1500B_qam16          {ns_rx:>12.1} ns/op");
        // The modulation extremes bracket the rx pipeline's mix: BPSK is
        // Viterbi-dominated (longest symbol count per bit), QAM-64 leans on
        // the soft demapper and deinterleaver.
        for (name, mcs) in [
            ("phy_rx_1500B_bpsk", Mcs::ALL[0]),
            ("phy_rx_1500B_qam64", Mcs::ALL[7]),
        ] {
            let wave = tx.tx_frame(mcs, &payload).unwrap();
            let ns = time_median(samples, min_batch, || {
                rx.rx_frame(&wave).unwrap();
            });
            entries.push(Entry {
                name,
                ns_per_op: ns,
                throughput: Some((1500.0 * 8.0 / (ns * 1e-9), "bits/s")),
            });
            println!("{name:<27} {ns:>12.1} ns/op");
        }
    }

    // --- FastNet joint-transmit step (the figure-sweep inner loop) ------
    {
        use jmb_core::fastnet::{FastConfig, FastNet};
        let cfg = FastConfig::default_with(4, 4, vec![25.0; 4], opts.seed);
        let mut net = FastNet::new(cfg).expect("fastnet setup");
        net.run_measurement().expect("measurement");
        net.advance(2e-3);
        let ns = time_median(samples, min_batch, || {
            net.joint_transmit(1e-3, 4, &[], true).unwrap();
        });
        entries.push(Entry {
            name: "fastnet_joint_transmit_4x4",
            ns_per_op: ns,
            throughput: Some((1.0 / (ns * 1e-9), "packets/s")),
        });
        println!("fastnet_joint_transmit_4x4  {ns:>12.1} ns/op");
    }

    // --- City quick sweep (the sharded multi-cell outer loop) -----------
    // One op = a whole 4×4-grid city run (16 cells × 2 coupling epochs),
    // timed at 1 and 4 worker threads so `--compare` catches regressions
    // in both the per-cell cost and the shard dispatch overhead.
    {
        use jmb_city::{City, CityConfig, Reuse};
        for (name, threads) in [("city_quick_4x4_t1", 1usize), ("city_quick_4x4_t4", 4usize)] {
            let mut cfg = CityConfig::default_with(4, 4, Reuse::Three, opts.seed);
            cfg.aps_per_cell = 2;
            cfg.clients_per_cell = 4;
            cfg.duration_s = 0.02;
            cfg.rate_pps = 200.0;
            cfg.threads = threads;
            let cells_per_run = (cfg.cols * cfg.rows * cfg.epochs) as f64;
            let ns = time_median(samples.min(5), min_batch, || {
                City::new(cfg.clone())
                    .expect("city config")
                    .run()
                    .expect("city run");
            });
            entries.push(Entry {
                name,
                ns_per_op: ns,
                throughput: Some((cells_per_run / (ns * 1e-9), "cells/s")),
            });
            println!("{name:<27} {ns:>12.1} ns/op");
        }
    }

    // --- jmb-lint workspace pass ----------------------------------------
    // The determinism auditor runs on every CI push, so its own runtime is
    // a tracked budget: files are loaded once outside the timer (I/O is
    // the repo's, not the lint's), then the full engine — lex, symbol
    // index, all lints, allow-matching — is timed per pass.
    {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| std::path::PathBuf::from("."));
        match jmb_lint::engine::load(&root) {
            Ok(files) if !files.is_empty() => {
                let ns = time_median(samples.min(5), min_batch, || {
                    std::hint::black_box(jmb_lint::engine::run(&files));
                });
                entries.push(Entry {
                    name: "lint_workspace_ms",
                    ns_per_op: ns,
                    throughput: Some((files.len() as f64 / (ns * 1e-9), "files/s")),
                });
                println!(
                    "lint_workspace_ms           {ns:>12.1} ns/op  ({:.1} ms, {} files)",
                    ns / 1e6,
                    files.len()
                );
            }
            _ => println!("lint_workspace_ms           skipped (no workspace sources found)"),
        }
    }

    // --- Span report ----------------------------------------------------
    let spans = jmb_obs::span_report();
    if !spans.is_empty() {
        println!("\ninstrumented spans (wall clock, whole run):");
        println!(
            "{:<24} {:>10} {:>14} {:>14}",
            "span", "count", "mean_ns", "max_ns"
        );
        for (name, s) in &spans {
            println!(
                "{name:<24} {:>10} {:>14.1} {:>14}",
                s.count,
                s.mean_ns(),
                s.max_ns
            );
        }
    }

    // --- Optional: dump the joint-transmit step's event trace -----------
    // FastNet only emits events on control-plane faults, so the traced run
    // injects a 30% sync-loss schedule to give the dump something to show.
    if let Some(path) = &opts.trace_out {
        use jmb_core::fastnet::{FastConfig, FastNet};
        use jmb_sim::{FaultConfig, FaultSchedule, JsonLinesSink};
        let cfg = FastConfig::default_with(4, 4, vec![25.0; 4], opts.seed);
        let mut net = FastNet::new(cfg).expect("fastnet setup");
        net.set_fault_schedule(FaultSchedule::constant(
            FaultConfig::builder()
                .sync_loss_chance(0.3)
                .build()
                .expect("valid probability"),
        ));
        net.trace.enable();
        net.trace.set_buffering(false);
        net.trace
            .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
        net.run_measurement().expect("measurement");
        net.advance(2e-3);
        for _ in 0..8 {
            net.joint_transmit_subset(&[0, 1, 2, 3], &[0, 1, 2, 3], 1500, 4, true)
                .unwrap();
            net.advance(1e-3);
        }
        net.trace.flush();
        net.trace.query().assert_monotone_time();
        println!("trace of 8 joint-transmit steps → {}", path.display());
    }

    // --- Emit BENCH_<date>.json at the repo root ------------------------
    let (y, mo, d) = today_utc();
    let date = format!("{y:04}-{mo:02}-{d:02}");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let path = root.join(format!("BENCH_{date}.json"));
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"date\": \"{date}\",\n"));
    json.push_str(&format!("  \"seed\": {},\n", opts.seed));
    json.push_str(&format!("  \"quick\": {},\n", opts.quick));
    json.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let name = json_escape_free(e.name);
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_op\": {:.1}",
            e.ns_per_op
        ));
        if let Some((v, unit)) = e.throughput {
            json.push_str(&format!(
                ", \"throughput\": {{\"value\": {v:.3e}, \"unit\": \"{unit}\"}}"
            ));
        }
        json.push_str(if i + 1 == entries.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, &json).expect("write BENCH json");
    println!("\nwrote {}", path.display());

    // --- Optional comparison against a prior baseline -------------------
    if let Some(base_path) = compare {
        let text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", base_path.display());
                std::process::exit(2);
            }
        };
        let baseline = parse_bench_entries(&text);
        if baseline.is_empty() {
            eprintln!("error: no entries found in {}", base_path.display());
            std::process::exit(2);
        }
        println!(
            "\ncomparison vs {} (regression threshold +{threshold:.1}%):",
            base_path.display()
        );
        println!(
            "{:<27} {:>14} {:>14} {:>9}",
            "name", "old ns/op", "new ns/op", "delta"
        );
        let mut regressions = Vec::new();
        for e in &entries {
            match baseline.iter().find(|(n, _)| n == e.name) {
                Some((_, old)) => {
                    let delta = (e.ns_per_op - old) / old * 100.0;
                    let flag = if delta > threshold {
                        "  REGRESSION"
                    } else {
                        ""
                    };
                    println!(
                        "{:<27} {:>14.1} {:>14.1} {:>+8.1}%{flag}",
                        e.name, old, e.ns_per_op, delta
                    );
                    if delta > threshold {
                        regressions.push(e.name);
                    }
                }
                None => {
                    println!(
                        "{:<27} {:>14} {:>14.1} {:>9}",
                        e.name, "(new)", e.ns_per_op, "-"
                    );
                }
            }
        }
        for (name, _) in &baseline {
            if !entries.iter().any(|e| e.name == name) {
                println!("{name:<27} {:>14} {:>14} {:>9}", "-", "(gone)", "-");
            }
        }
        if regressions.is_empty() {
            println!("no regressions beyond +{threshold:.1}%");
        } else {
            eprintln!(
                "error: {} entr{} regressed beyond +{threshold:.1}%: {}",
                regressions.len(),
                if regressions.len() == 1 { "y" } else { "ies" },
                regressions.join(", ")
            );
            std::process::exit(1);
        }
    }
}
