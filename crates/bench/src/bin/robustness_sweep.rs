//! Robustness sweep: goodput vs control-frame loss.
//!
//! The claim under test: JMB's control plane degrades *gracefully*. Losing
//! sync headers or measurement frames costs throughput proportionally —
//! re-measurement backs off, desynchronized slaves drop out of individual
//! joint batches — but never collapses the network or stalls the queue.
//!
//! Three sections, all through the discrete-event traffic simulator over
//! the per-subcarrier PHY ([`FastBackend`]):
//!
//! * `sync` — saturating load at 4 APs / 4 clients with the per-batch
//!   sync-header loss probability ramping 0 → 30%: goodput must fall
//!   smoothly (at 10% loss it stays within 25% of fault-free — the
//!   acceptance bound, asserted);
//! * `meas` — the same ramp applied to measurement-frame loss: lost
//!   measurements trigger capped-exponential-backoff re-measurement, CSI
//!   ages but transmissions continue on the stale precoder;
//! * `storm` — a mid-run window in which one slave loses *every* sync
//!   header: it degrades out of the array (K consecutive misses), the rest
//!   keep serving, and it is restored when the storm passes.
//!
//! Beyond the shared figure flags, `--sync-loss P` / `--meas-loss P`
//! switch to single-cell mode (used by the CI fault matrix): one pooled
//! operating point at those probabilities, written to
//! `robustness_cell.csv`. Every simulation is seeded; rows are
//! byte-identical across runs and `--threads` settings. Exit codes
//! follow the sweep contract: 0 pass, 1 failed acceptance property or
//! runtime error, 2 invalid CLI (out-of-range fault probabilities are
//! reported via `FaultError`'s field-name message).

use jmb_bench::{accept, banner, or_fail, FigOpts, USAGE};
use jmb_core::experiment::{parallel_map, write_csv, SweepConfig};
use jmb_core::fastnet::FastConfig;
use jmb_sim::{FaultConfig, FaultSchedule, JsonLinesSink};
use jmb_traffic::{ClientLoad, FastBackend, TrafficConfig, TrafficMetrics, TrafficSim};

const PACKET_BYTES: usize = 1500;
const SNR_DB: f64 = 30.0;
const N_APS: usize = 4;
/// 2500 pps × 1500 B = 30 Mb/s per client: saturating, so goodput measures
/// capacity and any control-plane cliff would be visible.
const RATE_PPS: f64 = 2500.0;

/// One traffic simulation with the given control-fault schedule installed
/// after the (always clean) initial measurement.
fn run_point(faults: FaultSchedule, duration_s: f64, seed: u64) -> TrafficMetrics {
    let cfg = FastConfig::default_with(N_APS, N_APS, vec![SNR_DB; N_APS], seed);
    let mut backend = FastBackend::new(cfg).expect("backend");
    backend.net_mut().set_fault_schedule(faults);
    let loads = vec![ClientLoad::poisson(RATE_PPS, PACKET_BYTES); N_APS];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    TrafficSim::new(tcfg, backend).expect("sim").run()
}

fn fault_with(sync_loss: f64, meas_loss: f64) -> FaultConfig {
    FaultConfig::builder()
        .sync_loss_chance(sync_loss)
        .meas_loss_chance(meas_loss)
        .build()
        .expect("ramp constants are in range")
}

fn print_header() {
    println!("loss_pct  goodput_mbps  sync_misses  remeas_fail  degraded  restored");
}

fn print_row(loss: f64, m: &TrafficMetrics) {
    println!(
        "{:>8.1}  {:>12.1}  {:>11}  {:>11}  {:>8}  {:>8}",
        loss * 100.0,
        m.goodput_bps() / 1e6,
        m.sync_misses,
        m.remeasure_failed,
        m.aps_degraded,
        m.aps_restored
    );
}

fn main() {
    // Strip the robustness-specific flags before handing the rest to the
    // shared parser (which rejects unknown arguments).
    let mut sync_loss: Option<f64> = None;
    let mut meas_loss: Option<f64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let slot = match a.as_str() {
            "--sync-loss" => &mut sync_loss,
            "--meas-loss" => &mut meas_loss,
            _ => {
                rest.push(a);
                continue;
            }
        };
        match args.next().and_then(|s| s.parse::<f64>().ok()) {
            Some(p) => *slot = Some(p),
            None => {
                eprintln!("error: {a} needs a numeric probability\n{USAGE}");
                eprintln!("  --sync-loss P  single-cell mode: sync-header loss probability");
                eprintln!("  --meas-loss P  single-cell mode: measurement-frame loss probability");
                std::process::exit(2);
            }
        }
    }
    let opts = match FigOpts::parse(rest) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            println!("  --sync-loss P  single-cell mode: sync-header loss probability");
            println!("  --meas-loss P  single-cell mode: measurement-frame loss probability");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    banner(
        "robustness_sweep",
        "goodput vs control-frame loss (graceful degradation)",
        &opts,
    );
    let duration_s = if opts.quick { 0.2 } else { 0.8 };
    let n_topo = if opts.quick { 3 } else { 8 };
    let mk_sweep = |points: usize| {
        let mut s = SweepConfig {
            n_topologies: points,
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.threads {
            s.parallelism = t;
        }
        s
    };

    // --- Single-cell mode for the CI fault matrix. ---
    if sync_loss.is_some() || meas_loss.is_some() {
        // Range validation is the fault layer's job: out-of-range values
        // surface `FaultError`'s field-name message (e.g. "fault
        // probability `sync_loss_chance` = 1.5 outside [0, 1]") as the
        // CLI diagnostic, exit 2.
        let fault = match FaultConfig::builder()
            .sync_loss_chance(sync_loss.unwrap_or(0.0))
            .meas_loss_chance(meas_loss.unwrap_or(0.0))
            .build()
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        };
        let runs = parallel_map(&mk_sweep(n_topo), |i| {
            run_point(
                FaultSchedule::constant(fault.clone()),
                duration_s,
                opts.seed + i as u64,
            )
        });
        let m = TrafficMetrics::merge(&runs);
        println!(
            "cell: sync-loss {:.0}%, meas-loss {:.0}%",
            sync_loss.unwrap_or(0.0) * 100.0,
            meas_loss.unwrap_or(0.0) * 100.0
        );
        print_header();
        print_row(sync_loss.unwrap_or(0.0).max(meas_loss.unwrap_or(0.0)), &m);
        accept(m.delivered > 0, "faulted cell stalled");
        let mut row = vec!["cell".to_string()];
        row.extend(m.csv_row());
        let header = format!("section,{}", TrafficMetrics::csv_header());
        or_fail(
            write_csv(&opts.csv_path("robustness_cell.csv"), &header, vec![row]),
            "write robustness_cell.csv",
        );
        return;
    }

    let losses: Vec<f64> = vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.3];
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Section 1: sync-header loss ramp. ---
    let flat = parallel_map(&mk_sweep(losses.len() * n_topo), |i| {
        run_point(
            FaultSchedule::constant(fault_with(losses[i / n_topo], 0.0)),
            duration_s,
            opts.seed + (i % n_topo) as u64,
        )
    });
    let sync: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    println!("sync-header loss:");
    print_header();
    for (l, m) in losses.iter().zip(&sync) {
        print_row(*l, m);
        let mut row = vec!["sync".to_string(), format!("{l:.2}")];
        row.extend(m.csv_row());
        rows.push(row);
    }
    let clean = sync[0].goodput_bps();
    let at_10 = sync[losses.iter().position(|&l| l == 0.1).expect("10% point")].goodput_bps();
    println!(
        "  goodput at 10% sync loss: {:.1}% of fault-free",
        100.0 * at_10 / clean
    );
    // The acceptance bound: graceful, not a cliff.
    accept(
        at_10 >= 0.75 * clean,
        &format!("10% sync loss cost more than 25% of goodput ({at_10:.0} vs {clean:.0} b/s)"),
    );

    // --- Section 2: measurement-frame loss ramp. ---
    let flat = parallel_map(&mk_sweep(losses.len() * n_topo), |i| {
        run_point(
            FaultSchedule::constant(fault_with(0.0, losses[i / n_topo])),
            duration_s,
            opts.seed + (i % n_topo) as u64,
        )
    });
    let meas: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    println!("\nmeasurement-frame loss:");
    print_header();
    for (l, m) in losses.iter().zip(&meas) {
        print_row(*l, m);
        accept(
            m.delivered > 0,
            &format!("meas-loss {l} stalled the network"),
        );
        let mut row = vec!["meas".to_string(), format!("{l:.2}")];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 3: total sync loss on one slave, middle third. ---
    let storm = FaultSchedule::none()
        .with_window(
            duration_s / 3.0,
            duration_s * 2.0 / 3.0,
            FaultConfig::builder()
                .per_slave_sync_loss(1, 1.0)
                .build()
                .expect("valid"),
        )
        .expect("valid window");
    let runs = parallel_map(&mk_sweep(n_topo), |i| {
        run_point(storm.clone(), duration_s, opts.seed + i as u64)
    });
    let m = TrafficMetrics::merge(&runs);
    println!("\nstorm (slave 1 misses every header, middle third):");
    print_header();
    print_row(1.0, &m);
    accept(
        m.aps_degraded >= 1 && m.aps_restored >= 1,
        "storm must degrade the slave and restore it afterwards",
    );
    let mut row = vec!["storm".to_string(), "1.00".to_string()];
    row.extend(m.csv_row());
    rows.push(row);

    let header = format!("section,loss,{}", TrafficMetrics::csv_header());
    or_fail(
        write_csv(&opts.csv_path("robustness_sweep.csv"), &header, rows),
        "write robustness_sweep.csv",
    );

    // --- Optional: dump one representative cell's event trace. ---
    // A dedicated re-run of the storm cell (seed = master seed) so the
    // sweep rows above stay byte-identical whether or not tracing is on.
    if let Some(path) = &opts.trace_out {
        let cfg = FastConfig::default_with(N_APS, N_APS, vec![SNR_DB; N_APS], opts.seed);
        let mut backend = FastBackend::new(cfg).expect("backend");
        backend.net_mut().set_fault_schedule(storm);
        let loads = vec![ClientLoad::poisson(RATE_PPS, PACKET_BYTES); N_APS];
        let mut tcfg = TrafficConfig::default_with(loads, opts.seed);
        tcfg.duration_s = duration_s;
        tcfg.drain_timeout_s = duration_s * 0.5;
        let mut sim = TrafficSim::new(tcfg, backend).expect("sim");
        sim.trace.enable();
        sim.trace.set_buffering(false);
        sim.trace
            .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
        sim.run();
        sim.trace.flush();
        println!("trace of the storm cell → {}", path.display());
    }
    println!("\n§7: control-frame loss degrades JMB smoothly — no cliff, no stall.");
}
