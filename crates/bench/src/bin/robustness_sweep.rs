//! Robustness sweep: goodput vs control-frame loss.
//!
//! The claim under test: JMB's control plane degrades *gracefully*. Losing
//! sync headers or measurement frames costs throughput proportionally —
//! re-measurement backs off, desynchronized slaves drop out of individual
//! joint batches — but never collapses the network or stalls the queue.
//!
//! Three sections, all through the discrete-event traffic simulator over
//! the per-subcarrier PHY ([`jmb_traffic::FastBackend`]):
//!
//! * `sync` — saturating load at 4 APs / 4 clients with the per-batch
//!   sync-header loss probability ramping 0 → 30%: goodput must fall
//!   smoothly (at 10% loss it stays within 25% of fault-free — the
//!   acceptance bound, asserted);
//! * `meas` — the same ramp applied to measurement-frame loss: lost
//!   measurements trigger capped-exponential-backoff re-measurement, CSI
//!   ages but transmissions continue on the stale precoder;
//! * `storm` — a mid-run window in which one slave loses *every* sync
//!   header: it degrades out of the array (K consecutive misses), the rest
//!   keep serving, and it is restored when the storm passes.
//!
//! Beyond the shared figure flags, `--sync-loss P` / `--meas-loss P`
//! switch to single-cell mode (used by the CI fault matrix): one pooled
//! operating point at those probabilities, written to
//! `robustness_cell.csv`. Every simulation is seeded; rows are
//! byte-identical across runs and `--threads` settings, and the row
//! generation lives in [`jmb_bench::sweeps`], shared with the
//! `sync_equivalence` fixture test. Exit codes follow the sweep contract:
//! 0 pass, 1 failed acceptance property or runtime error, 2 invalid CLI
//! (out-of-range fault probabilities are reported via `FaultError`'s
//! field-name message).

use jmb_bench::sweeps::{self, SweepSettings};
use jmb_bench::{accept, banner, or_fail, FigOpts, USAGE};
use jmb_core::experiment::write_csv;
use jmb_sim::FaultConfig;
use jmb_traffic::TrafficMetrics;

fn print_header() {
    println!("loss_pct  goodput_mbps  sync_misses  remeas_fail  degraded  restored");
}

fn print_row(loss: f64, m: &TrafficMetrics) {
    println!(
        "{:>8.1}  {:>12.1}  {:>11}  {:>11}  {:>8}  {:>8}",
        loss * 100.0,
        m.goodput_bps() / 1e6,
        m.sync_misses,
        m.remeasure_failed,
        m.aps_degraded,
        m.aps_restored
    );
}

fn main() {
    // Strip the robustness-specific flags before handing the rest to the
    // shared parser (which rejects unknown arguments).
    let mut sync_loss: Option<f64> = None;
    let mut meas_loss: Option<f64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let slot = match a.as_str() {
            "--sync-loss" => &mut sync_loss,
            "--meas-loss" => &mut meas_loss,
            _ => {
                rest.push(a);
                continue;
            }
        };
        match args.next().and_then(|s| s.parse::<f64>().ok()) {
            Some(p) => *slot = Some(p),
            None => {
                eprintln!("error: {a} needs a numeric probability\n{USAGE}");
                eprintln!("  --sync-loss P  single-cell mode: sync-header loss probability");
                eprintln!("  --meas-loss P  single-cell mode: measurement-frame loss probability");
                std::process::exit(2);
            }
        }
    }
    let opts = match FigOpts::parse(rest) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            println!("  --sync-loss P  single-cell mode: sync-header loss probability");
            println!("  --meas-loss P  single-cell mode: measurement-frame loss probability");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    banner(
        "robustness_sweep",
        "goodput vs control-frame loss (graceful degradation)",
        &opts,
    );
    let set = SweepSettings::from_opts(&opts);

    // --- Single-cell mode for the CI fault matrix. ---
    if sync_loss.is_some() || meas_loss.is_some() {
        // Range validation is the fault layer's job: out-of-range values
        // surface `FaultError`'s field-name message (e.g. "fault
        // probability `sync_loss_chance` = 1.5 outside [0, 1]") as the
        // CLI diagnostic, exit 2.
        let fault = match FaultConfig::builder()
            .sync_loss_chance(sync_loss.unwrap_or(0.0))
            .meas_loss_chance(meas_loss.unwrap_or(0.0))
            .build()
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        };
        let (m, header, rows) = sweeps::robustness_cell(&set, fault);
        println!(
            "cell: sync-loss {:.0}%, meas-loss {:.0}%",
            sync_loss.unwrap_or(0.0) * 100.0,
            meas_loss.unwrap_or(0.0) * 100.0
        );
        print_header();
        print_row(sync_loss.unwrap_or(0.0).max(meas_loss.unwrap_or(0.0)), &m);
        accept(m.delivered > 0, "faulted cell stalled");
        or_fail(
            write_csv(&opts.csv_path("robustness_cell.csv"), &header, rows),
            "write robustness_cell.csv",
        );
        return;
    }

    let out = sweeps::robustness_sweep(&set);

    println!("sync-header loss:");
    print_header();
    for (l, m) in &out.sync {
        print_row(*l, m);
    }
    let clean = out.sync[0].1.goodput_bps();
    let at_10 = out
        .sync
        .iter()
        .find(|(l, _)| *l == 0.1)
        .expect("10% point")
        .1
        .goodput_bps();
    println!(
        "  goodput at 10% sync loss: {:.1}% of fault-free",
        100.0 * at_10 / clean
    );
    // The acceptance bound: graceful, not a cliff.
    accept(
        at_10 >= 0.75 * clean,
        &format!("10% sync loss cost more than 25% of goodput ({at_10:.0} vs {clean:.0} b/s)"),
    );

    println!("\nmeasurement-frame loss:");
    print_header();
    for (l, m) in &out.meas {
        print_row(*l, m);
        accept(
            m.delivered > 0,
            &format!("meas-loss {l} stalled the network"),
        );
    }

    println!("\nstorm (slave 1 misses every header, middle third):");
    print_header();
    print_row(1.0, &out.storm);
    accept(
        out.storm.aps_degraded >= 1 && out.storm.aps_restored >= 1,
        "storm must degrade the slave and restore it afterwards",
    );

    or_fail(
        write_csv(
            &opts.csv_path("robustness_sweep.csv"),
            &out.header,
            out.rows,
        ),
        "write robustness_sweep.csv",
    );

    // --- Optional: dump one representative cell's event trace. ---
    // A dedicated re-run of the storm cell (seed = master seed) so the
    // sweep rows above stay byte-identical whether or not tracing is on.
    if let Some(path) = &opts.trace_out {
        sweeps::robustness_storm_trace(&set, path);
        println!("trace of the storm cell → {}", path.display());
    }
    println!("\n§7: control-frame loss degrades JMB smoothly — no cliff, no stall.");
}
