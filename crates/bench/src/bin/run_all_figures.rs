//! Regenerates every figure in sequence by invoking the sibling binaries.
//!
//! `cargo run -p jmb-bench --release --bin run_all_figures [-- --quick]`

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig00_drift_motivation",
        "fig06_misalignment",
        "fig07_misalignment_cdf",
        "fig08_inr_scaling",
        "fig09_throughput_scaling",
        "fig10_fairness",
        "fig11_diversity",
        "fig12_compat_throughput",
        "fig13_compat_fairness",
        "ablation_phase_sync",
        "ablation_interleaving",
    ];
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        println!();
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall figures regenerated; CSVs under results/ — see EXPERIMENTS.md");
}
