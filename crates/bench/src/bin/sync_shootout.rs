//! Sync-strategy shootout: every pluggable synchronization backend
//! through the same probes and storms.
//!
//! Three sections, all strategies side by side:
//!
//! * `phase` — CDF of achieved phase misalignment from the sample-level
//!   probe (the Fig. 7 pipeline with the slave's correction source
//!   swapped): the paper's lead/slave resync must stay inside its
//!   0.35 rad budget (asserted); the out-of-band rivals trade update
//!   cadence and estimate quality for control cost, so their envelopes
//!   are wider and documented here rather than pinned;
//! * `storm` — the robustness storm (one slave loses every sync header
//!   for the middle third) at 4 APs: in-band resync degrades the slave
//!   and restores it, the out-of-band rivals never consult the headers
//!   so the storm cannot stall them (asserted: everyone keeps
//!   delivering); the control-overhead fraction
//!   (`control_airtime_s / airtime_s`) makes the rivals' hidden cost
//!   visible — pilot broadcasts charge airtime even when no data flows;
//! * `scaling` — goodput vs AP count under the same storm, per strategy.
//!
//! Writes `sync_shootout.csv` (storm + scaling sections) and
//! `sync_shootout_phase.csv` (per-strategy misalignment percentiles).
//! Both are byte-identical across runs and `--threads` settings; the CI
//! `sync-shootout` job compares them. Exit codes follow the sweep
//! contract: 0 pass, 1 failed acceptance property, 2 invalid CLI.

use jmb_bench::sweeps::{self, SweepSettings};
use jmb_bench::{accept, banner, or_fail, FigOpts, USAGE};
use jmb_core::experiment::write_csv;
use jmb_core::sync::{SyncStrategyId, SYNC_ERROR_BUDGET_RAD};

fn main() {
    let opts = match FigOpts::parse(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    banner(
        "sync_shootout",
        "pluggable sync backends: phase error, control overhead, storms",
        &opts,
    );
    let set = SweepSettings::from_opts(&opts);
    let out = or_fail(sweeps::sync_shootout(&set), "sync_shootout pipeline");

    println!("phase-error CDF (radians, sample-level probe):");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "strategy", "p50", "p90", "p99", "max", "n"
    );
    for row in &out.phase_rows {
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>8} {:>6}",
            row[0], row[1], row[2], row[3], row[4], row[5]
        );
    }
    let jmb = &out.phase[0];
    assert_eq!(jmb.0, SyncStrategyId::JmbLeadSlave);
    let jmb_worst = jmb.1.last().copied().unwrap_or(0.0);
    accept(
        jmb_worst <= SYNC_ERROR_BUDGET_RAD,
        &format!(
            "JMB lead/slave misalignment {jmb_worst:.3} rad exceeds the \
             {SYNC_ERROR_BUDGET_RAD} rad budget"
        ),
    );

    println!("\nstorm cell (slave 1 misses every header, middle third):");
    println!(
        "{:<22} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "strategy", "goodput_mbps", "ctrl_frac", "misses", "degraded", "restored"
    );
    for (s, m) in &out.storm {
        let ctrl_frac = if m.airtime_s > 0.0 {
            m.control_airtime_s / m.airtime_s
        } else {
            0.0
        };
        println!(
            "{:<22} {:>12.1} {:>10.4} {:>8} {:>8} {:>8}",
            s.token(),
            m.goodput_bps() / 1e6,
            ctrl_frac,
            m.sync_misses,
            m.aps_degraded,
            m.aps_restored
        );
        accept(
            m.delivered > 0,
            &format!("{} stalled under the storm", s.token()),
        );
        if *s == SyncStrategyId::JmbLeadSlave {
            accept(
                m.aps_degraded >= 1 && m.aps_restored >= 1,
                "JMB lead/slave must degrade the slave and restore it afterwards",
            );
        } else {
            accept(
                m.sync_misses == 0 && m.aps_degraded == 0,
                &format!(
                    "{} consults no in-band headers, so the storm must not \
                     produce misses or degradations",
                    s.token()
                ),
            );
        }
    }

    println!("\nthroughput vs APs under the storm:");
    for (s, series) in &out.scaling {
        let pts: Vec<String> = series
            .iter()
            .map(|(n, m)| format!("{n}:{:.1}", m.goodput_bps() / 1e6))
            .collect();
        println!("  {:<22} {}", s.token(), pts.join("  "));
    }

    or_fail(
        write_csv(&opts.csv_path("sync_shootout.csv"), &out.header, out.rows),
        "write sync_shootout.csv",
    );
    or_fail(
        write_csv(
            &opts.csv_path("sync_shootout_phase.csv"),
            &out.phase_header,
            out.phase_rows,
        ),
        "write sync_shootout_phase.csv",
    );
    println!(
        "\nshootout: in-band resync holds the paper's {SYNC_ERROR_BUDGET_RAD} rad budget; \
         the rivals ride out header storms at their own control cost."
    );
}
