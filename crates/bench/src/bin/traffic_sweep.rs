//! Traffic sweep: goodput and latency vs offered load and AP count, plus
//! a lead-AP failover run.
//!
//! Three sections, all through the discrete-event traffic simulator over
//! the per-subcarrier PHY ([`FastBackend`]):
//!
//! * `scaling` — saturating load, 1–10 APs serving as many clients:
//!   goodput should grow with the number of APs (the paper's headline
//!   claim, now under queueing instead of back-to-back frames);
//! * `load` — 4 APs / 4 clients, offered load ramping from light to
//!   beyond saturation: goodput tracks the offered line then flattens,
//!   latency shows the classic knee;
//! * `failover` — moderate load with the lead AP down for the middle
//!   third of the run: goodput degrades, the queue keeps draining, and
//!   full service resumes on recovery.
//!
//! Every simulation is seeded; rows are byte-identical across runs and
//! `--threads` settings (parallelism is across simulations, each of which
//! is single-threaded). Exit codes follow the sweep contract: 0 pass,
//! 1 failed acceptance property or runtime error, 2 invalid CLI.

use jmb_bench::{accept, banner, or_fail, FigOpts};
use jmb_core::experiment::{parallel_map, write_csv, SweepConfig};
use jmb_core::fastnet::FastConfig;
use jmb_sim::JsonLinesSink;
use jmb_traffic::{ApOutage, ClientLoad, FastBackend, TrafficConfig, TrafficMetrics, TrafficSim};

const PACKET_BYTES: usize = 1500;
const SNR_DB: f64 = 30.0;

/// Runs one traffic simulation: `n` APs serving `n` clients at
/// `rate_pps` Poisson arrivals each, with the given outage schedule.
fn run_point(
    n_aps: usize,
    rate_pps: f64,
    duration_s: f64,
    outages: Vec<ApOutage>,
    seed: u64,
) -> TrafficMetrics {
    let cfg = FastConfig::default_with(n_aps, n_aps, vec![SNR_DB; n_aps], seed);
    let backend = FastBackend::new(cfg).expect("backend");
    let loads = vec![ClientLoad::poisson(rate_pps, PACKET_BYTES); n_aps];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    tcfg.outages = outages;
    TrafficSim::new(tcfg, backend).expect("sim").run()
}

fn main() {
    let opts = FigOpts::from_args();
    banner(
        "traffic_sweep",
        "goodput/latency vs offered load, AP count, and failover",
        &opts,
    );
    let duration_s = if opts.quick { 0.2 } else { 0.8 };
    // Each operating point pools several random topologies; pooling (not a
    // single draw) is what makes the scaling trend visible above
    // topology-to-topology ZF-conditioning noise.
    let n_topo = if opts.quick { 3 } else { 8 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mk_sweep = |points: usize| {
        let mut s = SweepConfig {
            n_topologies: points,
            seed: opts.seed,
            ..Default::default()
        };
        if let Some(t) = opts.threads {
            s.parallelism = t;
        }
        s
    };

    // --- Section 1: goodput vs AP count under saturating load. ---
    let ap_counts: Vec<usize> = (1..=10).collect();
    // 2500 pps × 1500 B = 30 Mb/s per client: beyond what one stream can
    // carry, so every AP count runs saturated.
    let flat = parallel_map(&mk_sweep(ap_counts.len() * n_topo), |i| {
        run_point(
            ap_counts[i / n_topo],
            2500.0,
            duration_s,
            Vec::new(),
            opts.seed + (i % n_topo) as u64,
        )
    });
    let scaling: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    println!("n_aps  offered_mbps  goodput_mbps  p99_ms");
    for (n, m) in ap_counts.iter().zip(&scaling) {
        println!(
            "{n:>5}  {:>12.1}  {:>12.1}  {:>6.1}",
            m.offered_bps / 1e6,
            m.goodput_bps() / 1e6,
            m.p99_latency_s() * 1e3
        );
        let mut row = vec!["scaling".to_string(), format!("{n}")];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 2: offered-load ramp at 4 APs / 4 clients. ---
    let rates: Vec<f64> = if opts.quick {
        vec![200.0, 800.0, 3200.0]
    } else {
        vec![100.0, 200.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0]
    };
    let flat = parallel_map(&mk_sweep(rates.len() * n_topo), |i| {
        run_point(
            4,
            rates[i / n_topo],
            duration_s,
            Vec::new(),
            opts.seed + (i % n_topo) as u64,
        )
    });
    let ramp: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    println!("\nrate_pps  offered_mbps  goodput_mbps  median_ms  p99_ms");
    for (r, m) in rates.iter().zip(&ramp) {
        println!(
            "{r:>8.0}  {:>12.1}  {:>12.1}  {:>9.2}  {:>6.1}",
            m.offered_bps / 1e6,
            m.goodput_bps() / 1e6,
            m.median_latency_s() * 1e3,
            m.p99_latency_s() * 1e3
        );
        let mut row = vec!["load".to_string(), "4".to_string()];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 3: lead-AP failover, middle third of the run. ---
    let outage = ApOutage {
        ap: 0,
        down_at_s: duration_s / 3.0,
        up_at_s: duration_s * 2.0 / 3.0,
    };
    let flat = parallel_map(&mk_sweep(2 * n_topo), |i| {
        let outages = if i / n_topo == 0 {
            Vec::new()
        } else {
            vec![outage]
        };
        run_point(
            4,
            800.0,
            duration_s,
            outages,
            opts.seed + (i % n_topo) as u64,
        )
    });
    let healthy = TrafficMetrics::merge(&flat[..n_topo]);
    let failover = TrafficMetrics::merge(&flat[n_topo..]);
    println!("\nfailover (lead AP down for the middle third):");
    println!(
        "  healthy : goodput {:>6.1} Mb/s, p99 {:>6.1} ms, backlog {}",
        healthy.goodput_bps() / 1e6,
        healthy.p99_latency_s() * 1e3,
        healthy.queued_at_end
    );
    println!(
        "  failover: goodput {:>6.1} Mb/s, p99 {:>6.1} ms, backlog {}, delivery {:.1}%",
        failover.goodput_bps() / 1e6,
        failover.p99_latency_s() * 1e3,
        failover.queued_at_end,
        failover.delivery_ratio() * 100.0
    );
    // The acceptance property: degraded, not stalled.
    accept(
        failover.delivered > 0 && failover.goodput_bps() > 0.0,
        "failover run stalled",
    );
    for (label, m) in [("healthy", &healthy), ("failover", &failover)] {
        let mut row = vec![label.to_string(), "4".to_string()];
        row.extend(m.csv_row());
        rows.push(row);
    }

    let header = format!("section,n_aps,{}", TrafficMetrics::csv_header());
    or_fail(
        write_csv(&opts.csv_path("traffic_sweep.csv"), &header, rows),
        "write traffic_sweep.csv",
    );

    // --- Optional: dump one representative cell's event trace. ---
    // A dedicated re-run of the failover cell (seed = master seed) so the
    // sweep rows above stay byte-identical whether or not tracing is on.
    if let Some(path) = &opts.trace_out {
        let cfg = FastConfig::default_with(4, 4, vec![SNR_DB; 4], opts.seed);
        let backend = FastBackend::new(cfg).expect("backend");
        let loads = vec![ClientLoad::poisson(800.0, PACKET_BYTES); 4];
        let mut tcfg = TrafficConfig::default_with(loads, opts.seed);
        tcfg.duration_s = duration_s;
        tcfg.drain_timeout_s = duration_s * 0.5;
        tcfg.outages = vec![outage];
        let mut sim = TrafficSim::new(tcfg, backend).expect("sim");
        sim.trace.enable();
        sim.trace.set_buffering(false);
        sim.trace
            .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
        sim.run();
        sim.trace.flush();
        println!("trace of the failover cell → {}", path.display());
    }
    println!("\n§9/§11: capacity — and now queueing delay — scale with the number of APs.");
}
