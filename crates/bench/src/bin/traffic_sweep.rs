//! Traffic sweep: goodput and latency vs offered load and AP count, plus
//! a lead-AP failover run.
//!
//! Three sections, all through the discrete-event traffic simulator over
//! the per-subcarrier PHY ([`jmb_traffic::FastBackend`]):
//!
//! * `scaling` — saturating load, 1–10 APs serving as many clients:
//!   goodput should grow with the number of APs (the paper's headline
//!   claim, now under queueing instead of back-to-back frames);
//! * `load` — 4 APs / 4 clients, offered load ramping from light to
//!   beyond saturation: goodput tracks the offered line then flattens,
//!   latency shows the classic knee;
//! * `failover` — moderate load with the lead AP down for the middle
//!   third of the run: goodput degrades, the queue keeps draining, and
//!   full service resumes on recovery.
//!
//! Every simulation is seeded; rows are byte-identical across runs and
//! `--threads` settings (parallelism is across simulations, each of which
//! is single-threaded). The row generation itself lives in
//! [`jmb_bench::sweeps`], shared with the `sync_equivalence` fixture test.
//! Exit codes follow the sweep contract: 0 pass, 1 failed acceptance
//! property or runtime error, 2 invalid CLI.

use jmb_bench::sweeps::{self, SweepSettings};
use jmb_bench::{accept, banner, or_fail, FigOpts};
use jmb_core::experiment::write_csv;

fn main() {
    let opts = FigOpts::from_args();
    banner(
        "traffic_sweep",
        "goodput/latency vs offered load, AP count, and failover",
        &opts,
    );
    let set = SweepSettings::from_opts(&opts);
    let out = sweeps::traffic_sweep(&set);

    println!("n_aps  offered_mbps  goodput_mbps  p99_ms");
    for (n, m) in &out.scaling {
        println!(
            "{n:>5}  {:>12.1}  {:>12.1}  {:>6.1}",
            m.offered_bps / 1e6,
            m.goodput_bps() / 1e6,
            m.p99_latency_s() * 1e3
        );
    }

    println!("\nrate_pps  offered_mbps  goodput_mbps  median_ms  p99_ms");
    for (r, m) in &out.ramp {
        println!(
            "{r:>8.0}  {:>12.1}  {:>12.1}  {:>9.2}  {:>6.1}",
            m.offered_bps / 1e6,
            m.goodput_bps() / 1e6,
            m.median_latency_s() * 1e3,
            m.p99_latency_s() * 1e3
        );
    }

    println!("\nfailover (lead AP down for the middle third):");
    println!(
        "  healthy : goodput {:>6.1} Mb/s, p99 {:>6.1} ms, backlog {}",
        out.healthy.goodput_bps() / 1e6,
        out.healthy.p99_latency_s() * 1e3,
        out.healthy.queued_at_end
    );
    println!(
        "  failover: goodput {:>6.1} Mb/s, p99 {:>6.1} ms, backlog {}, delivery {:.1}%",
        out.failover.goodput_bps() / 1e6,
        out.failover.p99_latency_s() * 1e3,
        out.failover.queued_at_end,
        out.failover.delivery_ratio() * 100.0
    );
    // The acceptance property: degraded, not stalled.
    accept(
        out.failover.delivered > 0 && out.failover.goodput_bps() > 0.0,
        "failover run stalled",
    );

    or_fail(
        write_csv(&opts.csv_path("traffic_sweep.csv"), &out.header, out.rows),
        "write traffic_sweep.csv",
    );

    // --- Optional: dump one representative cell's event trace. ---
    // A dedicated re-run of the failover cell (seed = master seed) so the
    // sweep rows above stay byte-identical whether or not tracing is on.
    if let Some(path) = &opts.trace_out {
        sweeps::traffic_failover_trace(&set, path);
        println!("trace of the failover cell → {}", path.display());
    }
    println!("\n§9/§11: capacity — and now queueing delay — scale with the number of APs.");
}
