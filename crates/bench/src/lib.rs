//! # jmb-bench — benchmark and figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (§11). Each binary
//! prints the figure's series as rows and writes a CSV under `results/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig00_drift_motivation` | §1/§5.2 motivation: naive CFO extrapolation vs direct phase measurement |
//! | `fig06_misalignment` | Fig. 6 — SNR reduction vs phase misalignment |
//! | `fig07_misalignment_cdf` | Fig. 7 — CDF of achieved misalignment (sample-level probe) |
//! | `fig08_inr_scaling` | Fig. 8 — INR vs number of AP-client pairs |
//! | `fig09_throughput_scaling` | Fig. 9 — throughput vs number of APs, 3 SNR bands |
//! | `fig10_fairness` | Fig. 10 — CDFs of per-client throughput gain |
//! | `fig11_diversity` | Fig. 11 — diversity throughput vs SNR |
//! | `fig12_compat_throughput` | Fig. 12 — 802.11n-compat throughput per band |
//! | `fig13_compat_fairness` | Fig. 13 — CDF of 802.11n-compat gain |
//! | `ablation_phase_sync` | Fig. 9 with slave corrections disabled |
//! | `run_all_figures` | everything above in sequence |
//!
//! All binaries accept `--quick` (or env `JMB_QUICK=1`) to run a reduced
//! sweep, and `--seed N`. Criterion micro-benchmarks for the hot code paths
//! live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Reduced sweep for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
}

impl FigOpts {
    /// Parses `--quick`, `--seed N`, `--out DIR` from `std::env::args`,
    /// honouring `JMB_QUICK=1`.
    pub fn from_args() -> Self {
        let mut quick = std::env::var("JMB_QUICK").map(|v| v != "0").unwrap_or(false);
        let mut seed = 1u64;
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--seed" => {
                    seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--out" => {
                    out_dir = args.next().map(PathBuf::from).expect("--out needs a path");
                }
                other => panic!("unknown argument {other} (supported: --quick --seed N --out DIR)"),
            }
        }
        FigOpts {
            quick,
            seed,
            out_dir,
        }
    }

    /// Sweep size scaled by quick mode.
    pub fn topologies(&self, full: usize) -> usize {
        if self.quick {
            (full / 4).max(2)
        } else {
            full
        }
    }

    /// The experiment sweep config for this run.
    pub fn sweep(&self, full_topologies: usize) -> jmb_core::experiment::SweepConfig {
        jmb_core::experiment::SweepConfig {
            n_topologies: self.topologies(full_topologies),
            seed: self.seed,
            ..Default::default()
        }
    }

    /// CSV path under the output directory.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// Prints a header banner for a figure run.
pub fn banner(fig: &str, what: &str, opts: &FigOpts) {
    println!("=== {fig}: {what} ===");
    println!(
        "    (seed {}, {}; CSV → {})",
        opts.seed,
        if opts.quick { "quick sweep" } else { "full sweep" },
        opts.out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_topologies() {
        let o = FigOpts {
            quick: true,
            seed: 1,
            out_dir: PathBuf::from("results"),
        };
        assert_eq!(o.topologies(20), 5);
        assert_eq!(o.topologies(4), 2);
        let f = FigOpts { quick: false, ..o };
        assert_eq!(f.topologies(20), 20);
    }

    #[test]
    fn csv_path_joins() {
        let o = FigOpts {
            quick: false,
            seed: 1,
            out_dir: PathBuf::from("/tmp/x"),
        };
        assert_eq!(o.csv_path("a.csv"), PathBuf::from("/tmp/x/a.csv"));
    }
}
