//! # jmb-bench — benchmark and figure-regeneration harness
//!
//! One binary per figure of the paper's evaluation (§11). Each binary
//! prints the figure's series as rows and writes a CSV under `results/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig00_drift_motivation` | §1/§5.2 motivation: naive CFO extrapolation vs direct phase measurement |
//! | `fig06_misalignment` | Fig. 6 — SNR reduction vs phase misalignment |
//! | `fig07_misalignment_cdf` | Fig. 7 — CDF of achieved misalignment (sample-level probe) |
//! | `fig08_inr_scaling` | Fig. 8 — INR vs number of AP-client pairs |
//! | `fig09_throughput_scaling` | Fig. 9 — throughput vs number of APs, 3 SNR bands |
//! | `fig10_fairness` | Fig. 10 — CDFs of per-client throughput gain |
//! | `fig11_diversity` | Fig. 11 — diversity throughput vs SNR |
//! | `fig12_compat_throughput` | Fig. 12 — 802.11n-compat throughput per band |
//! | `fig13_compat_fairness` | Fig. 13 — CDF of 802.11n-compat gain |
//! | `ablation_phase_sync` | Fig. 9 with slave corrections disabled |
//! | `run_all_figures` | everything above in sequence |
//! | `perf_baseline` | hot-path timing suite → `BENCH_<date>.json` |
//! | `traffic_sweep` | goodput/latency vs offered load and AP count, plus a lead-AP failover run |
//! | `city_sweep` | area capacity (bits/s/km²) vs frequency-reuse factor on a sharded multi-cell grid |
//! | `sync_shootout` | pluggable sync backends side by side: phase-error CDF, control-overhead fraction, storm scaling |
//!
//! All binaries accept `--quick` (or env `JMB_QUICK=1`), `--seed N`,
//! `--out DIR` and `--threads N`; `--help` prints usage. Criterion
//! micro-benchmarks for the hot code paths live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sweeps;

use std::path::PathBuf;

/// Usage text shared by every figure binary.
pub const USAGE: &str = "\
Options:
  --quick        reduced sweep for smoke runs (also: env JMB_QUICK=1)
  --seed N       master seed (default 1)
  --out DIR      output directory for CSVs (default results/)
  --threads N    worker threads for the topology sweep (default: all cores)
  --trace-out F  dump the structured event trace of one cell to F (.jsonl)
  --help, -h     print this help";

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct FigOpts {
    /// Reduced sweep for smoke runs.
    pub quick: bool,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Worker-thread override for the topology sweep (`None` = all cores).
    pub threads: Option<usize>,
    /// Dump one representative cell's event trace to this JSON-lines file.
    pub trace_out: Option<PathBuf>,
}

impl FigOpts {
    /// Parses `--quick`, `--seed N`, `--out DIR`, `--threads N` from
    /// `std::env::args`, honouring `JMB_QUICK=1`. `--help`/`-h` prints
    /// usage and exits 0; an unknown or malformed argument prints usage to
    /// stderr and exits 2 (no panic, no backtrace).
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(Some(opts)) => opts,
            Ok(None) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("error: {msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The testable core of [`Self::from_args`]: `Ok(None)` means help was
    /// requested; `Err` carries the message for a malformed invocation.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Option<Self>, String> {
        let mut opts = FigOpts {
            quick: std::env::var("JMB_QUICK")
                .map(|v| v != "0")
                .unwrap_or(false),
            seed: 1,
            out_dir: PathBuf::from("results"),
            threads: None,
            trace_out: None,
        };
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--help" | "-h" => return Ok(None),
                "--quick" => opts.quick = true,
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--seed needs an integer")?;
                }
                "--out" => {
                    opts.out_dir = args.next().map(PathBuf::from).ok_or("--out needs a path")?;
                }
                "--threads" => {
                    let n: usize = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a positive integer")?;
                    if n == 0 {
                        return Err("--threads needs a positive integer".into());
                    }
                    opts.threads = Some(n);
                }
                "--trace-out" => {
                    opts.trace_out = Some(
                        args.next()
                            .map(PathBuf::from)
                            .ok_or("--trace-out needs a path")?,
                    );
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        Ok(Some(opts))
    }

    /// Sweep size scaled by quick mode.
    pub fn topologies(&self, full: usize) -> usize {
        if self.quick {
            (full / 4).max(2)
        } else {
            full
        }
    }

    /// The experiment sweep config for this run.
    pub fn sweep(&self, full_topologies: usize) -> jmb_core::experiment::SweepConfig {
        let mut cfg = jmb_core::experiment::SweepConfig {
            n_topologies: self.topologies(full_topologies),
            seed: self.seed,
            ..Default::default()
        };
        if let Some(n) = self.threads {
            cfg.parallelism = n;
        }
        cfg
    }

    /// CSV path under the output directory.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        self.out_dir.join(name)
    }
}

/// Checks an acceptance property under the sweep exit-code contract
/// (shared with `jmb-scenario run`): exit 0 on pass, exit 1 on a failed
/// acceptance property or runtime error, exit 2 on invalid CLI. A failed
/// property prints the evidence and exits 1 instead of panicking, so CI
/// and scripts can branch on the code.
pub fn accept(ok: bool, msg: &str) {
    if !ok {
        eprintln!("acceptance failure: {msg}");
        std::process::exit(1);
    }
}

/// Unwraps a runtime result under the sweep exit-code contract: on error,
/// prints `error: <what>: <cause>` and exits 1 (runtime failure — the
/// CLI itself was valid).
pub fn or_fail<T, E: std::fmt::Display>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// Prints a header banner for a figure run.
pub fn banner(fig: &str, what: &str, opts: &FigOpts) {
    println!("=== {fig}: {what} ===");
    println!(
        "    (seed {}, {}; CSV → {})",
        opts.seed,
        if opts.quick {
            "quick sweep"
        } else {
            "full sweep"
        },
        opts.out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> FigOpts {
        FigOpts {
            quick: true,
            seed: 1,
            out_dir: PathBuf::from("results"),
            threads: None,
            trace_out: None,
        }
    }

    #[test]
    fn quick_scales_topologies() {
        let o = opts();
        assert_eq!(o.topologies(20), 5);
        assert_eq!(o.topologies(4), 2);
        let f = FigOpts { quick: false, ..o };
        assert_eq!(f.topologies(20), 20);
    }

    #[test]
    fn csv_path_joins() {
        let o = FigOpts {
            quick: false,
            out_dir: PathBuf::from("/tmp/x"),
            ..opts()
        };
        assert_eq!(o.csv_path("a.csv"), PathBuf::from("/tmp/x/a.csv"));
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_all_flags() {
        let o = FigOpts::parse(sv(&[
            "--quick",
            "--seed",
            "9",
            "--out",
            "/tmp/o",
            "--threads",
            "3",
            "--trace-out",
            "/tmp/t.jsonl",
        ]))
        .unwrap()
        .unwrap();
        assert!(o.quick);
        assert_eq!(o.seed, 9);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/o"));
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.trace_out, Some(PathBuf::from("/tmp/t.jsonl")));
    }

    #[test]
    fn parse_help_is_ok_none() {
        assert!(FigOpts::parse(sv(&["--help"])).unwrap().is_none());
        assert!(FigOpts::parse(sv(&["-h"])).unwrap().is_none());
    }

    #[test]
    fn parse_rejects_bad_args() {
        assert!(FigOpts::parse(sv(&["--bogus"])).is_err());
        assert!(FigOpts::parse(sv(&["--seed"])).is_err());
        assert!(FigOpts::parse(sv(&["--seed", "x"])).is_err());
        assert!(FigOpts::parse(sv(&["--threads", "0"])).is_err());
        assert!(FigOpts::parse(sv(&["--trace-out"])).is_err());
    }

    #[test]
    fn threads_overrides_sweep_parallelism() {
        let mut o = opts();
        o.threads = Some(2);
        assert_eq!(o.sweep(20).parallelism, 2);
        o.threads = None;
        assert!(o.sweep(20).parallelism >= 1);
    }
}
