//! Shared row-generation pipelines for the sweep binaries.
//!
//! `traffic_sweep`, `robustness_sweep`, and `city_sweep` each produce a
//! CSV whose bytes are part of the repo's determinism contract (the CI
//! jobs byte-compare them across runs and `--threads` settings, and the
//! `sync_equivalence` test pins them against golden fixtures). Keeping the
//! row generation here — called by both the binaries and the tests — means
//! the fixture comparison exercises the exact pipeline the binaries ship,
//! not a parallel reimplementation that could drift.

use crate::FigOpts;
use jmb_city::{City, CityConfig, CityReport, Reuse};
use jmb_core::error::JmbError;
use jmb_core::experiment::{misalignment_samples_with, parallel_map, SchedulePolicy, SweepConfig};
use jmb_core::fastnet::FastConfig;
use jmb_core::sync::SyncStrategyId;
use jmb_sim::{FaultConfig, FaultSchedule, JsonLinesSink};
use jmb_traffic::{ApOutage, ClientLoad, FastBackend, TrafficConfig, TrafficMetrics, TrafficSim};
use std::path::Path;

const PACKET_BYTES: usize = 1500;
const SNR_DB: f64 = 30.0;
/// 2500 pps × 1500 B = 30 Mb/s per client: saturating, so goodput measures
/// capacity and any control-plane cliff would be visible.
const SATURATING_PPS: f64 = 2500.0;
const ROBUSTNESS_APS: usize = 4;

/// The inputs every sweep pipeline shares, lifted out of [`FigOpts`] so
/// tests can drive the pipelines without a CLI.
#[derive(Debug, Clone, Copy)]
pub struct SweepSettings {
    /// Master seed.
    pub seed: u64,
    /// Quick (smoke) dimensions instead of the full figure.
    pub quick: bool,
    /// Worker-thread override (`None` = all cores).
    pub threads: Option<usize>,
    /// Claim-order policy for `parallel_map` — perturbed by `det_harness`,
    /// `Natural` everywhere else.
    pub schedule: SchedulePolicy,
}

impl SweepSettings {
    /// Settings carried by parsed CLI options.
    pub fn from_opts(opts: &FigOpts) -> Self {
        SweepSettings {
            seed: opts.seed,
            quick: opts.quick,
            threads: opts.threads,
            schedule: SchedulePolicy::Natural,
        }
    }

    fn duration_s(&self) -> f64 {
        if self.quick {
            0.2
        } else {
            0.8
        }
    }

    fn n_topo(&self) -> usize {
        if self.quick {
            3
        } else {
            8
        }
    }

    fn sweep(&self, points: usize) -> SweepConfig {
        let mut s = SweepConfig {
            n_topologies: points,
            seed: self.seed,
            schedule: self.schedule,
            ..Default::default()
        };
        if let Some(t) = self.threads {
            s.parallelism = t;
        }
        s
    }
}

/// Renders CSV content exactly as [`jmb_core::experiment::write_csv`]
/// would write it (header line, then one line per row).
pub fn csv_text(header: &str, rows: &[Vec<String>]) -> String {
    let mut out = String::with_capacity(rows.len() * 64);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Runs one traffic simulation: `n` APs serving `n` clients at
/// `rate_pps` Poisson arrivals each, with the given outage schedule.
fn traffic_point(
    n_aps: usize,
    rate_pps: f64,
    duration_s: f64,
    outages: Vec<ApOutage>,
    seed: u64,
) -> TrafficMetrics {
    let cfg = FastConfig::default_with(n_aps, n_aps, vec![SNR_DB; n_aps], seed);
    let backend = FastBackend::new(cfg).expect("backend");
    let loads = vec![ClientLoad::poisson(rate_pps, PACKET_BYTES); n_aps];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    tcfg.outages = outages;
    TrafficSim::new(tcfg, backend).expect("sim").run()
}

/// The lead-AP outage window of the failover section.
fn failover_outage(duration_s: f64) -> ApOutage {
    ApOutage {
        ap: 0,
        down_at_s: duration_s / 3.0,
        up_at_s: duration_s * 2.0 / 3.0,
    }
}

/// Everything the `traffic_sweep` binary prints and writes.
pub struct TrafficSweep {
    /// Per-AP-count merged metrics of the saturating-load section.
    pub scaling: Vec<(usize, TrafficMetrics)>,
    /// Per-rate merged metrics of the offered-load ramp.
    pub ramp: Vec<(f64, TrafficMetrics)>,
    /// The fault-free half of the failover section.
    pub healthy: TrafficMetrics,
    /// The lead-AP-outage half of the failover section.
    pub failover: TrafficMetrics,
    /// The CSV header.
    pub header: String,
    /// The CSV rows, in file order.
    pub rows: Vec<Vec<String>>,
}

/// The full `traffic_sweep` pipeline (all three sections, CSV rows
/// included) — see the binary's module docs for what each section shows.
pub fn traffic_sweep(set: &SweepSettings) -> TrafficSweep {
    let duration_s = set.duration_s();
    let n_topo = set.n_topo();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Section 1: goodput vs AP count under saturating load. ---
    let ap_counts: Vec<usize> = (1..=10).collect();
    let flat = parallel_map(&set.sweep(ap_counts.len() * n_topo), |i| {
        traffic_point(
            ap_counts[i / n_topo],
            SATURATING_PPS,
            duration_s,
            Vec::new(),
            set.seed + (i % n_topo) as u64,
        )
    });
    let merged: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    let scaling: Vec<(usize, TrafficMetrics)> = ap_counts.iter().copied().zip(merged).collect();
    for (n, m) in &scaling {
        let mut row = vec!["scaling".to_string(), format!("{n}")];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 2: offered-load ramp at 4 APs / 4 clients. ---
    let rates: Vec<f64> = if set.quick {
        vec![200.0, 800.0, 3200.0]
    } else {
        vec![100.0, 200.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0]
    };
    let flat = parallel_map(&set.sweep(rates.len() * n_topo), |i| {
        traffic_point(
            4,
            rates[i / n_topo],
            duration_s,
            Vec::new(),
            set.seed + (i % n_topo) as u64,
        )
    });
    let merged: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    let ramp: Vec<(f64, TrafficMetrics)> = rates.iter().copied().zip(merged).collect();
    for (_, m) in &ramp {
        let mut row = vec!["load".to_string(), "4".to_string()];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 3: lead-AP failover, middle third of the run. ---
    let outage = failover_outage(duration_s);
    let flat = parallel_map(&set.sweep(2 * n_topo), |i| {
        let outages = if i / n_topo == 0 {
            Vec::new()
        } else {
            vec![outage]
        };
        traffic_point(
            4,
            800.0,
            duration_s,
            outages,
            set.seed + (i % n_topo) as u64,
        )
    });
    let healthy = TrafficMetrics::merge(&flat[..n_topo]);
    let failover = TrafficMetrics::merge(&flat[n_topo..]);
    for (label, m) in [("healthy", &healthy), ("failover", &failover)] {
        let mut row = vec![label.to_string(), "4".to_string()];
        row.extend(m.csv_row());
        rows.push(row);
    }

    TrafficSweep {
        scaling,
        ramp,
        healthy,
        failover,
        header: format!("section,n_aps,{}", TrafficMetrics::csv_header()),
        rows,
    }
}

/// Dedicated re-run of the failover cell (seed = master seed) with a
/// JSON-lines trace attached, so the sweep rows stay byte-identical
/// whether or not tracing is on.
pub fn traffic_failover_trace(set: &SweepSettings, path: &Path) {
    let duration_s = set.duration_s();
    let cfg = FastConfig::default_with(4, 4, vec![SNR_DB; 4], set.seed);
    let backend = FastBackend::new(cfg).expect("backend");
    let loads = vec![ClientLoad::poisson(800.0, PACKET_BYTES); 4];
    let mut tcfg = TrafficConfig::default_with(loads, set.seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    tcfg.outages = vec![failover_outage(duration_s)];
    let mut sim = TrafficSim::new(tcfg, backend).expect("sim");
    sim.trace.enable();
    sim.trace.set_buffering(false);
    sim.trace
        .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
    sim.run();
    sim.trace.flush();
}

/// One robustness traffic simulation with the given control-fault schedule
/// installed after the (always clean) initial measurement.
fn robustness_point(faults: FaultSchedule, duration_s: f64, seed: u64) -> TrafficMetrics {
    let cfg = FastConfig::default_with(
        ROBUSTNESS_APS,
        ROBUSTNESS_APS,
        vec![SNR_DB; ROBUSTNESS_APS],
        seed,
    );
    let mut backend = FastBackend::new(cfg).expect("backend");
    backend.net_mut().set_fault_schedule(faults);
    let loads = vec![ClientLoad::poisson(SATURATING_PPS, PACKET_BYTES); ROBUSTNESS_APS];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    TrafficSim::new(tcfg, backend).expect("sim").run()
}

fn fault_with(sync_loss: f64, meas_loss: f64) -> FaultConfig {
    FaultConfig::builder()
        .sync_loss_chance(sync_loss)
        .meas_loss_chance(meas_loss)
        .build()
        .expect("ramp constants are in range")
}

/// The storm schedule of the robustness sweep's third section: one slave
/// misses every sync header for the middle third of the run.
pub fn robustness_storm(duration_s: f64) -> FaultSchedule {
    FaultSchedule::none()
        .with_window(
            duration_s / 3.0,
            duration_s * 2.0 / 3.0,
            FaultConfig::builder()
                .per_slave_sync_loss(1, 1.0)
                .build()
                .expect("valid"),
        )
        .expect("valid window")
}

/// Everything the `robustness_sweep` binary prints and writes (full mode).
pub struct RobustnessSweep {
    /// Per-loss merged metrics of the sync-header loss ramp.
    pub sync: Vec<(f64, TrafficMetrics)>,
    /// Per-loss merged metrics of the measurement-frame loss ramp.
    pub meas: Vec<(f64, TrafficMetrics)>,
    /// The storm section's merged metrics.
    pub storm: TrafficMetrics,
    /// The CSV header.
    pub header: String,
    /// The CSV rows, in file order.
    pub rows: Vec<Vec<String>>,
}

/// The full `robustness_sweep` pipeline (sync ramp, meas ramp, storm).
pub fn robustness_sweep(set: &SweepSettings) -> RobustnessSweep {
    let duration_s = set.duration_s();
    let n_topo = set.n_topo();
    let losses: Vec<f64> = vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.3];
    let mut rows: Vec<Vec<String>> = Vec::new();

    // --- Section 1: sync-header loss ramp. ---
    let flat = parallel_map(&set.sweep(losses.len() * n_topo), |i| {
        robustness_point(
            FaultSchedule::constant(fault_with(losses[i / n_topo], 0.0)),
            duration_s,
            set.seed + (i % n_topo) as u64,
        )
    });
    let merged: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    let sync: Vec<(f64, TrafficMetrics)> = losses.iter().copied().zip(merged).collect();
    for (l, m) in &sync {
        let mut row = vec!["sync".to_string(), format!("{l:.2}")];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 2: measurement-frame loss ramp. ---
    let flat = parallel_map(&set.sweep(losses.len() * n_topo), |i| {
        robustness_point(
            FaultSchedule::constant(fault_with(0.0, losses[i / n_topo])),
            duration_s,
            set.seed + (i % n_topo) as u64,
        )
    });
    let merged: Vec<TrafficMetrics> = flat.chunks(n_topo).map(TrafficMetrics::merge).collect();
    let meas: Vec<(f64, TrafficMetrics)> = losses.iter().copied().zip(merged).collect();
    for (l, m) in &meas {
        let mut row = vec!["meas".to_string(), format!("{l:.2}")];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 3: total sync loss on one slave, middle third. ---
    let storm_sched = robustness_storm(duration_s);
    let runs = parallel_map(&set.sweep(n_topo), |i| {
        robustness_point(storm_sched.clone(), duration_s, set.seed + i as u64)
    });
    let storm = TrafficMetrics::merge(&runs);
    let mut row = vec!["storm".to_string(), "1.00".to_string()];
    row.extend(storm.csv_row());
    rows.push(row);

    RobustnessSweep {
        sync,
        meas,
        storm,
        header: format!("section,loss,{}", TrafficMetrics::csv_header()),
        rows,
    }
}

/// The single-cell robustness mode the CI fault matrix drives: one pooled
/// operating point at the given loss probabilities. Returns the merged
/// metrics and the one-row CSV (header, rows).
pub fn robustness_cell(
    set: &SweepSettings,
    fault: FaultConfig,
) -> (TrafficMetrics, String, Vec<Vec<String>>) {
    let duration_s = set.duration_s();
    let runs = parallel_map(&set.sweep(set.n_topo()), |i| {
        robustness_point(
            FaultSchedule::constant(fault.clone()),
            duration_s,
            set.seed + i as u64,
        )
    });
    let m = TrafficMetrics::merge(&runs);
    let mut row = vec!["cell".to_string()];
    row.extend(m.csv_row());
    let header = format!("section,{}", TrafficMetrics::csv_header());
    (m, header, vec![row])
}

/// Dedicated re-run of the storm cell (seed = master seed) with a
/// JSON-lines trace attached.
pub fn robustness_storm_trace(set: &SweepSettings, path: &Path) {
    let duration_s = set.duration_s();
    let cfg = FastConfig::default_with(
        ROBUSTNESS_APS,
        ROBUSTNESS_APS,
        vec![SNR_DB; ROBUSTNESS_APS],
        set.seed,
    );
    let mut backend = FastBackend::new(cfg).expect("backend");
    backend
        .net_mut()
        .set_fault_schedule(robustness_storm(duration_s));
    let loads = vec![ClientLoad::poisson(SATURATING_PPS, PACKET_BYTES); ROBUSTNESS_APS];
    let mut tcfg = TrafficConfig::default_with(loads, set.seed);
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    let mut sim = TrafficSim::new(tcfg, backend).expect("sim");
    sim.trace.enable();
    sim.trace.set_buffering(false);
    sim.trace
        .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
    sim.run();
    sim.trace.flush();
}

/// One shootout traffic run: `n_aps` APs serving `n_aps` clients at
/// saturating load under the given synchronization strategy and fault
/// schedule. Both the PHY config and the traffic config carry the
/// strategy, so no mid-run switch (and no `SyncStrategySwitched` event)
/// perturbs the rows.
fn shootout_point(
    strategy: SyncStrategyId,
    n_aps: usize,
    faults: FaultSchedule,
    duration_s: f64,
    seed: u64,
) -> TrafficMetrics {
    let mut cfg = FastConfig::default_with(n_aps, n_aps, vec![SNR_DB; n_aps], seed);
    cfg.sync = strategy;
    let mut backend = FastBackend::new(cfg).expect("backend");
    backend.net_mut().set_fault_schedule(faults);
    let loads = vec![ClientLoad::poisson(SATURATING_PPS, PACKET_BYTES); n_aps];
    let mut tcfg = TrafficConfig::default_with(loads, seed);
    tcfg.sync_strategy = strategy;
    tcfg.duration_s = duration_s;
    tcfg.drain_timeout_s = duration_s * 0.5;
    TrafficSim::new(tcfg, backend).expect("sim").run()
}

/// Percentile of an already-sorted sample set (`p` in `[0, 1]`).
fn pct(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Everything the `sync_shootout` binary prints and writes: per-strategy
/// phase-error CDF samples (sample-level misalignment probe), storm-cell
/// traffic metrics (control-overhead fraction comes from
/// `control_airtime_s / airtime_s`), and throughput-vs-APs scaling under
/// the same storm schedule.
pub struct SyncShootout {
    /// Sorted |misalignment| samples (radians) per strategy, in
    /// [`SyncStrategyId::ALL`] order.
    pub phase: Vec<(SyncStrategyId, Vec<f64>)>,
    /// Merged storm-cell metrics per strategy.
    pub storm: Vec<(SyncStrategyId, TrafficMetrics)>,
    /// Per-strategy throughput scaling: merged metrics per AP count.
    pub scaling: Vec<(SyncStrategyId, Vec<(usize, TrafficMetrics)>)>,
    /// Header of the traffic CSV (`sync_shootout.csv`).
    pub header: String,
    /// Rows of the traffic CSV, in file order.
    pub rows: Vec<Vec<String>>,
    /// Header of the phase-error CSV (`sync_shootout_phase.csv`).
    pub phase_header: String,
    /// Rows of the phase-error CSV.
    pub phase_rows: Vec<Vec<String>>,
}

/// The full `sync_shootout` pipeline: every strategy through the same
/// probes and storms, rows byte-identical across runs and `--threads`.
pub fn sync_shootout(set: &SweepSettings) -> Result<SyncShootout, JmbError> {
    let duration_s = set.duration_s();
    let n_topo = set.n_topo();
    let strategies = SyncStrategyId::ALL;

    // --- Section 1: phase-error CDF from the sample-level probe. ---
    let (probe_runs, probe_rounds) = if set.quick { (4, 30) } else { (20, 60) };
    let mut phase: Vec<(SyncStrategyId, Vec<f64>)> = Vec::new();
    let mut phase_rows: Vec<Vec<String>> = Vec::new();
    for &strategy in &strategies {
        let mut samples = misalignment_samples_with(probe_runs, probe_rounds, set.seed, strategy)?;
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite misalignment"));
        phase_rows.push(vec![
            strategy.token().to_string(),
            format!("{:.6}", pct(&samples, 0.5)),
            format!("{:.6}", pct(&samples, 0.9)),
            format!("{:.6}", pct(&samples, 0.99)),
            format!("{:.6}", samples.last().copied().unwrap_or(0.0)),
            samples.len().to_string(),
        ]);
        phase.push((strategy, samples));
    }

    // --- Section 2: storm cell per strategy (control overhead visible). ---
    let storm_sched = robustness_storm(duration_s);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let flat = parallel_map(&set.sweep(strategies.len() * n_topo), |i| {
        shootout_point(
            strategies[i / n_topo],
            ROBUSTNESS_APS,
            storm_sched.clone(),
            duration_s,
            set.seed + (i % n_topo) as u64,
        )
    });
    let storm: Vec<(SyncStrategyId, TrafficMetrics)> = strategies
        .iter()
        .copied()
        .zip(flat.chunks(n_topo).map(TrafficMetrics::merge))
        .collect();
    for (s, m) in &storm {
        let mut row = vec![
            "storm".to_string(),
            s.token().to_string(),
            ROBUSTNESS_APS.to_string(),
        ];
        row.extend(m.csv_row());
        rows.push(row);
    }

    // --- Section 3: throughput vs AP count per strategy, same storm. ---
    let ap_counts: Vec<usize> = if set.quick {
        vec![2, 4, 6]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    let per_strategy = ap_counts.len() * n_topo;
    let flat = parallel_map(&set.sweep(strategies.len() * per_strategy), |i| {
        let strategy = strategies[i / per_strategy];
        let j = i % per_strategy;
        shootout_point(
            strategy,
            ap_counts[j / n_topo],
            storm_sched.clone(),
            duration_s,
            set.seed + (j % n_topo) as u64,
        )
    });
    let mut scaling: Vec<(SyncStrategyId, Vec<(usize, TrafficMetrics)>)> = Vec::new();
    for (si, &strategy) in strategies.iter().enumerate() {
        let base = si * per_strategy;
        let merged: Vec<(usize, TrafficMetrics)> = ap_counts
            .iter()
            .copied()
            .zip(
                flat[base..base + per_strategy]
                    .chunks(n_topo)
                    .map(TrafficMetrics::merge),
            )
            .collect();
        for (n, m) in &merged {
            let mut row = vec![
                "scaling".to_string(),
                strategy.token().to_string(),
                n.to_string(),
            ];
            row.extend(m.csv_row());
            rows.push(row);
        }
        scaling.push((strategy, merged));
    }

    Ok(SyncShootout {
        phase,
        storm,
        scaling,
        header: format!("section,strategy,n_aps,{}", TrafficMetrics::csv_header()),
        rows,
        phase_header: "strategy,p50_rad,p90_rad,p99_rad,max_rad,n".to_string(),
        phase_rows,
    })
}

/// The city configuration for one reuse point of the sweep.
pub fn city_config(quick: bool, reuse: Reuse, seed: u64, threads: Option<usize>) -> CityConfig {
    let mut cfg = if quick {
        // 8×8 grid of small cells: 128 APs, 512 clients.
        let mut c = CityConfig::default_with(8, 8, reuse, seed);
        c.aps_per_cell = 2;
        c.clients_per_cell = 8;
        c.duration_s = 0.05;
        c.rate_pps = 200.0;
        c
    } else {
        // 16×16 grid: 1024 APs, 102,400 clients. 10 pps × 700 B × 400
        // clients ≈ 22 Mb/s of offered load per cell — near the clean-cell
        // capacity, so the interference epochs bite without drowning the
        // run in retry work.
        let mut c = CityConfig::default_with(16, 16, reuse, seed);
        c.aps_per_cell = 4;
        c.clients_per_cell = 400;
        c.duration_s = 0.1;
        c.rate_pps = 10.0;
        c
    };
    if let Some(t) = threads {
        cfg.threads = t;
    } else {
        cfg.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    cfg
}

/// One reuse point of the city sweep: builds and runs the city (tracing
/// the city-level event feed to `trace_out` if given), returns the report
/// and appends this point's CSV rows to `rows`.
pub fn city_point(
    set: &SweepSettings,
    reuse: Reuse,
    trace_out: Option<&Path>,
    rows: &mut Vec<Vec<String>>,
) -> Result<CityReport, JmbError> {
    let mut cfg = city_config(set.quick, reuse, set.seed, set.threads);
    cfg.schedule = set.schedule;
    let mut city = City::new(cfg)?;
    // Events are emitted outside the cell shards, so tracing cannot
    // perturb the sweep rows.
    if let Some(path) = trace_out {
        city.trace.enable();
        city.trace.set_buffering(false);
        city.trace
            .attach_sink(JsonLinesSink::create(path).expect("open --trace-out file"));
    }
    let report = city.run()?;
    if trace_out.is_some() {
        city.trace.flush();
    }
    for c in &report.cells {
        let mut row = vec![
            reuse.factor().to_string(),
            c.cell.to_string(),
            c.color.to_string(),
            format!("{:.6}", c.inr_db),
        ];
        row.extend(c.metrics.csv_row());
        rows.push(row);
    }
    let mut pooled = vec![
        reuse.factor().to_string(),
        "all".to_string(),
        "-".to_string(),
        format!("{:.6}", report.mean_inr_db()),
    ];
    pooled.extend(report.pooled.csv_row());
    rows.push(pooled);
    Ok(report)
}

/// The CSV header of the city sweep.
pub fn city_header() -> String {
    format!("reuse,cell,color,inr_db,{}", TrafficMetrics::csv_header())
}
