//! The refactor safety contract for pluggable sync strategies: with the
//! default `JmbLeadSlave` backend, every sweep binary's output is
//! byte-identical to the pre-refactor network.
//!
//! Golden fixtures under `tests/fixtures/` were blessed from the commit
//! *before* the `SyncStrategy` extraction (and verified against the
//! binaries' own `--out`/`--trace-out` files with `cmp`). These tests
//! re-run the exact row-generation pipelines the binaries ship
//! ([`jmb_bench::sweeps`]) and compare bytes. Any behavioural drift in the
//! default sync path — one extra RNG draw, one reordered estimate — shows
//! up as a first-differing-line diagnostic here.
//!
//! To re-bless after an *intentional* behaviour change:
//! `JMB_BLESS=1 cargo test --release -p jmb-bench --test sync_equivalence`.
//!
//! The full-sweep tests are ignored in debug builds (they run whole
//! traffic simulations; debug-mode cost is minutes on one core) —
//! `scripts/check.sh` and the CI `sync-shootout` job run them in release,
//! where the three together take seconds.

use jmb_bench::sweeps::{self, SweepSettings};
use std::path::{Path, PathBuf};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the named fixture byte-for-byte, or writes
/// the fixture when `JMB_BLESS` is set. On mismatch, reports the first
/// differing line so the drifting draw is locatable.
fn check_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var("JMB_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {name} ({} bytes)", actual.len());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); bless with JMB_BLESS=1"));
    if expected == actual {
        return;
    }
    for (line, (e, a)) in (1usize..).zip(expected.lines().zip(actual.lines())) {
        if e != a {
            panic!(
                "{name} drifted from the pre-refactor fixture at line {line}:\n  \
                 fixture: {e}\n  actual : {a}\n\
                 (JmbLeadSlave must stay bit-exact; re-bless only for intentional changes)"
            );
        }
    }
    panic!(
        "{name} drifted from the pre-refactor fixture: line counts differ \
         (fixture {} lines, actual {} lines)",
        expected.lines().count(),
        actual.lines().count()
    );
}

fn quick_settings() -> SweepSettings {
    SweepSettings {
        seed: 1,
        quick: true,
        threads: None,
        schedule: jmb_core::experiment::SchedulePolicy::Natural,
    }
}

/// Runs a trace-writing pipeline into a temp file and returns the bytes.
fn trace_to_string(f: impl FnOnce(&Path)) -> String {
    let path = std::env::temp_dir().join(format!(
        "jmb_sync_equivalence_{}_{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    f(&path);
    let text = std::fs::read_to_string(&path).expect("trace file");
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full quick sweep; run in release")]
fn traffic_sweep_quick_is_byte_identical() {
    let set = quick_settings();
    let out = sweeps::traffic_sweep(&set);
    check_fixture(
        "traffic_sweep.quick.csv",
        &sweeps::csv_text(&out.header, &out.rows),
    );
    let trace = trace_to_string(|p| sweeps::traffic_failover_trace(&set, p));
    check_fixture("traffic_failover.quick.jsonl", &trace);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full quick sweep; run in release")]
fn robustness_sweep_quick_is_byte_identical() {
    let set = quick_settings();
    let out = sweeps::robustness_sweep(&set);
    check_fixture(
        "robustness_sweep.quick.csv",
        &sweeps::csv_text(&out.header, &out.rows),
    );
    let trace = trace_to_string(|p| sweeps::robustness_storm_trace(&set, p));
    check_fixture("robustness_storm.quick.jsonl", &trace);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full quick sweep; run in release")]
fn city_sweep_quick_is_byte_identical() {
    let set = quick_settings();
    let mut rows = Vec::new();
    for reuse in jmb_city::Reuse::ALL {
        sweeps::city_point(&set, reuse, None, &mut rows).expect("city point");
    }
    check_fixture(
        "city_sweep.quick.csv",
        &sweeps::csv_text(&sweeps::city_header(), &rows),
    );
}

/// The sweep rows must not depend on the worker-thread count (the CI jobs
/// byte-compare `--threads 1` vs `--threads 4`; this is the in-process
/// version of that check for the smallest pipeline).
#[test]
#[cfg_attr(debug_assertions, ignore = "full quick sweep; run in release")]
fn rows_identical_across_thread_counts() {
    let mut one = quick_settings();
    one.threads = Some(1);
    let mut four = quick_settings();
    four.threads = Some(4);
    let a = sweeps::robustness_sweep(&one);
    let b = sweeps::robustness_sweep(&four);
    assert_eq!(
        sweeps::csv_text(&a.header, &a.rows),
        sweeps::csv_text(&b.header, &b.rows)
    );
}
