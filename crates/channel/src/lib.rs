//! # jmb-channel — RF environment models
//!
//! Everything between the DACs of the APs and the ADCs of the clients, as a
//! software model. This crate is the substitution for the paper's physical
//! testbed (USRP2 radios in a conference room, §10):
//!
//! * [`oscillator`] — per-device free-running clock: carrier/sampling
//!   frequency offset drawn in ppm, Wiener phase noise, slow drift. This is
//!   the adversary JMB's distributed phase synchronization must defeat.
//! * [`multipath`] — tapped-delay-line Rayleigh/Rician fading with an
//!   exponential power-delay profile and Gauss–Markov time evolution
//!   (coherence times of hundreds of ms, as the paper assumes in §5).
//! * [`pathloss`] — log-distance path loss with shadowing, plus noise-floor
//!   and SNR arithmetic.
//! * [`topology`] — conference-room node placement (paper Fig. 5) and the
//!   low/medium/high SNR bands of the evaluation (§11).
//! * [`link`] — one directional AP↔client or AP↔AP channel bundling all of
//!   the above.
//!
//! All randomness flows through explicit RNGs (see [`jmb_dsp::rng`]), so a
//! topology draw or a fading realisation is reproducible from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod multipath;
pub mod oscillator;
pub mod pathloss;
pub mod topology;

pub use link::Link;
pub use multipath::{Multipath, MultipathSpec};
pub use oscillator::{Oscillator, OscillatorSpec, PhaseTrajectory};
pub use topology::{Position, SnrBand, Topology};
