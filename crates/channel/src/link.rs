//! A directional radio link: path gain + carrier phase + propagation delay +
//! multipath fading.
//!
//! Links connect every (transmit antenna, receive antenna) pair in the
//! simulation — AP→client links form the beamforming matrix `H`, and
//! AP→AP links are the lead→slave reference channels (`h_lead_i`, §5.1c)
//! that JMB's distributed phase synchronisation is built on.

use crate::multipath::{Multipath, MultipathSpec};
use crate::pathloss::PathLossModel;
use crate::topology::Position;
use jmb_dsp::rng::JmbRng;
use jmb_dsp::stats::db_to_lin;
use jmb_dsp::Complex64;
use jmb_phy::params::OfdmParams;

/// Speed of light, m/s.
pub const C: f64 = 299_792_458.0;

/// One directional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Complex large-scale gain: amplitude from path loss, phase from the
    /// carrier rotation over the propagation delay (`e^{−j2πf_c·τ}`).
    pub gain: Complex64,
    /// Propagation delay in seconds.
    pub delay_s: f64,
    /// Small-scale fading (unit average power).
    pub fading: Multipath,
}

impl Link {
    /// Creates a link with explicit parameters.
    pub fn new(gain: Complex64, delay_s: f64, fading: Multipath) -> Self {
        Link {
            gain,
            delay_s,
            fading,
        }
    }

    /// An ideal unit link (no loss, no delay, flat channel) for tests.
    pub fn ideal() -> Self {
        Link {
            gain: Complex64::ONE,
            delay_s: 0.0,
            fading: Multipath::identity(),
        }
    }

    /// Builds a link from room geometry: distance → delay + path loss +
    /// carrier phase; fading drawn from `spec`.
    pub fn from_geometry(
        tx: Position,
        rx: Position,
        carrier_freq: f64,
        plm: &PathLossModel,
        spec: MultipathSpec,
        rng: &mut JmbRng,
    ) -> Self {
        let d = tx.distance(&rx);
        let delay_s = d / C;
        let loss_db = plm.sample_loss_db(d, rng);
        let amp = db_to_lin(-loss_db).sqrt();
        let carrier_phase = -2.0 * std::f64::consts::PI * carrier_freq * delay_s;
        Link {
            gain: Complex64::from_polar(amp, jmb_dsp::complex::wrap_phase(carrier_phase)),
            delay_s,
            fading: Multipath::new(spec, rng),
        }
    }

    /// Rescales the amplitude so the *expected* per-subcarrier SNR equals
    /// `snr_db` against noise of variance `noise_var` per frequency bin.
    ///
    /// This is the calibration used to place clients in the paper's SNR
    /// bands (§11): the fading has unit average power, so
    /// `E[|H_k|²]/noise_var = |gain|²/noise_var`.
    pub fn calibrate_snr(&mut self, snr_db: f64, noise_var: f64) {
        let target_amp = (db_to_lin(snr_db) * noise_var).sqrt();
        let phase = self.gain.arg();
        self.gain = Complex64::from_polar(target_amp, phase);
    }

    /// Expected per-subcarrier SNR in dB against `noise_var` per bin.
    pub fn expected_snr_db(&self, noise_var: f64) -> f64 {
        jmb_dsp::stats::lin_to_db(self.gain.norm_sqr() / noise_var)
    }

    /// Full frequency response at every occupied subcarrier: large-scale
    /// gain × fading × delay-induced linear phase.
    pub fn freq_response(&self, params: &OfdmParams) -> Vec<Complex64> {
        let spacing = params.subcarrier_spacing();
        params
            .occupied_subcarriers()
            .iter()
            .map(|&k| self.freq_response_at(k as f64 * spacing))
            .collect()
    }

    /// Frequency response at one baseband frequency (Hz).
    pub fn freq_response_at(&self, freq_hz: f64) -> Complex64 {
        let delay_rot = Complex64::cis(-2.0 * std::f64::consts::PI * freq_hz * self.delay_s);
        self.gain * self.fading.freq_response_at(freq_hz) * delay_rot
    }

    /// Advances the fading process by `dt` seconds.
    pub fn evolve(&mut self, dt: f64, rng: &mut JmbRng) {
        self.fading.evolve(dt, rng);
    }

    /// Propagation delay in (possibly fractional) samples.
    pub fn delay_samples(&self, params: &OfdmParams) -> f64 {
        self.delay_s * params.sample_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Position;
    use jmb_dsp::rng::rng_from_seed;

    #[test]
    fn ideal_link_is_unity() {
        let l = Link::ideal();
        let p = OfdmParams::default();
        for h in l.freq_response(&p) {
            assert!((h - Complex64::ONE).abs() < 1e-12);
        }
        assert_eq!(l.delay_samples(&p), 0.0);
    }

    #[test]
    fn geometry_sets_delay() {
        let mut rng = rng_from_seed(1);
        let l = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(15.0, 0.0),
            2.437e9,
            &PathLossModel::indoor_2_4ghz(),
            MultipathSpec::flat(),
            &mut rng,
        );
        // 15 m ≈ 50 ns ≈ 0.5 samples at 10 MHz.
        assert!((l.delay_s - 15.0 / C).abs() < 1e-15);
        let p = OfdmParams::default();
        assert!((l.delay_samples(&p) - 15.0 / C * 10e6).abs() < 1e-9);
    }

    #[test]
    fn farther_is_weaker_on_average() {
        let mut rng = rng_from_seed(2);
        let plm = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..PathLossModel::indoor_2_4ghz()
        };
        let near = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(2.0, 0.0),
            2.437e9,
            &plm,
            MultipathSpec::flat(),
            &mut rng,
        );
        let far = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(12.0, 0.0),
            2.437e9,
            &plm,
            MultipathSpec::flat(),
            &mut rng,
        );
        assert!(near.gain.abs() > far.gain.abs());
    }

    #[test]
    fn calibrate_snr_hits_target() {
        let mut l = Link::ideal();
        l.calibrate_snr(15.0, 1e-3);
        assert!((l.expected_snr_db(1e-3) - 15.0).abs() < 1e-9);
        // Phase untouched by calibration.
        assert!((l.gain.arg()).abs() < 1e-12);
    }

    #[test]
    fn delay_produces_phase_slope() {
        let mut l = Link::ideal();
        l.delay_s = 100e-9; // 100 ns
        let p = OfdmParams::default();
        let resp = l.freq_response(&p);
        let subs = p.occupied_subcarriers();
        // Phase difference between adjacent occupied subcarriers ≈
        // −2π·Δf·τ.
        let expected = -2.0 * std::f64::consts::PI * p.subcarrier_spacing() * 100e-9;
        for i in 0..subs.len() - 1 {
            if subs[i + 1] - subs[i] != 1 {
                continue; // skip the DC gap
            }
            let dphi = (resp[i + 1] * resp[i].conj()).arg();
            assert!((dphi - expected).abs() < 1e-9, "at {}", subs[i]);
        }
    }

    #[test]
    fn carrier_phase_rotates_with_distance() {
        // Two links that differ by a quarter carrier wavelength must differ
        // in phase by ~π/2 — the effect joint beamforming must measure and
        // invert (it cannot be ignored even for tiny delay differences).
        let fc = 2.437e9;
        let lambda = C / fc;
        let plm = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..PathLossModel::indoor_2_4ghz()
        };
        let mut rng = rng_from_seed(3);
        let a = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(5.0, 0.0),
            fc,
            &plm,
            MultipathSpec::flat(),
            &mut rng,
        );
        let b = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(5.0 + lambda / 4.0, 0.0),
            fc,
            &plm,
            MultipathSpec::flat(),
            &mut rng,
        );
        let dphi = jmb_dsp::complex::wrap_phase(b.gain.arg() - a.gain.arg());
        assert!(
            (dphi + std::f64::consts::FRAC_PI_2).abs() < 0.01,
            "Δφ {dphi}"
        );
    }

    #[test]
    fn evolve_changes_fading_not_gain() {
        let mut rng = rng_from_seed(4);
        let mut l = Link::from_geometry(
            Position::new(0.0, 0.0),
            Position::new(8.0, 3.0),
            2.437e9,
            &PathLossModel::indoor_2_4ghz(),
            MultipathSpec::indoor_nlos(),
            &mut rng,
        );
        let g0 = l.gain;
        let h0 = l.fading.freq_response_at(1e6);
        l.evolve(10.0, &mut rng);
        assert_eq!(l.gain, g0);
        assert!((l.fading.freq_response_at(1e6) - h0).abs() > 1e-6);
    }

    #[test]
    fn freq_response_composition() {
        let mut rng = rng_from_seed(5);
        let l = Link::from_geometry(
            Position::new(1.0, 1.0),
            Position::new(9.0, 7.0),
            2.437e9,
            &PathLossModel::indoor_2_4ghz(),
            MultipathSpec::indoor_nlos(),
            &mut rng,
        );
        let f = 2e6;
        let manual = l.gain
            * l.fading.freq_response_at(f)
            * Complex64::cis(-2.0 * std::f64::consts::PI * f * l.delay_s);
        assert!((l.freq_response_at(f) - manual).abs() < 1e-15);
    }
}
