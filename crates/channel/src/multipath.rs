//! Tapped-delay-line multipath fading.
//!
//! Indoor channels ("line-of-sight and non line-of-sight paths due to
//! obstacles such as pillars, furniture, ledges etc.", §10c) are modelled as
//! a handful of discrete taps with an exponential power-delay profile.
//! Rayleigh taps by default; a Rician line-of-sight component can be added
//! for near-AP clients.
//!
//! Time variation follows a first-order Gauss–Markov process parameterised by
//! the channel coherence time — "several hundreds of milliseconds in typical
//! indoor scenarios" (§5). This is the clock against which JMB amortises one
//! channel measurement over many data transmissions.

use jmb_dsp::rng::{complex_gaussian, JmbRng};
use jmb_dsp::Complex64;
use jmb_phy::params::OfdmParams;

/// Static description of a multipath profile.
#[derive(Debug, Clone, Copy)]
pub struct MultipathSpec {
    /// Number of taps.
    pub n_taps: usize,
    /// Tap spacing in seconds.
    pub tap_spacing_s: f64,
    /// RMS delay spread of the exponential power-delay profile, seconds.
    pub rms_delay_spread_s: f64,
    /// Rician K-factor in dB for the first tap; `None` = pure Rayleigh.
    pub rician_k_db: Option<f64>,
    /// Channel coherence time in seconds (Gauss–Markov correlation constant).
    pub coherence_time_s: f64,
}

impl MultipathSpec {
    /// Typical conference-room NLOS profile: 50 ns RMS spread, 6 taps at
    /// 50 ns spacing, 300 ms coherence.
    pub fn indoor_nlos() -> Self {
        MultipathSpec {
            n_taps: 6,
            tap_spacing_s: 50e-9,
            rms_delay_spread_s: 50e-9,
            rician_k_db: None,
            coherence_time_s: 0.3,
        }
    }

    /// Line-of-sight variant with a 6 dB Rician first tap.
    pub fn indoor_los() -> Self {
        MultipathSpec {
            rician_k_db: Some(6.0),
            ..Self::indoor_nlos()
        }
    }

    /// A single-tap (frequency-flat) unit channel for calibration tests.
    pub fn flat() -> Self {
        MultipathSpec {
            n_taps: 1,
            tap_spacing_s: 0.0,
            rms_delay_spread_s: 1e-12,
            rician_k_db: None,
            coherence_time_s: f64::INFINITY,
        }
    }

    /// Normalised per-tap powers (sum to 1).
    pub fn tap_powers(&self) -> Vec<f64> {
        let mut p: Vec<f64> = (0..self.n_taps)
            .map(|l| (-(l as f64) * self.tap_spacing_s / self.rms_delay_spread_s).exp())
            .collect();
        let total: f64 = p.iter().sum();
        for x in p.iter_mut() {
            *x /= total;
        }
        p
    }
}

/// One realised multipath channel.
///
/// Taps are `(delay_seconds, complex_gain)` with `E[Σ|gain|²] = 1`; large-
/// scale gain (path loss) is applied by [`crate::link::Link`], not here.
#[derive(Debug, Clone)]
pub struct Multipath {
    spec: MultipathSpec,
    /// Per-tap mean (LOS) components.
    los: Vec<Complex64>,
    /// Per-tap scattered-power variances.
    scatter_var: Vec<f64>,
    /// Current tap gains.
    taps: Vec<Complex64>,
}

impl Multipath {
    /// Draws a channel realisation.
    pub fn new(spec: MultipathSpec, rng: &mut JmbRng) -> Self {
        let powers = spec.tap_powers();
        let mut los = vec![Complex64::ZERO; spec.n_taps];
        let mut scatter_var = powers.clone();
        if let Some(k_db) = spec.rician_k_db {
            // Split the first tap's power between a fixed LOS phasor and
            // scattered power: P_los/P_scatter = K.
            let k = jmb_dsp::stats::db_to_lin(k_db);
            let p0 = powers[0];
            let p_los = p0 * k / (1.0 + k);
            let p_sc = p0 / (1.0 + k);
            los[0] = Complex64::from_polar(p_los.sqrt(), jmb_dsp::rng::random_phase(rng));
            scatter_var[0] = p_sc;
        }
        let taps = (0..spec.n_taps)
            .map(|l| los[l] + complex_gaussian(rng, scatter_var[l]))
            .collect();
        Multipath {
            spec,
            los,
            scatter_var,
            taps,
        }
    }

    /// A perfect unit channel (single tap, gain 1).
    pub fn identity() -> Self {
        Multipath {
            spec: MultipathSpec::flat(),
            los: vec![Complex64::ONE],
            scatter_var: vec![0.0],
            taps: vec![Complex64::ONE],
        }
    }

    /// The profile this channel was drawn from.
    pub fn spec(&self) -> &MultipathSpec {
        &self.spec
    }

    /// Current taps as `(delay_seconds, gain)` pairs.
    pub fn taps(&self) -> Vec<(f64, Complex64)> {
        self.taps
            .iter()
            .enumerate()
            .map(|(l, &g)| (l as f64 * self.spec.tap_spacing_s, g))
            .collect()
    }

    /// Evolves the channel forward by `dt` seconds (Gauss–Markov):
    /// `h ← ρ·(h−μ) + √(1−ρ²)·CN(0,σ²) + μ` with `ρ = exp(−dt/T_c)`.
    pub fn evolve(&mut self, dt: f64, rng: &mut JmbRng) {
        if !dt.is_finite() || dt <= 0.0 || self.spec.coherence_time_s.is_infinite() {
            return;
        }
        let rho = (-dt / self.spec.coherence_time_s).exp();
        let inno = (1.0 - rho * rho).max(0.0);
        for l in 0..self.taps.len() {
            let centered = self.taps[l] - self.los[l];
            self.taps[l] = self.los[l]
                + centered.scale(rho)
                + complex_gaussian(rng, self.scatter_var[l] * inno);
        }
    }

    /// Frequency response at each occupied subcarrier of `params`:
    /// `H(k) = Σ_l g_l · e^{−j2π f_k τ_l}` with `f_k = k·Δf`.
    pub fn freq_response(&self, params: &OfdmParams) -> Vec<Complex64> {
        let spacing = params.subcarrier_spacing();
        params
            .occupied_subcarriers()
            .iter()
            .map(|&k| self.freq_response_at(k as f64 * spacing))
            .collect()
    }

    /// Frequency response at a single baseband frequency offset (Hz).
    pub fn freq_response_at(&self, freq_hz: f64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (l, &g) in self.taps.iter().enumerate() {
            let tau = l as f64 * self.spec.tap_spacing_s;
            acc += g * Complex64::cis(-2.0 * std::f64::consts::PI * freq_hz * tau);
        }
        acc
    }

    /// Total instantaneous power `Σ|g_l|²`.
    pub fn power(&self) -> f64 {
        self.taps.iter().map(|g| g.norm_sqr()).sum()
    }

    /// Maximum tap delay in seconds.
    pub fn max_delay_s(&self) -> f64 {
        (self.spec.n_taps.saturating_sub(1)) as f64 * self.spec.tap_spacing_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::rng_from_seed;

    #[test]
    fn tap_powers_normalised_and_decaying() {
        let spec = MultipathSpec::indoor_nlos();
        let p = spec.tap_powers();
        assert_eq!(p.len(), 6);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for w in p.windows(2) {
            assert!(w[0] > w[1], "PDP must decay");
        }
    }

    #[test]
    fn average_power_is_unity() {
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += Multipath::new(MultipathSpec::indoor_nlos(), &mut rng).power();
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean power {mean}");
    }

    #[test]
    fn rician_average_power_is_unity_too() {
        let mut rng = rng_from_seed(2);
        let n = 20_000;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += Multipath::new(MultipathSpec::indoor_los(), &mut rng).power();
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean power {mean}");
    }

    #[test]
    fn rician_first_tap_less_variable() {
        let mut rng = rng_from_seed(3);
        let n = 5_000;
        let var_of = |spec: MultipathSpec, rng: &mut JmbRng| {
            let mut w = jmb_dsp::stats::Welford::new();
            for _ in 0..n {
                let ch = Multipath::new(spec, rng);
                w.push(ch.taps()[0].1.norm_sqr());
            }
            w.variance() / (w.mean() * w.mean())
        };
        let v_ray = var_of(MultipathSpec::indoor_nlos(), &mut rng);
        let v_rice = var_of(MultipathSpec::indoor_los(), &mut rng);
        assert!(
            v_rice < v_ray * 0.7,
            "rician var {v_rice} not below rayleigh {v_ray}"
        );
    }

    #[test]
    fn identity_channel_is_flat() {
        let ch = Multipath::identity();
        let params = OfdmParams::default();
        for h in ch.freq_response(&params) {
            assert!((h - Complex64::ONE).abs() < 1e-12);
        }
        assert_eq!(ch.power(), 1.0);
    }

    #[test]
    fn freq_response_matches_taps_dft() {
        let mut rng = rng_from_seed(4);
        let ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
        let params = OfdmParams::default();
        let resp = ch.freq_response(&params);
        assert_eq!(resp.len(), 52);
        // Single frequency cross-check.
        let k = 7.0 * params.subcarrier_spacing();
        let direct = ch.freq_response_at(k);
        let mut manual = Complex64::ZERO;
        for (tau, g) in ch.taps() {
            manual += g * Complex64::cis(-2.0 * std::f64::consts::PI * k * tau);
        }
        assert!((direct - manual).abs() < 1e-12);
    }

    #[test]
    fn evolution_preserves_statistics() {
        let mut rng = rng_from_seed(5);
        let mut acc = 0.0;
        let n = 3000;
        for _ in 0..n {
            let mut ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
            for _ in 0..20 {
                ch.evolve(0.05, &mut rng);
            }
            acc += ch.power();
        }
        let mean = acc / n as f64;
        assert!(
            (mean - 1.0).abs() < 0.05,
            "mean power after evolution {mean}"
        );
    }

    #[test]
    fn short_dt_barely_changes_channel() {
        // Within a coherence time the channel is essentially static — the
        // property that lets JMB reuse one measurement for many packets (§5).
        let mut rng = rng_from_seed(6);
        let mut ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
        let before = ch.freq_response_at(1e6);
        ch.evolve(1e-4, &mut rng); // 0.1 ms ≪ 300 ms coherence
        let after = ch.freq_response_at(1e6);
        assert!(
            (before - after).abs() < 0.1 * before.abs().max(0.1),
            "0.1 ms changed channel too much: {before} → {after}"
        );
    }

    #[test]
    fn long_dt_decorrelates() {
        let mut rng = rng_from_seed(7);
        let n = 2000;
        let mut corr_acc = Complex64::ZERO;
        let mut pow_acc = 0.0;
        for _ in 0..n {
            let mut ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
            let before = ch.taps()[0].1;
            ch.evolve(3.0, &mut rng); // 10 coherence times
            let after = ch.taps()[0].1;
            corr_acc += before.conj() * after;
            pow_acc += before.norm_sqr();
        }
        let corr = corr_acc.abs() / pow_acc;
        assert!(corr < 0.1, "correlation {corr} after 10 Tc");
    }

    #[test]
    fn evolve_noop_cases() {
        let mut rng = rng_from_seed(8);
        let mut ch = Multipath::identity();
        let before = ch.taps()[0].1;
        ch.evolve(10.0, &mut rng); // infinite coherence: no change
        ch.evolve(-1.0, &mut rng);
        ch.evolve(0.0, &mut rng);
        assert_eq!(ch.taps()[0].1, before);
    }

    #[test]
    fn max_delay_within_cyclic_prefix() {
        // The paper's design constraint (§5.2 fn. 3): delay spread well
        // inside the CP (1.6 µs at 10 MHz).
        let ch = Multipath {
            spec: MultipathSpec::indoor_nlos(),
            los: vec![Complex64::ZERO; 6],
            scatter_var: vec![0.0; 6],
            taps: vec![Complex64::ZERO; 6],
        };
        assert!(ch.max_delay_s() < 1.6e-6);
    }
}
