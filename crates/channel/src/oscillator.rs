//! Free-running oscillator models.
//!
//! "The transmitters have independent oscillators, which are bound to have
//! differences in their carrier frequencies. […] the drift between their
//! oscillators will make the signals rotate at different speeds relative to
//! each other, causing the phases to diverge and hence preventing
//! beamforming." (§1)
//!
//! This module is the software stand-in for the USRP2's crystal: each device
//! draws a ppm offset within a tolerance (802.11 mandates ±20 ppm), its
//! sampling clock is locked to the *same* crystal (so CFO and SFO are
//! proportional, as on real hardware), and its phase accumulates Wiener
//! phase noise plus a slow random-walk drift of the offset itself.
//!
//! The numbers in §1 fall straight out of this model: a 10 Hz error in a
//! CFO estimate grows to `2π·10·5.5e-3 ≈ 0.35 rad` (20°) in 5.5 ms.

use jmb_dsp::rng::{normal, JmbRng};
use rand::Rng;

/// Static description of an oscillator population.
#[derive(Debug, Clone, Copy)]
pub struct OscillatorSpec {
    /// Maximum |offset| in ppm; each device draws uniformly in ±this.
    /// 802.11 tolerance is 20 ppm; decent TCXOs (like the USRP2's) are ~2.5.
    pub tolerance_ppm: f64,
    /// Lorentzian phase-noise linewidth in Hz (Wiener phase variance grows
    /// as `2π·linewidth·Δt`). ~1 Hz is a reasonable integrated figure for a
    /// multiplied crystal at 2.4 GHz.
    pub phase_noise_linewidth_hz: f64,
    /// Standard deviation of the offset's random walk in Hz/√s — models slow
    /// thermal drift. ("CFOs do not change significantly over time", §5.3,
    /// so this is small but nonzero.)
    pub drift_hz_per_sqrt_s: f64,
}

impl OscillatorSpec {
    /// A USRP2-class TCXO (the paper's hardware): ±2.5 ppm. The effective
    /// linewidth (0.05 Hz) corresponds to ~1° of integrated phase wander
    /// over a millisecond — TCXO-grade close-in phase noise at 2.4 GHz.
    pub fn usrp2() -> Self {
        OscillatorSpec {
            tolerance_ppm: 2.5,
            phase_noise_linewidth_hz: 0.05,
            drift_hz_per_sqrt_s: 2.0,
        }
    }

    /// A worst-case 802.11-compliant crystal: ±20 ppm, noisier close-in.
    pub fn wifi_worst_case() -> Self {
        OscillatorSpec {
            tolerance_ppm: 20.0,
            phase_noise_linewidth_hz: 0.2,
            drift_hz_per_sqrt_s: 5.0,
        }
    }

    /// An ideal oscillator (zero offset, zero noise) for calibration tests.
    pub fn ideal() -> Self {
        OscillatorSpec {
            tolerance_ppm: 0.0,
            phase_noise_linewidth_hz: 0.0,
            drift_hz_per_sqrt_s: 0.0,
        }
    }
}

/// One device's oscillator state.
///
/// Time is the *simulation's* global time in seconds; the oscillator answers
/// "what is your accumulated carrier phase error at global time t". Queries
/// must be non-decreasing in `t` (the state random-walks forward).
#[derive(Debug, Clone)]
pub struct Oscillator {
    carrier_freq: f64,
    /// Current carrier offset from nominal, Hz.
    offset_hz: f64,
    /// Initial offset (kept for reporting).
    initial_offset_hz: f64,
    spec: OscillatorSpec,
    /// Last query time.
    t_last: f64,
    /// Accumulated phase error (rad) at `t_last`, beyond nominal.
    phase: f64,
    /// Per-device RNG for phase noise and drift.
    rng: JmbRng,
}

impl Oscillator {
    /// Draws a new oscillator for a device.
    ///
    /// `carrier_freq` is the nominal RF carrier (used to tie SFO to CFO).
    pub fn new(spec: OscillatorSpec, carrier_freq: f64, rng: &mut JmbRng) -> Self {
        let ppm = if spec.tolerance_ppm > 0.0 {
            (rng.gen::<f64>() * 2.0 - 1.0) * spec.tolerance_ppm
        } else {
            0.0
        };
        let offset_hz = ppm * 1e-6 * carrier_freq;
        let child = jmb_dsp::rng::derive_rng(rng.gen(), 0x05C1);
        Oscillator {
            carrier_freq,
            offset_hz,
            initial_offset_hz: offset_hz,
            spec,
            t_last: 0.0,
            phase: 0.0,
            rng: child,
        }
    }

    /// An exact, noiseless oscillator at a given offset — for unit tests and
    /// analytic cross-checks.
    pub fn fixed(carrier_freq: f64, offset_hz: f64) -> Self {
        Oscillator {
            carrier_freq,
            offset_hz,
            initial_offset_hz: offset_hz,
            spec: OscillatorSpec::ideal(),
            t_last: 0.0,
            phase: 0.0,
            rng: jmb_dsp::rng::rng_from_seed(0),
        }
    }

    /// Current carrier-frequency offset in Hz.
    pub fn cfo_hz(&self) -> f64 {
        self.offset_hz
    }

    /// Offset the device started with, in Hz.
    pub fn initial_cfo_hz(&self) -> f64 {
        self.initial_offset_hz
    }

    /// Current offset in ppm of the carrier.
    pub fn ppm(&self) -> f64 {
        self.offset_hz / self.carrier_freq * 1e6
    }

    /// Sampling-clock ratio relative to nominal: the DAC/ADC runs at
    /// `nominal_rate · sample_ratio()`. Locked to the same crystal, so
    /// equal to `1 + ppm·1e-6`.
    pub fn sample_ratio(&self) -> f64 {
        1.0 + self.offset_hz / self.carrier_freq
    }

    /// Advances the oscillator to global time `t` and returns the
    /// accumulated carrier phase error (radians, unwrapped).
    ///
    /// # Panics
    ///
    /// Panics if `t` moves backwards.
    pub fn phase_at(&mut self, t: f64) -> f64 {
        assert!(
            t >= self.t_last - 1e-15,
            "oscillator time must be monotonic: {t} < {}",
            self.t_last
        );
        let dt = (t - self.t_last).max(0.0);
        if dt > 0.0 {
            // Deterministic rotation at the current offset…
            self.phase += 2.0 * std::f64::consts::PI * self.offset_hz * dt;
            // …Wiener phase noise…
            if self.spec.phase_noise_linewidth_hz > 0.0 {
                let sigma =
                    (2.0 * std::f64::consts::PI * self.spec.phase_noise_linewidth_hz * dt).sqrt();
                self.phase += normal(&mut self.rng, sigma);
            }
            // …and slow drift of the offset itself.
            if self.spec.drift_hz_per_sqrt_s > 0.0 {
                self.offset_hz += normal(&mut self.rng, self.spec.drift_hz_per_sqrt_s * dt.sqrt());
            }
            self.t_last = t;
        }
        self.phase
    }

    /// The unit phasor `e^{jφ(t)}` at global time `t` (advances state).
    pub fn phasor_at(&mut self, t: f64) -> jmb_dsp::Complex64 {
        jmb_dsp::Complex64::cis(self.phase_at(t))
    }

    /// Nominal carrier frequency this oscillator multiplies up to.
    pub fn carrier_freq(&self) -> f64 {
        self.carrier_freq
    }
}

/// A *random-access* oscillator phase trajectory.
///
/// [`Oscillator`] only answers monotonic time queries, which is fine for a
/// single observer. The radio medium, however, evaluates a node's phase on
/// many interleaved timelines (one per link), so it needs `phase_at(t)` for
/// arbitrary `t` — returning the *same* answer for the same `t` every time.
///
/// `PhaseTrajectory` achieves that by materialising the stochastic part of
/// the phase (Wiener phase noise + offset random walk) on a lazy fixed grid:
/// queries extend the grid deterministically from a private RNG, then
/// interpolate. Two queries of the same instant always agree.
#[derive(Debug, Clone)]
pub struct PhaseTrajectory {
    carrier_freq: f64,
    spec: OscillatorSpec,
    /// Grid spacing, seconds.
    grid_dt: f64,
    /// Current frequency offset at each grid point, Hz.
    freq: Vec<f64>,
    /// Cumulative phase error at each grid point, radians.
    cum_phase: Vec<f64>,
    /// Wiener increment *within* each grid interval (applied linearly).
    dw: Vec<f64>,
    rng: JmbRng,
}

impl PhaseTrajectory {
    /// Grid spacing used to materialise the stochastic phase (10 µs — far
    /// finer than any phase dynamics JMB cares about).
    pub const GRID_DT: f64 = 10e-6;

    /// Draws a trajectory: offset uniform in ±tolerance, noise per `spec`.
    pub fn new(spec: OscillatorSpec, carrier_freq: f64, rng: &mut JmbRng) -> Self {
        let ppm = if spec.tolerance_ppm > 0.0 {
            (rng.gen::<f64>() * 2.0 - 1.0) * spec.tolerance_ppm
        } else {
            0.0
        };
        Self::with_offset(spec, carrier_freq, ppm * 1e-6 * carrier_freq, rng.gen())
    }

    /// Creates a trajectory with an explicit initial offset (Hz).
    pub fn with_offset(spec: OscillatorSpec, carrier_freq: f64, offset_hz: f64, seed: u64) -> Self {
        PhaseTrajectory {
            carrier_freq,
            spec,
            grid_dt: Self::GRID_DT,
            freq: vec![offset_hz],
            cum_phase: vec![0.0],
            dw: Vec::new(),
            rng: jmb_dsp::rng::derive_rng(seed, 0x7247),
        }
    }

    /// A perfectly clean trajectory at a fixed offset (for tests).
    pub fn fixed(carrier_freq: f64, offset_hz: f64) -> Self {
        Self::with_offset(OscillatorSpec::ideal(), carrier_freq, offset_hz, 0)
    }

    /// Initial frequency offset in Hz.
    pub fn initial_cfo_hz(&self) -> f64 {
        self.freq[0]
    }

    /// Frequency offset at time `t` in Hz (includes the drift random walk).
    pub fn cfo_hz_at(&mut self, t: f64) -> f64 {
        let idx = self.grid_index(t);
        self.freq[idx]
    }

    /// Sampling-clock ratio (ADC/DAC rate over nominal): locked to the same
    /// crystal, so `1 + initial offset / carrier`.
    pub fn sample_ratio(&self) -> f64 {
        1.0 + self.freq[0] / self.carrier_freq
    }

    /// Accumulated carrier phase error at global time `t` (radians,
    /// unwrapped). Random access; repeatable.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite.
    pub fn phase_at(&mut self, t: f64) -> f64 {
        assert!(t.is_finite() && t >= 0.0, "bad trajectory time {t}");
        let idx = self.grid_index(t);
        let t_i = idx as f64 * self.grid_dt;
        let frac = (t - t_i) / self.grid_dt;
        let dw_next = if idx < self.dw.len() {
            self.dw[idx]
        } else {
            0.0
        };
        self.cum_phase[idx]
            + 2.0 * std::f64::consts::PI * self.freq[idx] * (t - t_i)
            + dw_next * frac
    }

    /// Phasor `e^{jφ(t)}`.
    pub fn phasor_at(&mut self, t: f64) -> jmb_dsp::Complex64 {
        jmb_dsp::Complex64::cis(self.phase_at(t))
    }

    /// Extends the grid to cover `t` and returns its interval index.
    fn grid_index(&mut self, t: f64) -> usize {
        let idx = (t / self.grid_dt).floor() as usize;
        while self.freq.len() <= idx + 1 {
            let i = self.freq.len() - 1;
            let f_i = self.freq[i];
            // Wiener increment over this interval.
            let dw = if self.spec.phase_noise_linewidth_hz > 0.0 {
                normal(
                    &mut self.rng,
                    (2.0 * std::f64::consts::PI
                        * self.spec.phase_noise_linewidth_hz
                        * self.grid_dt)
                        .sqrt(),
                )
            } else {
                0.0
            };
            self.dw.push(dw);
            self.cum_phase
                .push(self.cum_phase[i] + 2.0 * std::f64::consts::PI * f_i * self.grid_dt + dw);
            // Offset random walk.
            let f_next = if self.spec.drift_hz_per_sqrt_s > 0.0 {
                f_i + normal(
                    &mut self.rng,
                    self.spec.drift_hz_per_sqrt_s * self.grid_dt.sqrt(),
                )
            } else {
                f_i
            };
            self.freq.push(f_next);
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::rng_from_seed;

    const FC: f64 = 2.437e9;

    #[test]
    fn ppm_draw_within_tolerance() {
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let o = Oscillator::new(OscillatorSpec::usrp2(), FC, &mut rng);
            assert!(o.ppm().abs() <= 2.5, "ppm {}", o.ppm());
            assert!(o.cfo_hz().abs() <= 2.5e-6 * FC + 1e-6);
        }
    }

    #[test]
    fn draws_are_diverse() {
        let mut rng = rng_from_seed(2);
        let a = Oscillator::new(OscillatorSpec::usrp2(), FC, &mut rng);
        let b = Oscillator::new(OscillatorSpec::usrp2(), FC, &mut rng);
        assert_ne!(a.cfo_hz(), b.cfo_hz());
    }

    #[test]
    fn fixed_oscillator_phase_is_linear() {
        let mut o = Oscillator::fixed(FC, 100.0);
        let p1 = o.phase_at(1e-3);
        let p2 = o.phase_at(2e-3);
        let expected = 2.0 * std::f64::consts::PI * 100.0 * 1e-3;
        assert!((p1 - expected).abs() < 1e-12);
        assert!((p2 - 2.0 * expected).abs() < 1e-12);
    }

    #[test]
    fn paper_numbers_ten_hz_error() {
        // §1: a 10 Hz frequency error accumulates 0.35 rad (20°) in 5.5 ms.
        let mut o = Oscillator::fixed(FC, 10.0);
        let phase = o.phase_at(5.5e-3);
        assert!((phase - 0.3456).abs() < 1e-3, "phase {phase}");
    }

    #[test]
    fn paper_numbers_hundred_hz_error() {
        // §5.2: a 100 Hz error in the initial frequency-offset estimate
        // accumulates a beamforming-fatal phase error (≥ π rad) within 20 ms.
        let mut o = Oscillator::fixed(FC, 100.0);
        let phase = o.phase_at(20e-3);
        assert!(phase > std::f64::consts::PI, "phase {phase}");
    }

    #[test]
    fn sample_ratio_tracks_ppm() {
        let o = Oscillator::fixed(FC, 2.437e9 * 5e-6); // +5 ppm
        assert!((o.sample_ratio() - 1.000005).abs() < 1e-12);
        assert!((o.ppm() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn phase_noise_grows_with_time() {
        // Variance of the Wiener process after T should be ≈ 2π·β·T.
        let spec = OscillatorSpec {
            tolerance_ppm: 0.0,
            phase_noise_linewidth_hz: 1.0,
            drift_hz_per_sqrt_s: 0.0,
        };
        let mut rng = rng_from_seed(3);
        let t = 0.1;
        let n = 2000;
        let mut acc = 0.0;
        for _ in 0..n {
            let mut o = Oscillator::new(spec, FC, &mut rng);
            let p = o.phase_at(t);
            acc += p * p;
        }
        let var = acc / n as f64;
        let expected = 2.0 * std::f64::consts::PI * 1.0 * t;
        assert!(
            (var / expected - 1.0).abs() < 0.15,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn drift_changes_offset_slowly() {
        let spec = OscillatorSpec {
            tolerance_ppm: 1.0,
            phase_noise_linewidth_hz: 0.0,
            drift_hz_per_sqrt_s: 2.0,
        };
        let mut rng = rng_from_seed(4);
        let mut o = Oscillator::new(spec, FC, &mut rng);
        let f0 = o.cfo_hz();
        o.phase_at(1.0);
        let f1 = o.cfo_hz();
        assert_ne!(f0, f1);
        assert!((f1 - f0).abs() < 20.0, "drift too fast: {} Hz", f1 - f0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn rejects_time_reversal() {
        let mut o = Oscillator::fixed(FC, 0.0);
        o.phase_at(1.0);
        o.phase_at(0.5);
    }

    #[test]
    fn phasor_is_unit() {
        let mut rng = rng_from_seed(5);
        let mut o = Oscillator::new(OscillatorSpec::wifi_worst_case(), FC, &mut rng);
        for i in 1..10 {
            let z = o.phasor_at(i as f64 * 1e-3);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trajectory_random_access_consistent() {
        let mut rng = rng_from_seed(10);
        let mut t1 = PhaseTrajectory::new(OscillatorSpec::usrp2(), FC, &mut rng);
        let a = t1.phase_at(3.7e-3);
        let _ = t1.phase_at(9.1e-3);
        let b = t1.phase_at(3.7e-3); // earlier time, again
        assert_eq!(a, b, "random access must be repeatable");
    }

    #[test]
    fn trajectory_fixed_is_linear() {
        let mut t = PhaseTrajectory::fixed(FC, 250.0);
        for &tt in &[0.0, 1e-4, 5e-3, 0.2] {
            let expected = 2.0 * std::f64::consts::PI * 250.0 * tt;
            assert!((t.phase_at(tt) - expected).abs() < 1e-9, "at {tt}");
        }
        assert_eq!(t.cfo_hz_at(0.1), 250.0);
    }

    #[test]
    fn trajectory_continuous_across_grid() {
        let mut rng = rng_from_seed(11);
        let mut t = PhaseTrajectory::new(OscillatorSpec::wifi_worst_case(), FC, &mut rng);
        let g = PhaseTrajectory::GRID_DT;
        // Sample just below and above several grid boundaries.
        for i in 1..20 {
            let t0 = i as f64 * g;
            let below = t.phase_at(t0 - 1e-9);
            let above = t.phase_at(t0 + 1e-9);
            assert!(
                (below - above).abs() < 1e-2,
                "discontinuity at grid point {i}: {below} vs {above}"
            );
        }
    }

    #[test]
    fn trajectory_matches_oscillator_statistics() {
        // The trajectory and the monotonic Oscillator are two views of the
        // same model: for a fixed offset and no noise they agree exactly.
        let mut o = Oscillator::fixed(FC, 1234.0);
        let mut t = PhaseTrajectory::fixed(FC, 1234.0);
        for i in 1..10 {
            let tt = i as f64 * 1e-3;
            assert!((o.phase_at(tt) - t.phase_at(tt)).abs() < 1e-9);
        }
    }

    #[test]
    fn trajectory_phase_noise_variance() {
        let spec = OscillatorSpec {
            tolerance_ppm: 0.0,
            phase_noise_linewidth_hz: 1.0,
            drift_hz_per_sqrt_s: 0.0,
        };
        let mut rng = rng_from_seed(12);
        let t_query = 0.05;
        let n = 1000;
        let mut acc = 0.0;
        for _ in 0..n {
            let mut t = PhaseTrajectory::new(spec, FC, &mut rng);
            let p = t.phase_at(t_query);
            acc += p * p;
        }
        let var = acc / n as f64;
        let expected = 2.0 * std::f64::consts::PI * t_query;
        assert!(
            (var / expected - 1.0).abs() < 0.2,
            "var {var} vs expected {expected}"
        );
    }

    #[test]
    fn two_oscillators_relative_rotation() {
        // The quantity JMB actually fights: relative phase between lead and
        // slave after time t is 2π·Δf·t.
        let mut lead = Oscillator::fixed(FC, 300.0);
        let mut slave = Oscillator::fixed(FC, -150.0);
        let t = 2e-3;
        let rel = lead.phase_at(t) - slave.phase_at(t);
        let expected = 2.0 * std::f64::consts::PI * 450.0 * t;
        assert!((rel - expected).abs() < 1e-9);
    }
}
