//! Large-scale path loss, shadowing, and link-budget arithmetic.
//!
//! A log-distance model with log-normal shadowing — the standard indoor
//! abstraction (Goldsmith \[9\], which the paper cites for channel behaviour).
//! The experiment harness uses these to turn conference-room geometry into
//! the SNRs that define the paper's low/medium/high bands.

use jmb_dsp::rng::{normal, JmbRng};
use jmb_dsp::stats::db_to_lin;

/// Log-distance path-loss model.
#[derive(Debug, Clone, Copy)]
pub struct PathLossModel {
    /// Path loss at the reference distance (1 m), dB. ≈ 40 dB at 2.4 GHz.
    pub pl0_db: f64,
    /// Path-loss exponent (2 = free space; ~3 indoors with obstructions).
    pub exponent: f64,
    /// Log-normal shadowing standard deviation, dB.
    pub shadowing_sigma_db: f64,
}

impl PathLossModel {
    /// Indoor 2.4 GHz defaults: PL(1 m) = 40 dB, n = 3.0, σ = 4 dB.
    pub fn indoor_2_4ghz() -> Self {
        PathLossModel {
            pl0_db: 40.0,
            exponent: 3.0,
            shadowing_sigma_db: 4.0,
        }
    }

    /// Mean path loss at distance `d` metres (no shadowing), dB.
    pub fn mean_loss_db(&self, d: f64) -> f64 {
        let d = d.max(0.1);
        self.pl0_db + 10.0 * self.exponent * (d / 1.0).log10()
    }

    /// Draws a shadowed path loss at distance `d`, dB.
    pub fn sample_loss_db(&self, d: f64, rng: &mut JmbRng) -> f64 {
        self.mean_loss_db(d) + normal(rng, self.shadowing_sigma_db)
    }

    /// Outdoor-ish inter-cell defaults for a dense urban deployment:
    /// PL(1 m) = 40 dB, n = 3.5, no shadowing (the multi-cell coupling uses
    /// deterministic mean loss so grid sweeps stay byte-reproducible). The
    /// steeper exponent reflects walls/clutter between *cells*, which is
    /// what makes frequency reuse 3/7 pay off at city scale.
    pub fn inter_cell() -> Self {
        PathLossModel {
            pl0_db: 40.0,
            exponent: 3.5,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Mean received-power gain at distance `d` *relative to* a reference
    /// distance `ref_d` (both metres), linear:
    /// `10^((L(ref_d) − L(d))/10)`. This is how a neighbouring cell's signal
    /// — calibrated to a known in-cell SNR at `ref_d` — scales when it
    /// arrives from `d` away: multiply the in-cell linear SNR by this gain
    /// to get the interference-to-noise ratio it contributes.
    pub fn relative_power_gain(&self, d: f64, ref_d: f64) -> f64 {
        db_to_lin(self.mean_loss_db(ref_d) - self.mean_loss_db(d))
    }
}

/// Radio link-budget constants.
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Channel bandwidth, Hz.
    pub bandwidth_hz: f64,
}

impl LinkBudget {
    /// USRP2-class defaults on a 10 MHz channel. Transmit power is kept low
    /// (0 dBm) so that conference-room distances actually span the paper's
    /// 6–25 dB operational SNR range rather than saturating at high SNR.
    pub fn usrp2_10mhz() -> Self {
        LinkBudget {
            tx_power_dbm: 0.0,
            noise_figure_db: 7.0,
            bandwidth_hz: 10e6,
        }
    }

    /// Thermal noise floor in dBm: −174 + 10·log₁₀(BW) + NF.
    pub fn noise_floor_dbm(&self) -> f64 {
        -174.0 + 10.0 * self.bandwidth_hz.log10() + self.noise_figure_db
    }

    /// Received power in dBm through `loss_db` of path loss.
    pub fn rx_power_dbm(&self, loss_db: f64) -> f64 {
        self.tx_power_dbm - loss_db
    }

    /// SNR in dB through `loss_db` of path loss.
    pub fn snr_db(&self, loss_db: f64) -> f64 {
        self.rx_power_dbm(loss_db) - self.noise_floor_dbm()
    }

    /// Linear amplitude gain corresponding to `loss_db` when transmit
    /// amplitude is normalised to 1 and noise power to
    /// `1/db_to_lin(snr target)` — helper for waveform-level simulation
    /// where we work in normalised units: returns `10^(−loss/20)`.
    pub fn amplitude_gain(loss_db: f64) -> f64 {
        db_to_lin(-loss_db).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::rng_from_seed;

    #[test]
    fn free_space_doubling_distance() {
        let m = PathLossModel {
            pl0_db: 40.0,
            exponent: 2.0,
            shadowing_sigma_db: 0.0,
        };
        let a = m.mean_loss_db(1.0);
        let b = m.mean_loss_db(2.0);
        assert!(
            (b - a - 6.02).abs() < 0.01,
            "doubling adds ~6 dB: {}",
            b - a
        );
        assert_eq!(a, 40.0);
    }

    #[test]
    fn indoor_exponent_steeper() {
        let m = PathLossModel::indoor_2_4ghz();
        let delta = m.mean_loss_db(10.0) - m.mean_loss_db(1.0);
        assert!(
            (delta - 30.0).abs() < 1e-9,
            "30 dB per decade at n=3: {delta}"
        );
    }

    #[test]
    fn tiny_distances_clamped() {
        let m = PathLossModel::indoor_2_4ghz();
        assert!(m.mean_loss_db(0.0).is_finite());
        assert_eq!(m.mean_loss_db(0.0), m.mean_loss_db(0.05));
    }

    #[test]
    fn shadowing_statistics() {
        let m = PathLossModel::indoor_2_4ghz();
        let mut rng = rng_from_seed(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample_loss_db(5.0, &mut rng)).collect();
        let mean = jmb_dsp::stats::mean(&samples);
        let sd = jmb_dsp::stats::std_dev(&samples);
        assert!((mean - m.mean_loss_db(5.0)).abs() < 0.1);
        assert!((sd - 4.0).abs() < 0.1, "σ {sd}");
    }

    #[test]
    fn noise_floor_10mhz() {
        let b = LinkBudget::usrp2_10mhz();
        // −174 + 70 + 7 = −97 dBm.
        assert!((b.noise_floor_dbm() + 97.0).abs() < 0.01);
    }

    #[test]
    fn snr_at_conference_room_scale() {
        // A few metres from the AP should be comfortably in the paper's
        // "high SNR" band (>18 dB); ~20 m with obstructions near the low band.
        let m = PathLossModel::indoor_2_4ghz();
        let b = LinkBudget::usrp2_10mhz();
        let near = b.snr_db(m.mean_loss_db(3.0));
        let far = b.snr_db(m.mean_loss_db(25.0));
        assert!(near > 18.0, "near SNR {near}");
        assert!(far < 18.0, "far SNR {far}");
    }

    #[test]
    fn amplitude_gain_squares_to_power() {
        let g = LinkBudget::amplitude_gain(20.0);
        assert!((g * g - 0.01).abs() < 1e-12);
    }

    #[test]
    fn relative_power_gain_follows_the_exponent() {
        let m = PathLossModel::inter_cell();
        // At the reference distance the gain is unity by construction.
        assert!((m.relative_power_gain(10.0, 10.0) - 1.0).abs() < 1e-12);
        // One decade out at n = 3.5: 35 dB down.
        let far = m.relative_power_gain(100.0, 10.0);
        assert!((jmb_dsp::stats::lin_to_db(far) + 35.0).abs() < 1e-9);
        // Closer than the reference: a gain above unity, monotone in d.
        assert!(m.relative_power_gain(5.0, 10.0) > 1.0);
        let a = m.relative_power_gain(30.0, 10.0);
        let b = m.relative_power_gain(60.0, 10.0);
        assert!(a > b && b > 0.0);
    }
}
