//! Conference-room topologies and SNR bands.
//!
//! Reproduces the paper's testbed methodology (Fig. 5, §10c, §11): a dense
//! indoor room with candidate AP locations on ledges around the perimeter
//! and candidate client locations scattered through the floor; "in every
//! run, the APs and clients are assigned randomly to these locations", and
//! runs are bucketed by the clients' effective SNR into low (6–12 dB),
//! medium (12–18 dB) and high (>18 dB) bands.

use jmb_dsp::rng::JmbRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Position {
    /// x coordinate, metres.
    pub x: f64,
    /// y coordinate, metres.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// The paper's three effective-SNR evaluation bands (§11.1c, §11.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnrBand {
    /// 6–12 dB.
    Low,
    /// 12–18 dB.
    Medium,
    /// Above 18 dB (we cap draws at 25 dB, the top of 802.11's
    /// operational range per §11.4).
    High,
}

impl SnrBand {
    /// The band's dB range `(lo, hi)`.
    pub fn range_db(self) -> (f64, f64) {
        match self {
            SnrBand::Low => (6.0, 12.0),
            SnrBand::Medium => (12.0, 18.0),
            SnrBand::High => (18.0, 25.0),
        }
    }

    /// Draws a target SNR uniformly within the band.
    pub fn sample_db(self, rng: &mut JmbRng) -> f64 {
        let (lo, hi) = self.range_db();
        lo + rng.gen::<f64>() * (hi - lo)
    }

    /// `true` if `snr_db` falls inside this band.
    pub fn contains(self, snr_db: f64) -> bool {
        let (lo, hi) = self.range_db();
        (lo..=hi).contains(&snr_db)
    }

    /// All three bands, for sweep loops.
    pub const ALL: [SnrBand; 3] = [SnrBand::Low, SnrBand::Medium, SnrBand::High];
}

impl std::fmt::Display for SnrBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnrBand::Low => write!(f, "low (6-12 dB)"),
            SnrBand::Medium => write!(f, "medium (12-18 dB)"),
            SnrBand::High => write!(f, "high (>18 dB)"),
        }
    }
}

/// The room with its candidate locations (paper Fig. 5).
#[derive(Debug, Clone)]
pub struct Room {
    /// Room width, metres.
    pub width: f64,
    /// Room depth, metres.
    pub depth: f64,
    /// Candidate AP locations ("APs deployed on ledges near the ceiling").
    pub ap_slots: Vec<Position>,
    /// Candidate client locations ("clients scattered through the room").
    pub client_slots: Vec<Position>,
}

impl Room {
    /// A conference room matching the paper's scale: 20 AP slots around the
    /// perimeter, a 6×5 grid of 30 client slots (jittered), 18 m × 12 m.
    pub fn conference() -> Self {
        let width = 18.0;
        let depth = 12.0;
        let mut ap_slots = Vec::new();
        // Perimeter ledges: 7 slots along each long wall, 3 along each short.
        for i in 0..7 {
            let x = 1.5 + i as f64 * (width - 3.0) / 6.0;
            ap_slots.push(Position::new(x, 0.3));
            ap_slots.push(Position::new(x, depth - 0.3));
        }
        for i in 0..3 {
            let y = 2.0 + i as f64 * (depth - 4.0) / 2.0;
            ap_slots.push(Position::new(0.3, y));
            ap_slots.push(Position::new(width - 0.3, y));
        }
        // Client grid on the floor.
        let mut client_slots = Vec::new();
        for i in 0..6 {
            for j in 0..5 {
                let x = 2.0 + i as f64 * (width - 4.0) / 5.0;
                let y = 1.5 + j as f64 * (depth - 3.0) / 4.0;
                client_slots.push(Position::new(x, y));
            }
        }
        Room {
            width,
            depth,
            ap_slots,
            client_slots,
        }
    }
}

/// One placement draw: which slots this run's APs and clients occupy.
#[derive(Debug, Clone)]
pub struct Topology {
    /// AP positions (index = AP id).
    pub aps: Vec<Position>,
    /// Client positions (index = client id).
    pub clients: Vec<Position>,
}

impl Topology {
    /// Randomly assigns `n_aps` APs and `n_clients` clients to distinct
    /// slots of `room`, as the paper does per run.
    ///
    /// # Panics
    ///
    /// Panics if the room has fewer slots than requested.
    pub fn draw(room: &Room, n_aps: usize, n_clients: usize, rng: &mut JmbRng) -> Self {
        assert!(
            n_aps <= room.ap_slots.len(),
            "room has {} AP slots, need {n_aps}",
            room.ap_slots.len()
        );
        assert!(
            n_clients <= room.client_slots.len(),
            "room has {} client slots, need {n_clients}",
            room.client_slots.len()
        );
        let mut ap_idx: Vec<usize> = (0..room.ap_slots.len()).collect();
        ap_idx.shuffle(rng);
        let mut cl_idx: Vec<usize> = (0..room.client_slots.len()).collect();
        cl_idx.shuffle(rng);
        Topology {
            aps: ap_idx[..n_aps].iter().map(|&i| room.ap_slots[i]).collect(),
            clients: cl_idx[..n_clients]
                .iter()
                .map(|&i| room.client_slots[i])
                .collect(),
        }
    }

    /// Distance matrix `d[client][ap]`.
    pub fn distances(&self) -> Vec<Vec<f64>> {
        self.clients
            .iter()
            .map(|c| self.aps.iter().map(|a| c.distance(a)).collect())
            .collect()
    }

    /// All pairwise AP–AP distances (for the lead→slave reference channels).
    pub fn ap_distances(&self) -> Vec<Vec<f64>> {
        self.aps
            .iter()
            .map(|a| self.aps.iter().map(|b| a.distance(b)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::rng_from_seed;

    #[test]
    fn conference_room_capacity() {
        let room = Room::conference();
        assert_eq!(room.ap_slots.len(), 20);
        assert_eq!(room.client_slots.len(), 30);
        // All slots inside the room.
        for p in room.ap_slots.iter().chain(&room.client_slots) {
            assert!(p.x >= 0.0 && p.x <= room.width);
            assert!(p.y >= 0.0 && p.y <= room.depth);
        }
    }

    #[test]
    fn aps_on_perimeter_clients_inside() {
        let room = Room::conference();
        for p in &room.ap_slots {
            let near_wall =
                p.x < 1.0 || p.x > room.width - 1.0 || p.y < 1.0 || p.y > room.depth - 1.0;
            assert!(near_wall, "AP slot {p:?} not on perimeter");
        }
        for p in &room.client_slots {
            assert!(p.x >= 1.0 && p.x <= room.width - 1.0);
        }
    }

    #[test]
    fn draw_uses_distinct_slots() {
        let room = Room::conference();
        let mut rng = rng_from_seed(1);
        let topo = Topology::draw(&room, 10, 10, &mut rng);
        assert_eq!(topo.aps.len(), 10);
        assert_eq!(topo.clients.len(), 10);
        for i in 0..10 {
            for j in i + 1..10 {
                assert!(topo.aps[i].distance(&topo.aps[j]) > 1e-9);
                assert!(topo.clients[i].distance(&topo.clients[j]) > 1e-9);
            }
        }
    }

    #[test]
    fn draws_vary_with_seed() {
        let room = Room::conference();
        let a = Topology::draw(&room, 4, 4, &mut rng_from_seed(1));
        let b = Topology::draw(&room, 4, 4, &mut rng_from_seed(2));
        let same = a
            .aps
            .iter()
            .zip(&b.aps)
            .filter(|(x, y)| x.distance(y) < 1e-9)
            .count();
        assert!(same < 4, "different seeds gave identical AP draws");
    }

    #[test]
    fn draw_reproducible() {
        let room = Room::conference();
        let a = Topology::draw(&room, 6, 6, &mut rng_from_seed(9));
        let b = Topology::draw(&room, 6, 6, &mut rng_from_seed(9));
        for (x, y) in a.aps.iter().zip(&b.aps) {
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "AP slots")]
    fn overdraw_panics() {
        let room = Room::conference();
        Topology::draw(&room, 21, 1, &mut rng_from_seed(1));
    }

    #[test]
    fn distance_matrices() {
        let topo = Topology {
            aps: vec![Position::new(0.0, 0.0), Position::new(3.0, 4.0)],
            clients: vec![Position::new(0.0, 0.0)],
        };
        let d = topo.distances();
        assert_eq!(d.len(), 1);
        assert!((d[0][0] - 0.0).abs() < 1e-12);
        assert!((d[0][1] - 5.0).abs() < 1e-12);
        let dd = topo.ap_distances();
        assert!((dd[0][1] - 5.0).abs() < 1e-12);
        assert!((dd[1][0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn snr_bands() {
        assert!(SnrBand::Low.contains(8.0));
        assert!(!SnrBand::Low.contains(13.0));
        assert!(SnrBand::High.contains(22.0));
        let mut rng = rng_from_seed(3);
        for band in SnrBand::ALL {
            for _ in 0..100 {
                let s = band.sample_db(&mut rng);
                assert!(band.contains(s), "{band}: {s}");
            }
        }
    }

    #[test]
    fn band_display() {
        assert_eq!(SnrBand::High.to_string(), "high (>18 dB)");
    }
}
