//! Property-based tests for the RF environment models.

use jmb_channel::multipath::{Multipath, MultipathSpec};
use jmb_channel::oscillator::{OscillatorSpec, PhaseTrajectory};
use jmb_channel::pathloss::PathLossModel;
use jmb_channel::Link;
use jmb_dsp::rng::rng_from_seed;
use jmb_dsp::Complex64;
use jmb_phy::params::OfdmParams;
use proptest::prelude::*;

proptest! {
    #[test]
    fn trajectory_random_access_is_a_function(seed in 0u64..1000, t1 in 0.0..0.2f64, t2 in 0.0..0.2f64) {
        // Querying any times in any order must give consistent answers.
        let mut rng = rng_from_seed(seed);
        let mut traj = PhaseTrajectory::new(OscillatorSpec::usrp2(), 2.437e9, &mut rng);
        let a1 = traj.phase_at(t1);
        let _ = traj.phase_at(t2);
        let a2 = traj.phase_at(t1);
        prop_assert_eq!(a1, a2);
    }

    #[test]
    fn fixed_trajectory_is_exactly_linear(offset in -50_000.0..50_000.0f64, t in 0.0..0.5f64) {
        let mut traj = PhaseTrajectory::fixed(2.437e9, offset);
        let expected = 2.0 * std::f64::consts::PI * offset * t;
        prop_assert!((traj.phase_at(t) - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    #[test]
    fn multipath_power_is_positive_and_finite(seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
        prop_assert!(ch.power().is_finite());
        prop_assert!(ch.power() >= 0.0);
        // Frequency response finite on every occupied subcarrier.
        let p = OfdmParams::default();
        for h in ch.freq_response(&p) {
            prop_assert!(h.is_finite());
        }
    }

    #[test]
    fn multipath_dc_response_is_tap_sum(seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let ch = Multipath::new(MultipathSpec::indoor_los(), &mut rng);
        let sum: Complex64 = ch.taps().iter().map(|(_, g)| *g).sum();
        prop_assert!((ch.freq_response_at(0.0) - sum).abs() < 1e-12);
    }

    #[test]
    fn evolution_never_diverges(seed in 0u64..200, steps in 1usize..30) {
        let mut rng = rng_from_seed(seed);
        let mut ch = Multipath::new(MultipathSpec::indoor_nlos(), &mut rng);
        for _ in 0..steps {
            ch.evolve(0.05, &mut rng);
            prop_assert!(ch.power().is_finite());
            prop_assert!(ch.power() < 100.0, "power blew up: {}", ch.power());
        }
    }

    #[test]
    fn pathloss_monotone_in_distance(d1 in 0.5..30.0f64, d2 in 0.5..30.0f64) {
        let m = PathLossModel {
            shadowing_sigma_db: 0.0,
            ..PathLossModel::indoor_2_4ghz()
        };
        if d1 < d2 {
            prop_assert!(m.mean_loss_db(d1) <= m.mean_loss_db(d2));
        } else {
            prop_assert!(m.mean_loss_db(d1) >= m.mean_loss_db(d2));
        }
    }

    #[test]
    fn link_calibration_hits_any_target(snr in -10.0..40.0f64, noise in 1e-9..1.0f64) {
        let mut link = Link::ideal();
        link.calibrate_snr(snr, noise);
        prop_assert!((link.expected_snr_db(noise) - snr).abs() < 1e-9);
    }

    #[test]
    fn link_delay_phase_slope_matches_delay(delay_ns in 0.0..400.0f64) {
        // The per-subcarrier phase slope of a delayed link encodes exactly
        // the delay — the property channel measurement relies on (§5.2).
        let mut link = Link::ideal();
        link.delay_s = delay_ns * 1e-9;
        let p = OfdmParams::default();
        let df = p.subcarrier_spacing();
        let h1 = link.freq_response_at(df);
        let h2 = link.freq_response_at(2.0 * df);
        let slope = (h2 * h1.conj()).arg();
        let expected = -2.0 * std::f64::consts::PI * df * link.delay_s;
        prop_assert!((jmb_dsp::complex::wrap_phase(slope - expected)).abs() < 1e-9);
    }
}
