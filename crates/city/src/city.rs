//! The sharded multi-cell deployment runner.

use crate::grid::{Grid, Reuse};
use jmb_channel::pathloss::PathLossModel;
use jmb_core::error::JmbError;
use jmb_core::experiment::{parallel_map, SchedulePolicy, SweepConfig};
use jmb_core::fastnet::FastConfig;
use jmb_dsp::stats::{db_to_lin, lin_to_db};
use jmb_obs::{EventKind, Registry, Trace};
use jmb_traffic::{ClientLoad, FastBackend, TrafficConfig, TrafficMetrics, TrafficSim};

/// Floor for INR readouts, linear (−120 dB): keeps `lin_to_db` finite for
/// cells with no co-channel neighbours, so trace events stay JSON-clean.
const INR_FLOOR_LIN: f64 = 1e-12;

/// Configuration of one city run.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// Cells per row of the plan.
    pub cols: usize,
    /// Rows of the plan.
    pub rows: usize,
    /// Distance between adjacent cell centers, metres.
    pub spacing_m: f64,
    /// Frequency-reuse factor.
    pub reuse: Reuse,
    /// APs per cell (the first is the cell's lead).
    pub aps_per_cell: usize,
    /// Clients per cell. May exceed `aps_per_cell`: the MAC serves joint
    /// batches of at most `aps_per_cell` distinct destinations per frame.
    pub clients_per_cell: usize,
    /// Per-client target SNR at the strongest in-cell AP, dB. Also the
    /// calibration anchor for inter-cell coupling: a neighbour cell's
    /// signal arrives at this SNR from `ref_dist_m` away and decays with
    /// [`PathLossModel::inter_cell`] beyond it.
    pub client_snr_db: f64,
    /// Per-client Poisson arrival rate, packets/second.
    pub rate_pps: f64,
    /// Fixed packet size, bytes.
    pub packet_bytes: usize,
    /// Load-generation horizon per epoch, seconds.
    pub duration_s: f64,
    /// Interference fixed-point epochs (≥ 1). Epoch 0 runs every cell
    /// clean; each later epoch re-runs every cell under the interference
    /// implied by the previous epoch's airtime utilizations. Two epochs —
    /// the default of [`CityConfig::default_with`] — is the classical
    /// one-step coupling: measure activity, then measure capacity under
    /// that activity.
    pub epochs: usize,
    /// Reference distance at which a neighbour's signal would arrive at
    /// `client_snr_db`, metres.
    pub ref_dist_m: f64,
    /// Master seed. Every cell derives its own streams from
    /// `(seed, cell)`.
    pub seed: u64,
    /// Worker threads for the cell shards. Results are identical at every
    /// value (see the crate-level determinism contract).
    pub threads: usize,
    /// Claim order for the cell shards — [`SchedulePolicy::Natural`] in
    /// production; the determinism harness perturbs it to prove results
    /// are claim-order independent.
    pub schedule: SchedulePolicy,
}

impl CityConfig {
    /// City defaults: 30 m cell pitch, 4 APs and 16 clients per cell at
    /// 22 dB, 20 pps of 700-byte packets per client, 100 ms epochs, 2
    /// coupling epochs, 10 m calibration distance.
    pub fn default_with(cols: usize, rows: usize, reuse: Reuse, seed: u64) -> Self {
        CityConfig {
            cols,
            rows,
            spacing_m: 30.0,
            reuse,
            aps_per_cell: 4,
            clients_per_cell: 16,
            client_snr_db: 22.0,
            rate_pps: 20.0,
            packet_bytes: 700,
            duration_s: 0.1,
            epochs: 2,
            ref_dist_m: 10.0,
            seed,
            threads: 1,
            schedule: SchedulePolicy::Natural,
        }
    }

    /// Validates every field jointly.
    pub fn validate(&self) -> Result<(), JmbError> {
        if self.cols == 0 || self.rows == 0 {
            return Err(JmbError::BadConfig("grid needs at least one cell"));
        }
        if self.aps_per_cell == 0 || self.clients_per_cell == 0 {
            return Err(JmbError::BadConfig("cells need APs and clients"));
        }
        if !(self.spacing_m.is_finite()
            && self.spacing_m > 0.0
            && self.ref_dist_m.is_finite()
            && self.ref_dist_m > 0.0)
        {
            return Err(JmbError::BadConfig("distances must be positive"));
        }
        if !(self.duration_s.is_finite()
            && self.duration_s > 0.0
            && self.rate_pps.is_finite()
            && self.rate_pps > 0.0)
        {
            return Err(JmbError::BadConfig("load must be positive"));
        }
        if !self.client_snr_db.is_finite() {
            return Err(JmbError::BadConfig("client SNR must be finite"));
        }
        if self.packet_bytes == 0 {
            return Err(JmbError::BadConfig("packets must be non-empty"));
        }
        if self.epochs == 0 {
            return Err(JmbError::BadConfig("need at least one epoch"));
        }
        if self.threads == 0 {
            return Err(JmbError::BadConfig("need at least one thread"));
        }
        Ok(())
    }

    /// The plan this config describes.
    pub fn grid(&self) -> Grid {
        Grid::new(self.cols, self.rows, self.spacing_m)
    }

    /// Wall of one epoch on the shared city clock (horizon + drain),
    /// seconds.
    pub fn epoch_span_s(&self) -> f64 {
        self.duration_s + self.drain_timeout_s()
    }

    /// Queue-drain allowance after each epoch's horizon, seconds.
    pub fn drain_timeout_s(&self) -> f64 {
        (0.5 * self.duration_s).min(0.25)
    }

    /// Total APs in the deployment.
    pub fn total_aps(&self) -> usize {
        self.cols * self.rows * self.aps_per_cell
    }

    /// Total clients in the deployment.
    pub fn total_clients(&self) -> usize {
        self.cols * self.rows * self.clients_per_cell
    }

    /// Deployment area, km².
    pub fn area_km2(&self) -> f64 {
        (self.cols as f64 * self.spacing_m) * (self.rows as f64 * self.spacing_m) / 1e6
    }
}

/// The final-epoch outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Cell index (row-major in the grid).
    pub cell: usize,
    /// The cell's reuse color.
    pub color: usize,
    /// Out-of-cell interference-to-noise ratio applied in the final epoch,
    /// dB (floored at −120 dB).
    pub inr_db: f64,
    /// The cell's final-epoch traffic record.
    pub metrics: TrafficMetrics,
}

/// The pooled outcome of a city run.
#[derive(Debug, Clone)]
pub struct CityReport {
    /// The configuration that produced this report.
    pub cfg: CityConfig,
    /// Per-cell final-epoch outcomes, in cell-index order.
    pub cells: Vec<CellOutcome>,
    /// Final-epoch metrics pooled across all cells.
    pub pooled: TrafficMetrics,
    /// Final-epoch registries merged in cell-index order.
    pub registry: Registry,
}

impl CityReport {
    /// Sum of per-cell goodput over the final epoch, bits/second — the
    /// raw spectral throughput, before the reuse split.
    pub fn total_goodput_bps(&self) -> f64 {
        self.cells.iter().map(|c| c.metrics.goodput_bps()).sum()
    }

    /// Area capacity, bits/second/km². Each reuse color is an orthogonal
    /// `1/r` slice of the band, so a deployment at reuse `r` delivers
    /// `1/r` of the simulated full-band goodput per cell.
    pub fn area_capacity_bps_per_km2(&self) -> f64 {
        self.total_goodput_bps() / self.cfg.reuse.factor() as f64 / self.cfg.area_km2()
    }

    /// Mean applied INR across cells, dB.
    pub fn mean_inr_db(&self) -> f64 {
        let lin: f64 = self.cells.iter().map(|c| db_to_lin(c.inr_db)).sum::<f64>()
            / self.cells.len().max(1) as f64;
        lin_to_db(lin.max(INR_FLOOR_LIN))
    }

    /// Pooled delivery ratio over the final epoch.
    pub fn delivery_ratio(&self) -> f64 {
        self.pooled.delivery_ratio()
    }
}

/// One cell's shard result (one epoch).
struct CellRun {
    metrics: TrafficMetrics,
    registry: Registry,
}

/// The city runner. Build once, [`City::run`] once; attach sinks to
/// [`City::trace`] beforehand to stream the cell-scoped event feed.
pub struct City {
    cfg: CityConfig,
    /// City-level event trace: `CellStarted` / `CellInterference` at each
    /// epoch start and `CellFinished` at each epoch end, emitted
    /// single-threaded in (epoch, cell) order.
    pub trace: Trace,
}

impl City {
    /// Validates the config.
    pub fn new(cfg: CityConfig) -> Result<Self, JmbError> {
        cfg.validate()?;
        Ok(City {
            cfg,
            trace: Trace::new(),
        })
    }

    /// The configuration under this runner.
    pub fn config(&self) -> &CityConfig {
        &self.cfg
    }

    /// Runs every epoch of every cell and pools the final epoch.
    pub fn run(&mut self) -> Result<CityReport, JmbError> {
        let grid = self.cfg.grid();
        let n = grid.n_cells();
        let colors: Vec<usize> = (0..n).map(|c| grid.color(self.cfg.reuse, c)).collect();
        let plm = PathLossModel::inter_cell();
        let snr_lin = db_to_lin(self.cfg.client_snr_db);
        let span = self.cfg.epoch_span_s();

        // Pre-resolve each cell's co-channel couplings (neighbour index +
        // pathloss-derived power gain); they are epoch-invariant.
        let couplings: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                grid.co_channel(self.cfg.reuse, i)
                    .into_iter()
                    .map(|j| {
                        (
                            j,
                            plm.relative_power_gain(grid.distance_m(i, j), self.cfg.ref_dist_m),
                        )
                    })
                    .collect()
            })
            .collect();

        let mut ext = vec![0.0f64; n];
        let mut last: Vec<CellRun> = Vec::new();
        for epoch in 0..self.cfg.epochs {
            let t0 = epoch as f64 * span;
            for (cell, &color) in colors.iter().enumerate() {
                self.trace.emit(t0, EventKind::CellStarted { cell, color });
                self.trace.emit(
                    t0,
                    EventKind::CellInterference {
                        cell,
                        inr_db: lin_to_db(ext[cell].max(INR_FLOOR_LIN)),
                    },
                );
            }
            let sweep = SweepConfig {
                n_topologies: n,
                seed: self.cfg.seed,
                parallelism: self.cfg.threads,
                schedule: self.cfg.schedule,
            };
            let cfg = &self.cfg;
            let ext_now = &ext;
            let runs: Vec<Result<CellRun, JmbError>> =
                parallel_map(&sweep, |cell| run_cell(cfg, cell, epoch, ext_now[cell]));
            let runs: Vec<CellRun> = runs.into_iter().collect::<Result<_, _>>()?;
            for (cell, r) in runs.iter().enumerate() {
                self.trace.emit(
                    t0 + span,
                    EventKind::CellFinished {
                        cell,
                        delivered: r.metrics.delivered,
                    },
                );
            }
            if epoch + 1 < self.cfg.epochs {
                // Airtime utilization of this epoch drives the next one's
                // interference: a neighbour only leaks while it transmits.
                let util: Vec<f64> = runs
                    .iter()
                    .map(|r| (r.metrics.airtime_s / r.metrics.elapsed_s.max(1e-9)).clamp(0.0, 1.0))
                    .collect();
                for (i, e) in ext.iter_mut().enumerate() {
                    *e = couplings[i]
                        .iter()
                        .map(|&(j, gain)| snr_lin * gain * util[j])
                        .sum();
                }
            }
            last = runs;
        }

        let mut registry = Registry::new();
        for r in &last {
            registry.merge(&r.registry);
        }
        let pooled =
            TrafficMetrics::merge(&last.iter().map(|r| r.metrics.clone()).collect::<Vec<_>>());
        let cells = last
            .into_iter()
            .enumerate()
            .map(|(cell, r)| CellOutcome {
                cell,
                color: colors[cell],
                inr_db: lin_to_db(ext[cell].max(INR_FLOOR_LIN)),
                metrics: r.metrics,
            })
            .collect();
        Ok(CityReport {
            cfg: self.cfg.clone(),
            cells,
            pooled,
            registry,
        })
    }
}

/// Runs one cell for one epoch under `ext_inr_lin` of out-of-cell
/// interference (linear, relative to the cell's noise floor).
fn run_cell(
    cfg: &CityConfig,
    cell: usize,
    epoch: usize,
    ext_inr_lin: f64,
) -> Result<CellRun, JmbError> {
    let nc = cfg.clients_per_cell;
    // Streams derive from (seed, cell) only — NOT the epoch — so epochs
    // re-run the *same* cell under different interference and the coupling
    // iteration converges on activity, not on resampled randomness.
    let mut rng = jmb_dsp::rng::derive_rng(cfg.seed, 0xC17E ^ ((cell as u64) << 16));
    use rand::Rng;
    let phy_seed: u64 = rng.gen();
    let mac_seed: u64 = rng.gen();
    let fc = FastConfig::default_with(cfg.aps_per_cell, nc, vec![cfg.client_snr_db; nc], phy_seed);
    let noise_var = fc.noise_var;
    let mut backend = FastBackend::new(fc)?;
    backend
        .net_mut()
        .set_external_interference(&[ext_inr_lin * noise_var])?;
    let loads = vec![ClientLoad::poisson(cfg.rate_pps, cfg.packet_bytes); nc];
    let mut tc = TrafficConfig::default_with(loads, mac_seed);
    tc.duration_s = cfg.duration_s;
    tc.drain_timeout_s = cfg.drain_timeout_s();
    tc.start_s = epoch as f64 * cfg.epoch_span_s();
    let mut sim = TrafficSim::new(tc, backend)?;
    let metrics = sim.run();
    Ok(CellRun {
        registry: sim.registry().clone(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(reuse: Reuse, seed: u64) -> CityConfig {
        let mut cfg = CityConfig::default_with(3, 3, reuse, seed);
        cfg.aps_per_cell = 2;
        cfg.clients_per_cell = 4;
        cfg.duration_s = 0.05;
        // Enough load to push utilization (and thus coupled interference)
        // well above the noise floor on a 3×3 block.
        cfg.rate_pps = 400.0;
        cfg
    }

    #[test]
    fn config_validation() {
        assert!(City::new(CityConfig::default_with(0, 4, Reuse::One, 1)).is_err());
        let mut c = tiny(Reuse::One, 1);
        c.duration_s = 0.0;
        assert!(City::new(c).is_err());
        let mut c = tiny(Reuse::One, 1);
        c.threads = 0;
        assert!(City::new(c).is_err());
        let mut c = tiny(Reuse::One, 1);
        c.epochs = 0;
        assert!(City::new(c).is_err());
        let mut c = tiny(Reuse::One, 1);
        c.spacing_m = f64::NAN;
        assert!(City::new(c).is_err());
    }

    #[test]
    fn identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut cfg = tiny(Reuse::Three, 9);
            cfg.threads = threads;
            let mut city = City::new(cfg).unwrap();
            let report = city.run().unwrap();
            let rows: Vec<String> = report
                .registry
                .rows()
                .into_iter()
                .map(|(k, l, v)| format!("{k}/{l:?}/{v:?}"))
                .collect();
            let per_cell: Vec<(f64, u64, String)> = report
                .cells
                .iter()
                .map(|c| (c.inr_db, c.metrics.delivered, c.metrics.csv_row().join(",")))
                .collect();
            (rows, per_cell, report.pooled.csv_row())
        };
        let serial = run(1);
        assert_eq!(run(4), serial, "4 threads must equal 1 thread");
        assert_eq!(run(3), serial, "3 threads must equal 1 thread");
    }

    #[test]
    fn denser_reuse_sees_more_interference() {
        let inr = |reuse| {
            let mut city = City::new(tiny(reuse, 11)).unwrap();
            city.run().unwrap().mean_inr_db()
        };
        let r1 = inr(Reuse::One);
        let r7 = inr(Reuse::Seven);
        assert!(
            r1 > r7 + 3.0,
            "reuse 1 must be markedly louder: {r1} vs {r7} dB"
        );
        assert!(r1 > 0.0, "co-channel next door must exceed the noise floor");
    }

    #[test]
    fn trace_covers_every_cell_and_epoch() {
        let mut cfg = tiny(Reuse::One, 13);
        cfg.epochs = 2;
        let mut city = City::new(cfg).unwrap();
        city.trace.enable();
        let report = city.run().unwrap();
        let events = city.trace.events().to_vec();
        let count = |name: &str| events.iter().filter(|e| e.kind.name() == name).count();
        assert_eq!(count("CellStarted"), 9 * 2);
        assert_eq!(count("CellInterference"), 9 * 2);
        assert_eq!(count("CellFinished"), 9 * 2);
        // The feed is single-threaded and ordered; delivered counts in the
        // finish events match the report.
        let mut finished = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::CellFinished { cell, delivered } => Some((cell, delivered)),
                _ => None,
            })
            .skip(9); // final epoch
        for c in &report.cells {
            assert_eq!(finished.next(), Some((c.cell, c.metrics.delivered)));
        }
        // Epoch 0 ran clean; epoch 1 under reuse-1 interference.
        let inrs: Vec<f64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::CellInterference { inr_db, .. } => Some(inr_db),
                _ => None,
            })
            .collect();
        assert!(inrs[..9].iter().all(|&x| x <= -119.0), "epoch 0 clean");
        assert!(inrs[9..].iter().all(|&x| x > 0.0), "epoch 1 loud");
    }

    #[test]
    fn report_arithmetic() {
        let cfg = tiny(Reuse::Three, 17);
        let area = cfg.area_km2();
        assert!((area - (90.0 * 90.0) / 1e6).abs() < 1e-12);
        assert_eq!(cfg.total_aps(), 18);
        assert_eq!(cfg.total_clients(), 36);
        let mut city = City::new(cfg).unwrap();
        let report = city.run().unwrap();
        assert!(report.total_goodput_bps() > 0.0);
        let expect = report.total_goodput_bps() / 3.0 / area;
        assert!((report.area_capacity_bps_per_km2() - expect).abs() < 1e-6);
        assert!(report.delivery_ratio() > 0.5);
    }
}
