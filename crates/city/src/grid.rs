//! The cell plan: a rectangular grid with frequency-reuse coloring.

/// Frequency-reuse factor: how many orthogonal spectrum slices the plan
/// splits the band into. Cells of the same color share a slice and
/// interfere; different colors are orthogonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reuse {
    /// Every cell on the full band — maximum spectrum, maximum
    /// interference.
    One,
    /// Three slices; co-channel cells sit a knight's-move-free diagonal
    /// apart (minimum co-channel distance `√2 · spacing`).
    Three,
    /// Seven slices; minimum co-channel distance `√5 · spacing` (the best
    /// an index-7 sublattice of the square grid can do).
    Seven,
}

impl Reuse {
    /// All reuse factors, in sweep order.
    pub const ALL: [Reuse; 3] = [Reuse::One, Reuse::Three, Reuse::Seven];

    /// The number of colors (and the spectrum-split denominator).
    pub fn factor(self) -> usize {
        match self {
            Reuse::One => 1,
            Reuse::Three => 3,
            Reuse::Seven => 7,
        }
    }

    /// Parses `"1"`, `"3"`, or `"7"`.
    pub fn parse(s: &str) -> Option<Reuse> {
        match s {
            "1" => Some(Reuse::One),
            "3" => Some(Reuse::Three),
            "7" => Some(Reuse::Seven),
            _ => None,
        }
    }

    /// The color of grid coordinate `(x, y)`.
    ///
    /// Colors are linear-form sublattice colorings, so equal colors repeat
    /// on a translated sublattice exactly as in a classical cellular plan:
    /// `(x + 2y) mod 3` for reuse 3 and `(2x + 3y) mod 7` for reuse 7.
    pub fn color_of(self, x: usize, y: usize) -> usize {
        match self {
            Reuse::One => 0,
            Reuse::Three => (x + 2 * y) % 3,
            Reuse::Seven => (2 * x + 3 * y) % 7,
        }
    }
}

/// A rectangular plan of `cols × rows` square cells, `spacing_m` metres
/// between adjacent cell centers. Cells are indexed row-major:
/// `cell = y * cols + x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    /// Cells per row.
    pub cols: usize,
    /// Number of rows.
    pub rows: usize,
    /// Distance between adjacent cell centers, metres.
    pub spacing_m: f64,
}

impl Grid {
    /// Builds a plan. Callers validate through [`crate::CityConfig`]; a
    /// degenerate grid here simply has zero cells.
    pub fn new(cols: usize, rows: usize, spacing_m: f64) -> Self {
        Grid {
            cols,
            rows,
            spacing_m,
        }
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Row-major index of coordinate `(x, y)`.
    pub fn index(&self, x: usize, y: usize) -> usize {
        y * self.cols + x
    }

    /// Coordinate `(x, y)` of a row-major cell index.
    pub fn coords(&self, cell: usize) -> (usize, usize) {
        (cell % self.cols, cell / self.cols)
    }

    /// Center of a cell in metres.
    pub fn center_m(&self, cell: usize) -> (f64, f64) {
        let (x, y) = self.coords(cell);
        (x as f64 * self.spacing_m, y as f64 * self.spacing_m)
    }

    /// Distance between two cell centers, metres.
    pub fn distance_m(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.center_m(a);
        let (bx, by) = self.center_m(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// The reuse color of a cell.
    pub fn color(&self, reuse: Reuse, cell: usize) -> usize {
        let (x, y) = self.coords(cell);
        reuse.color_of(x, y)
    }

    /// Every *other* cell sharing `cell`'s color (its co-channel
    /// interferers), in index order.
    pub fn co_channel(&self, reuse: Reuse, cell: usize) -> Vec<usize> {
        let color = self.color(reuse, cell);
        (0..self.n_cells())
            .filter(|&j| j != cell && self.color(reuse, j) == color)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrips() {
        let g = Grid::new(5, 3, 30.0);
        assert_eq!(g.n_cells(), 15);
        for cell in 0..g.n_cells() {
            let (x, y) = g.coords(cell);
            assert!(x < 5 && y < 3);
            assert_eq!(g.index(x, y), cell);
        }
        assert_eq!(g.center_m(0), (0.0, 0.0));
        assert_eq!(g.center_m(6), (30.0, 30.0));
        assert!((g.distance_m(0, 6) - 30.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn adjacent_cells_never_share_a_color_at_reuse_3_and_7() {
        let g = Grid::new(8, 8, 30.0);
        for reuse in [Reuse::Three, Reuse::Seven] {
            for cell in 0..g.n_cells() {
                let (x, y) = g.coords(cell);
                for (dx, dy) in [(1i64, 0i64), (0, 1), (1, 1), (1, -1)] {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= 8 || ny >= 8 {
                        continue;
                    }
                    let n = g.index(nx as usize, ny as usize);
                    // Reuse 3 allows one diagonal to repeat (its minimum
                    // co-channel distance is √2·s); the axial neighbours
                    // must always differ for both factors.
                    if dx != 0 && dy != 0 && reuse == Reuse::Three {
                        continue;
                    }
                    assert_ne!(
                        g.color(reuse, cell),
                        g.color(reuse, n),
                        "cells {cell} and {n} share color at reuse {}",
                        reuse.factor()
                    );
                }
            }
        }
    }

    #[test]
    fn min_co_channel_distance_grows_with_reuse() {
        let g = Grid::new(10, 10, 30.0);
        let min_d = |reuse: Reuse| -> f64 {
            (0..g.n_cells())
                .flat_map(|c| {
                    g.co_channel(reuse, c)
                        .into_iter()
                        .map(move |j| g.distance_m(c, j))
                })
                .fold(f64::INFINITY, f64::min)
        };
        let d1 = min_d(Reuse::One);
        let d3 = min_d(Reuse::Three);
        let d7 = min_d(Reuse::Seven);
        assert!((d1 - 30.0).abs() < 1e-9, "reuse 1 co-channel next door");
        assert!(
            (d3 - 30.0 * 2f64.sqrt()).abs() < 1e-9,
            "reuse 3: √2·s, {d3}"
        );
        assert!(
            (d7 - 30.0 * 5f64.sqrt()).abs() < 1e-9,
            "reuse 7: √5·s, {d7}"
        );
    }

    #[test]
    fn colors_are_balanced() {
        let g = Grid::new(21, 21, 30.0); // multiples of 3 and 7
        for reuse in Reuse::ALL {
            let f = reuse.factor();
            let mut counts = vec![0usize; f];
            for c in 0..g.n_cells() {
                counts[g.color(reuse, c)] += 1;
            }
            for (color, &n) in counts.iter().enumerate() {
                assert_eq!(n, g.n_cells() / f, "color {color} unbalanced");
            }
        }
    }

    #[test]
    fn reuse_parse() {
        assert_eq!(Reuse::parse("1"), Some(Reuse::One));
        assert_eq!(Reuse::parse("3"), Some(Reuse::Three));
        assert_eq!(Reuse::parse("7"), Some(Reuse::Seven));
        assert_eq!(Reuse::parse("2"), None);
    }
}
