//! City-scale JMB: a grid of interfering cells with frequency reuse.
//!
//! One [`jmb_core::fastnet::FastNet`] is one *cell* — a lead AP, its
//! slaves, and the clients they jointly beamform to, all inside one room.
//! A deployment that serves a city is many such cells on a plan: this crate
//! lays them out on a rectangular grid ([`Grid`]), assigns each a
//! frequency-reuse color ([`Reuse`] 1, 3, or 7), couples co-channel cells
//! through distance-based path loss (each cell's aggregate out-of-cell
//! leakage is folded into its per-subcarrier noise floor via
//! `FastNet::set_external_interference`, so the EESM rate selection and
//! SINRs honor it; the sample-accurate path has the matching
//! `JmbNetwork::set_external_interference` hook), and runs every cell's
//! traffic event loop as an independent shard.
//!
//! # Determinism contract
//!
//! The whole city run is byte-reproducible and parallelism-invariant:
//!
//! - every cell derives its RNG streams from `(seed, cell index)` only, so
//!   a cell's outcome never depends on which worker thread ran it;
//! - shards are dispatched through `jmb_core::experiment::parallel_map`,
//!   which collects results in cell-index order at every `--threads`;
//! - inter-cell coupling is a fixed, deterministic sequence of epochs
//!   (epoch 0 runs clean, each later epoch re-runs every cell under the
//!   interference computed from the previous epoch's airtime utilization)
//!   rather than a shared-state feedback loop, so there is no cross-thread
//!   communication to order;
//! - per-cell registries are merged in cell-index order through the
//!   registry's deterministic `merge`, and per-cell metrics pool through
//!   `TrafficMetrics::merge`.
//!
//! Per-cluster lead APs stay the sync anchor of their own cell (the
//! Rogalin-style hierarchy: intra-cell sync is the paper's lead/slave
//! protocol with its 0.35 rad budget; cells only couple through
//! interference power, never through phase).

#![forbid(unsafe_code)]

pub mod city;
pub mod grid;

pub use city::{CellOutcome, City, CityConfig, CityReport};
pub use grid::{Grid, Reuse};
