//! Property tests for the shard/merge determinism contract.
//!
//! Two layers:
//!
//! * pure registry pooling — merging per-cell registries is
//!   order-independent (values are quarter-integers, so the f64 sums are
//!   exact and permutation-invariant down to the bit);
//! * the whole city — any worker-thread count produces bit-identical
//!   per-cell outcomes, pooled metrics, and merged registry rows as the
//!   single-threaded run.

use jmb_city::{City, CityConfig, Reuse};
use jmb_obs::Registry;
use proptest::prelude::*;

const LAT_BOUNDS: [f64; 4] = [0.001, 0.01, 0.1, 1.0];

/// One synthetic cell shard's worth of metrics.
#[derive(Debug, Clone)]
struct Shard {
    delivered: u64,
    drops: u64,
    /// Quarter-integers (exact in f64, so sums commute exactly).
    airtime_quarters: u32,
    latencies_quarters: Vec<u32>,
}

fn shard_registry(s: &Shard, cell: u32) -> Registry {
    let mut r = Registry::new();
    r.register_hist("latency_s", &LAT_BOUNDS);
    r.inc_by("delivered", s.delivered);
    r.inc_by("drops", s.drops);
    r.inc_at("cell_runs", cell);
    r.gauge_add("airtime_s", s.airtime_quarters as f64 * 0.25);
    r.gauge_add_at("cell_airtime_s", cell, s.airtime_quarters as f64 * 0.25);
    for &q in &s.latencies_quarters {
        r.observe("latency_s", q as f64 * 0.25);
    }
    r
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed (an LCG is
/// plenty — we only need arbitrary orders, not good randomness).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        order.swap(i, (state >> 33) as usize % (i + 1));
    }
    order
}

fn shard_strategy() -> impl Strategy<Value = Shard> {
    (
        0u64..10_000,
        0u64..100,
        0u32..4_000,
        prop::collection::vec(0u32..40, 0..12),
    )
        .prop_map(
            |(delivered, drops, airtime_quarters, latencies_quarters)| Shard {
                delivered,
                drops,
                airtime_quarters,
                latencies_quarters,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn registry_merge_is_order_independent(
        shards in prop::collection::vec(shard_strategy(), 1..12),
        perm_seed in 0u64..1_000_000,
    ) {
        let regs: Vec<Registry> = shards
            .iter()
            .enumerate()
            .map(|(i, s)| shard_registry(s, i as u32))
            .collect();
        let mut in_order = Registry::new();
        for r in &regs {
            in_order.merge(r);
        }
        let mut permuted = Registry::new();
        for &i in &permutation(regs.len(), perm_seed) {
            permuted.merge(&regs[i]);
        }
        prop_assert_eq!(permuted.rows(), in_order.rows());
        // And the pooled totals are the plain sums of the shard inputs.
        let delivered: u64 = shards.iter().map(|s| s.delivered).sum();
        let quarters: u64 = shards.iter().map(|s| s.airtime_quarters as u64).sum();
        let samples: u64 = shards.iter().map(|s| s.latencies_quarters.len() as u64).sum();
        prop_assert_eq!(in_order.counter("delivered"), delivered);
        prop_assert_eq!(in_order.gauge("airtime_s"), quarters as f64 * 0.25);
        prop_assert_eq!(in_order.hist("latency_s").unwrap().count(), samples);
    }
}

proptest! {
    // City runs are whole simulations; a few cases at full depth beat many
    // shallow ones.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_city_matches_single_threaded_pool(
        seed in 0u64..1_000,
        threads in 2usize..6,
    ) {
        let run = |threads: usize| {
            let mut cfg = CityConfig::default_with(3, 2, Reuse::Three, seed);
            cfg.aps_per_cell = 2;
            cfg.clients_per_cell = 3;
            cfg.duration_s = 0.02;
            cfg.rate_pps = 300.0;
            cfg.threads = threads;
            let report = City::new(cfg).unwrap().run().unwrap();
            let cells: Vec<(usize, f64, Vec<String>)> = report
                .cells
                .iter()
                .map(|c| (c.cell, c.inr_db, c.metrics.csv_row()))
                .collect();
            (cells, report.pooled.csv_row(), report.registry.rows())
        };
        let serial = run(1);
        let sharded = run(threads);
        prop_assert_eq!(&sharded.0, &serial.0, "per-cell outcomes diverged");
        prop_assert_eq!(&sharded.1, &serial.1, "pooled metrics diverged");
        prop_assert_eq!(&sharded.2, &serial.2, "merged registry diverged");
    }
}
