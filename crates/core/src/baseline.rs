//! The comparison systems and airtime accounting (§11 methodology).
//!
//! * **802.11 TDMA baseline** — "only one AP to be active at any given
//!   time… we compute 802.11 throughput by providing each client with an
//!   equal share of the medium" (§11.2): each client is served by its
//!   designated (strongest) AP at the rate the effective-SNR algorithm
//!   picks for that link, for `1/N` of the time.
//! * **JMB** — all clients served concurrently at the *same* rate (§9),
//!   paying a sync-header + turnaround overhead per joint transmission and
//!   amortising one channel-measurement phase over the channel coherence
//!   time (§5).
//!
//! All throughputs are goodput in bits/second for 1500-byte packets unless
//! stated otherwise.

use jmb_phy::esnr;
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;

/// Payload size used throughout the evaluation ("The APs transmit 1500 byte
/// packets to the clients in all experiments", §10c).
pub const EVAL_PAYLOAD_BYTES: usize = 1500;

/// Airtime of one PHY frame (preamble + SIGNAL + data symbols), seconds.
pub fn frame_airtime(params: &OfdmParams, mcs: Mcs, payload_bytes: usize) -> f64 {
    let n_sym = 1 + mcs.symbols_for_psdu(params, payload_bytes + 4);
    (320 + n_sym * params.symbol_len()) as f64 * params.sample_period()
}

/// Overheads of the JMB data-transmission phase.
#[derive(Debug, Clone, Copy)]
pub struct JmbOverheads {
    /// Lead sync-header airtime + software turnaround before each joint
    /// transmission, seconds.
    pub per_packet_s: f64,
    /// Fraction of airtime consumed by the measurement phase, amortised
    /// over the channel coherence time.
    pub measurement_fraction: f64,
}

impl JmbOverheads {
    /// Computes overheads for a deployment: `measurement_len_s` is the
    /// measurement packet's airtime and `coherence_s` how often it must be
    /// repeated ("on the order of the coherence time of the channel…
    /// several hundreds of milliseconds", §5).
    pub fn new(
        params: &OfdmParams,
        turnaround_s: f64,
        measurement_len_s: f64,
        coherence_s: f64,
    ) -> Self {
        JmbOverheads {
            per_packet_s: 320.0 * params.sample_period() + turnaround_s,
            measurement_fraction: (measurement_len_s / coherence_s).min(1.0),
        }
    }

    /// Amortises the per-packet overhead over a burst of `n` frames sent
    /// back-to-back after one sync header. §5.2 bounds within-packet phase
    /// tracking at "a few hundred microseconds or about 2 ms at most", so a
    /// burst whose total airtime stays within that window needs only one
    /// header + turnaround.
    pub fn with_aggregation(mut self, n: usize) -> Self {
        self.per_packet_s /= n.max(1) as f64;
        self
    }
}

/// Per-frame 802.11 CSMA overhead (DIFS + average backoff + SIFS + ACK),
/// seconds — applies to baselines with real carrier-sensing cards (§11.5).
/// The USRP 802.11 baseline of §11.2 is computed *without* it, exactly as
/// the paper does ("since USRPs don't have carrier sense, we compute 802.11
/// throughput by providing each client with an equal share of the medium").
pub const DOT11_MAC_OVERHEAD_S: f64 = 120e-6;

/// Throughput of the 802.11 TDMA baseline for one client: designated-AP
/// rate × equal medium share × frame efficiency.
pub fn dot11_client_throughput(
    params: &OfdmParams,
    snr_db_per_subcarrier: &[f64],
    n_clients: usize,
    payload_bytes: usize,
) -> f64 {
    dot11_client_throughput_with_mac(params, snr_db_per_subcarrier, n_clients, payload_bytes, 0.0)
}

/// [`dot11_client_throughput`] with an explicit per-frame MAC overhead
/// (contention + acknowledgment airtime).
pub fn dot11_client_throughput_with_mac(
    params: &OfdmParams,
    snr_db_per_subcarrier: &[f64],
    n_clients: usize,
    payload_bytes: usize,
    mac_overhead_s: f64,
) -> f64 {
    let Some(mcs) = esnr::select_mcs(snr_db_per_subcarrier) else {
        return 0.0;
    };
    let airtime = frame_airtime(params, mcs, payload_bytes) + mac_overhead_s;
    let bits = 8.0 * payload_bytes as f64;
    bits / airtime / n_clients as f64
}

/// Throughput of one JMB client in a joint transmission.
///
/// `sinr_db_per_subcarrier` is the client's post-beamforming SINR; the rate
/// is selected *jointly* (same MCS for every client, §9), so the caller
/// passes the already-chosen `mcs`. Returns goodput including the
/// per-packet sync overhead and amortised measurement.
pub fn jmb_client_throughput(
    params: &OfdmParams,
    mcs: Mcs,
    sinr_db_per_subcarrier: &[f64],
    payload_bytes: usize,
    overheads: &JmbOverheads,
) -> f64 {
    let airtime = frame_airtime(params, mcs, payload_bytes) + overheads.per_packet_s;
    let bits = 8.0 * payload_bytes as f64;
    // Packet delivery: effective SNR must clear the MCS threshold; model
    // residual PER consistently with the esnr module.
    let eff = esnr::effective_snr_db_eesm(mcs, sinr_db_per_subcarrier);
    let threshold = esnr::MCS_THRESHOLD_DB[mcs.index()];
    let margin = eff - threshold;
    let per = if margin < 0.0 {
        // Below threshold the PER climbs steeply.
        (1.0 - (margin / 3.0).exp()).clamp(0.0, 1.0).max(0.5)
    } else {
        (0.1 * (-margin).exp()).min(1.0)
    };
    bits * (1.0 - per) / airtime * (1.0 - overheads.measurement_fraction)
}

/// Selects the joint MCS for a set of clients (§9: one rate for all): the
/// fastest MCS whose threshold *every* client's effective SNR clears.
pub fn select_joint_mcs(per_client_sinr_db: &[Vec<f64>]) -> Option<Mcs> {
    let mut best = None;
    for (i, mcs) in Mcs::ALL.iter().enumerate() {
        let ok = per_client_sinr_db
            .iter()
            .all(|sinrs| esnr::effective_snr_db_eesm(*mcs, sinrs) >= esnr::MCS_THRESHOLD_DB[i]);
        if ok {
            best = Some(*mcs);
        }
    }
    best
}

/// Single-AP MU-MIMO reference (what a traditional multi-user beamforming
/// AP with `n_antennas_per_ap` achieves, Fig. 1a): the number of concurrent
/// streams is capped by one AP's antennas regardless of how many APs exist.
pub fn single_ap_mu_mimo_streams(n_antennas_per_ap: usize, n_clients: usize) -> usize {
    n_antennas_per_ap.min(n_clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_phy::params::ChannelProfile;

    fn params() -> OfdmParams {
        OfdmParams::new(ChannelProfile::Usrp10MHz)
    }

    #[test]
    fn frame_airtime_examples() {
        let p = params();
        // 1500 B at 64-QAM 3/4 (27 Mb/s at 10 MHz): 56 data symbols + SIGNAL
        // + preamble = 320 + 57·80 = 4880 samples = 488 µs.
        let t = frame_airtime(&p, Mcs::ALL[7], 1500);
        assert!((t - 488e-6).abs() < 1e-9, "airtime {t}");
        // Longer at lower rates.
        assert!(frame_airtime(&p, Mcs::ALL[0], 1500) > 8.0 * t);
    }

    #[test]
    fn dot11_throughput_bands_match_paper() {
        // §11.2: "802.11 throughput at low SNR is 7.75 Mbps, at medium SNR
        // is around 14.9 Mbps, and at high SNR is 23.6 Mbps" — the *total*
        // medium throughput, i.e. one client's rate before the 1/N share.
        // Check each band's flat-channel result lands in the right
        // neighbourhood (±40%: our MCS thresholds and framing differ in
        // detail from theirs).
        let p = params();
        for (snr, paper) in [(9.0, 7.75e6), (15.0, 14.9e6), (21.5, 23.6e6)] {
            let t = dot11_client_throughput(&p, &vec![snr; 48], 1, 1500);
            assert!(
                (t / paper - 1.0).abs() < 0.4,
                "band {snr} dB: {:.2} Mbps vs paper {:.2}",
                t / 1e6,
                paper / 1e6
            );
        }
    }

    #[test]
    fn dot11_share_splits_medium() {
        let p = params();
        let one = dot11_client_throughput(&p, &vec![20.0; 48], 1, 1500);
        let ten = dot11_client_throughput(&p, &vec![20.0; 48], 10, 1500);
        assert!((one / ten - 10.0).abs() < 1e-9);
    }

    #[test]
    fn dot11_zero_below_floor() {
        let p = params();
        assert_eq!(dot11_client_throughput(&p, &vec![-3.0; 48], 2, 1500), 0.0);
    }

    #[test]
    fn jmb_overheads_reasonable() {
        let p = params();
        let o = JmbOverheads::new(&p, 150e-6, 700e-6, 0.25);
        // Header 32 µs + 150 µs turnaround.
        assert!((o.per_packet_s - 182e-6).abs() < 1e-9);
        assert!((o.measurement_fraction - 0.0028).abs() < 0.001);
    }

    #[test]
    fn jmb_client_beats_share_at_equal_rate() {
        // The essence of Fig. 9: at the same per-client rate, JMB serves
        // everyone concurrently while 802.11 splits the medium N ways.
        let p = params();
        let o = JmbOverheads::new(&p, 150e-6, 700e-6, 0.25);
        let sinrs = vec![20.0; 52];
        let mcs = select_joint_mcs(std::slice::from_ref(&sinrs)).unwrap();
        let jmb = jmb_client_throughput(&p, mcs, &sinrs, 1500, &o);
        let dot11 = dot11_client_throughput(&p, &vec![20.0; 48], 10, 1500);
        assert!(
            jmb > 5.0 * dot11,
            "jmb {:.2} Mbps vs 802.11 share {:.2} Mbps",
            jmb / 1e6,
            dot11 / 1e6
        );
    }

    #[test]
    fn jmb_per_climbs_below_threshold() {
        let p = params();
        let o = JmbOverheads::new(&p, 150e-6, 700e-6, 0.25);
        let good = jmb_client_throughput(&p, Mcs::ALL[4], &vec![18.0; 52], 1500, &o);
        let bad = jmb_client_throughput(&p, Mcs::ALL[4], &vec![8.0; 52], 1500, &o);
        assert!(bad < good * 0.6, "good {good}, bad {bad}");
    }

    #[test]
    fn joint_mcs_limited_by_weakest_client() {
        let strong = vec![25.0; 52];
        let weak = vec![7.0; 52];
        let joint = select_joint_mcs(&[strong.clone(), weak.clone()]).unwrap();
        let alone = select_joint_mcs(&[strong]).unwrap();
        assert!(joint.index() < alone.index());
        assert_eq!(select_joint_mcs(&[vec![-5.0; 52]]), None);
    }

    #[test]
    fn mu_mimo_stream_cap() {
        assert_eq!(single_ap_mu_mimo_streams(2, 10), 2);
        assert_eq!(single_ap_mu_mimo_streams(4, 3), 3);
    }
}
