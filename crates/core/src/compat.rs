//! 802.11n compatibility mode (§6).
//!
//! Off-the-shelf 802.11n clients cannot receive JMB's interleaved
//! measurement packet, and a K-antenna client can only measure K channels
//! per sounding. JMB works around both with two tricks:
//!
//! 1. **Sync header from legacy symbols** (§6.1) — the lead prefixes
//!    mixed-mode packets whose legacy preamble the slaves use exactly like
//!    the custom sync header. Protocol-wise this is identical to the flow
//!    already modelled in [`crate::fastnet`]/[`crate::net`].
//! 2. **Reference-antenna channel stitching** (§6.2) — a series of
//!    two-stream soundings, each containing the reference antenna `L1`
//!    plus one other antenna. The accumulated oscillator phase between
//!    sounding times is measured *through* `L1`'s channels (to the client
//!    and to the slave AP), and each antenna's measurement is rotated back
//!    to the common reference time `t₀`:
//!
//!    ```text
//!    Δφ(S→R) = Δφ(L1→R) − Δφ(L1→S)
//!    ```
//!
//! This module models that flow over the fast medium with 2-antenna APs
//! (two medium nodes sharing one oscillator trajectory — antennas on one
//! device share a crystal) and 2-antenna clients, reproducing the paper's
//! "combine two 2×2 MIMO systems into a 4×4 MIMO system" testbed (§10b).

use crate::error::JmbError;
use crate::phasesync::PhaseSync;
use crate::precoder::Precoder;
use jmb_channel::multipath::{Multipath, MultipathSpec};
use jmb_channel::oscillator::{OscillatorSpec, PhaseTrajectory};
use jmb_channel::Link;
use jmb_dsp::rng::{complex_gaussian, normal, JmbRng};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::chanest::ChannelEstimate;
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;
use jmb_sim::{NodeId, SubcarrierMedium};
use rand::Rng;

/// Antennas per AP and per client in the 802.11n testbed (§10b).
pub const ANTS: usize = 2;

/// Configuration of the 802.11n-compat network: 2 two-antenna APs serving
/// 2 two-antenna clients.
#[derive(Debug, Clone)]
pub struct CompatConfig {
    /// OFDM numerology (the paper uses the 20 MHz profile here).
    pub params: OfdmParams,
    /// Number of 2-antenna APs.
    pub n_aps: usize,
    /// Number of 2-antenna clients.
    pub n_clients: usize,
    /// AP oscillator population (one crystal per device). The paper's
    /// compat testbed still uses USRP2 APs (§10b) — only the clients are
    /// off-the-shelf cards.
    pub osc_spec: OscillatorSpec,
    /// Client oscillator population (Intel 5300-class, ±20 ppm worst case).
    /// Client crystals never enter the inter-AP phase synchronisation; they
    /// are tracked by the clients' own pilot processing.
    pub client_osc_spec: OscillatorSpec,
    /// Per-bin noise variance.
    pub noise_var: f64,
    /// AP↔AP link SNR, dB.
    pub ap_ap_snr_db: f64,
    /// Per-client target SNR, dB.
    pub client_snr_db: Vec<f64>,
    /// Gap between consecutive soundings, seconds (a packet + SIFS-ish).
    pub sounding_gap_s: f64,
    /// Number of repeated sounding rounds averaged per antenna.
    pub sounding_avg: usize,
    /// Master seed.
    pub seed: u64,
}

impl CompatConfig {
    /// The paper's §10b arrangement at a given SNR band target.
    pub fn default_with(client_snr_db: f64, seed: u64) -> Self {
        CompatConfig {
            params: OfdmParams::new(jmb_phy::params::ChannelProfile::Wifi20MHz),
            n_aps: 2,
            n_clients: 2,
            osc_spec: OscillatorSpec::usrp2(),
            client_osc_spec: OscillatorSpec::wifi_worst_case(),
            noise_var: 1.0,
            ap_ap_snr_db: 30.0,
            client_snr_db: vec![client_snr_db; 2],
            sounding_gap_s: 300e-6,
            sounding_avg: 8,
            seed,
        }
    }
}

/// The compat-mode network.
pub struct CompatNet {
    cfg: CompatConfig,
    medium: SubcarrierMedium,
    /// `ap_ants[a][i]` = medium node of AP `a`'s antenna `i`.
    ap_ants: Vec<[NodeId; ANTS]>,
    /// `client_ants[c][i]`.
    client_ants: Vec<[NodeId; ANTS]>,
    /// Per-slave-AP phase sync (lead is AP 0).
    sync: Vec<PhaseSync>,
    /// Stitched channel at t₀: rows = client antennas, cols = AP antennas.
    h_meas: Option<Vec<CMat>>,
    occupied: Vec<i32>,
    now: f64,
    rng: JmbRng,
}

impl CompatNet {
    /// Builds the network. Antennas of one device share an oscillator
    /// trajectory (cloning a [`PhaseTrajectory`] yields an identical,
    /// deterministic future — two antennas on one crystal).
    pub fn new(cfg: CompatConfig) -> Result<Self, JmbError> {
        if cfg.n_aps < 2 || cfg.n_clients == 0 {
            return Err(JmbError::BadConfig(
                "compat mode needs ≥2 APs and ≥1 client",
            ));
        }
        if cfg.client_snr_db.len() != cfg.n_clients {
            return Err(JmbError::BadConfig("client_snr_db length mismatch"));
        }
        if cfg.n_aps * ANTS < cfg.n_clients * ANTS {
            return Err(JmbError::BadConfig("not enough AP antennas"));
        }
        let mut rng = jmb_dsp::rng::rng_from_seed(cfg.seed);
        let mut medium = SubcarrierMedium::new(cfg.params.clone(), rng.gen());
        let carrier = cfg.params.carrier_freq;

        let mut ap_ants = Vec::with_capacity(cfg.n_aps);
        for _ in 0..cfg.n_aps {
            let traj = PhaseTrajectory::new(cfg.osc_spec, carrier, &mut rng);
            let a0 = medium.add_node(traj.clone(), cfg.noise_var);
            let a1 = medium.add_node(traj, cfg.noise_var);
            ap_ants.push([a0, a1]);
        }
        let mut client_ants = Vec::with_capacity(cfg.n_clients);
        for _ in 0..cfg.n_clients {
            let traj = PhaseTrajectory::new(cfg.client_osc_spec, carrier, &mut rng);
            let c0 = medium.add_node(traj.clone(), cfg.noise_var);
            let c1 = medium.add_node(traj, cfg.noise_var);
            client_ants.push([c0, c1]);
        }

        // Links: AP antenna → everything. Antennas of one device get
        // independent fading (half-wavelength separation) but identical
        // large-scale SNR targets.
        for a in 0..cfg.n_aps {
            for b in 0..cfg.n_aps {
                if a == b {
                    continue;
                }
                for &tx in &ap_ants[a] {
                    for &rx in &ap_ants[b] {
                        let mut link = Link::new(
                            Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                            rng.gen::<f64>() * 30e-9,
                            Multipath::new(MultipathSpec::indoor_los(), &mut rng),
                        );
                        link.calibrate_snr(cfg.ap_ap_snr_db, cfg.noise_var);
                        medium.set_link(tx, rx, link);
                    }
                }
            }
        }
        for (c, ants) in client_ants.iter().enumerate() {
            for (a, ap) in ap_ants.iter().enumerate() {
                let snr = if a == c {
                    cfg.client_snr_db[c] // "its" AP is strongest
                } else {
                    cfg.client_snr_db[c] - rng.gen::<f64>() * 6.0
                };
                for &tx in ap {
                    for &rx in ants {
                        let mut link = Link::new(
                            Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                            rng.gen::<f64>() * 60e-9,
                            Multipath::new(MultipathSpec::indoor_nlos(), &mut rng),
                        );
                        link.calibrate_snr(snr, cfg.noise_var);
                        medium.set_link(tx, rx, link);
                    }
                }
            }
        }

        let sync = (1..cfg.n_aps).map(|_| PhaseSync::new()).collect();
        let occupied = cfg.params.occupied_subcarriers();
        Ok(CompatNet {
            cfg,
            medium,
            ap_ants,
            client_ants,
            sync,
            h_meas: None,
            occupied,
            now: 1e-4,
            rng,
        })
    }

    /// Current time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances time.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt >= 0.0);
        self.now += dt;
    }

    /// All AP antenna nodes in column order (AP 0 ant 0, AP 0 ant 1, …).
    fn tx_nodes(&self) -> Vec<NodeId> {
        self.ap_ants.iter().flatten().copied().collect()
    }

    /// All client antenna nodes in row order.
    fn rx_nodes(&self) -> Vec<NodeId> {
        self.client_ants.iter().flatten().copied().collect()
    }

    fn noisy_channel(&mut self, tx: NodeId, rx: NodeId, k: i32, t: f64, n_avg: usize) -> Complex64 {
        let var = self.cfg.noise_var / n_avg as f64;
        self.medium.channel_at(tx, rx, k, t) + complex_gaussian(&mut self.rng, var)
    }

    /// The §6.2 stitched channel measurement.
    ///
    /// Sounding `s` (at time `t_s = t₀ + s·gap`) carries two streams: the
    /// reference antenna `L1` and the `s`-th non-reference antenna. Every
    /// client antenna measures both; every slave AP measures `L1 → self`.
    /// Measurements of antenna `X` taken at `t_s` are rotated back to `t₀`
    /// by `Δφ(L1→R) − Δφ(L1→X's AP)`.
    pub fn run_stitched_measurement(&mut self) -> Result<(), JmbError> {
        let t0 = self.now;
        let gap = self.cfg.sounding_gap_s;
        let avg = self.cfg.sounding_avg;
        let txs = self.tx_nodes();
        let rxs = self.rx_nodes();
        let l1 = txs[0];
        let n_tx = txs.len();
        let n_rx = rxs.len();
        let n_k = self.occupied.len();

        // Sounding schedule: antenna index 1.. measured at sounding s =
        // its position in the non-reference list; L1 measured at t0.
        let mut h = vec![CMat::zeros(n_rx, n_tx); n_k];

        // Per-receiver reference-channel observations of L1 at every
        // sounding time (for Δφ(L1→R)). The accumulated rotation is a
        // common phase plus a small sampling-offset slope across the band,
        // so the per-subcarrier raw ratios are smoothed by a linear-phase
        // fit before being applied — a raw per-subcarrier rotation would
        // inject its full estimation noise into every stitched entry.
        let occupied = self.occupied.clone();
        for s in 0..n_tx {
            // Sounding s measures antenna column s (s=0 is the L1-only
            // baseline sounding).
            let t_s = t0 + s as f64 * gap;
            let ap_of_x = s / ANTS;
            for (r, &rx) in rxs.iter().enumerate() {
                if s == 0 {
                    for (k_idx, &k) in occupied.iter().enumerate() {
                        h[k_idx][(r, 0)] = self.noisy_channel(l1, rx, k, t0, avg);
                    }
                    continue;
                }
                // Raw per-subcarrier rotation phasors.
                let mut raw = Vec::with_capacity(n_k);
                for &k in &occupied {
                    let l1_now = self.noisy_channel(l1, rx, k, t_s, avg);
                    let l1_ref = self.noisy_channel(l1, rx, k, t0, avg);
                    let dphi_l1_r = l1_now * l1_ref.conj();
                    let rot = if ap_of_x == 0 {
                        // Same device as L1: X shares L1's oscillator, so
                        // the accumulated offset vs this receiver is
                        // exactly Δφ(L1→R).
                        dphi_l1_r
                    } else {
                        // Slave AP: Δφ(X→R) = Δφ(L1→R) − Δφ(L1→S).
                        let sap = self.ap_ants[ap_of_x][0];
                        let l1_s_now = self.noisy_channel(l1, sap, k, t_s, avg);
                        let l1_s_ref = self.noisy_channel(l1, sap, k, t0, avg);
                        let dphi_l1_s = l1_s_now * l1_s_ref.conj();
                        dphi_l1_r * dphi_l1_s.conj()
                    };
                    raw.push(rot);
                }
                let ks: Vec<f64> = occupied.iter().map(|&k| k as f64).collect();
                let (common, slope) = jmb_dsp::complex::fit_linear_phase(&ks, &raw);
                let x = txs[s];
                for (k_idx, &k) in occupied.iter().enumerate() {
                    let meas = self.noisy_channel(x, rx, k, t_s, avg);
                    let rot_back = Complex64::cis(-(common + slope * k as f64));
                    h[k_idx][(r, s)] = meas * rot_back;
                }
            }
        }

        // Slave phase-sync references (anchored at t0) + CFO seeds from the
        // sounding series (span = (n_tx−1)·gap).
        let span = (n_tx - 1) as f64 * gap;
        let seed_sigma = (0.02 / (2.0 * std::f64::consts::PI * span)).max(5.0);
        for a in 1..self.cfg.n_aps {
            let sap = self.ap_ants[a][0];
            let gains: Vec<Complex64> = occupied
                .iter()
                .map(|&k| self.noisy_channel(l1, sap, k, t0, 2))
                .collect();
            let est = ChannelEstimate {
                subcarriers: occupied.clone(),
                gains,
            };
            let true_cfo = {
                let f_l = self.medium.trajectory_mut(l1).cfo_hz_at(t0);
                let f_s = self.medium.trajectory_mut(sap).cfo_hz_at(t0);
                f_l - f_s
            };
            let seed = true_cfo + normal(&mut self.rng, seed_sigma);
            self.sync[a - 1].set_reference(est.clone());
            self.sync[a - 1].seed_cfo(&est, seed, seed_sigma, t0);
        }

        self.h_meas = Some(h);
        self.now = t0 + n_tx as f64 * gap + 100e-6;
        Ok(())
    }

    /// The stitched channel (after measurement).
    pub fn measured_channel(&self) -> Option<&[CMat]> {
        self.h_meas.as_deref()
    }

    /// One virtual 4×4 joint transmission: returns per-*stream* SINR
    /// (dB) per subcarrier, streams ordered like client antennas.
    pub fn joint_sinr(&mut self, packet_duration_s: f64) -> Result<Vec<Vec<f64>>, JmbError> {
        let h = self.h_meas.clone().ok_or(JmbError::NoReference)?;
        let precoder = Precoder::zero_forcing(&h)?;
        let t_h = self.now;
        let t_meas = t_h + 20e-6;
        let txs = self.tx_nodes();
        let rxs = self.rx_nodes();
        let l1 = txs[0];
        let occupied = self.occupied.clone();

        // Slave corrections from the legacy-symbol header (§6.1).
        let mut corr: Vec<Option<crate::phasesync::PhaseCorrection>> = vec![None; self.cfg.n_aps];
        for (a, slot) in corr.iter_mut().enumerate().skip(1) {
            let sap = self.ap_ants[a][0];
            let gains: Vec<Complex64> = occupied
                .iter()
                .map(|&k| self.noisy_channel(l1, sap, k, t_meas, 2))
                .collect();
            let est = ChannelEstimate {
                subcarriers: occupied.clone(),
                gains,
            };
            let raw = {
                let f_l = self.medium.trajectory_mut(l1).cfo_hz_at(t_meas);
                let f_s = self.medium.trajectory_mut(sap).cfo_hz_at(t_meas);
                f_l - f_s + normal(&mut self.rng, 200.0)
            };
            self.sync[a - 1].observe_header(&est, raw, t_meas);
            *slot = Some(self.sync[a - 1].correction(&est)?);
        }

        let t_d = t_h + 20e-6 + 150e-6;
        let probes = [
            t_d + 0.25 * packet_duration_s,
            t_d + 0.75 * packet_duration_s,
        ];
        let nv = self.cfg.noise_var;
        let spacing = self.cfg.params.subcarrier_spacing();
        let carrier = self.cfg.params.carrier_freq;
        let n_streams = rxs.len();
        let mut out = vec![vec![0.0; occupied.len()]; n_streams];
        for (k_idx, &k) in occupied.iter().enumerate() {
            let w = precoder.weights_at(k_idx).clone();
            let mut sig = vec![0.0; n_streams];
            let mut intf = vec![0.0; n_streams];
            for &t in &probes {
                let h_now = self.medium.channel_matrix(&txs, &rxs, k, t);
                let mut eff = CMat::zeros(n_streams, txs.len());
                for (i, _tx) in txs.iter().enumerate() {
                    let ap = i / ANTS;
                    let c = match &corr[ap] {
                        Some(c) => c.correction_at(k, t - t_meas, spacing, carrier),
                        None => Complex64::ONE,
                    };
                    for r in 0..n_streams {
                        eff[(r, i)] = h_now[(r, i)] * c;
                    }
                }
                let g = eff.mul_mat(&w).expect("shapes fixed");
                for r in 0..n_streams {
                    sig[r] += g[(r, r)].norm_sqr();
                    for s in 0..n_streams {
                        if s != r {
                            intf[r] += g[(r, s)].norm_sqr();
                        }
                    }
                }
            }
            for r in 0..n_streams {
                out[r][k_idx] = jmb_dsp::stats::lin_to_db((sig[r] / 2.0) / (nv + intf[r] / 2.0));
            }
        }
        self.now = t_d + packet_duration_s + 100e-6;
        Ok(out)
    }

    /// JMB throughput for each client: both its streams at the jointly
    /// selected rate, served concurrently.
    pub fn jmb_throughput(&mut self, payload_bytes: usize) -> Result<Vec<f64>, JmbError> {
        let params = self.cfg.params.clone();
        let duration = crate::baseline::frame_airtime(&params, Mcs::ALL[4], payload_bytes);
        let per_stream = self.joint_sinr(duration)?;
        let mcs = crate::baseline::select_joint_mcs(&per_stream);
        let Some(mcs) = mcs else {
            return Ok(vec![0.0; self.cfg.n_clients]);
        };
        let over =
            crate::baseline::JmbOverheads::new(&params, 150e-6, 1.5e-3, 0.25).with_aggregation(4);
        let mut out = Vec::with_capacity(self.cfg.n_clients);
        for c in 0..self.cfg.n_clients {
            let mut total = 0.0;
            for ant in 0..ANTS {
                total += crate::baseline::jmb_client_throughput(
                    &params,
                    mcs,
                    &per_stream[c * ANTS + ant],
                    payload_bytes,
                    &over,
                );
            }
            out.push(total);
        }
        Ok(out)
    }

    /// 802.11n baseline throughput for each client: its own AP transmits a
    /// 2-stream MIMO packet (receiver-side zero forcing), and each
    /// transmitter gets an equal share of the medium (§11.5 methodology).
    pub fn dot11n_throughput(&mut self, payload_bytes: usize) -> Vec<f64> {
        let t = self.now;
        let params = self.cfg.params.clone();
        let nv = self.cfg.noise_var;
        let occupied = self.occupied.clone();
        let mut out = Vec::with_capacity(self.cfg.n_clients);
        for c in 0..self.cfg.n_clients {
            let ap = c.min(self.cfg.n_aps - 1); // its designated AP
            let txs = self.ap_ants[ap].to_vec();
            let rxs = self.client_ants[c].to_vec();
            // Per-stream post-ZF SNR: streams at half power each;
            // SNR_s = (1/2)/(nv·[(HᴴH)⁻¹]_ss).
            let mut stream_snrs: Vec<Vec<f64>> = (0..ANTS)
                .map(|_| Vec::with_capacity(occupied.len()))
                .collect();
            for &k in &occupied {
                let h = self.medium.channel_matrix(&txs, &rxs, k, t);
                let gram = h.hermitian().mul_mat(&h).expect("2x2");
                match gram.inverse() {
                    Ok(inv) => {
                        for (s, snrs) in stream_snrs.iter_mut().enumerate() {
                            let denom = inv[(s, s)].re.max(1e-12);
                            snrs.push(jmb_dsp::stats::lin_to_db(0.5 / (nv * denom)));
                        }
                    }
                    Err(_) => {
                        for snrs in stream_snrs.iter_mut() {
                            snrs.push(-30.0);
                        }
                    }
                }
            }
            let mut rate = 0.0;
            for snrs in &stream_snrs {
                rate += crate::baseline::dot11_client_throughput_with_mac(
                    &params,
                    snrs,
                    1,
                    payload_bytes,
                    crate::baseline::DOT11_MAC_OVERHEAD_S,
                );
            }
            // Equal share of the medium between the transmitters.
            out.push(rate / self.cfg.n_aps as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stitched_measurement_matches_truth() {
        // The stitched H (referred to t0) must match the true channel at t0
        // up to per-row phase references and measurement noise — i.e. the
        // rotation-back must cancel the oscillator drift between soundings.
        let mut net = CompatNet::new(CompatConfig::default_with(25.0, 1)).unwrap();
        let t0 = net.now();
        // Ground truth at t0 before the measurement advances time.
        let txs = net.tx_nodes();
        let rxs = net.rx_nodes();
        let mut truth = vec![CMat::zeros(4, 4); net.occupied.len()];
        let occ = net.occupied.clone();
        for (k_idx, &k) in occ.iter().enumerate() {
            truth[k_idx] = net.medium.channel_matrix(&txs, &rxs, k, t0);
        }
        net.run_stitched_measurement().unwrap();
        let h = net.measured_channel().unwrap();
        // Column-relative comparison per row (per-row phase is arbitrary).
        let mut worst: f64 = 0.0;
        for k_idx in [0usize, 25, 51] {
            for r in 0..4 {
                for i in 1..4 {
                    let m_ratio = h[k_idx][(r, i)] / h[k_idx][(r, 0)];
                    let t_ratio = truth[k_idx][(r, i)] / truth[k_idx][(r, 0)];
                    let err = (m_ratio / t_ratio - Complex64::ONE).abs();
                    worst = worst.max(err);
                }
            }
        }
        assert!(worst < 0.25, "worst stitching error {worst}");
    }

    #[test]
    fn joint_4x4_sinr_usable() {
        let mut net = CompatNet::new(CompatConfig::default_with(22.0, 2)).unwrap();
        net.run_stitched_measurement().unwrap();
        net.advance(2e-3);
        let sinrs = net.joint_sinr(300e-6).unwrap();
        assert_eq!(sinrs.len(), 4);
        for (s, per_k) in sinrs.iter().enumerate() {
            let mean = jmb_dsp::stats::mean(per_k);
            assert!(mean > 3.0, "stream {s}: mean SINR {mean}");
        }
    }

    #[test]
    fn jmb_beats_dot11n_on_average() {
        // Fig. 12's claim: ~1.67–1.83× average gain. Verify the direction
        // with a small ensemble.
        let mut gains = Vec::new();
        for seed in 0..6 {
            let mut net = CompatNet::new(CompatConfig::default_with(22.0, 10 + seed)).unwrap();
            net.run_stitched_measurement().unwrap();
            net.advance(2e-3);
            let jmb: f64 = net.jmb_throughput(1500).unwrap().iter().sum();
            let dot: f64 = net.dot11n_throughput(1500).iter().sum();
            if dot > 0.0 {
                gains.push(jmb / dot);
            }
        }
        let mean = jmb_dsp::stats::mean(&gains);
        // Paper: 1.67–1.83× average. Our reproduction lands lower (~1.2–
        // 1.5×: the jointly selected rate pays the min over four streams
        // while the baseline rate-adapts per client); the directional claim
        // and the ≤2× theoretical bound are the assertions here, and
        // EXPERIMENTS.md records the quantitative delta.
        assert!(mean > 1.1, "mean gain {mean}");
        assert!(
            mean < 2.2,
            "mean gain {mean} exceeds the 2× bound implausibly"
        );
    }

    #[test]
    fn shared_crystal_antennas_rotate_together() {
        let mut net = CompatNet::new(CompatConfig::default_with(20.0, 3)).unwrap();
        let [a0, a1] = net.ap_ants[0];
        let p0 = net.medium.trajectory_mut(a0).phase_at(1e-3);
        let p1 = net.medium.trajectory_mut(a1).phase_at(1e-3);
        assert_eq!(p0, p1, "antennas of one AP must share the oscillator");
    }

    #[test]
    fn config_validation() {
        let mut bad = CompatConfig::default_with(20.0, 1);
        bad.n_aps = 1;
        assert!(CompatNet::new(bad).is_err());
        let mut bad2 = CompatConfig::default_with(20.0, 1);
        bad2.client_snr_db.pop();
        assert!(CompatNet::new(bad2).is_err());
    }

    #[test]
    fn joint_requires_measurement() {
        let mut net = CompatNet::new(CompatConfig::default_with(20.0, 4)).unwrap();
        assert!(matches!(net.joint_sinr(1e-4), Err(JmbError::NoReference)));
    }
}
