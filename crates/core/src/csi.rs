//! CSI freshness tracking and per-slave sync health (§7, robustness).
//!
//! JMB decouples channel measurement from data transmission (§7): CSI is
//! measured once and then *aged* while the phase-sync layer extrapolates.
//! When a measurement frame is lost the CSI simply stays stale — the
//! system must notice, re-measure, and back off if re-measurements keep
//! failing, rather than hammering the channel or stalling. [`CsiTracker`]
//! owns that logic: per-(AP, client) measurement timestamps, an age →
//! confidence map, and a capped exponential backoff schedule.
//!
//! [`SyncHealth`] is the companion for the *sync header*: a slave that
//! misses the lead's header K times in a row is marked degraded and
//! excluded from joint batches until it hears a header again.

use crate::error::JmbError;

/// Capped exponential backoff for re-measurement attempts.
///
/// Attempt `n` (1-based) is delayed by `initial_s * multiplier^(n-1)`,
/// saturating at `max_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay after the first failure, seconds.
    pub initial_s: f64,
    /// Growth factor per consecutive failure.
    pub multiplier: f64,
    /// Upper bound on the delay, seconds.
    pub max_s: f64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        // 2 ms first retry — roughly one joint-transmission airtime — doubling
        // up to 64 ms, the order of the channel coherence time budget.
        BackoffPolicy {
            initial_s: 2e-3,
            multiplier: 2.0,
            max_s: 64e-3,
        }
    }
}

impl BackoffPolicy {
    /// Delay before attempt number `failures` (1-based), seconds.
    pub fn delay_s(&self, failures: u32) -> f64 {
        let exp = failures.saturating_sub(1).min(63);
        (self.initial_s * self.multiplier.powi(exp as i32)).min(self.max_s)
    }
}

/// Tracks per-(AP, client) CSI age and schedules backoff re-measurement.
///
/// Time is the caller's simulation clock in seconds; the tracker never
/// reads a wall clock. Entries start at "never measured" and become due
/// immediately.
#[derive(Debug, Clone)]
pub struct CsiTracker {
    n_aps: usize,
    n_clients: usize,
    /// Flattened (ap, client) → time of last successful measurement;
    /// `NEG_INFINITY` means never measured.
    measured_at: Vec<f64>,
    stale_after_s: f64,
    policy: BackoffPolicy,
    failures: u32,
    next_attempt_s: f64,
}

impl CsiTracker {
    /// Creates a tracker for an `n_aps × n_clients` CSI matrix that
    /// considers entries stale after `stale_after_s` seconds.
    pub fn new(
        n_aps: usize,
        n_clients: usize,
        stale_after_s: f64,
        policy: BackoffPolicy,
    ) -> Result<Self, JmbError> {
        if n_aps == 0 || n_clients == 0 {
            return Err(JmbError::BadConfig(
                "CsiTracker needs at least one AP and one client",
            ));
        }
        // The comparisons reject NaN too (any comparison with NaN is false).
        let positive = |x: f64| x > 0.0;
        let at_least_one = |x: f64| x >= 1.0;
        if !positive(stale_after_s) {
            return Err(JmbError::BadConfig(
                "CSI staleness threshold must be positive",
            ));
        }
        if !positive(policy.initial_s)
            || !at_least_one(policy.multiplier)
            || !positive(policy.max_s)
        {
            return Err(JmbError::BadConfig(
                "backoff needs initial_s > 0, multiplier >= 1, max_s > 0",
            ));
        }
        Ok(CsiTracker {
            n_aps,
            n_clients,
            measured_at: vec![f64::NEG_INFINITY; n_aps * n_clients],
            stale_after_s,
            policy,
            failures: 0,
            next_attempt_s: f64::NEG_INFINITY,
        })
    }

    /// The staleness threshold, seconds.
    pub fn stale_after_s(&self) -> f64 {
        self.stale_after_s
    }

    /// A full joint measurement succeeded at time `t`: every entry is
    /// fresh and the failure streak resets.
    pub fn record_success(&mut self, t: f64) {
        self.measured_at.fill(t);
        self.failures = 0;
        self.next_attempt_s = t;
    }

    /// A single-client re-measurement (§7 decoupled measurement) succeeded
    /// at time `t`; only that client's column is refreshed.
    pub fn record_client_success(&mut self, client: usize, t: f64) {
        if client >= self.n_clients {
            return;
        }
        for ap in 0..self.n_aps {
            self.measured_at[ap * self.n_clients + client] = t;
        }
        self.failures = 0;
        self.next_attempt_s = t;
    }

    /// A measurement frame was lost at time `t`. Advances the backoff and
    /// returns `(attempt_number, next_attempt_time_s)` for the retry that
    /// was just scheduled.
    pub fn record_loss(&mut self, t: f64) -> (u32, f64) {
        self.failures += 1;
        let delay = self.policy.delay_s(self.failures);
        self.next_attempt_s = t + delay;
        (self.failures, self.next_attempt_s)
    }

    /// Consecutive failed measurement attempts since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Earliest time the next measurement attempt may run, seconds.
    pub fn next_attempt_s(&self) -> f64 {
        self.next_attempt_s
    }

    /// Age of one CSI entry at time `t` (infinite if never measured).
    pub fn age(&self, ap: usize, client: usize, t: f64) -> f64 {
        let at = self.measured_at[ap * self.n_clients + client];
        if at == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            (t - at).max(0.0)
        }
    }

    /// Age of the *oldest* CSI entry at time `t`.
    pub fn oldest_age(&self, t: f64) -> f64 {
        let oldest = self
            .measured_at
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        if oldest == f64::NEG_INFINITY {
            f64::INFINITY
        } else {
            (t - oldest).max(0.0)
        }
    }

    /// Confidence in one entry at time `t`: `exp(-age / stale_after)`,
    /// so 1.0 when fresh, `1/e` exactly at the staleness threshold.
    pub fn confidence(&self, ap: usize, client: usize, t: f64) -> f64 {
        (-self.age(ap, client, t) / self.stale_after_s).exp()
    }

    /// Whether any entry has outlived the staleness threshold at time `t`.
    pub fn is_stale(&self, t: f64) -> bool {
        self.oldest_age(t) > self.stale_after_s
    }

    /// Whether a (re-)measurement should run at time `t`: the CSI is
    /// stale (or was never measured) *and* the backoff window has passed.
    pub fn due(&self, t: f64) -> bool {
        self.is_stale(t) && t >= self.next_attempt_s
    }
}

/// Per-slave sync-header health: K consecutive misses mark the slave
/// degraded; hearing a header again restores it.
#[derive(Debug, Clone)]
pub struct SyncHealth {
    degrade_after: u32,
    consecutive_misses: u32,
    degraded: bool,
    total_misses: u64,
}

impl SyncHealth {
    /// Creates a healthy slave that degrades after `degrade_after`
    /// consecutive missed sync headers (minimum 1).
    pub fn new(degrade_after: u32) -> Self {
        SyncHealth {
            degrade_after: degrade_after.max(1),
            consecutive_misses: 0,
            degraded: false,
            total_misses: 0,
        }
    }

    /// Records a missed sync header. Returns `true` iff this miss newly
    /// degraded the slave.
    pub fn record_miss(&mut self) -> bool {
        self.consecutive_misses += 1;
        self.total_misses += 1;
        if !self.degraded && self.consecutive_misses >= self.degrade_after {
            self.degraded = true;
            return true;
        }
        false
    }

    /// Records a successfully heard sync header. Returns `true` iff the
    /// slave was degraded and is newly restored.
    pub fn record_sync(&mut self) -> bool {
        self.consecutive_misses = 0;
        let was = self.degraded;
        self.degraded = false;
        was
    }

    /// Whether the slave is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Consecutive misses in the current streak.
    pub fn consecutive_misses(&self) -> u32 {
        self.consecutive_misses
    }

    /// Missed headers over the slave's lifetime.
    pub fn total_misses(&self) -> u64 {
        self.total_misses
    }
}

impl Default for SyncHealth {
    /// Degrades after 3 consecutive misses.
    fn default() -> Self {
        SyncHealth::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = BackoffPolicy {
            initial_s: 1e-3,
            multiplier: 2.0,
            max_s: 8e-3,
        };
        assert!((p.delay_s(1) - 1e-3).abs() < 1e-12);
        assert!((p.delay_s(2) - 2e-3).abs() < 1e-12);
        assert!((p.delay_s(3) - 4e-3).abs() < 1e-12);
        assert!((p.delay_s(4) - 8e-3).abs() < 1e-12);
        assert!((p.delay_s(10) - 8e-3).abs() < 1e-12, "capped");
        assert!((p.delay_s(100) - 8e-3).abs() < 1e-12, "no overflow");
    }

    #[test]
    fn tracker_rejects_bad_config() {
        let p = BackoffPolicy::default();
        assert!(matches!(
            CsiTracker::new(0, 4, 0.05, p),
            Err(JmbError::BadConfig(_))
        ));
        assert!(matches!(
            CsiTracker::new(4, 0, 0.05, p),
            Err(JmbError::BadConfig(_))
        ));
        assert!(matches!(
            CsiTracker::new(4, 4, 0.0, p),
            Err(JmbError::BadConfig(_))
        ));
        let bad = BackoffPolicy {
            multiplier: 0.5,
            ..p
        };
        assert!(matches!(
            CsiTracker::new(4, 4, 0.05, bad),
            Err(JmbError::BadConfig(_))
        ));
    }

    #[test]
    fn never_measured_is_due_immediately() {
        let t = CsiTracker::new(2, 2, 0.05, BackoffPolicy::default()).unwrap();
        assert!(t.is_stale(0.0));
        assert!(t.due(0.0));
        assert_eq!(t.age(0, 0, 1.0), f64::INFINITY);
        assert_eq!(t.confidence(0, 0, 1.0), 0.0);
    }

    #[test]
    fn success_resets_age_and_failures() {
        let mut t = CsiTracker::new(2, 2, 0.05, BackoffPolicy::default()).unwrap();
        t.record_loss(0.0);
        t.record_loss(0.01);
        assert_eq!(t.failures(), 2);
        t.record_success(0.02);
        assert_eq!(t.failures(), 0);
        assert!((t.age(1, 1, 0.03) - 0.01).abs() < 1e-12);
        assert!(!t.is_stale(0.03));
        assert!(!t.due(0.03));
        // Past the threshold it becomes due again.
        assert!(t.due(0.08));
    }

    #[test]
    fn client_success_refreshes_one_column() {
        let mut t = CsiTracker::new(2, 3, 0.05, BackoffPolicy::default()).unwrap();
        t.record_success(0.0);
        t.record_client_success(1, 0.1);
        assert!((t.age(0, 1, 0.1)).abs() < 1e-12);
        assert!((t.age(0, 0, 0.1) - 0.1).abs() < 1e-12);
        assert!((t.oldest_age(0.1) - 0.1).abs() < 1e-12);
        // Out-of-range client is ignored rather than panicking.
        t.record_client_success(99, 0.2);
    }

    #[test]
    fn loss_schedules_capped_exponential_retries() {
        let p = BackoffPolicy {
            initial_s: 2e-3,
            multiplier: 2.0,
            max_s: 8e-3,
        };
        let mut t = CsiTracker::new(1, 1, 0.05, p).unwrap();
        let (a1, at1) = t.record_loss(1.0);
        assert_eq!(a1, 1);
        assert!((at1 - 1.002).abs() < 1e-9);
        assert!(!t.due(1.001), "backoff gates the retry");
        assert!(t.due(1.002));
        let (a2, at2) = t.record_loss(1.002);
        assert_eq!(a2, 2);
        assert!((at2 - 1.006).abs() < 1e-9);
        let (_, at3) = t.record_loss(at2);
        let (_, at4) = t.record_loss(at3);
        let (a5, at5) = t.record_loss(at4);
        assert_eq!(a5, 5);
        assert!((at5 - at4 - 8e-3).abs() < 1e-9, "delay saturates at max_s");
    }

    #[test]
    fn confidence_decays_with_age() {
        let mut t = CsiTracker::new(1, 1, 0.1, BackoffPolicy::default()).unwrap();
        t.record_success(0.0);
        assert!((t.confidence(0, 0, 0.0) - 1.0).abs() < 1e-12);
        let at_thresh = t.confidence(0, 0, 0.1);
        assert!((at_thresh - (-1.0f64).exp()).abs() < 1e-12);
        assert!(t.confidence(0, 0, 0.2) < at_thresh);
    }

    #[test]
    fn sync_health_degrades_after_k_and_restores() {
        let mut h = SyncHealth::new(3);
        assert!(!h.record_miss());
        assert!(!h.record_miss());
        assert!(!h.is_degraded());
        assert!(h.record_miss(), "third consecutive miss degrades");
        assert!(h.is_degraded());
        assert!(!h.record_miss(), "already degraded: not *newly* degraded");
        assert_eq!(h.total_misses(), 4);
        assert!(h.record_sync(), "hearing a header restores");
        assert!(!h.is_degraded());
        assert_eq!(h.consecutive_misses(), 0);
        assert!(!h.record_sync(), "already healthy");
    }

    #[test]
    fn sync_health_streak_resets_on_sync() {
        let mut h = SyncHealth::new(2);
        h.record_miss();
        h.record_sync();
        assert!(!h.record_miss(), "streak was reset");
        assert!(h.record_miss());
    }

    #[test]
    fn sync_health_min_k_is_one() {
        let mut h = SyncHealth::new(0);
        assert!(h.record_miss(), "K clamps to 1");
    }
}
