//! Decoupled channel measurements to different receivers (§7 + appendix).
//!
//! A receiver that joins the network after the last measurement phase (or
//! whose channel alone has changed) should not force re-measuring everyone.
//! The appendix proves the channel matrix still factors as
//! `H(t) = R(t)·H̃·T(t)` when row `j` is measured at its own time `t_j`,
//! provided each slave AP rotates its entry of the late-measured rows back
//! to the first measurement time using its **lead-reference channel**:
//!
//! ```text
//! H̃[j][i] = h_ji(t_j) · e^{−j(ω_lead − ω_i)(t_j − t_1)}
//! ```
//!
//! with the rotation factor computed as the ratio of the slave's two
//! reference-channel observations, `h_lead_i(t_j) / h_lead_i(t_1)` — again a
//! direct phase measurement, no frequency extrapolation.

use jmb_dsp::{CMat, Complex64};

/// Rotates the rows of a channel matrix measured at per-row times back to a
/// common reference, using per-(row, column) rotation phasors.
///
/// `rows_measured[j]` are row `j`'s per-column measurements `h_ji(t_j)`;
/// `rotation[j][i]` is the slave-computed accumulated phase
/// `e^{j(ω_lead − ω_i)(t_j − t_1)}` for column `i` at row `j`'s measurement
/// time (identity for the lead column and for rows measured at `t_1`).
///
/// Returns the stitched time-invariant matrix `H̃`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn stitch_rows(rows_measured: &[Vec<Complex64>], rotation: &[Vec<Complex64>]) -> CMat {
    assert_eq!(rows_measured.len(), rotation.len(), "row count mismatch");
    let n_rows = rows_measured.len();
    assert!(n_rows > 0, "no rows");
    let n_cols = rows_measured[0].len();
    let mut h = CMat::zeros(n_rows, n_cols);
    for (j, (row, rot)) in rows_measured.iter().zip(rotation).enumerate() {
        assert_eq!(row.len(), n_cols, "ragged rows");
        assert_eq!(rot.len(), n_cols, "ragged rotations");
        for i in 0..n_cols {
            // Undo the accumulated rotation: multiply by its conjugate.
            h[(j, i)] = row[i] * rot[i].conj();
        }
    }
    h
}

/// Computes the per-column rotation phasors for a row measured at `t_j`,
/// from each slave's two lead-reference observations (the ratio
/// `h_lead_i(t_j)/h_lead_i(t_1)`, phase-only). The lead column (index 0)
/// gets the identity.
pub fn rotations_from_references(
    reference_at_t1: &[Vec<Complex64>],
    reference_at_tj: &[Vec<Complex64>],
) -> Vec<Complex64> {
    assert_eq!(reference_at_t1.len(), reference_at_tj.len());
    let mut out = vec![Complex64::ONE];
    for (r1, rj) in reference_at_t1.iter().zip(reference_at_tj) {
        assert_eq!(r1.len(), rj.len());
        // Average the ratio across subcarriers (wrap-safe circular mean).
        let mut acc = Complex64::ZERO;
        for (a, b) in rj.iter().zip(r1) {
            acc += *a * b.conj();
        }
        out.push(acc.normalize());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precoder::Precoder;
    use jmb_dsp::rng::{complex_gaussian, rng_from_seed};

    /// Synthetic §7 scenario: N APs with distinct oscillator offsets, rows
    /// measured at different times, stitched, then used for beamforming at
    /// a later time with the usual per-slave T(t) corrections. Verifies the
    /// appendix's factorisation end to end.
    #[test]
    fn decoupled_measurement_supports_beamforming() {
        let n = 3;
        let mut rng = rng_from_seed(1);
        // Static physical channel and AP frequency offsets.
        let h_bar: Vec<Vec<Complex64>> = (0..n)
            .map(|_| (0..n).map(|_| complex_gaussian(&mut rng, 1.0)).collect())
            .collect();
        let omegas: Vec<f64> = (0..n).map(|i| (i as f64 - 1.0) * 2.0e3).collect(); // Hz
        let t_meas: Vec<f64> = vec![0.0, 3e-3, 7e-3]; // per-row times
        let phase = |i: usize, t: f64| 2.0 * std::f64::consts::PI * omegas[i] * t;

        // Row j measured at t_j: h_ji(t_j) = h̄_ji·e^{j ω_i t_j} (receiver
        // phase folds into a common per-row factor we can ignore).
        let rows: Vec<Vec<Complex64>> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| h_bar[j][i] * Complex64::cis(phase(i, t_meas[j])))
                    .collect()
            })
            .collect();
        // Slave references: h_lead_i(t) ∝ e^{j(ω_0 − ω_i)t}. Build the
        // per-row rotation sets.
        let rotations: Vec<Vec<Complex64>> = (0..n)
            .map(|j| {
                let t1: Vec<Vec<Complex64>> = (1..n)
                    .map(|i| vec![Complex64::cis(phase(0, t_meas[0]) - phase(i, t_meas[0])); 4])
                    .collect();
                let tj: Vec<Vec<Complex64>> = (1..n)
                    .map(|i| vec![Complex64::cis(phase(0, t_meas[j]) - phase(i, t_meas[j])); 4])
                    .collect();
                rotations_from_references(&t1, &tj)
            })
            .collect();
        let h_tilde = stitch_rows(&rows, &rotations);

        // Beamform at a later time t with per-slave corrections relative to
        // t_1 (the appendix's T(t)): correction_i = e^{j(ω_0 − ω_i)(t − t_1)}.
        let t = 12e-3;
        let w = Precoder::zero_forcing(&[h_tilde]).unwrap();
        let mut eff = CMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let phys = h_bar[j][i] * Complex64::cis(phase(i, t));
                let corr = Complex64::cis(
                    (phase(0, t) - phase(0, t_meas[0])) - (phase(i, t) - phase(i, t_meas[0])),
                );
                eff[(j, i)] = phys * corr;
            }
        }
        let g = eff.mul_mat(w.weights_at(0)).unwrap();
        // Interference must be nulled; the diagonal may carry a per-row
        // phase (R(t)) and the lead's common rotation, and its magnitude is
        // the per-stream gain.
        for j in 0..n {
            let diag = g[(j, j)].abs();
            assert!(diag > 0.05, "diag ({j},{j}) too small: {diag}");
            for s in 0..n {
                if s != j {
                    assert!(
                        g[(j, s)].abs() < 1e-9 * diag.max(1.0),
                        "leak ({j},{s}): {}",
                        g[(j, s)]
                    );
                }
            }
        }
    }

    #[test]
    fn without_stitching_beamforming_fails() {
        // Ablation: same scenario, but rows used raw (no rotation back).
        let n = 2;
        let mut rng = rng_from_seed(2);
        let h_bar: Vec<Vec<Complex64>> = (0..n)
            .map(|_| (0..n).map(|_| complex_gaussian(&mut rng, 1.0)).collect())
            .collect();
        let omegas = [0.0, 1.7e3];
        let t_meas = [0.0, 5e-3];
        let phase = |i: usize, t: f64| 2.0 * std::f64::consts::PI * omegas[i] * t;
        let rows: Vec<Vec<Complex64>> = (0..n)
            .map(|j| {
                (0..n)
                    .map(|i| h_bar[j][i] * Complex64::cis(phase(i, t_meas[j])))
                    .collect()
            })
            .collect();
        let raw = stitch_rows(&rows, &vec![vec![Complex64::ONE; n]; n]);
        let w = Precoder::zero_forcing(&[raw]).unwrap();
        let t = 8e-3;
        let mut eff = CMat::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                let phys = h_bar[j][i] * Complex64::cis(phase(i, t));
                let corr = Complex64::cis(
                    (phase(0, t) - phase(0, t_meas[0])) - (phase(i, t) - phase(i, t_meas[0])),
                );
                eff[(j, i)] = phys * corr;
            }
        }
        let g = eff.mul_mat(w.weights_at(0)).unwrap();
        let leak = g[(0, 1)].abs().max(g[(1, 0)].abs());
        assert!(
            leak > 0.05 * w.k_hat(),
            "expected visible leakage without stitching, got {leak}"
        );
    }

    #[test]
    fn rotation_helpers_shapes() {
        let r1 = vec![vec![Complex64::ONE; 3]];
        let rj = vec![vec![Complex64::cis(0.4); 3]];
        let rot = rotations_from_references(&r1, &rj);
        assert_eq!(rot.len(), 2);
        assert_eq!(rot[0], Complex64::ONE);
        assert!((rot[1] - Complex64::cis(0.4)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn stitch_validates_shapes() {
        stitch_rows(&[vec![Complex64::ONE]], &[]);
    }
}
