//! Error types for the JMB protocol stack.

use jmb_dsp::matrix::MatError;
use jmb_phy::frame::{RxError, TxError};

/// Any failure in the JMB protocol pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum JmbError {
    /// The joint channel matrix could not be inverted (singular/ill-formed).
    Precoding(MatError),
    /// A slave AP failed to hear the lead's sync header.
    SyncHeaderMissed {
        /// Index of the slave that missed the header.
        slave: usize,
    },
    /// Phase synchronisation was asked for a correction before a reference
    /// channel was measured.
    NoReference,
    /// Channel measurement produced inconsistent dimensions.
    MeasurementShape {
        /// What was expected.
        expected: usize,
        /// What was produced.
        got: usize,
    },
    /// A frame-level transmit error.
    Tx(TxError),
    /// A frame-level receive error.
    Rx(RxError),
    /// A channel-measurement exchange was lost in flight (control-plane
    /// fault). The CSI stays stale; the caller should schedule a backoff
    /// re-measurement rather than abort.
    MeasurementLost,
    /// The configuration is invalid (e.g. zero APs).
    BadConfig(&'static str),
}

impl std::fmt::Display for JmbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JmbError::Precoding(e) => write!(f, "precoding failed: {e}"),
            JmbError::SyncHeaderMissed { slave } => {
                write!(f, "slave {slave} missed the lead sync header")
            }
            JmbError::NoReference => write!(f, "no reference channel measured yet"),
            JmbError::MeasurementShape { expected, got } => {
                write!(
                    f,
                    "measurement shape mismatch: expected {expected}, got {got}"
                )
            }
            JmbError::MeasurementLost => {
                write!(f, "measurement frame lost; CSI remains stale")
            }
            JmbError::Tx(e) => write!(f, "transmit error: {e}"),
            JmbError::Rx(e) => write!(f, "receive error: {e}"),
            JmbError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for JmbError {}

impl From<MatError> for JmbError {
    fn from(e: MatError) -> Self {
        JmbError::Precoding(e)
    }
}

impl From<TxError> for JmbError {
    fn from(e: TxError) -> Self {
        JmbError::Tx(e)
    }
}

impl From<RxError> for JmbError {
    fn from(e: RxError) -> Self {
        JmbError::Rx(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(JmbError::NoReference.to_string().contains("reference"));
        assert!(JmbError::SyncHeaderMissed { slave: 3 }
            .to_string()
            .contains('3'));
        let e: JmbError = MatError::Singular.into();
        assert!(e.to_string().contains("singular"));
        assert!(JmbError::MeasurementLost.to_string().contains("lost"));
    }

    #[test]
    fn conversions() {
        let e: JmbError = RxError::CrcFailed.into();
        assert_eq!(e, JmbError::Rx(RxError::CrcFailed));
        let e: JmbError = TxError::PayloadTooLarge(9999).into();
        assert!(matches!(e, JmbError::Tx(_)));
    }
}
