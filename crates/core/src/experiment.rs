//! The evaluation harness: one function per figure of the paper (§11).
//!
//! Each function reproduces the *method* of the corresponding experiment —
//! same independent variables, same metrics, same topology-draw discipline —
//! and returns typed records that the `jmb-bench` figure binaries print as
//! the paper's series and write as CSV. Absolute numbers come from our
//! simulated substrate; the shapes (who wins, by what factor, where
//! crossovers fall) are the reproduction targets recorded in
//! EXPERIMENTS.md.

use crate::baseline;
use crate::error::JmbError;
use crate::fastnet::{FastConfig, FastNet};
use crate::net::{JmbNetwork, NetConfig};
use crate::precoder::Precoder;
use jmb_channel::oscillator::PhaseTrajectory;
use jmb_channel::SnrBand;
use jmb_dsp::rng::{complex_gaussian, derive_rng, normal};
use jmb_dsp::stats::{db_to_lin, lin_to_db};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::params::OfdmParams;
use rand::Rng;

/// Shared sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Topology draws per data point ("We repeat the experiment for 20
    /// different topologies", §11.2).
    pub n_topologies: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the embarrassingly parallel topology loop.
    pub parallelism: usize,
    /// Order in which workers claim topology indices. [`SchedulePolicy::
    /// Natural`] in production; the adversarial policies exist so the
    /// determinism harness (`det_harness`) can prove results do not depend
    /// on claim order.
    pub schedule: SchedulePolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n_topologies: 20,
            seed: 1,
            parallelism: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            schedule: SchedulePolicy::Natural,
        }
    }
}

/// The order in which [`parallel_map`] workers claim work items.
///
/// Results are merged by item index, so **every** policy must produce
/// byte-identical output; the adversarial policies exist to falsify that
/// claim if any kernel leaks claim-order dependence through shared state
/// (caches, thread-locals, FP accumulation into shared buffers). The
/// determinism contract and the add-a-policy recipe live in DESIGN.md
/// §3.15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Ascending claim order — the production default.
    #[default]
    Natural,
    /// Descending claim order (late topologies first).
    Reversed,
    /// Residue-class order with stride `k`: all indices ≡ 0 (mod k),
    /// then ≡ 1 (mod k), … — scatters neighbouring indices across time.
    Strided(usize),
    /// Seeded Fisher–Yates permutation of the claim order.
    RandomPermutation(u64),
    /// All work is claimed by worker 0 while the other spawned workers
    /// exit immediately — worst-case imbalance, and every item runs on
    /// one thread's locals even though `parallelism > 1`.
    WorkerStarvation,
}

impl SchedulePolicy {
    /// The claim-order permutation of `0..n` this policy induces.
    pub fn claim_order(&self, n: usize) -> Vec<usize> {
        match *self {
            SchedulePolicy::Natural | SchedulePolicy::WorkerStarvation => (0..n).collect(),
            SchedulePolicy::Reversed => (0..n).rev().collect(),
            SchedulePolicy::Strided(k) => {
                let k = k.max(1);
                let mut order = Vec::with_capacity(n);
                for r in 0..k.min(n.max(1)) {
                    order.extend((r..n).step_by(k));
                }
                order
            }
            SchedulePolicy::RandomPermutation(seed) => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = derive_rng(seed, 0x5C4E_D001);
                for i in (1..n).rev() {
                    let j = (rng.gen::<u64>() % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
                order
            }
        }
    }

    /// Parse a CLI token: `natural`, `reversed`, `strided[:K]`,
    /// `random[:SEED]`, `starve`.
    pub fn from_token(s: &str) -> Option<SchedulePolicy> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        match name {
            "natural" => Some(SchedulePolicy::Natural),
            "reversed" => Some(SchedulePolicy::Reversed),
            "strided" => Some(SchedulePolicy::Strided(
                arg.map_or(Some(3), |a| a.parse().ok())?,
            )),
            "random" => Some(SchedulePolicy::RandomPermutation(
                arg.map_or(Some(0x5EED), |a| a.parse().ok())?,
            )),
            "starve" => Some(SchedulePolicy::WorkerStarvation),
            _ => None,
        }
    }

    /// Stable token for file names and reports (inverse of
    /// [`Self::from_token`] up to default arguments).
    pub fn token(&self) -> String {
        match *self {
            SchedulePolicy::Natural => "natural".into(),
            SchedulePolicy::Reversed => "reversed".into(),
            SchedulePolicy::Strided(k) => format!("strided{k}"),
            SchedulePolicy::RandomPermutation(s) => format!("random{s}"),
            SchedulePolicy::WorkerStarvation => "starve".into(),
        }
    }
}

/// Runs `f` for every topology index in parallel and collects the results
/// in index order.
///
/// Work is distributed by an atomic claim counter (work stealing) rather
/// than static chunking, so a handful of slow topologies — ill-conditioned
/// draws that trigger precoder retries — no longer serialize a whole chunk
/// behind one worker. Results are merged by index, so the output is
/// identical for every parallelism level, and each topology derives its RNG
/// from its own index, so the numbers themselves are parallelism-invariant
/// too. A panicking worker is propagated (not swallowed): the remaining
/// workers drain the counter and the panic is re-raised after the scope
/// joins them, so callers see the original panic instead of a deadlock.
///
/// The claim counter indexes into the permutation given by
/// `sweep.schedule` ([`SchedulePolicy`]), so the determinism harness can
/// run the same sweep under adversarial claim orders; output order is by
/// item index either way. The serial path follows the permutation too —
/// *execution* order matters for shared global state (plan caches,
/// thread-locals) even when one worker claims everything.
pub fn parallel_map<T: Send>(sweep: &SweepConfig, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = sweep.n_topologies;
    let order = sweep.schedule.claim_order(n);
    let workers = sweep.parallelism.max(1).min(n.max(1));
    if workers <= 1 {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for &i in &order {
            out[i] = Some(f(i));
        }
        return out
            .into_iter()
            .map(|x| x.expect("claim_order is a permutation of 0..n"))
            .collect();
    }
    let starve = sweep.schedule == SchedulePolicy::WorkerStarvation;
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let next = &next;
                let order = &order;
                s.spawn(move || {
                    let mut local = Vec::new();
                    if starve && w != 0 {
                        return local; // spawned, then starved of work
                    }
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n {
                            break;
                        }
                        let i = order[c];
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => {
                    for (i, v) in local {
                        out[i] = Some(v);
                    }
                }
                // Re-raise the worker's panic; the scope joins the other
                // workers on unwind and they terminate because the claim
                // counter runs out.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter()
        .map(|x| x.expect("every index claimed exactly once"))
        .collect()
}

fn band_targets(band: SnrBand, n: usize, rng: &mut jmb_dsp::rng::JmbRng) -> Vec<f64> {
    (0..n).map(|_| band.sample_db(rng)).collect()
}

/// Draws a conference-room placement (paper Fig. 5) and converts it into a
/// per-link SNR matrix: each client's *designated* (strongest) AP is pinned
/// to its band target, and every other AP's link falls off by the geometric
/// path-loss difference (log-distance model), floored so links never become
/// pure noise.
///
/// Designated APs are made **distinct** by a greedy nearest-unclaimed
/// matching. A draw where two clients are both dominated by one AP makes
/// the joint channel near-singular and the shared per-subcarrier `k̂` (§9,
/// every client receives the same signal strength) collapses for *all*
/// clients. The paper's dense deployment — 20 candidate AP ledges around
/// the perimeter for at most 10 drawn APs, clients spread across the floor
/// — makes such draws rare, and its reported medians imply well-conditioned
/// matrices ("natural channel matrices can be considered random and well
/// conditioned", §11.2). We therefore exclude hard-collision draws from
/// the ensemble; DESIGN.md records this modelling choice.
fn room_link_matrix(
    band: SnrBand,
    n_aps: usize,
    n_clients: usize,
    rng: &mut jmb_dsp::rng::JmbRng,
) -> Vec<Vec<f64>> {
    use jmb_channel::pathloss::PathLossModel;
    use jmb_channel::topology::{Room, Topology};
    let room = Room::conference();
    let topo = Topology::draw(&room, n_aps, n_clients, rng);
    let plm = PathLossModel::indoor_2_4ghz();
    let d = topo.distances();
    let losses: Vec<Vec<f64>> = (0..n_clients)
        .map(|j| {
            (0..n_aps)
                .map(|i| plm.sample_loss_db(d[j][i], rng))
                .collect()
        })
        .collect();
    // Greedy distinct designation: clients in random order claim their
    // lowest-loss unclaimed AP.
    let mut order: Vec<usize> = (0..n_clients).collect();
    use rand::seq::SliceRandom;
    order.shuffle(rng);
    let mut claimed = vec![false; n_aps];
    let mut designated = vec![0usize; n_clients];
    for &j in &order {
        let mut best = None;
        for i in 0..n_aps {
            if claimed[i] {
                continue;
            }
            if best.is_none_or(|b: usize| losses[j][i] < losses[j][b]) {
                best = Some(i);
            }
        }
        let i = best.expect("n_aps >= n_clients");
        claimed[i] = true;
        designated[j] = i;
    }
    (0..n_clients)
        .map(|j| {
            let des = designated[j];
            let target = band.sample_db(rng);
            (0..n_aps)
                .map(|i| {
                    if i == des {
                        target
                    } else {
                        // Below the designated AP by the geometric loss
                        // difference, with an n-dependent minimum dominance
                        // of `10·log₁₀(n) + 12` dB. This calibrates the
                        // ensemble's conditioning to the paper's own model:
                        // §11.2 gives gain `N·(1 − log K / log SNR)`, and
                        // the reported 8.1–9.4× at N = 10 implies an
                        // inversion penalty of only K ≈ 1.3–2 dB. Zero
                        // forcing keeps that penalty only if the aggregate
                        // off-diagonal row power stays ≪ 1, i.e. per-entry
                        // dominance must grow ~10·log₁₀(n). See DESIGN.md
                        // ("Topology calibration").
                        let min_dom = 10.0 * (n_aps as f64).log10() + 12.0;
                        let delta = (losses[j][i] - losses[j][des]).clamp(min_dom, 35.0);
                        target - delta
                    }
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 6 — SNR reduction vs. phase misalignment.
// ---------------------------------------------------------------------------

/// One point of the Fig. 6 curve.
#[derive(Debug, Clone, Copy)]
pub struct MisalignmentLossPoint {
    /// Injected misalignment, radians.
    pub misalignment_rad: f64,
    /// Operating SNR of the system, dB.
    pub snr_db: f64,
    /// Average post-beamforming SNR reduction, dB.
    pub reduction_db: f64,
}

/// Fig. 6: "We simulate a simple 2-transmitter, 2-receiver system… measure
/// the initial channel matrix… introduce a phase misalignment at the slave
/// transmitter, and compute the reduction in SNR… We repeat this process
/// for 100 different random channel matrices, phase misalignments from 0 to
/// 0.5 radians, and … average SNR … 10 dB \[and\] 20 dB."
pub fn snr_reduction_vs_misalignment(
    misalignments: &[f64],
    snrs_db: &[f64],
    n_matrices: usize,
    seed: u64,
) -> Vec<MisalignmentLossPoint> {
    let mut out = Vec::new();
    for &snr_db in snrs_db {
        let noise = 1.0 / db_to_lin(snr_db);
        for &phi in misalignments {
            let mut acc = 0.0;
            let mut count = 0usize;
            for m in 0..n_matrices {
                let mut rng = derive_rng(seed, (m as u64) << 8);
                let h = CMat::from_vec(
                    2,
                    2,
                    (0..4).map(|_| complex_gaussian(&mut rng, 1.0)).collect(),
                );
                let Ok(p) = Precoder::zero_forcing(std::slice::from_ref(&h)) else {
                    continue;
                };
                // Slave (column 1) misaligned by e^{jφ} at transmit time.
                let sinr = |phase: f64| -> [f64; 2] {
                    let mut eff = h.clone();
                    for j in 0..2 {
                        eff[(j, 1)] *= Complex64::cis(phase);
                    }
                    let g = eff.mul_mat(p.weights_at(0)).expect("2x2");
                    let mut s = [0.0; 2];
                    for j in 0..2 {
                        let sig = g[(j, j)].norm_sqr();
                        let intf = g[(j, 1 - j)].norm_sqr();
                        s[j] = sig / (noise + intf);
                    }
                    s
                };
                let clean = sinr(0.0);
                let bad = sinr(phi);
                for j in 0..2 {
                    acc += lin_to_db(clean[j]) - lin_to_db(bad[j]);
                    count += 1;
                }
            }
            out.push(MisalignmentLossPoint {
                misalignment_rad: phi,
                snr_db,
                reduction_db: acc / count as f64,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 7 — CDF of achieved phase misalignment (sample-level).
// ---------------------------------------------------------------------------

/// Fig. 7: runs the full sample-level probe — lead and slave alternating
/// OFDM symbols after real phase synchronisation — and returns the absolute
/// misalignment samples (radians). Paper: median 0.017 rad, 95th pct 0.05.
pub fn misalignment_samples(
    n_runs: usize,
    rounds_per_run: usize,
    seed: u64,
) -> Result<Vec<f64>, JmbError> {
    misalignment_samples_with(
        n_runs,
        rounds_per_run,
        seed,
        crate::sync::SyncStrategyId::JmbLeadSlave,
    )
}

/// Fig. 7 per synchronization backend: the same sample-level probe with
/// the slave's correction source swapped
/// ([`JmbNetwork::misalignment_probe_with`]). `JmbLeadSlave` reproduces
/// [`misalignment_samples`] byte for byte; the out-of-band backends trade
/// update cadence and estimate quality for control-plane cost, so their
/// misalignment envelopes are wider (documented in the `sync_shootout`
/// bench rather than pinned to the paper's band).
pub fn misalignment_samples_with(
    n_runs: usize,
    rounds_per_run: usize,
    seed: u64,
    strategy: crate::sync::SyncStrategyId,
) -> Result<Vec<f64>, JmbError> {
    let mut samples = Vec::new();
    for run in 0..n_runs {
        let cfg = NetConfig::default_with(2, 1, 25.0, seed.wrapping_add(run as u64));
        let mut net = JmbNetwork::new(cfg)?;
        net.run_measurement()?;
        let s = net.misalignment_probe_with(rounds_per_run, 2e-3, strategy)?;
        samples.extend(s.into_iter().map(f64::abs));
    }
    Ok(samples)
}

// ---------------------------------------------------------------------------
// Fig. 8 — INR vs number of AP-client pairs.
// ---------------------------------------------------------------------------

/// One Fig. 8 point.
#[derive(Debug, Clone, Copy)]
pub struct InrPoint {
    /// SNR band.
    pub band: SnrBand,
    /// Number of AP-client pairs.
    pub n_pairs: usize,
    /// Average INR across clients and topologies, dB (the paper's metric:
    /// total received power at the nulled client over noise).
    pub inr_db: f64,
}

/// Fig. 8: per band and AP count, draw topologies, null at each client in
/// turn, and average the INR.
pub fn inr_scaling(bands: &[SnrBand], pair_counts: &[usize], sweep: &SweepConfig) -> Vec<InrPoint> {
    let mut out = Vec::new();
    for &band in bands {
        for &n in pair_counts {
            let inrs = parallel_map(sweep, |topo| {
                let mut rng = derive_rng(sweep.seed, (topo as u64) << 20 | n as u64);
                let targets = band_targets(band, n, &mut rng);
                let mut cfg = FastConfig::default_with(n, n, targets, rng.gen());
                cfg.link_snr_db = Some(room_link_matrix(band, n, n, &mut rng));
                let Ok(mut net) = FastNet::new(cfg) else {
                    return f64::NAN;
                };
                if net.run_measurement().is_err() {
                    return f64::NAN;
                }
                net.advance(2e-3);
                let mut acc = 0.0;
                let mut cnt = 0;
                for victim in 0..n {
                    if let Ok(inr) = net.null_probe(victim, 1e-3) {
                        acc += db_to_lin(inr);
                        cnt += 1;
                    }
                }
                if cnt == 0 {
                    f64::NAN
                } else {
                    acc / cnt as f64
                }
            });
            let valid: Vec<f64> = inrs.into_iter().filter(|x| x.is_finite()).collect();
            out.push(InrPoint {
                band,
                n_pairs: n,
                inr_db: lin_to_db(jmb_dsp::stats::mean(&valid)),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figs. 9 & 10 — throughput scaling and fairness.
// ---------------------------------------------------------------------------

/// One topology's outcome in the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    /// SNR band.
    pub band: SnrBand,
    /// Number of APs (= number of clients).
    pub n_aps: usize,
    /// Total JMB network throughput, bits/s.
    pub jmb_total: f64,
    /// Total 802.11 network throughput, bits/s.
    pub dot11_total: f64,
    /// Per-client throughput gain (JMB / 802.11).
    pub per_client_gain: Vec<f64>,
}

/// Aggregated Fig. 9 point.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// SNR band.
    pub band: SnrBand,
    /// Number of APs.
    pub n_aps: usize,
    /// Mean total JMB throughput across topologies, bits/s.
    pub jmb_mean: f64,
    /// Mean total 802.11 throughput, bits/s.
    pub dot11_mean: f64,
    /// Median per-client gain.
    pub median_gain: f64,
}

/// Figs. 9/10 core: per band and AP count, draw topologies, measure, run a
/// joint transmission, select the joint rate, and account throughput for
/// JMB and the 802.11 equal-share baseline.
///
/// `apply_phase_sync = false` is the ablation (every slave transmits
/// uncorrected).
pub fn throughput_scaling(
    bands: &[SnrBand],
    ap_counts: &[usize],
    sweep: &SweepConfig,
    apply_phase_sync: bool,
) -> Vec<ScalingRun> {
    let mut out = Vec::new();
    for &band in bands {
        for &n in ap_counts {
            let runs = parallel_map(sweep, |topo| -> Option<ScalingRun> {
                let mut rng =
                    derive_rng(sweep.seed, 0xF19 ^ ((topo as u64) << 24) ^ (n as u64) << 2);
                let targets = band_targets(band, n, &mut rng);
                let mut cfg = FastConfig::default_with(n, n, targets, rng.gen());
                cfg.link_snr_db = Some(room_link_matrix(band, n, n, &mut rng));
                let params = cfg.params.clone();
                let rounds = cfg.rounds;
                let turnaround = cfg.turnaround_s;
                let mut net = FastNet::new(cfg).ok()?;
                net.run_measurement().ok()?;
                net.advance(2e-3);

                // 802.11 baseline: designated-AP SNRs per client.
                let dot11: Vec<f64> = (0..n)
                    .map(|j| {
                        let snrs = net.baseline_snr_db(j);
                        baseline::dot11_client_throughput(
                            &params,
                            &snrs,
                            n,
                            baseline::EVAL_PAYLOAD_BYTES,
                        )
                    })
                    .collect();

                // JMB: joint transmission outcome → joint rate → goodput.
                let duration = baseline::frame_airtime(&params, jmb_phy::rates::Mcs::ALL[4], 1500);
                let outcome = net
                    .joint_transmit(duration, 4, &[], apply_phase_sync)
                    .ok()?;
                let mcs = baseline::select_joint_mcs(&outcome.sinr_db);
                let meas_len =
                    (320 + rounds * n * params.symbol_len()) as f64 * params.sample_period();
                let over = baseline::JmbOverheads::new(&params, turnaround, meas_len, 0.25)
                    .with_aggregation(4);
                let jmb: Vec<f64> = match mcs {
                    None => vec![0.0; n],
                    Some(mcs) => (0..n)
                        .map(|j| {
                            baseline::jmb_client_throughput(
                                &params,
                                mcs,
                                &outcome.sinr_db[j],
                                baseline::EVAL_PAYLOAD_BYTES,
                                &over,
                            )
                        })
                        .collect(),
                };

                let per_client_gain = jmb
                    .iter()
                    .zip(&dot11)
                    .map(|(&a, &b)| if b > 0.0 { a / b } else { f64::NAN })
                    .collect();
                Some(ScalingRun {
                    band,
                    n_aps: n,
                    jmb_total: jmb.iter().sum(),
                    dot11_total: dot11.iter().sum(),
                    per_client_gain,
                })
            });
            out.extend(runs.into_iter().flatten());
        }
    }
    out
}

/// Aggregates [`ScalingRun`]s into Fig. 9's series.
pub fn aggregate_scaling(runs: &[ScalingRun]) -> Vec<ScalingPoint> {
    let mut keys: Vec<(SnrBand, usize)> = runs.iter().map(|r| (r.band, r.n_aps)).collect();
    keys.sort_by_key(|&(b, n)| (band_index(b), n));
    keys.dedup();
    keys.into_iter()
        .map(|(band, n_aps)| {
            let sel: Vec<&ScalingRun> = runs
                .iter()
                .filter(|r| r.band == band && r.n_aps == n_aps)
                .collect();
            let jmb: Vec<f64> = sel.iter().map(|r| r.jmb_total).collect();
            let dot: Vec<f64> = sel.iter().map(|r| r.dot11_total).collect();
            let gains: Vec<f64> = sel
                .iter()
                .flat_map(|r| r.per_client_gain.iter().copied())
                .filter(|g| g.is_finite())
                .collect();
            ScalingPoint {
                band,
                n_aps,
                jmb_mean: jmb_dsp::stats::mean(&jmb),
                dot11_mean: jmb_dsp::stats::mean(&dot),
                median_gain: jmb_dsp::stats::median(&gains),
            }
        })
        .collect()
}

/// Stable ordering for bands in outputs.
pub fn band_index(band: SnrBand) -> usize {
    match band {
        SnrBand::High => 0,
        SnrBand::Medium => 1,
        SnrBand::Low => 2,
    }
}

// ---------------------------------------------------------------------------
// Fig. 11 — diversity throughput vs SNR.
// ---------------------------------------------------------------------------

/// One Fig. 11 point.
#[derive(Debug, Clone, Copy)]
pub struct DiversityPoint {
    /// Number of APs beamforming coherently.
    pub n_aps: usize,
    /// The client's single-AP effective SNR, dB (x-axis).
    pub snr_db: f64,
    /// JMB diversity throughput, bits/s.
    pub jmb: f64,
    /// Single-802.11-transmitter throughput, bits/s.
    pub dot11: f64,
}

/// Fig. 11: one client with "roughly similar SNRs to all APs"; sweep that
/// SNR across 802.11's operational range for several AP counts.
pub fn diversity_sweep(
    ap_counts: &[usize],
    snrs_db: &[f64],
    sweep: &SweepConfig,
) -> Vec<DiversityPoint> {
    let mut out = Vec::new();
    for &n in ap_counts {
        for &snr in snrs_db {
            let samples = parallel_map(sweep, |topo| -> Option<(f64, f64)> {
                let mut rng = derive_rng(sweep.seed, 0xD1 ^ ((topo as u64) << 16) ^ n as u64);
                let mut cfg = FastConfig::default_with(n, 1, vec![snr], rng.gen());
                cfg.ap_spread_db = 2.0; // "roughly similar SNRs to all APs"
                let params = cfg.params.clone();
                let turnaround = cfg.turnaround_s;
                let rounds = cfg.rounds;
                let mut net = FastNet::new(cfg).ok()?;
                net.run_measurement().ok()?;
                net.advance(1e-3);
                let div_snrs = net.diversity_snr_db(0).ok()?;
                let meas_len =
                    (320 + rounds * n * params.symbol_len()) as f64 * params.sample_period();
                let over = baseline::JmbOverheads::new(&params, turnaround, meas_len, 0.25)
                    .with_aggregation(4);
                let jmb = match jmb_phy::esnr::select_mcs(&div_snrs) {
                    Some(mcs) => baseline::jmb_client_throughput(
                        &params,
                        mcs,
                        &div_snrs,
                        baseline::EVAL_PAYLOAD_BYTES,
                        &over,
                    ),
                    None => 0.0,
                };
                let base_snrs = net.baseline_snr_db(0);
                let dot11 = baseline::dot11_client_throughput(
                    &params,
                    &base_snrs,
                    1,
                    baseline::EVAL_PAYLOAD_BYTES,
                );
                Some((jmb, dot11))
            });
            let valid: Vec<(f64, f64)> = samples.into_iter().flatten().collect();
            if valid.is_empty() {
                continue;
            }
            let jmb = jmb_dsp::stats::mean(&valid.iter().map(|v| v.0).collect::<Vec<_>>());
            let dot11 = jmb_dsp::stats::mean(&valid.iter().map(|v| v.1).collect::<Vec<_>>());
            out.push(DiversityPoint {
                n_aps: n,
                snr_db: snr,
                jmb,
                dot11,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figs. 12 & 13 — 802.11n compatibility.
// ---------------------------------------------------------------------------

/// One compat-mode run.
#[derive(Debug, Clone, Copy)]
pub struct CompatRun {
    /// SNR band.
    pub band: SnrBand,
    /// Total JMB throughput (both clients), bits/s.
    pub jmb_total: f64,
    /// Total 802.11n throughput, bits/s.
    pub dot11n_total: f64,
    /// Network throughput gain.
    pub gain: f64,
}

/// Figs. 12/13: 2 two-antenna APs → 2 two-antenna clients, per band.
pub fn compat_runs(bands: &[SnrBand], sweep: &SweepConfig) -> Vec<CompatRun> {
    let mut out = Vec::new();
    for &band in bands {
        let runs = parallel_map(sweep, |topo| -> Option<CompatRun> {
            let mut rng = derive_rng(sweep.seed, 0xC0 ^ (topo as u64));
            let target = band.sample_db(&mut rng);
            let mut cfg = crate::compat::CompatConfig::default_with(target, rng.gen());
            cfg.client_snr_db = vec![band.sample_db(&mut rng), band.sample_db(&mut rng)];
            let mut net = crate::compat::CompatNet::new(cfg).ok()?;
            net.run_stitched_measurement().ok()?;
            net.advance(2e-3);
            let jmb: f64 = net.jmb_throughput(1500).ok()?.iter().sum();
            let dot: f64 = net.dot11n_throughput(1500).iter().sum();
            if dot <= 0.0 {
                return None;
            }
            Some(CompatRun {
                band,
                jmb_total: jmb,
                dot11n_total: dot,
                gain: jmb / dot,
            })
        });
        out.extend(runs.into_iter().flatten());
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 0 (motivation, §1/§5.2) — naive extrapolation vs direct measurement.
// ---------------------------------------------------------------------------

/// One drift-motivation point.
#[derive(Debug, Clone, Copy)]
pub struct DriftPoint {
    /// Elapsed time since the frequency estimate, seconds.
    pub elapsed_s: f64,
    /// Phase error of naive extrapolation (radians, mean |error|).
    pub naive_err_rad: f64,
    /// Phase error of JMB's direct re-measurement (radians, mean |error|).
    pub direct_err_rad: f64,
}

/// The §1 motivation, as an experiment: estimate a CFO once with a given
/// error, then compare extrapolated phase against truth over time; JMB's
/// direct measurement re-measures at each horizon instead.
pub fn drift_motivation(
    cfo_error_hz: f64,
    horizons_s: &[f64],
    n_trials: usize,
    seed: u64,
) -> Vec<DriftPoint> {
    let mut out = Vec::new();
    for &t in horizons_s {
        let mut naive_acc = 0.0;
        let mut direct_acc = 0.0;
        for trial in 0..n_trials {
            let mut rng = derive_rng(seed, (trial as u64) << 32);
            let true_cfo = (rng.gen::<f64>() * 2.0 - 1.0) * 10_000.0;
            let mut traj = PhaseTrajectory::with_offset(
                jmb_channel::oscillator::OscillatorSpec::usrp2(),
                2.437e9,
                true_cfo,
                rng.gen(),
            );
            let est = true_cfo + normal(&mut rng, cfo_error_hz);
            let predicted = 2.0 * std::f64::consts::PI * est * t;
            let actual = traj.phase_at(t);
            naive_acc += jmb_dsp::complex::wrap_phase(predicted - actual).abs();
            // Direct measurement: re-measure the phase at t with
            // channel-estimation noise only (~0.01 rad at AP-AP SNRs).
            direct_acc += normal(&mut rng, 0.01).abs();
        }
        out.push(DriftPoint {
            elapsed_s: t,
            naive_err_rad: naive_acc / n_trials as f64,
            direct_err_rad: direct_acc / n_trials as f64,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Ablation: interleaved vs sequential channel measurement (§5.1a).
// ---------------------------------------------------------------------------

/// Outcome of the measurement-interleaving ablation for one layout.
#[derive(Debug, Clone, Copy)]
pub struct InterleavingPoint {
    /// Whether the measurement slots were interleaved (the paper's design).
    pub interleaved: bool,
    /// RMS relative error of the measured channel's column ratios against
    /// ground truth (dB) — the quantity beamforming nulls depend on.
    pub h_error_db: f64,
}

/// §5.1a's design rationale as an experiment: measure channels with the
/// paper's interleaved slots vs one back-to-back block per AP, and compare
/// the measured `H` against the medium's ground truth. The metric is the
/// column-ratio error per row (per-client phase references cancel), which
/// is exactly what determines nulling quality. With blocked slots, each
/// AP's rotation back to the reference time spans up to a whole packet, so
/// per-AP CFO estimation error rotates its entire column.
pub fn measurement_interleaving_ablation(
    n_aps: usize,
    n_runs: usize,
    seed: u64,
) -> Result<Vec<InterleavingPoint>, JmbError> {
    use crate::measure::SlotOrder;
    let params = OfdmParams::default();
    let t_ref = 1e-4 + crate::measure::REF_ANCHOR * params.sample_period();
    let mut out = Vec::new();
    for order in [SlotOrder::Interleaved, SlotOrder::Sequential] {
        let mut sq_err = 0.0f64;
        let mut count = 0usize;
        for run in 0..n_runs as u64 {
            // High client SNR pushes the noise floor of the estimates down
            // so the layout-dependent rotation error is what remains;
            // worst-case crystals amplify that rotation error.
            let mut cfg = NetConfig::default_with(n_aps, n_aps, 35.0, seed.wrapping_add(run));
            cfg.slot_order = order;
            cfg.osc_spec = jmb_channel::oscillator::OscillatorSpec::wifi_worst_case();
            let mut net = JmbNetwork::new(cfg)?;
            net.run_measurement()?;
            let aps = net.ap_nodes().to_vec();
            let clients = net.client_nodes().to_vec();
            let h_meas = net.measured_channel().unwrap().to_vec();
            let occupied = params.occupied_subcarriers();
            for (k_idx, &k) in occupied.iter().enumerate() {
                let fk = k as f64 * params.subcarrier_spacing();
                for (j, &c) in clients.iter().enumerate() {
                    let phi_rj = net.medium_mut().trajectory_mut(c).phase_at(t_ref);
                    let mut truth = Vec::with_capacity(aps.len());
                    for &ap in &aps {
                        let phi_i = net.medium_mut().trajectory_mut(ap).phase_at(t_ref);
                        let link = net.medium_mut().link(ap, c).expect("link").clone();
                        truth.push(link.freq_response_at(fk) * Complex64::cis(phi_i - phi_rj));
                    }
                    for i in 1..aps.len() {
                        let m_ratio = h_meas[k_idx][(j, i)] / h_meas[k_idx][(j, 0)];
                        let t_ratio = truth[i] / truth[0];
                        let err = (m_ratio / t_ratio - Complex64::ONE).norm_sqr();
                        sq_err += err;
                        count += 1;
                    }
                }
            }
        }
        out.push(InterleavingPoint {
            interleaved: matches!(order, SlotOrder::Interleaved),
            h_error_db: lin_to_db(sq_err / count.max(1) as f64),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// CSV output.
// ---------------------------------------------------------------------------

/// Writes rows of floats as CSV with a header line.
pub fn write_csv(
    path: &std::path::Path,
    header: &str,
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sweep(n: usize) -> SweepConfig {
        SweepConfig {
            n_topologies: n,
            seed: 7,
            parallelism: 2,
            ..Default::default()
        }
    }

    #[test]
    fn fig6_zero_misalignment_zero_loss() {
        let pts = snr_reduction_vs_misalignment(&[0.0, 0.35], &[20.0], 30, 1);
        assert!(pts[0].reduction_db.abs() < 1e-9);
        // The paper: 0.35 rad ≈ 8 dB at 20 dB SNR. Allow generous slack on
        // the Monte-Carlo mean; the magnitude must be "several dB".
        assert!(
            pts[1].reduction_db > 4.0 && pts[1].reduction_db < 14.0,
            "0.35 rad → {} dB",
            pts[1].reduction_db
        );
    }

    #[test]
    fn fig6_monotone_and_snr_dependent() {
        let phis = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
        let pts = snr_reduction_vs_misalignment(&phis, &[10.0, 20.0], 40, 2);
        // Monotone in misalignment for each SNR.
        for chunk in pts.chunks(phis.len()) {
            for w in chunk.windows(2) {
                assert!(w[1].reduction_db >= w[0].reduction_db - 0.2);
            }
        }
        // Higher SNR suffers more (paper: "phase misalignment causes a
        // greater reduction in SNR when the system is at higher SNR").
        let at10 = pts
            .iter()
            .find(|p| p.snr_db == 10.0 && p.misalignment_rad == 0.5)
            .unwrap();
        let at20 = pts
            .iter()
            .find(|p| p.snr_db == 20.0 && p.misalignment_rad == 0.5)
            .unwrap();
        assert!(at20.reduction_db > at10.reduction_db);
    }

    #[test]
    fn fig8_inr_points_shape() {
        let pts = inr_scaling(&[SnrBand::High], &[2, 4], &quick_sweep(3));
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.inr_db.is_finite());
            assert!(p.inr_db > -1.0 && p.inr_db < 6.0, "INR {}", p.inr_db);
        }
        assert!(pts[1].inr_db >= pts[0].inr_db - 0.3, "INR roughly grows");
    }

    #[test]
    fn fig9_gain_grows_with_aps() {
        let runs = throughput_scaling(&[SnrBand::High], &[2, 6], &quick_sweep(4), true);
        let agg = aggregate_scaling(&runs);
        assert_eq!(agg.len(), 2);
        let g2 = agg[0].jmb_mean / agg[0].dot11_mean;
        let g6 = agg[1].jmb_mean / agg[1].dot11_mean;
        assert!(g6 > g2 * 1.8, "gain must scale: {g2:.2}× → {g6:.2}×");
        // 802.11 total roughly flat (same medium, just shared).
        assert!(
            (agg[1].dot11_mean / agg[0].dot11_mean - 1.0).abs() < 0.5,
            "baseline should not scale"
        );
    }

    #[test]
    fn fig9_ablation_collapses() {
        let with = aggregate_scaling(&throughput_scaling(
            &[SnrBand::High],
            &[4],
            &quick_sweep(4),
            true,
        ));
        let without = aggregate_scaling(&throughput_scaling(
            &[SnrBand::High],
            &[4],
            &quick_sweep(4),
            false,
        ));
        assert!(
            with[0].jmb_mean > 2.0 * without[0].jmb_mean,
            "phase sync must matter: {} vs {}",
            with[0].jmb_mean,
            without[0].jmb_mean
        );
    }

    #[test]
    fn fig11_diversity_grows_with_aps() {
        let pts = diversity_sweep(&[2, 8], &[6.0], &quick_sweep(4));
        let j2 = pts.iter().find(|p| p.n_aps == 2).unwrap();
        let j8 = pts.iter().find(|p| p.n_aps == 8).unwrap();
        assert!(j8.jmb > j2.jmb, "more APs more diversity throughput");
        assert!(j8.jmb > j8.dot11, "diversity beats a single transmitter");
    }

    #[test]
    fn drift_motivation_matches_paper_numbers() {
        // 10 Hz error, 5.5 ms → mean |error| ≈ 0.35·(mean |N(0,1)|) ≈ 0.28;
        // the *scale* must match 2π·10·5.5e-3 = 0.35.
        let pts = drift_motivation(10.0, &[5.5e-3, 20e-3], 400, 3);
        let expected = 2.0 * std::f64::consts::PI * 10.0 * 5.5e-3 * 0.7979; // E|N|
        assert!(
            (pts[0].naive_err_rad / expected - 1.0).abs() < 0.25,
            "naive {} vs {expected}",
            pts[0].naive_err_rad
        );
        assert!(pts[1].naive_err_rad > pts[0].naive_err_rad);
        assert!(pts[0].direct_err_rad < 0.02);
        assert!(pts[1].direct_err_rad < 0.02, "direct error must not grow");
    }

    #[test]
    fn interleaving_beats_sequential() {
        let pts = measurement_interleaving_ablation(3, 2, 5).unwrap();
        assert_eq!(pts.len(), 2);
        let inter = &pts[0];
        let seq = &pts[1];
        assert!(inter.interleaved && !seq.interleaved);
        // Interleaving measurably improves H accuracy. The margin is
        // smaller than the paper's rationale might suggest because our
        // client refines its per-AP CFO across rounds (two-pass), which
        // also rescues much of the sequential layout's rotation error —
        // with the paper's single-shot estimation the gap widens.
        assert!(
            inter.h_error_db < seq.h_error_db - 0.5,
            "interleaving must measurably improve H accuracy: {:.1} vs {:.1} dB",
            inter.h_error_db,
            seq.h_error_db
        );
    }

    #[test]
    fn csv_writer_roundtrip() {
        let dir = std::env::temp_dir().join("jmb_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            "a,b",
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn parallel_map_order_and_coverage() {
        let sweep = SweepConfig {
            n_topologies: 17,
            seed: 0,
            parallelism: 4,
            ..Default::default()
        };
        let out = parallel_map(&sweep, |i| i * 2);
        assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn claim_order_is_a_permutation_for_every_policy() {
        let policies = [
            SchedulePolicy::Natural,
            SchedulePolicy::Reversed,
            SchedulePolicy::Strided(3),
            SchedulePolicy::Strided(7),
            SchedulePolicy::RandomPermutation(42),
            SchedulePolicy::WorkerStarvation,
        ];
        for p in policies {
            for n in [0usize, 1, 2, 13, 64] {
                let mut order = p.claim_order(n);
                assert_eq!(order.len(), n, "{p:?} n={n}");
                order.sort_unstable();
                assert_eq!(order, (0..n).collect::<Vec<_>>(), "{p:?} n={n}");
            }
        }
    }

    #[test]
    fn parallel_map_identical_across_schedule_policies() {
        let baseline: Vec<f64> = {
            let sweep = SweepConfig {
                n_topologies: 19,
                seed: 5,
                parallelism: 4,
                schedule: SchedulePolicy::Natural,
            };
            parallel_map(&sweep, |i| derive_rng(5, i as u64).gen::<f64>())
        };
        for schedule in [
            SchedulePolicy::Reversed,
            SchedulePolicy::Strided(3),
            SchedulePolicy::RandomPermutation(99),
            SchedulePolicy::WorkerStarvation,
        ] {
            for parallelism in [1usize, 4] {
                let sweep = SweepConfig {
                    n_topologies: 19,
                    seed: 5,
                    parallelism,
                    schedule,
                };
                let out = parallel_map(&sweep, |i| derive_rng(5, i as u64).gen::<f64>());
                assert_eq!(out, baseline, "{schedule:?} x{parallelism}");
            }
        }
    }

    #[test]
    fn worker_starvation_runs_everything_on_one_thread() {
        let sweep = SweepConfig {
            n_topologies: 9,
            seed: 0,
            parallelism: 4,
            schedule: SchedulePolicy::WorkerStarvation,
        };
        let ids = parallel_map(&sweep, |_| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == ids[0]));
    }

    #[test]
    fn schedule_tokens_round_trip() {
        for (tok, policy) in [
            ("natural", SchedulePolicy::Natural),
            ("reversed", SchedulePolicy::Reversed),
            ("strided:5", SchedulePolicy::Strided(5)),
            ("random:7", SchedulePolicy::RandomPermutation(7)),
            ("starve", SchedulePolicy::WorkerStarvation),
        ] {
            assert_eq!(SchedulePolicy::from_token(tok), Some(policy));
        }
        assert_eq!(
            SchedulePolicy::from_token("strided"),
            Some(SchedulePolicy::Strided(3))
        );
        assert!(SchedulePolicy::from_token("chaotic").is_none());
        assert!(SchedulePolicy::from_token("strided:x").is_none());
    }

    #[test]
    fn parallel_map_identical_across_parallelism() {
        // Same indices → same RNG derivation → same values, whatever the
        // worker count; and always in index order.
        let run = |parallelism: usize| {
            let sweep = SweepConfig {
                n_topologies: 23,
                seed: 11,
                parallelism,
                ..Default::default()
            };
            parallel_map(&sweep, |i| {
                let mut rng = derive_rng(sweep.seed, i as u64);
                (i, rng.gen::<f64>())
            })
        };
        let serial = run(1);
        assert_eq!(serial.len(), 23);
        for (k, &(i, _)) in serial.iter().enumerate() {
            assert_eq!(i, k, "index order");
        }
        for p in [4, 16] {
            assert_eq!(run(p), serial, "parallelism {p} must not change results");
        }
    }

    #[test]
    fn parallel_map_uneven_work_still_ordered() {
        // Wildly uneven per-item cost exercises actual stealing: early
        // indices are slow, so a statically chunked first worker would own
        // almost all the wall-clock.
        let sweep = SweepConfig {
            n_topologies: 12,
            seed: 0,
            parallelism: 4,
            ..Default::default()
        };
        let out = parallel_map(&sweep, |i| {
            if i < 3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_worker_panic_propagates() {
        // A panicking closure must surface as a panic in the caller, not a
        // deadlock or a silently missing slot.
        let result = std::panic::catch_unwind(|| {
            let sweep = SweepConfig {
                n_topologies: 16,
                seed: 0,
                parallelism: 4,
                ..Default::default()
            };
            parallel_map(&sweep, |i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must propagate");
    }
}
