//! The fast (per-subcarrier) JMB protocol model.
//!
//! The paper's evaluation sweeps hundreds of topologies × up to 10 APs ×
//! 3 SNR bands (Figs. 8–13). Running the sample-level testbench for each
//! point would be prohibitively slow, so this module models the protocol at
//! the same level the paper's own analysis works (§4: `H(t) = R(t)·H·T(t)`):
//! channels are per-subcarrier gains over a [`SubcarrierMedium`], and each
//! protocol step — measurement with estimation noise, slave header
//! re-measurement, direct phase correction, within-packet CFO tracking —
//! is applied in the frequency domain.
//!
//! Every modelling constant (measurement noise per estimate, header
//! estimation noise, seed CFO accuracy) is inherited from the behaviour of
//! the sample-level chain in [`crate::net`], and the two are cross-validated
//! in the workspace integration tests.

use crate::csi::SyncHealth;
use crate::error::JmbError;
use crate::precoder::Precoder;
use crate::sync::{strategy_for, SyncCtx, SyncStrategy, SyncStrategyId};
use jmb_channel::multipath::{Multipath, MultipathSpec};
use jmb_channel::oscillator::{OscillatorSpec, PhaseTrajectory};
use jmb_channel::Link;
use jmb_dsp::rng::{complex_gaussian, JmbRng};
use jmb_dsp::{CMat, Complex64};
use jmb_phy::chanest::ChannelEstimate;
use jmb_phy::params::OfdmParams;
use jmb_phy::rates::Mcs;
use jmb_sim::{EventKind, FaultConfig, FaultSchedule, NodeId, SubcarrierMedium, Trace};
use rand::Rng;

/// Configuration of a fast-path JMB network.
#[derive(Debug, Clone)]
pub struct FastConfig {
    /// OFDM numerology.
    pub params: OfdmParams,
    /// Total APs (first is lead).
    pub n_aps: usize,
    /// Number of clients.
    pub n_clients: usize,
    /// Oscillator population.
    pub osc_spec: OscillatorSpec,
    /// Per-bin noise variance at clients (links are calibrated against it).
    pub noise_var: f64,
    /// AP↔AP link SNR, dB.
    pub ap_ap_snr_db: f64,
    /// Per-client target SNR (strongest AP), dB.
    pub client_snr_db: Vec<f64>,
    /// Spread below the strongest AP for the other APs' links, dB (used
    /// only when `link_snr_db` is `None`).
    pub ap_spread_db: f64,
    /// Explicit per-link SNR targets `[client][ap]`, dB. When set (e.g.
    /// derived from a room topology and a path-loss model), it overrides
    /// the `client_snr_db`/`ap_spread_db` synthetic placement.
    pub link_snr_db: Option<Vec<Vec<f64>>>,
    /// Turnaround between header and joint transmission, seconds.
    pub turnaround_s: f64,
    /// Interleaved measurement rounds (sets measurement averaging and the
    /// seed-CFO accuracy).
    pub rounds: usize,
    /// Master seed.
    pub seed: u64,
    /// Synchronization backend (the paper's lead/slave resync by default;
    /// see [`crate::sync`] for the rivals).
    pub sync: SyncStrategyId,
}

impl FastConfig {
    /// Defaults mirroring [`crate::net::NetConfig::default_with`].
    pub fn default_with(
        n_aps: usize,
        n_clients: usize,
        client_snr_db: Vec<f64>,
        seed: u64,
    ) -> Self {
        FastConfig {
            params: OfdmParams::default(),
            n_aps,
            n_clients,
            osc_spec: OscillatorSpec::usrp2(),
            noise_var: 1.0,
            ap_ap_snr_db: 30.0,
            client_snr_db,
            ap_spread_db: 6.0,
            link_snr_db: None,
            turnaround_s: 150e-6,
            rounds: 32.max(128usize.div_ceil(n_aps.max(1))),
            seed,
            sync: SyncStrategyId::default(),
        }
    }
}

/// Per-client outcome of one (virtual) joint transmission.
#[derive(Debug, Clone)]
pub struct JointOutcome {
    /// Per-subcarrier SINR (dB) for each client, `[client][subcarrier]`.
    pub sinr_db: Vec<Vec<f64>>,
    /// Per-subcarrier interference-plus-leakage power for each client
    /// (linear, relative to the noise floor), `[client][subcarrier]`.
    pub interference: Vec<Vec<f64>>,
    /// The precoder's power normalisation `k̂`.
    pub k_hat: f64,
}

impl JointOutcome {
    /// Average interference-to-noise ratio (dB) across clients and
    /// subcarriers — the metric of Fig. 8.
    pub fn mean_inr_db(&self, noise_var: f64) -> f64 {
        let mut acc = 0.0;
        let mut n = 0usize;
        for per_client in &self.interference {
            for &i in per_client {
                acc += i / noise_var;
                n += 1;
            }
        }
        jmb_dsp::stats::lin_to_db(acc / n as f64)
    }
}

/// The fast-path network.
pub struct FastNet {
    cfg: FastConfig,
    medium: SubcarrierMedium,
    aps: Vec<NodeId>,
    clients: Vec<NodeId>,
    /// The pluggable synchronization backend ([`crate::sync`]). Owns the
    /// per-slave phase state; the network keeps the protocol timeline,
    /// fault draws, health bookkeeping and trace events.
    strategy: Box<dyn SyncStrategy>,
    /// Measured joint channel per occupied subcarrier.
    h_meas: Option<Vec<CMat>>,
    precoder: Option<Precoder>,
    occupied: Vec<i32>,
    now: f64,
    rng: JmbRng,
    /// Cached static AP→client responses (the multipath tap sums, which are
    /// the expensive part of every channel evaluation). Built lazily, and
    /// invalidated whenever link fading evolves.
    static_ap_client: Option<jmb_sim::StaticChannel>,
    /// Control-plane fault plan (clean by default).
    faults: FaultSchedule,
    /// Dedicated RNG stream for fault draws, derived from the master seed.
    /// Kept separate from `rng` so enabling faults never perturbs channel or
    /// noise draws, and clean runs make zero fault draws — byte-identical to
    /// runs of builds that predate fault injection.
    fault_rng: JmbRng,
    /// Per-slave sync health (index `s - 1` for slave AP `s`).
    health: Vec<SyncHealth>,
    /// Largest predicted phase error (radians) a CFO-extrapolated fallback
    /// correction may carry before the slave is excluded from the batch
    /// instead (≈ 20° by default — beyond that, the paper's Fig. 6 shows
    /// the joint SNR loss exceeds ~1 dB and keeps growing).
    sync_error_budget_rad: f64,
    /// Control-plane event trace. Events are stamped on the frame timeline
    /// (header at `now`, sync measurements at `t_meas`), which only moves
    /// forward — the stream is monotone in time by construction, and the
    /// integration tests assert it.
    pub trace: Trace,
    /// External (out-of-cell) interference power per occupied subcarrier,
    /// linear, in the same normalised units as `cfg.noise_var`. Zero by
    /// default; a multi-cell deployment sets it to the aggregate co-channel
    /// leakage from neighbouring cells, and it is added to the noise floor
    /// in every SINR denominator and rate selection.
    ext_intf: Vec<f64>,
}

impl FastNet {
    /// Builds the network and calibrates links.
    pub fn new(cfg: FastConfig) -> Result<Self, JmbError> {
        if cfg.n_aps == 0 || cfg.n_clients == 0 {
            return Err(JmbError::BadConfig("need at least one AP and one client"));
        }
        if cfg.client_snr_db.len() != cfg.n_clients {
            return Err(JmbError::BadConfig("client_snr_db length mismatch"));
        }
        let mut rng = jmb_dsp::rng::rng_from_seed(cfg.seed);
        let mut medium = SubcarrierMedium::new(cfg.params.clone(), rng.gen());
        let carrier = cfg.params.carrier_freq;
        let aps: Vec<NodeId> = (0..cfg.n_aps)
            .map(|_| {
                let traj = PhaseTrajectory::new(cfg.osc_spec, carrier, &mut rng);
                medium.add_node(traj, cfg.noise_var)
            })
            .collect();
        let clients: Vec<NodeId> = (0..cfg.n_clients)
            .map(|_| {
                let traj = PhaseTrajectory::new(cfg.osc_spec, carrier, &mut rng);
                medium.add_node(traj, cfg.noise_var)
            })
            .collect();

        for i in 0..cfg.n_aps {
            for j in 0..cfg.n_aps {
                if i == j {
                    continue;
                }
                let mut link = Link::new(
                    Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                    rng.gen::<f64>() * 30e-9,
                    Multipath::new(MultipathSpec::indoor_los(), &mut rng),
                );
                link.calibrate_snr(cfg.ap_ap_snr_db, cfg.noise_var);
                medium.set_link(aps[i], aps[j], link);
            }
        }
        if let Some(matrix) = &cfg.link_snr_db {
            if matrix.len() != cfg.n_clients || matrix.iter().any(|r| r.len() != cfg.n_aps) {
                return Err(JmbError::BadConfig("link_snr_db shape mismatch"));
            }
        }
        for (j, &c) in clients.iter().enumerate() {
            // Without an explicit link matrix, each client's strongest AP is
            // distinct (in a dense room with as many APs as clients, every
            // client is closest to a different AP almost surely) — this is
            // what keeps the joint channel well conditioned, as the paper
            // observes ("natural channel matrices can be considered random
            // and well conditioned", §11.2).
            let strongest = j % cfg.n_aps;
            for (i, &a) in aps.iter().enumerate() {
                let snr = match &cfg.link_snr_db {
                    Some(m) => m[j][i],
                    None if i == strongest => cfg.client_snr_db[j],
                    None => cfg.client_snr_db[j] - 3.0 - rng.gen::<f64>() * cfg.ap_spread_db,
                };
                // AP→client links are Rician (6 dB K): APs mounted on
                // ledges near the ceiling have a dominant path to most of
                // the room, so per-subcarrier fades are shallower than
                // Rayleigh. This matters for zero-forcing: Rayleigh-faded
                // diagonals produce deep per-subcarrier inversion wells
                // that the paper's testbed does not exhibit.
                let spec = MultipathSpec {
                    rician_k_db: Some(10.0),
                    ..MultipathSpec::indoor_los()
                };
                let mut link = Link::new(
                    Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                    rng.gen::<f64>() * 60e-9,
                    Multipath::new(spec, &mut rng),
                );
                link.calibrate_snr(snr, cfg.noise_var);
                medium.set_link(a, c, link);
            }
        }

        // Band calibration against the *realized* fading draw: the paper
        // places clients "such that all clients obtain an effective SNR in
        // the desired range" — the band is a property of the measured
        // effective SNR, fading included, not of the ensemble mean. Trim
        // every client's links so its designated link's mean (dB-domain,
        // across subcarriers) SNR equals its target.
        let occupied_list = cfg.params.occupied_subcarriers();
        for (j, &c) in clients.iter().enumerate() {
            let target = match &cfg.link_snr_db {
                Some(m) => m[j].iter().cloned().fold(f64::MIN, f64::max),
                None => cfg.client_snr_db[j],
            };
            // Designated = strongest realized link.
            let mut best = (0usize, f64::MIN);
            for (i, &a) in aps.iter().enumerate() {
                let mean_db = {
                    let link = medium
                        .link(a, c)
                        // jmb-allow(no-panic-hot-path): constructor-local — the loop above installed a link for every (ap, client) pair of this very medium
                        .expect("invariant: every (ap, client) link was installed above");
                    let acc: f64 = occupied_list
                        .iter()
                        .map(|&k| {
                            let f = k as f64 * cfg.params.subcarrier_spacing();
                            jmb_dsp::stats::lin_to_db(
                                link.freq_response_at(f).norm_sqr() / cfg.noise_var,
                            )
                        })
                        .sum();
                    acc / occupied_list.len() as f64
                };
                if mean_db > best.1 {
                    best = (i, mean_db);
                }
            }
            let delta_db = target - best.1;
            let scale = jmb_dsp::stats::db_to_lin(delta_db).sqrt();
            for &a in &aps {
                if let Some(link) = medium.link_mut(a, c) {
                    link.gain = link.gain * scale;
                }
            }
        }

        let strategy = strategy_for(cfg.sync, cfg.n_aps);
        let health = (1..cfg.n_aps).map(|_| SyncHealth::default()).collect();
        let fault_rng = jmb_dsp::rng::derive_rng(cfg.seed, 0xFA17);
        let occupied = cfg.params.occupied_subcarriers();
        Ok(FastNet {
            cfg,
            medium,
            aps,
            clients,
            strategy,
            h_meas: None,
            precoder: None,
            occupied,
            now: 1e-4,
            rng,
            static_ap_client: None,
            faults: FaultSchedule::none(),
            fault_rng,
            health,
            sync_error_budget_rad: crate::sync::SYNC_ERROR_BUDGET_RAD,
            trace: Trace::new(),
            ext_intf: Vec::new(),
        })
    }

    /// Sets the external (out-of-cell) interference floor, linear power in
    /// the same normalised units as `cfg.noise_var`.
    ///
    /// Accepts either one value per occupied subcarrier or a single value
    /// applied flat across the band; an empty slice clears it. The floor is
    /// added to the thermal noise in every SINR denominator
    /// ([`FastNet::joint_transmit`], [`FastNet::joint_transmit_subset`]) and
    /// in the `k̂²/(N+I)` rate selection, so the EESM effective SNR — and
    /// with it the PER margin a traffic backend derives — sees the
    /// interference too.
    pub fn set_external_interference(&mut self, per_bin: &[f64]) -> Result<(), JmbError> {
        if per_bin.iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(JmbError::BadConfig(
                "external interference must be finite and non-negative",
            ));
        }
        match per_bin.len() {
            0 => self.ext_intf.clear(),
            1 => {
                self.ext_intf.clear();
                self.ext_intf.resize(self.occupied.len(), per_bin[0]);
            }
            n if n == self.occupied.len() => {
                self.ext_intf.clear();
                self.ext_intf.extend_from_slice(per_bin);
            }
            _ => {
                return Err(JmbError::BadConfig(
                    "external interference needs 0, 1, or one value per occupied subcarrier",
                ))
            }
        }
        Ok(())
    }

    /// The external interference floor per occupied subcarrier (empty when
    /// none is set).
    pub fn external_interference(&self) -> &[f64] {
        &self.ext_intf
    }

    /// External interference on subcarrier index `k_idx` (0 when unset).
    #[inline]
    fn ext_at(&self, k_idx: usize) -> f64 {
        self.ext_intf.get(k_idx).copied().unwrap_or(0.0)
    }

    /// Band-mean external interference (0 when unset) — the flat value the
    /// `k̂²/(N+I)` rate selection uses.
    fn ext_mean(&self) -> f64 {
        if self.ext_intf.is_empty() {
            0.0
        } else {
            self.ext_intf.iter().sum::<f64>() / self.ext_intf.len() as f64
        }
    }

    /// Installs a constant control-plane fault config (applies from now on).
    pub fn set_control_faults(&mut self, config: FaultConfig) {
        self.faults = FaultSchedule::constant(config);
    }

    /// Installs a time-varying fault schedule (loss storms etc.).
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = schedule;
    }

    /// Sets the error budget (radians of predicted phase error) under which
    /// a slave that missed the sync header may still transmit on a
    /// CFO-extrapolated correction.
    pub fn set_sync_error_budget(&mut self, rad: f64) {
        self.sync_error_budget_rad = rad;
    }

    /// Per-slave sync health; index 0 is slave AP 1.
    pub fn sync_health(&self) -> &[SyncHealth] {
        &self.health
    }

    /// Airtime of one full channel-measurement exchange, including the
    /// post-packet turnaround — what a lost measurement still costs the air.
    /// Scaled by the sync backend's measurement factor: implicit-CSI
    /// strategies skip the explicit per-client measurement frames.
    pub fn measurement_airtime_s(&self) -> f64 {
        ((320 + self.cfg.rounds * self.cfg.n_aps * self.cfg.params.symbol_len()) as f64
            * self.cfg.params.sample_period()
            + 50e-6)
            * self.strategy.measurement_airtime_factor()
    }

    /// The active synchronization backend.
    pub fn sync_strategy(&self) -> SyncStrategyId {
        self.strategy.kind()
    }

    /// Swaps the synchronization backend, discarding per-slave sync state
    /// (the next [`FastNet::run_measurement`] re-seeds it). Emits
    /// [`EventKind::SyncStrategySwitched`] on the trace.
    pub fn set_sync_strategy(&mut self, kind: SyncStrategyId) {
        self.strategy = strategy_for(kind, self.cfg.n_aps);
        self.trace
            .emit(self.now, EventKind::SyncStrategySwitched { strategy: kind });
    }

    /// Worst-case predicted phase error (radians) across slaves at the
    /// current time — the per-strategy gauge the traffic layer exports.
    /// Infinite until the backend has references (before any measurement).
    pub fn sync_phase_error_rad(&self) -> f64 {
        (1..self.cfg.n_aps)
            .map(|s| self.strategy.phase_error_rad(s, self.now))
            .fold(0.0, f64::max)
    }

    /// Drains the out-of-band control airtime (seconds) the sync backend
    /// accrued since the last call (pilot broadcasts; zero for the default
    /// in-band strategy).
    pub fn take_sync_control_airtime_s(&mut self) -> f64 {
        self.strategy.take_control_airtime_s()
    }

    /// Whether the measurement frame at time `t` is lost to fault injection.
    /// Zero-probability configs make no RNG draw (determinism of clean runs).
    fn draw_meas_loss(&mut self, t: f64) -> bool {
        let p = self.faults.config_at(t).control.meas_loss_chance;
        p > 0.0 && self.fault_rng.gen::<f64>() < p
    }

    /// Whether slave `slave` misses the lead's sync header at time `t`.
    fn draw_sync_miss(&mut self, slave: usize, t: f64) -> bool {
        let p = self.faults.config_at(t).control.sync_loss_for(slave);
        p > 0.0 && self.fault_rng.gen::<f64>() < p
    }

    /// Returns the cached static AP→client channel snapshot, building it on
    /// first use after construction or fading evolution. Taken out of `self`
    /// (and restored by the caller) so the medium can be borrowed mutably
    /// alongside it.
    fn take_ap_client_static(&mut self) -> jmb_sim::StaticChannel {
        match self.static_ap_client.take() {
            Some(snap) => snap,
            None => self
                .medium
                .snapshot_static(&self.aps, &self.clients, &self.occupied),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The configuration.
    pub fn config(&self) -> &FastConfig {
        &self.cfg
    }

    /// Advances time (oscillators drift; call [`FastNet::evolve_fading`]
    /// separately to age the channels).
    pub fn advance(&mut self, dt: f64) {
        // jmb-allow(no-panic-hot-path): a negative dt is a harness programming error, not a runtime condition — time only flows forward in every caller
        assert!(dt >= 0.0, "cannot rewind simulation time (dt = {dt})");
        self.now += dt;
    }

    /// Ages every link's fading by `dt` seconds.
    pub fn evolve_fading(&mut self, dt: f64) {
        self.medium.evolve_fading(dt);
        self.static_ap_client = None;
    }

    /// Ages only one client's AP→client links by `dt` seconds — the §7
    /// scenario ("when a single receiver's channels change"): that client's
    /// row of `H` goes stale while everyone else's, and the lead→slave
    /// reference channels, stay valid.
    pub fn evolve_client_links(&mut self, client: usize, dt: f64) {
        let c = self.clients[client];
        let mut rng = jmb_dsp::rng::derive_rng(self.cfg.seed, 0xE70 ^ client as u64);
        for i in 0..self.cfg.n_aps {
            if let Some(link) = self.medium.link_mut(self.aps[i], c) {
                link.evolve(dt, &mut rng);
            }
        }
        self.static_ap_client = None;
    }

    /// The power normalisation of the current precoder.
    pub fn k_hat(&self) -> Option<f64> {
        self.precoder.as_ref().map(|p| p.k_hat())
    }

    /// The measured channel (after [`FastNet::run_measurement`]).
    pub fn measured_channel(&self) -> Option<&[CMat]> {
        self.h_meas.as_deref()
    }

    /// Ground-truth channel matrix at one subcarrier and time (for
    /// validation and ablation experiments).
    pub fn medium_true_channel(
        &mut self,
        txs: &[NodeId],
        rxs: &[NodeId],
        subcarrier: i32,
        t: f64,
    ) -> CMat {
        self.medium.channel_matrix(txs, rxs, subcarrier, t)
    }

    /// Medium node ids of the APs (index 0 = lead).
    pub fn ap_nodes(&self) -> &[NodeId] {
        &self.aps
    }

    /// Medium node ids of the clients.
    pub fn client_nodes(&self) -> &[NodeId] {
        &self.clients
    }

    /// Per-header estimation noise variance on the lead→slave channel,
    /// derived from the AP↔AP SNR (two LTF repetitions averaged).
    fn header_noise_var(&self) -> f64 {
        self.cfg.noise_var / 2.0
    }

    /// Measures a noisy per-subcarrier channel estimate of `tx → rx` at
    /// time `t`, averaging `n_avg` independent observations.
    fn noisy_estimate(&mut self, tx: NodeId, rx: NodeId, t: f64, n_avg: usize) -> ChannelEstimate {
        let var = self.cfg.noise_var / n_avg as f64;
        let mut gains = Vec::with_capacity(self.occupied.len());
        self.medium
            .channel_row_into(tx, rx, &self.occupied, t, &mut gains);
        for g in gains.iter_mut() {
            *g += complex_gaussian(&mut self.rng, var);
        }
        ChannelEstimate {
            subcarriers: self.occupied.clone(),
            gains,
        }
    }

    /// The channel-measurement phase (§5.1), frequency-domain model: every
    /// client measures every AP (averaged over `rounds`), slaves store
    /// their reference channel and a span-limited CFO seed.
    pub fn run_measurement(&mut self) -> Result<(), JmbError> {
        let t0 = self.now;
        if self.draw_meas_loss(t0) {
            // The exchange still occupied the air; CSI stays stale and the
            // caller owns the backoff re-measurement schedule.
            self.trace.emit(t0, EventKind::MeasurementLost);
            self.now = t0 + self.measurement_airtime_s();
            return Err(JmbError::MeasurementLost);
        }
        let n_k = self.occupied.len();
        let mut h = vec![CMat::zeros(self.cfg.n_clients, self.cfg.n_aps); n_k];
        // All estimates are taken at one instant, so the oscillator state
        // and the static tap sums are evaluated once (cached snapshot)
        // instead of once per (pair, subcarrier); only the per-round
        // estimation noise is drawn per pair and subcarrier, in the same
        // order as before.
        let snap = self.take_ap_client_static();
        let mut inst = jmb_sim::InstantPhasors::default();
        self.medium.instant_phasors(&snap, t0, &mut inst);
        let var = self.cfg.noise_var / self.cfg.rounds as f64;
        let mut row = Vec::with_capacity(n_k);
        for j in 0..self.cfg.n_clients {
            for i in 0..self.cfg.n_aps {
                snap.row_at(&inst, i, j, &mut row);
                for (k_idx, &g) in row.iter().enumerate() {
                    h[k_idx][(j, i)] = g + complex_gaussian(&mut self.rng, var);
                }
            }
        }
        self.static_ap_client = Some(snap);
        // Slave references + CFO seeds. Seed accuracy is phase-limited by
        // the rounds-section span (same formula as the sample-level net).
        let span_s = (self.cfg.rounds * self.cfg.n_aps) as f64
            * self.cfg.params.symbol_len() as f64
            * self.cfg.params.sample_period();
        let seed_sigma = (0.02 / (2.0 * std::f64::consts::PI * span_s)).max(10.0);
        let hnv = self.header_noise_var();
        self.strategy.on_measurement(
            &mut SyncCtx {
                medium: &mut self.medium,
                rng: &mut self.rng,
                aps: &self.aps,
                occupied: &self.occupied,
                header_noise_var: hnv,
            },
            t0,
            seed_sigma,
        );
        // A full-population precoder only exists when ZF is well posed
        // (clients ≤ AP antennas). An over-subscribed cell — the city-scale
        // case, hundreds of clients behind a handful of APs — still gets a
        // valid measurement: the MAC schedules ≤ n_aps clients per batch and
        // [`FastNet::joint_transmit_subset`] builds its per-batch precoder
        // from `h_meas` directly.
        self.precoder = if self.cfg.n_clients <= self.cfg.n_aps {
            Some(Precoder::zero_forcing(&h)?)
        } else {
            None
        };
        self.h_meas = Some(h);
        // Advance past the measurement packet.
        self.now = t0 + self.measurement_airtime_s();
        Ok(())
    }

    fn noisy_estimate_with_var(
        &mut self,
        tx: NodeId,
        rx: NodeId,
        t: f64,
        var: f64,
    ) -> ChannelEstimate {
        let mut gains = Vec::with_capacity(self.occupied.len());
        self.medium
            .channel_row_into(tx, rx, &self.occupied, t, &mut gains);
        for g in gains.iter_mut() {
            *g += complex_gaussian(&mut self.rng, var);
        }
        ChannelEstimate {
            subcarriers: self.occupied.clone(),
            gains,
        }
    }

    /// One virtual joint transmission (§5.2): slaves re-measure the lead
    /// from the header, apply their corrections, and the outcome is the
    /// per-client per-subcarrier SINR over the packet.
    ///
    /// `packet_duration_s` is the airtime of the data portion (drives
    /// within-packet tracking error); interference is averaged over
    /// `n_probes` instants across the packet. `mute_streams` lists stream
    /// indices carrying no data (used by the Fig. 8 nulling probe).
    ///
    /// `apply_phase_sync = false` is the ablation.
    pub fn joint_transmit(
        &mut self,
        packet_duration_s: f64,
        n_probes: usize,
        mute_streams: &[usize],
        apply_phase_sync: bool,
    ) -> Result<JointOutcome, JmbError> {
        if self.precoder.is_none() {
            return Err(JmbError::NoReference);
        }
        let t_h = self.now;
        let params = self.cfg.params.clone();
        let t_meas = t_h + 240.0 * params.sample_period();

        // Slave corrections from the sync backend (for the default JMB
        // strategy: a fresh in-band header measurement at `t_meas`). Each
        // correction carries its own anchor time: within-packet tracking
        // extrapolates from wherever the backend last observed the lead.
        let mut corr: Vec<Option<crate::phasesync::PhaseCorrection>> = vec![None; self.cfg.n_aps];
        let mut anchor = vec![t_meas; self.cfg.n_aps];
        let hnv = self.header_noise_var();
        for s in 1..self.cfg.n_aps {
            let (pc, t_anchor) = self.strategy.on_header(
                &mut SyncCtx {
                    medium: &mut self.medium,
                    rng: &mut self.rng,
                    aps: &self.aps,
                    occupied: &self.occupied,
                    header_noise_var: hnv,
                },
                s,
                t_meas,
            )?;
            anchor[s] = t_anchor;
            corr[s] = Some(pc);
        }

        let t_d = t_h + 320.0 * params.sample_period() + self.cfg.turnaround_s;
        let n_k = self.occupied.len();
        let n_clients = self.cfg.n_clients;
        let n_aps = self.cfg.n_aps;
        let nv = self.cfg.noise_var;
        let spacing = params.subcarrier_spacing();
        let carrier = params.carrier_freq;
        let mut sinr_db = vec![vec![0.0; n_k]; n_clients];
        let mut interference = vec![vec![0.0; n_k]; n_clients];

        let probes: Vec<f64> = (0..n_probes.max(1))
            .map(|p| t_d + packet_duration_s * (p as f64 + 0.5) / n_probes.max(1) as f64)
            .collect();

        // Take the precoder out of `self` for the duration of the hot loop
        // so we can borrow its weights without deep-cloning them while
        // `self.medium` is borrowed mutably. Restored below; there is no
        // fallible exit in between.
        let precoder = self.precoder.take().ok_or(JmbError::NoReference)?;
        let n_streams = precoder.n_streams();

        // Hot-loop scratch, reused across all (probe, subcarrier)
        // iterations: zero allocations inside the loops. The static link
        // responses (the multipath tap sums) come from the cached snapshot;
        // each probe instant then only pays the oscillator phasors, and
        // each subcarrier one rotation + one small mat-mul.
        let snap = self.take_ap_client_static();
        let mut inst = jmb_sim::InstantPhasors::default();
        let mut sig = vec![0.0f64; n_clients * n_k];
        let mut intf = vec![0.0f64; n_clients * n_k];
        let mut h_now = CMat::zeros(n_clients, n_aps);
        let mut eff = CMat::zeros(n_clients, n_aps);
        let mut g = CMat::zeros(n_clients, n_streams);

        for &t in &probes {
            self.medium.instant_phasors(&snap, t, &mut inst);
            for k_idx in 0..n_k {
                let k = self.occupied[k_idx];
                let w = precoder.weights_at(k_idx);
                // Effective channel at this instant: physical channel ×
                // per-AP correction (phase sync) per column.
                snap.matrix_at(&inst, k_idx, &mut h_now);
                eff.reset(n_clients, n_aps);
                for i in 0..n_aps {
                    let c = if apply_phase_sync {
                        match &corr[i] {
                            Some(c) => c.correction_at(k, t - anchor[i], spacing, carrier),
                            None => Complex64::ONE,
                        }
                    } else {
                        Complex64::ONE
                    };
                    for j in 0..n_clients {
                        eff[(j, i)] = h_now[(j, i)] * c;
                    }
                }
                eff.mul_into(w, &mut g)
                    // jmb-allow(no-panic-hot-path): eff (nb x n_tx), w (n_tx x nb), g (nb x nb) are sized from the same dims a few lines up; mul_into only errors on shape mismatch
                    .expect("invariant: eff/w/g allocated with matching dims just above");
                for j in 0..n_clients {
                    sig[j * n_k + k_idx] += g[(j, j)].norm_sqr();
                    for s in 0..n_streams {
                        if s != j && !mute_streams.contains(&s) {
                            intf[j * n_k + k_idx] += g[(j, s)].norm_sqr();
                        }
                    }
                }
            }
        }
        let np = probes.len() as f64;
        for j in 0..n_clients {
            for k_idx in 0..n_k {
                let s = sig[j * n_k + k_idx] / np;
                let i = intf[j * n_k + k_idx] / np;
                interference[j][k_idx] = i;
                sinr_db[j][k_idx] = jmb_dsp::stats::lin_to_db(s / (nv + self.ext_at(k_idx) + i));
            }
        }

        let k_hat = precoder.k_hat();
        self.precoder = Some(precoder);
        self.static_ap_client = Some(snap);

        self.now = t_d + packet_duration_s + 50e-6;
        Ok(JointOutcome {
            sinr_db,
            interference,
            k_hat,
        })
    }

    /// The Fig. 8 nulling probe: the signal for `victim` is zero, so
    /// whatever it receives is leakage plus its own noise floor. Returns
    /// the victim's INR in the paper's metric — total received power over
    /// noise, `10·log₁₀(1 + I/N)` — which is 0 dB under perfect alignment
    /// ("the ratio of the received signal power to noise should be 0 dB",
    /// §11.1c).
    pub fn null_probe(&mut self, victim: usize, packet_duration_s: f64) -> Result<f64, JmbError> {
        let outcome = self.joint_transmit(packet_duration_s, 4, &[victim], true)?;
        let nv = self.cfg.noise_var;
        let ratio = outcome.interference[victim]
            .iter()
            .map(|&i| (nv + i) / nv)
            .sum::<f64>()
            / outcome.interference[victim].len() as f64;
        Ok(jmb_dsp::stats::lin_to_db(ratio))
    }

    /// Diversity SNR (§8): all APs MRT-beamform to `client`; returns the
    /// per-subcarrier post-combining SNR in dB at one packet time.
    pub fn diversity_snr_db(&mut self, client: usize) -> Result<Vec<f64>, JmbError> {
        let h = self.h_meas.as_ref().ok_or(JmbError::NoReference)?;
        let rows: Vec<Vec<Complex64>> = (0..h.len())
            .map(|k_idx| (0..self.cfg.n_aps).map(|i| h[k_idx][(client, i)]).collect())
            .collect();
        let mrt = Precoder::mrt(&rows)?;
        let t_h = self.now;
        let params = self.cfg.params.clone();
        let t_meas = t_h + 240.0 * params.sample_period();
        let mut corr: Vec<Option<crate::phasesync::PhaseCorrection>> = vec![None; self.cfg.n_aps];
        let mut anchor = vec![t_meas; self.cfg.n_aps];
        let hnv = self.header_noise_var();
        for s in 1..self.cfg.n_aps {
            let (pc, t_anchor) = self.strategy.on_header(
                &mut SyncCtx {
                    medium: &mut self.medium,
                    rng: &mut self.rng,
                    aps: &self.aps,
                    occupied: &self.occupied,
                    header_noise_var: hnv,
                },
                s,
                t_meas,
            )?;
            anchor[s] = t_anchor;
            corr[s] = Some(pc);
        }
        let t = t_h + 320.0 * params.sample_period() + self.cfg.turnaround_s + 200e-6;
        let nv = self.cfg.noise_var;
        let spacing = params.subcarrier_spacing();
        let carrier = params.carrier_freq;
        // One row per AP at the single probe instant, so the static tap
        // sums (cached snapshot) and the per-pair oscillator state are
        // computed once instead of once per subcarrier.
        let snap = self.take_ap_client_static();
        let mut inst = jmb_sim::InstantPhasors::default();
        self.medium.instant_phasors(&snap, t, &mut inst);
        let mut rows: Vec<Vec<Complex64>> = Vec::with_capacity(self.cfg.n_aps);
        for i in 0..self.cfg.n_aps {
            let mut row = Vec::with_capacity(self.occupied.len());
            snap.row_at(&inst, i, client, &mut row);
            rows.push(row);
        }
        self.static_ap_client = Some(snap);
        let mut out = Vec::with_capacity(self.occupied.len());
        for k_idx in 0..self.occupied.len() {
            let k = self.occupied[k_idx];
            let w = mrt.weights_at(k_idx);
            let mut rx = Complex64::ZERO;
            for (i, row) in rows.iter().enumerate() {
                let c = match &corr[i] {
                    Some(c) => c.correction_at(k, t - anchor[i], spacing, carrier),
                    None => Complex64::ONE,
                };
                rx += row[k_idx] * c * w[(i, 0)];
            }
            out.push(jmb_dsp::stats::lin_to_db(rx.norm_sqr() / nv));
        }
        self.now = t + 300e-6;
        Ok(out)
    }

    /// The 802.11 baseline for one client: per-subcarrier SNR (dB) from its
    /// strongest (designated) AP transmitting alone at unit power.
    pub fn baseline_snr_db(&mut self, client: usize) -> Vec<f64> {
        let t = self.now;
        let nv = self.cfg.noise_var;
        let snap = self.take_ap_client_static();
        let mut inst = jmb_sim::InstantPhasors::default();
        self.medium.instant_phasors(&snap, t, &mut inst);
        // Designated AP = strongest mean channel power.
        let mut row = Vec::with_capacity(self.occupied.len());
        let mut best_ap = 0;
        let mut best_pw = -1.0;
        for i in 0..self.cfg.n_aps {
            snap.row_at(&inst, i, client, &mut row);
            let pw: f64 = row.iter().map(|h| h.norm_sqr()).sum();
            if pw > best_pw {
                best_pw = pw;
                best_ap = i;
            }
        }
        snap.row_at(&inst, best_ap, client, &mut row);
        self.static_ap_client = Some(snap);
        row.iter()
            .map(|h| jmb_dsp::stats::lin_to_db(h.norm_sqr() / nv))
            .collect()
    }

    /// Re-measures the channel rows of a *single* client (§7: decoupled
    /// measurements) without touching the other clients' rows.
    ///
    /// The newly measured row is taken at the current time `t_j`; every
    /// slave AP computes the accumulated lead-relative rotation
    /// `e^{j(ω_lead−ω_i)(t_j−t₁)}` from its two reference-channel
    /// observations, and the row is rotated back to the original reference
    /// time before being spliced into `H̃` (the appendix's factorisation).
    /// The precoder is rebuilt from the stitched matrix.
    pub fn remeasure_client(&mut self, client: usize) -> Result<(), JmbError> {
        if client >= self.cfg.n_clients {
            return Err(JmbError::BadConfig("no such client"));
        }
        let mut h = self.h_meas.clone().ok_or(JmbError::NoReference)?;
        let t_j = self.now;
        if self.draw_meas_loss(t_j) {
            // The decoupled exchange is much shorter than a full measurement.
            self.trace.emit(t_j, EventKind::MeasurementLost);
            self.now = t_j + 200e-6;
            return Err(JmbError::MeasurementLost);
        }
        // Per-slave rotation from fresh reference observations vs the
        // stored reference: ratio phase = (ω_lead − ω_i)(t_j − t₁) under the
        // medium's tx-minus-rx phase convention, in which the *same* factor
        // (not its conjugate) converts the fresh row's per-column oscillator
        // state back to the reference time. The accumulated rotation over a
        // many-ms gap carries a multi-radian sampling-offset ramp across
        // the band, so it is fitted (common phase + per-subcarrier slope,
        // with sequential unwrapping) rather than averaged flat.
        let ks: Vec<f64> = self.occupied.iter().map(|&k| k as f64).collect();
        let mut rotations: Vec<(f64, f64)> = vec![(0.0, 0.0)]; // lead: identity
        for s in 1..self.cfg.n_aps {
            let now_ref = self.noisy_estimate_with_var(
                self.aps[0],
                self.aps[s],
                t_j,
                self.header_noise_var(),
            );
            let stored = self
                .strategy
                .reference(s)
                .ok_or(JmbError::NoReference)?
                .clone();
            let ratios: Vec<Complex64> = now_ref
                .gains
                .iter()
                .zip(&stored.gains)
                .map(|(a, b)| *a * b.conj())
                .collect();
            rotations.push(jmb_dsp::complex::fit_linear_phase(&ks, &ratios));
        }
        // Fresh row for this client, rotated back to the reference time.
        let est = {
            let c = self.clients[client];
            let mut rows = Vec::with_capacity(self.cfg.n_aps);
            for i in 0..self.cfg.n_aps {
                rows.push(self.noisy_estimate(self.aps[i], c, t_j, self.cfg.rounds));
            }
            rows
        };
        for (k_idx, matrix) in h.iter_mut().enumerate() {
            let k = self.occupied[k_idx] as f64;
            for i in 0..self.cfg.n_aps {
                let (common, slope) = rotations[i];
                let rot = Complex64::cis(common + slope * k);
                matrix[(client, i)] = est[i].gains[k_idx] * rot;
            }
        }
        // Same well-posedness gate as `run_measurement`: over-subscribed
        // cells keep the stitched `h_meas` and rebuild per-batch precoders.
        self.precoder = if self.cfg.n_clients <= self.cfg.n_aps {
            Some(Precoder::zero_forcing(&h)?)
        } else {
            None
        };
        self.h_meas = Some(h);
        self.now = t_j + 200e-6;
        Ok(())
    }

    /// Rate selected for the joint transmission (same for every client,
    /// §9): from `k̂²/N`.
    pub fn select_joint_rate(&self) -> Option<Mcs> {
        let p = self.precoder.as_ref()?;
        let floor = self.cfg.noise_var + self.ext_mean();
        let snrs_db: Vec<f64> = p
            .k_hats()
            .iter()
            .map(|&k| jmb_dsp::stats::lin_to_db(k * k / floor))
            .collect();
        jmb_phy::esnr::select_mcs(&snrs_db)
    }

    /// One joint transmission to a *subset* of clients from a *subset* of
    /// APs — the MAC-driven case: a batch is rarely the full client
    /// population, and during an AP outage the array shrinks. A fresh
    /// zero-forcing precoder is built from the stored measurement `H̃`
    /// restricted to `(clients × active_aps)`, the MCS is selected from its
    /// `k̂²/N` (falling back to the base rate when even that is below
    /// threshold — the MAC's retry policy handles the resulting losses),
    /// and the airtime follows from MCS and `payload_bytes`.
    ///
    /// AP 0 stays the phase reference even when absent from `active_aps`
    /// (its oscillator is distributed over the wired backplane, §6 — a
    /// deliberate simplification so a lead data-path failure does not also
    /// destroy the slaves' phase references).
    ///
    /// Requires `run_measurement` first; `active_aps` must hold at least as
    /// many distinct APs as there are batch clients (ZF well-posedness).
    pub fn joint_transmit_subset(
        &mut self,
        clients: &[usize],
        active_aps: &[usize],
        payload_bytes: usize,
        n_probes: usize,
        apply_phase_sync: bool,
    ) -> Result<SubsetOutcome, JmbError> {
        if self.h_meas.is_none() {
            return Err(JmbError::NoReference);
        }
        let nb = clients.len();
        let na = active_aps.len();
        if nb == 0 || na == 0 {
            return Err(JmbError::BadConfig("empty batch or AP set"));
        }
        if clients.iter().any(|&j| j >= self.cfg.n_clients)
            || active_aps.iter().any(|&i| i >= self.cfg.n_aps)
        {
            return Err(JmbError::BadConfig("client or AP index out of range"));
        }
        for (x, &a) in clients.iter().enumerate() {
            if clients[..x].contains(&a) {
                return Err(JmbError::BadConfig("duplicate client in batch"));
            }
        }
        for (x, &a) in active_aps.iter().enumerate() {
            if active_aps[..x].contains(&a) {
                return Err(JmbError::BadConfig("duplicate AP in active set"));
            }
        }
        if na < nb {
            return Err(JmbError::BadConfig("fewer active APs than streams"));
        }

        // Sync headers first: which active slaves can phase-align for this
        // batch? A slave that misses the lead's header (fault injection) may
        // fall back to a CFO-extrapolated correction from its last heard
        // header — but only while healthy and within the error budget;
        // otherwise it is excluded from the batch and radiates nothing.
        let t_h = self.now;
        let params = self.cfg.params.clone();
        let t_meas = t_h + 240.0 * params.sample_period();
        let mut corr: Vec<Option<crate::phasesync::PhaseCorrection>> = vec![None; self.cfg.n_aps];
        // Anchor time of each AP's correction: fallback corrections are
        // anchored at the *old* header, so within-packet CFO tracking must
        // extrapolate from there rather than from this batch's header.
        let mut anchor = vec![t_meas; self.cfg.n_aps];
        let mut missed_slaves = Vec::new();
        let mut fallback_slaves = Vec::new();
        let mut newly_degraded = Vec::new();
        let mut newly_restored = Vec::new();
        let mut excluded = vec![false; self.cfg.n_aps];
        let hnv = self.header_noise_var();
        let inband = self.strategy.uses_inband_header();
        for &s in active_aps {
            if s == 0 {
                continue; // lead transmits the reference, needs no correction
            }
            // The miss/health machinery only exists for strategies that
            // listen for the in-band header: an out-of-band backend makes
            // no per-header fault draw (losing a frame header cannot
            // desynchronize it) and never degrades.
            if inband && self.draw_sync_miss(s, t_meas) {
                self.trace.emit(t_meas, EventKind::SyncMissed { slave: s });
                missed_slaves.push(s);
                if self.health[s - 1].record_miss() {
                    self.trace.emit(t_meas, EventKind::ApDegraded { ap: s });
                    newly_degraded.push(s);
                }
                let degraded = self.health[s - 1].is_degraded();
                let fallback =
                    self.strategy
                        .on_header_missed(s, t_meas, self.sync_error_budget_rad, degraded);
                match fallback {
                    Some((pc, t_old)) => {
                        anchor[s] = t_old;
                        corr[s] = Some(pc);
                        fallback_slaves.push(s);
                    }
                    None => excluded[s] = true,
                }
                continue;
            }
            if inband && self.health[s - 1].record_sync() {
                self.trace.emit(t_meas, EventKind::ApRestored { ap: s });
                newly_restored.push(s);
            }
            let (pc, t_anchor) = self.strategy.on_header(
                &mut SyncCtx {
                    medium: &mut self.medium,
                    rng: &mut self.rng,
                    aps: &self.aps,
                    occupied: &self.occupied,
                    header_noise_var: hnv,
                },
                s,
                t_meas,
            )?;
            anchor[s] = t_anchor;
            corr[s] = Some(pc);
        }

        // The effective AP set: everyone still able to phase-align. If too
        // few remain for the batch's streams, the transmission cannot go out
        // and the caller must shrink the batch or retry later.
        let eff_aps: Vec<usize> = active_aps
            .iter()
            .copied()
            .filter(|&i| !excluded[i])
            .collect();
        let na_eff = eff_aps.len();
        if na_eff < nb {
            let slave = excluded.iter().position(|&e| e).unwrap_or(0);
            return Err(JmbError::SyncHeaderMissed { slave });
        }

        // ZF over the measured channel restricted to the batch and the
        // effective AP set.
        let h_meas = self.h_meas.as_ref().ok_or(JmbError::NoReference)?;
        let n_k = self.occupied.len();
        let mut h_sub = vec![CMat::zeros(nb, na_eff); n_k];
        for k_idx in 0..n_k {
            for (r, &j) in clients.iter().enumerate() {
                for (c, &i) in eff_aps.iter().enumerate() {
                    h_sub[k_idx][(r, c)] = h_meas[k_idx][(j, i)];
                }
            }
        }
        let precoder = Precoder::zero_forcing(&h_sub)?;
        let floor = self.cfg.noise_var + self.ext_mean();
        let snrs_db: Vec<f64> = precoder
            .k_hats()
            .iter()
            .map(|&k| jmb_dsp::stats::lin_to_db(k * k / floor))
            .collect();
        let mcs = jmb_phy::esnr::select_mcs(&snrs_db).unwrap_or(Mcs::BASE);
        let airtime_s = crate::baseline::frame_airtime(&self.cfg.params, mcs, payload_bytes);

        let t_d = t_h + 320.0 * params.sample_period() + self.cfg.turnaround_s;
        let nv = self.cfg.noise_var;
        let spacing = params.subcarrier_spacing();
        let carrier = params.carrier_freq;
        let probes: Vec<f64> = (0..n_probes.max(1))
            .map(|p| t_d + airtime_s * (p as f64 + 0.5) / n_probes.max(1) as f64)
            .collect();

        let snap = self.take_ap_client_static();
        let mut inst = jmb_sim::InstantPhasors::default();
        let mut sig = vec![0.0f64; nb * n_k];
        let mut intf = vec![0.0f64; nb * n_k];
        // Channel rows for the (batch client × effective AP) pairs only —
        // `nb·na_eff` rows of `n_k` entries. A city-scale cell serves a few
        // hundred clients from a handful of APs, so building the full
        // `n_clients × n_aps` matrix per (probe, subcarrier) would dominate
        // the sweep; `row_at` is bit-identical to `matrix_at` per entry
        // (asserted by the sim crate's snapshot-equivalence test), so the
        // outcome is unchanged.
        let mut pair_rows: Vec<Vec<Complex64>> = vec![Vec::new(); nb * na_eff];
        let mut eff = CMat::zeros(nb, na_eff);
        let mut g = CMat::zeros(nb, nb);

        for &t in &probes {
            self.medium.instant_phasors(&snap, t, &mut inst);
            for (c, &i) in eff_aps.iter().enumerate() {
                for (r, &j) in clients.iter().enumerate() {
                    snap.row_at(&inst, i, j, &mut pair_rows[r * na_eff + c]);
                }
            }
            for k_idx in 0..n_k {
                let k = self.occupied[k_idx];
                let w = precoder.weights_at(k_idx);
                eff.reset(nb, na_eff);
                for (c, &i) in eff_aps.iter().enumerate() {
                    let corr_c = if apply_phase_sync {
                        match &corr[i] {
                            Some(pc) => pc.correction_at(k, t - anchor[i], spacing, carrier),
                            None => Complex64::ONE,
                        }
                    } else {
                        Complex64::ONE
                    };
                    for r in 0..nb {
                        eff[(r, c)] = pair_rows[r * na_eff + c][k_idx] * corr_c;
                    }
                }
                eff.mul_into(w, &mut g)
                    // jmb-allow(no-panic-hot-path): eff (nb x n_tx), w (n_tx x nb), g (nb x nb) are sized from the same dims a few lines up; mul_into only errors on shape mismatch
                    .expect("invariant: eff/w/g allocated with matching dims just above");
                for r in 0..nb {
                    sig[r * n_k + k_idx] += g[(r, r)].norm_sqr();
                    for s in 0..nb {
                        if s != r {
                            intf[r * n_k + k_idx] += g[(r, s)].norm_sqr();
                        }
                    }
                }
            }
        }
        self.static_ap_client = Some(snap);

        let np = probes.len() as f64;
        let mut sinr_db = vec![vec![0.0; n_k]; nb];
        for r in 0..nb {
            for k_idx in 0..n_k {
                let s = sig[r * n_k + k_idx] / np;
                let i = intf[r * n_k + k_idx] / np;
                sinr_db[r][k_idx] = jmb_dsp::stats::lin_to_db(s / (nv + self.ext_at(k_idx) + i));
            }
        }
        let eff_snr_db: Vec<f64> = sinr_db
            .iter()
            .map(|s| jmb_phy::esnr::effective_snr_db_eesm(mcs, s))
            .collect();

        self.now = t_d + airtime_s + 50e-6;
        Ok(SubsetOutcome {
            clients: clients.to_vec(),
            mcs,
            airtime_s,
            eff_snr_db,
            sinr_db,
            missed_slaves,
            fallback_slaves,
            newly_degraded,
            newly_restored,
        })
    }
}

/// Outcome of a [`FastNet::joint_transmit_subset`] call.
#[derive(Debug, Clone)]
pub struct SubsetOutcome {
    /// The batch clients, in stream order.
    pub clients: Vec<usize>,
    /// The MCS selected for the joint transmission (shared, §9).
    pub mcs: Mcs,
    /// Airtime of the data frame, seconds.
    pub airtime_s: f64,
    /// Per-batch-client EESM effective SNR (dB) at the selected MCS.
    pub eff_snr_db: Vec<f64>,
    /// Per-batch-client per-subcarrier SINR (dB).
    pub sinr_db: Vec<Vec<f64>>,
    /// Slave APs that missed the lead's sync header for this batch.
    pub missed_slaves: Vec<usize>,
    /// Slaves among [`SubsetOutcome::missed_slaves`] that still transmitted
    /// on a CFO-extrapolated fallback correction (within the error budget).
    pub fallback_slaves: Vec<usize>,
    /// Slaves newly marked degraded by this batch (K consecutive misses).
    pub newly_degraded: Vec<usize>,
    /// Previously degraded slaves that heard the header again and were
    /// restored to service by this batch.
    pub newly_restored: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, snr: f64, seed: u64) -> FastConfig {
        FastConfig::default_with(n, n, vec![snr; n], seed)
    }

    #[test]
    fn joint_sinr_approaches_snr_with_sync() {
        let mut net = FastNet::new(cfg(4, 20.0, 1)).unwrap();
        net.run_measurement().unwrap();
        net.advance(5e-3);
        let out = net.joint_transmit(1e-3, 4, &[], true).unwrap();
        for (j, sinrs) in out.sinr_db.iter().enumerate() {
            let mean = jmb_dsp::stats::mean(sinrs);
            // ZF costs a few dB relative to the single-link SNR (channel
            // conditioning, per-client fairness through the shared k̂), but
            // the SINR must stay in the usable band.
            assert!(mean > 6.0, "client {j}: mean SINR {mean}");
        }
    }

    #[test]
    fn without_sync_sinr_collapses() {
        let mut net = FastNet::new(cfg(4, 20.0, 2)).unwrap();
        net.run_measurement().unwrap();
        net.advance(5e-3);
        let with = net.joint_transmit(1e-3, 4, &[], true).unwrap();
        // Rebuild identically and disable sync.
        let mut net2 = FastNet::new(cfg(4, 20.0, 2)).unwrap();
        net2.run_measurement().unwrap();
        net2.advance(5e-3);
        let without = net2.joint_transmit(1e-3, 4, &[], false).unwrap();
        let m_with = jmb_dsp::stats::mean(&with.sinr_db.concat());
        let m_without = jmb_dsp::stats::mean(&without.sinr_db.concat());
        assert!(
            m_with > m_without + 8.0,
            "sync {m_with} dB vs no-sync {m_without} dB"
        );
    }

    #[test]
    fn null_probe_inr_is_small() {
        let mut net = FastNet::new(cfg(3, 15.0, 3)).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        let inr = net.null_probe(0, 1e-3).unwrap();
        assert!(inr > 0.0, "INR {inr} dB cannot be below the noise floor");
        assert!(inr < 3.0, "INR {inr} dB");
    }

    #[test]
    fn diversity_snr_beats_baseline() {
        let n = 6;
        // Fig. 11 method: "roughly similar SNRs to all APs".
        let mut cfg = FastConfig::default_with(n, 1, vec![8.0], 4);
        cfg.ap_spread_db = 2.0;
        let mut net = FastNet::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        let base = jmb_dsp::stats::mean(&net.baseline_snr_db(0));
        let div = jmb_dsp::stats::mean(&net.diversity_snr_db(0).unwrap());
        // Coherent combining of 6 APs: ≥ ~10 dB over a single AP.
        assert!(div > base + 6.0, "diversity {div} dB vs baseline {base} dB");
    }

    #[test]
    fn baseline_snr_matches_calibration() {
        // Average over draws: per-subcarrier Rayleigh fading puts the mean
        // of dB-domain SNR ~2.5 dB below the calibrated (linear-mean)
        // target, with large per-draw spread.
        let mut means = Vec::new();
        for seed in 0..10 {
            let mut net = FastNet::new(cfg(2, 18.0, 50 + seed)).unwrap();
            net.run_measurement().unwrap();
            means.push(jmb_dsp::stats::mean(&net.baseline_snr_db(0)));
        }
        let mean = jmb_dsp::stats::mean(&means);
        assert!((mean - 15.5).abs() < 3.5, "baseline mean {mean}");
    }

    #[test]
    fn rate_selection_present_at_good_snr() {
        let mut net = FastNet::new(cfg(2, 25.0, 6)).unwrap();
        net.run_measurement().unwrap();
        assert!(net.select_joint_rate().is_some());
    }

    #[test]
    fn config_validation() {
        assert!(FastNet::new(FastConfig::default_with(0, 1, vec![10.0], 1)).is_err());
        assert!(FastNet::new(FastConfig::default_with(2, 2, vec![10.0], 1)).is_err());
    }

    #[test]
    fn joint_requires_measurement() {
        let mut net = FastNet::new(cfg(2, 20.0, 7)).unwrap();
        assert!(matches!(
            net.joint_transmit(1e-3, 2, &[], true),
            Err(JmbError::NoReference)
        ));
    }

    #[test]
    fn decoupled_remeasurement_restores_sinr() {
        // §7 end to end on the fast medium: one client's channel changes
        // (fading fully decorrelates); re-measuring only that client — at a
        // different time than the original measurement, stitched via the
        // lead→slave references — restores its SINR without re-measuring
        // anyone else.
        let mut net = FastNet::new(cfg(3, 20.0, 9)).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        let before = net.joint_transmit(5e-4, 2, &[], true).unwrap();
        let base = jmb_dsp::stats::mean(&before.sinr_db[0]);
        // Client 0's channels change drastically (its user walked across
        // the room); the stored H is stale for its row only, and the
        // lead→slave reference channels (static infrastructure) are intact.
        net.advance(10e-3);
        net.evolve_client_links(0, 60.0); // many coherence times
        let stale = net.joint_transmit(5e-4, 2, &[], true).unwrap();
        let stale_sinr = jmb_dsp::stats::mean(&stale.sinr_db[0]);
        assert!(stale_sinr < base - 6.0, "stale {stale_sinr} vs base {base}");
        // Re-measure only client 0, at a different time than the original
        // measurement, stitched via the lead→slave references (§7).
        net.advance(1e-3);
        net.remeasure_client(0).unwrap();
        net.advance(1e-3);
        let fixed = net.joint_transmit(5e-4, 2, &[], true).unwrap();
        let fixed_sinr = jmb_dsp::stats::mean(&fixed.sinr_db[0]);
        assert!(
            fixed_sinr > stale_sinr + 5.0,
            "decoupled remeasure must recover: stale {stale_sinr} → {fixed_sinr}"
        );
        // The other clients kept working throughout (their rows are valid).
        for j in 1..3 {
            let s = jmb_dsp::stats::mean(&fixed.sinr_db[j]);
            assert!(s > 8.0, "client {j} SINR {s}");
        }
    }

    #[test]
    fn remeasure_validates_client() {
        let mut net = FastNet::new(cfg(2, 20.0, 9)).unwrap();
        assert!(matches!(
            net.remeasure_client(0),
            Err(JmbError::NoReference)
        ));
        net.run_measurement().unwrap();
        assert!(matches!(
            net.remeasure_client(7),
            Err(JmbError::BadConfig(_))
        ));
        assert!(net.remeasure_client(0).is_ok());
    }

    #[test]
    fn reproducible_from_seed() {
        let run = |seed| {
            let mut net = FastNet::new(cfg(3, 15.0, seed)).unwrap();
            net.run_measurement().unwrap();
            net.advance(1e-3);
            net.joint_transmit(5e-4, 2, &[], true).unwrap().sinr_db
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn subset_transmit_serves_batch_with_fewer_aps() {
        let mut net = FastNet::new(cfg(4, 20.0, 11)).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        // A 2-client batch over the full array.
        let out = net
            .joint_transmit_subset(&[0, 2], &[0, 1, 2, 3], 1500, 2, true)
            .unwrap();
        assert_eq!(out.clients, vec![0, 2]);
        assert!(out.airtime_s > 0.0);
        for (r, &e) in out.eff_snr_db.iter().enumerate() {
            assert!(e > 5.0, "stream {r}: eff SNR {e} dB");
        }
        // AP 1 down: the 3-AP subset still serves both clients.
        let out = net
            .joint_transmit_subset(&[0, 2], &[0, 2, 3], 1500, 2, true)
            .unwrap();
        for (r, &e) in out.eff_snr_db.iter().enumerate() {
            assert!(e > 3.0, "stream {r} without AP 1: eff SNR {e} dB");
        }
    }

    #[test]
    fn subset_transmit_survives_lead_data_path_failure() {
        // AP 0 absent from the active set (data-path outage); its oscillator
        // stays the phase reference over the wired backplane.
        let mut net = FastNet::new(cfg(4, 20.0, 12)).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        let out = net
            .joint_transmit_subset(&[1, 3], &[1, 2, 3], 1500, 2, true)
            .unwrap();
        for (r, &e) in out.eff_snr_db.iter().enumerate() {
            assert!(e > 3.0, "stream {r} without AP 0: eff SNR {e} dB");
        }
    }

    #[test]
    fn subset_transmit_validates() {
        let mut net = FastNet::new(cfg(3, 20.0, 13)).unwrap();
        assert!(matches!(
            net.joint_transmit_subset(&[0], &[0, 1, 2], 100, 1, true),
            Err(JmbError::NoReference)
        ));
        net.run_measurement().unwrap();
        assert!(net
            .joint_transmit_subset(&[0, 0], &[0, 1, 2], 100, 1, true)
            .is_err());
        assert!(net
            .joint_transmit_subset(&[0, 1, 2], &[0, 1], 100, 1, true)
            .is_err());
        assert!(net.joint_transmit_subset(&[], &[0], 100, 1, true).is_err());
        assert!(net
            .joint_transmit_subset(&[5], &[0, 1, 2], 100, 1, true)
            .is_err());
    }

    #[test]
    fn measurement_loss_surfaces_and_charges_airtime() {
        let mut net = FastNet::new(cfg(2, 20.0, 21)).unwrap();
        let lossy = FaultConfig::builder()
            .meas_loss_chance(1.0)
            .build()
            .unwrap();
        net.set_control_faults(lossy.clone());
        let t0 = net.now();
        assert_eq!(net.run_measurement(), Err(JmbError::MeasurementLost));
        assert!(net.now() > t0, "the lost exchange still costs airtime");
        // Clearing the fault lets the measurement succeed; a lost decoupled
        // re-measurement surfaces the same way.
        net.set_control_faults(FaultConfig::none());
        net.run_measurement().unwrap();
        net.advance(1e-3);
        net.set_control_faults(lossy);
        assert_eq!(net.remeasure_client(0), Err(JmbError::MeasurementLost));
    }

    #[test]
    fn sync_miss_falls_back_then_degrades_then_restores() {
        let mut net = FastNet::new(cfg(3, 20.0, 22)).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        net.set_control_faults(
            FaultConfig::builder()
                .per_slave_sync_loss(1, 1.0)
                .build()
                .unwrap(),
        );
        // Misses 1 and 2: recent CSI keeps the extrapolation inside the
        // budget, so slave 1 still transmits on a fallback correction.
        for round in 0..2 {
            let out = net
                .joint_transmit_subset(&[0, 1], &[0, 1, 2], 1500, 1, true)
                .unwrap();
            assert_eq!(out.missed_slaves, vec![1], "round {round}");
            assert_eq!(out.fallback_slaves, vec![1], "round {round}");
            assert!(out.newly_degraded.is_empty(), "round {round}");
        }
        // Miss 3 degrades the slave: excluded, but the batch still fits the
        // remaining APs {0, 2}.
        let out = net
            .joint_transmit_subset(&[0, 1], &[0, 1, 2], 1500, 1, true)
            .unwrap();
        assert_eq!(out.newly_degraded, vec![1]);
        assert!(out.fallback_slaves.is_empty());
        assert!(net.sync_health()[0].is_degraded());
        // A 3-stream batch no longer has enough coherent APs: typed error,
        // no panic.
        assert_eq!(
            net.joint_transmit_subset(&[0, 1, 2], &[0, 1, 2], 1500, 1, true)
                .unwrap_err(),
            JmbError::SyncHeaderMissed { slave: 1 }
        );
        // Faults clear: the slave hears a header again and is restored.
        net.set_control_faults(FaultConfig::none());
        let out = net
            .joint_transmit_subset(&[0, 1], &[0, 1, 2], 1500, 1, true)
            .unwrap();
        assert_eq!(out.newly_restored, vec![1]);
        assert!(!net.sync_health()[0].is_degraded());
    }

    #[test]
    fn sync_loss_window_ending_on_the_resync_tick_is_half_open() {
        // The slave re-measures the lead 240 samples into the batch, so the
        // sync-miss fault draw happens at `t_meas = now + 240·T_s` — not at
        // the batch start. A storm window that ends *exactly* on that tick
        // must not swallow the header (windows are `[from_s, until_s)`),
        // while a window lasting any longer must.
        let base = cfg(2, 20.0, 31);
        let sp = base.params.sample_period();
        let storm = FaultConfig::builder()
            .per_slave_sync_loss(1, 1.0)
            .build()
            .unwrap();
        let run = |until_of: &dyn Fn(f64) -> f64| {
            let mut net = FastNet::new(base.clone()).unwrap();
            net.run_measurement().unwrap();
            net.advance(1e-3);
            let t_meas = net.now() + 240.0 * sp;
            net.set_fault_schedule(
                FaultSchedule::none()
                    .with_window(0.0, until_of(t_meas), storm.clone())
                    .unwrap(),
            );
            net.joint_transmit_subset(&[0, 1], &[0, 1], 1500, 1, true)
                .unwrap()
        };
        // Boundary tick: `t_meas == until_s` sits outside the window.
        let out = run(&|t_meas| t_meas);
        assert!(
            out.missed_slaves.is_empty(),
            "resync on the window's end tick must hear the header"
        );
        // One representable instant longer and the draw lands inside.
        let out = run(&|t_meas: f64| t_meas.next_up());
        assert_eq!(out.missed_slaves, vec![1]);
    }

    #[test]
    fn clean_fault_config_changes_nothing() {
        // Installing an all-zero fault schedule must not perturb results:
        // no fault-RNG draws happen on the clean path.
        let run = |set_faults: bool| {
            let mut net = FastNet::new(cfg(3, 15.0, 23)).unwrap();
            if set_faults {
                net.set_fault_schedule(FaultSchedule::none());
            }
            net.run_measurement().unwrap();
            net.advance(1e-3);
            net.joint_transmit_subset(&[0, 1], &[0, 1, 2], 1500, 2, true)
                .unwrap()
                .sinr_db
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn inr_grows_gently_with_aps() {
        // Fig. 8's qualitative property: more AP-client pairs ⇒ more
        // residual interference, but gently.
        let inr_at = |n: usize| {
            let samples: Vec<f64> = (0..6)
                .map(|s| {
                    let mut net = FastNet::new(cfg(n, 20.0, 100 + s)).unwrap();
                    net.run_measurement().unwrap();
                    net.advance(2e-3);
                    net.null_probe(0, 1e-3).unwrap()
                })
                .collect();
            jmb_dsp::stats::mean(&samples)
        };
        let small = inr_at(2);
        let large = inr_at(8);
        assert!(large > small, "INR must grow: {small} → {large}");
        // Paper Fig. 8: ~0.13 dB per added AP-client pair; allow 2-3x slack
        // for our simulated measurement-noise calibration.
        assert!(large < small + 0.4 * 6.0, "but gently: {small} → {large}");
    }

    #[test]
    fn external_interference_lowers_sinr_and_rate() {
        let run = |ext: Option<f64>| {
            let mut net = FastNet::new(cfg(4, 20.0, 31)).unwrap();
            if let Some(v) = ext {
                net.set_external_interference(&[v]).unwrap();
            }
            net.run_measurement().unwrap();
            net.advance(2e-3);
            let out = net
                .joint_transmit_subset(&[0, 1], &[0, 1, 2, 3], 1500, 2, true)
                .unwrap();
            (out.sinr_db, out.mcs)
        };
        let (clean, mcs_clean) = run(None);
        // Interference equal to 9x the noise floor: the denominator grows
        // from nv + leakage to 10·nv + leakage, so SINR falls by roughly
        // 10·log10(10) = 10 dB. Not exactly: the backed-off MCS changes the
        // batch airtime, so the probes sample slightly different fading
        // instants — allow a ±2 dB band around the nominal loss.
        let (loud, mcs_loud) = run(Some(9.0));
        for (c, l) in clean.concat().iter().zip(loud.concat().iter()) {
            let drop = c - l;
            assert!(
                (drop - 10.0).abs() < 2.0,
                "expected ~10 dB of SINR loss: {c} vs {l}"
            );
        }
        assert!(
            mcs_loud.index() < mcs_clean.index(),
            "rate must back off under interference: {mcs_clean} vs {mcs_loud}"
        );
        // An explicitly cleared floor is byte-identical to never setting one.
        let (cleared, _) = run(Some(0.0));
        assert_eq!(clean, cleared);
    }

    #[test]
    fn external_interference_validates() {
        let mut net = FastNet::new(cfg(2, 20.0, 32)).unwrap();
        assert!(net.set_external_interference(&[0.5, 0.5]).is_err());
        assert!(net.set_external_interference(&[-1.0]).is_err());
        assert!(net.set_external_interference(&[f64::NAN]).is_err());
        let n_k = net.config().params.occupied_subcarriers().len();
        assert!(net.set_external_interference(&vec![0.25; n_k]).is_ok());
        assert_eq!(net.external_interference().len(), n_k);
        assert!(net.set_external_interference(&[]).is_ok());
        assert!(net.external_interference().is_empty());
    }

    #[test]
    fn oversubscribed_cell_measures_and_serves_batches() {
        // City-scale shape: many more clients than AP antennas. The full
        // population has no joint precoder (ZF would be ill-posed), but
        // measurement succeeds and per-batch subset transmissions work.
        let mut c = FastConfig::default_with(4, 12, vec![20.0; 12], 33);
        c.rounds = 8; // keep the test fast
        let mut net = FastNet::new(c).unwrap();
        net.run_measurement().unwrap();
        assert!(net.select_joint_rate().is_none(), "no full-population rate");
        assert!(matches!(
            net.joint_transmit(1e-3, 1, &[], true),
            Err(JmbError::NoReference)
        ));
        net.advance(1e-3);
        let out = net
            .joint_transmit_subset(&[3, 7, 10, 11], &[0, 1, 2, 3], 1500, 1, true)
            .unwrap();
        assert_eq!(out.clients.len(), 4);
        for (r, &e) in out.eff_snr_db.iter().enumerate() {
            assert!(e.is_finite(), "stream {r}: eff SNR {e}");
        }
        // Decoupled re-measurement also keeps working without a precoder.
        net.advance(1e-3);
        net.remeasure_client(5).unwrap();
    }
}
