//! # jmb-core — JMB: joint multi-user beamforming from distributed APs
//!
//! The reproduction of the paper's contribution (Rahul, Kumar, Katabi,
//! SIGCOMM 2012): a system in which independent access points — each with
//! its own free-running oscillator — transmit *concurrently on the same
//! channel* to multiple clients, as if they were one large MIMO node.
//!
//! The crate is organised around the paper's sections:
//!
//! | module | paper | what it does |
//! |---|---|---|
//! | [`phasesync`] | §4, §5.2 | distributed phase synchronization: lead reference channel, direct phase measurement, EWMA CFO for within-packet tracking |
//! | [`precoder`] | §4, §8 | zero-forcing joint beamforming and MRT diversity, with the power normalisation `k` used for rate selection |
//! | [`measure`] | §5.1 | the interleaved channel-measurement packet and client-side per-AP estimation referred to one reference time |
//! | [`net`] | §5 | the sample-level protocol testbench: lead/slave APs and clients over the [`jmb_sim::Medium`] |
//! | [`fastnet`] | §4 | the per-subcarrier protocol model over [`jmb_sim::SubcarrierMedium`], used by the large experiment sweeps |
//! | [`decouple`] | §7 + appendix | decoupled channel measurements to different receivers via the lead→slave reference channels |
//! | [`csi`] | §7, robustness | CSI age/confidence tracking, backoff re-measurement scheduling, per-slave sync health |
//! | [`compat`] | §6 | 802.11n compatibility: reference-antenna channel stitching and multi-antenna (2×2 → 4×4) joint transmission |
//! | [`sync`] | §5.2 + related work | pluggable synchronization strategies: the paper's lead/slave resync plus out-of-band pilot tracking and implicit-CSI rivals behind one [`sync::SyncStrategy`] trait |
//! | [`mac`] | §9 | the link layer: shared queue, designated APs, lead election, joint packet selection, async ACKs, retransmission |
//! | [`baseline`] | §11 | the comparison systems: 802.11 TDMA equal-share and single-AP MU-MIMO |
//! | [`experiment`] | §11 | the harness that regenerates every figure of the evaluation |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod compat;
pub mod csi;
pub mod decouple;
pub mod error;
pub mod experiment;
pub mod fastnet;
pub mod mac;
pub mod measure;
pub mod net;
pub mod phasesync;
pub mod precoder;
pub mod sync;

pub use csi::{BackoffPolicy, CsiTracker, SyncHealth};
pub use error::JmbError;
pub use phasesync::PhaseSync;
pub use precoder::Precoder;
pub use sync::{strategy_for, SyncCtx, SyncStrategy, SyncStrategyId};
