//! JMB's link layer (§9).
//!
//! "In JMB, all downlink packets are sent on the Ethernet to all JMB APs.
//! Thus, all APs in the network have the same downlink queue. Each packet in
//! the queue has a designated AP… JMB always uses the packet at the head of
//! the queue for transmission, and nominates the designated AP of this
//! packet as the lead AP for this transmission. The lead AP then chooses
//! additional packets for joint transmission…"
//!
//! This module implements that shared queue, the designated-AP/lead
//! election, joint-batch selection, the weighted contention window with
//! binary-exponential backoff, and the asynchronous-acknowledgment
//! retransmission policy ("APs in JMB keep packets in the queue until they
//! are ACKed. If a packet is not ACKed, they can be combined with other
//! packets in the queue for future concurrent transmissions").

use jmb_obs::Registry;
use std::collections::VecDeque;

/// One downlink packet in the shared queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacPacket {
    /// Queue-assigned id, unique per [`JmbMac`] instance.
    pub id: u64,
    /// Destination client.
    pub dest: usize,
    /// Payload bytes.
    pub payload: Vec<u8>,
    /// Transmission attempts so far.
    pub attempts: u32,
}

/// Link-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// Maximum transmission attempts before a packet is dropped.
    pub retry_limit: u32,
    /// Maximum concurrent streams per joint transmission (total AP
    /// antennas).
    pub max_streams: usize,
    /// Base 802.11 contention window (slots).
    pub cw_min: u32,
    /// Contention-window ceiling for binary-exponential backoff (slots).
    pub cw_max: u32,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            retry_limit: 7,
            max_streams: 8,
            cw_min: 16,
            cw_max: 1024,
        }
    }
}

/// What happened to one packet when its batch completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// The client acknowledged; the packet leaves the queue for good.
    Acked {
        /// Destination client.
        dest: usize,
        /// Packet id.
        id: u64,
    },
    /// No ACK; the packet returned to the queue for a future joint
    /// transmission.
    Requeued {
        /// Destination client.
        dest: usize,
        /// Packet id.
        id: u64,
        /// Attempts made so far.
        attempts: u32,
    },
    /// No ACK and the retry budget is spent; the packet is gone.
    Dropped {
        /// Destination client.
        dest: usize,
        /// Packet id.
        id: u64,
    },
}

/// Per-client delivery statistics, kept in a [`jmb_obs::Registry`].
///
/// Metric names: `mac_delivered_bits{client}` (gauge),
/// `mac_dropped{client}` (counter), `mac_transmissions` (counter),
/// `mac_airtime_s` (gauge).
#[derive(Debug, Clone, Default)]
pub struct MacStats {
    reg: Registry,
    n_clients: usize,
}

impl MacStats {
    fn ensure(&mut self, n: usize) {
        self.n_clients = self.n_clients.max(n);
    }

    fn record_transmission(&mut self, airtime_s: f64) {
        self.reg.inc("mac_transmissions");
        self.reg.gauge_add("mac_airtime_s", airtime_s);
    }

    fn record_delivery(&mut self, client: usize, bits: f64) {
        self.reg
            .gauge_add_at("mac_delivered_bits", client as u32, bits);
    }

    fn record_drop(&mut self, client: usize) {
        self.reg.inc_at("mac_dropped", client as u32);
    }

    /// Bits delivered (ACKed) per client.
    pub fn delivered_bits(&self) -> Vec<f64> {
        self.reg.gauge_vec("mac_delivered_bits", self.n_clients)
    }

    /// Bits delivered to one client.
    pub fn delivered_bits_for(&self, client: usize) -> f64 {
        self.reg.gauge_at("mac_delivered_bits", client as u32)
    }

    /// Packets dropped after exhausting retries, per client.
    pub fn dropped(&self) -> Vec<u64> {
        (0..self.n_clients)
            .map(|c| self.reg.counter_at("mac_dropped", c as u32))
            .collect()
    }

    /// Drops for one client.
    pub fn dropped_for(&self, client: usize) -> u64 {
        self.reg.counter_at("mac_dropped", client as u32)
    }

    /// Total drops across clients.
    pub fn dropped_total(&self) -> u64 {
        self.reg.counter_total("mac_dropped")
    }

    /// Joint transmissions performed.
    pub fn transmissions(&self) -> u64 {
        self.reg.counter("mac_transmissions")
    }

    /// Total airtime spent, seconds.
    pub fn airtime_s(&self) -> f64 {
        self.reg.gauge("mac_airtime_s")
    }

    /// The underlying registry (for merging into run-level metrics).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Per-client throughput over the recorded airtime, bits/second.
    pub fn throughput(&self) -> Vec<f64> {
        let airtime = self.airtime_s();
        if airtime <= 0.0 {
            return vec![0.0; self.n_clients];
        }
        self.delivered_bits().iter().map(|&b| b / airtime).collect()
    }
}

/// The shared downlink queue and scheduler.
#[derive(Debug)]
pub struct JmbMac {
    cfg: MacConfig,
    queue: VecDeque<MacPacket>,
    next_id: u64,
    /// Designated AP per client ("the AP with the strongest SNR to the
    /// client to which that packet is destined").
    designated_ap: Vec<usize>,
    /// Binary-exponential backoff stage: doubles the base window per
    /// consecutive failed joint transmission, resets on a fully-ACKed one.
    backoff_stage: u32,
    /// Consecutive-loss counter per client, for hidden-terminal handling
    /// (§9: "situations causing persistent packet loss due to repeated
    /// collisions can be detected … and the lead AP can ensure that JMB
    /// access points that trigger hidden terminal packet loss above a
    /// threshold are not part of the joint transmission").
    consecutive_losses: Vec<u32>,
    /// Clients currently excluded from joint transmissions.
    blacklisted: Vec<bool>,
    /// Consecutive losses before a client's packets are excluded.
    pub blacklist_threshold: u32,
    /// Statistics.
    pub stats: MacStats,
}

impl JmbMac {
    /// Creates a MAC with the designated-AP map (index = client).
    pub fn new(cfg: MacConfig, designated_ap: Vec<usize>) -> Self {
        let mut stats = MacStats::default();
        let n = designated_ap.len();
        stats.ensure(n);
        JmbMac {
            cfg,
            queue: VecDeque::new(),
            next_id: 0,
            designated_ap,
            backoff_stage: 0,
            consecutive_losses: vec![0; n],
            blacklisted: vec![false; n],
            blacklist_threshold: 6,
            stats,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &MacConfig {
        &self.cfg
    }

    /// The designated AP for a client.
    pub fn designated_ap(&self, client: usize) -> usize {
        self.designated_ap[client]
    }

    /// Re-maps a client's designated AP (e.g. after its AP failed).
    pub fn set_designated_ap(&mut self, client: usize, ap: usize) {
        self.designated_ap[client] = ap;
    }

    /// Caps the number of concurrent streams (e.g. to the count of live
    /// APs, so ZF stays well-posed during an outage).
    pub fn set_max_streams(&mut self, n: usize) {
        self.cfg.max_streams = n.max(1);
    }

    /// Whether a client is currently excluded from joint transmissions.
    pub fn is_blacklisted(&self, client: usize) -> bool {
        self.blacklisted.get(client).copied().unwrap_or(false)
    }

    /// Clears a client's hidden-terminal blacklist entry (e.g. after its
    /// channels were re-measured).
    pub fn clear_blacklist(&mut self, client: usize) {
        if let Some(b) = self.blacklisted.get_mut(client) {
            *b = false;
        }
        if let Some(c) = self.consecutive_losses.get_mut(client) {
            *c = 0;
        }
    }

    /// Clears every client's blacklist entry.
    pub fn clear_all_blacklists(&mut self) {
        for c in 0..self.blacklisted.len() {
            self.clear_blacklist(c);
        }
    }

    /// Enqueues a downlink packet (distributed to all APs over the wired
    /// backend) and returns its queue-assigned id.
    pub fn enqueue(&mut self, dest: usize, payload: Vec<u8>) -> u64 {
        // jmb-allow(no-panic-hot-path): an unknown client index is a harness programming error — clients are fixed at MAC construction
        assert!(dest < self.designated_ap.len(), "unknown client {dest}");
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(MacPacket {
            id,
            dest,
            payload,
            attempts: 0,
        });
        id
    }

    /// Packets waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The lead AP for the next transmission: the designated AP of the
    /// head-of-queue packet.
    pub fn next_lead(&self) -> Option<usize> {
        self.queue.front().map(|p| self.designated_ap[p.dest])
    }

    /// Selects the next joint batch: the head of the queue plus the next
    /// packets for *distinct* clients, up to `max_streams`. Payloads are
    /// padded to a common length (every stream must span the same number of
    /// OFDM symbols). Removes the selected packets from the queue.
    pub fn select_batch(&mut self) -> Vec<MacPacket> {
        let mut batch: Vec<MacPacket> = Vec::new();
        let mut kept: VecDeque<MacPacket> = VecDeque::new();
        while let Some(p) = self.queue.pop_front() {
            let dest_taken = batch.iter().any(|b| b.dest == p.dest);
            let excluded = self.blacklisted[p.dest];
            if !dest_taken && !excluded && batch.len() < self.cfg.max_streams {
                batch.push(p);
            } else {
                kept.push_back(p);
            }
        }
        self.queue = kept;
        // Pad payloads to a common length.
        if let Some(max_len) = batch.iter().map(|p| p.payload.len()).max() {
            for p in batch.iter_mut() {
                p.payload.resize(max_len, 0);
            }
        }
        batch
    }

    /// The contention window the lead uses: the base window grown by
    /// binary-exponential backoff (doubling per consecutive failed joint
    /// transmission, capped at `cw_max`), then "weighted by the number of
    /// packets in the joint transmission" \[29\] — a joint transmission of
    /// `n` packets contends as aggressively as `n` independent stations.
    pub fn contention_window(&self, batch_size: usize) -> u32 {
        let grown = self
            .cfg
            .cw_min
            .saturating_mul(1u32 << self.backoff_stage.min(16))
            .min(self.cfg.cw_max)
            .max(1);
        (grown / batch_size.max(1) as u32).max(1)
    }

    /// Current binary-exponential backoff stage.
    pub fn backoff_stage(&self) -> u32 {
        self.backoff_stage
    }

    /// Completes a batch: `acked[i]` says whether client `batch[i].dest`
    /// acknowledged (asynchronously, §9). Failed packets return to the
    /// queue unless their retry budget is spent. `airtime_s` is the airtime
    /// the whole joint transmission consumed. Returns the fate of each
    /// packet, in batch order.
    pub fn complete_batch(
        &mut self,
        batch: Vec<MacPacket>,
        acked: &[bool],
        airtime_s: f64,
    ) -> Vec<PacketFate> {
        // jmb-allow(no-panic-hot-path): caller contract — the batch and its ack vector are built together by the traffic backend
        assert_eq!(batch.len(), acked.len(), "one ack per batch packet");
        if batch.is_empty() {
            return Vec::new();
        }
        self.stats.record_transmission(airtime_s);
        if acked.iter().all(|&ok| ok) {
            self.backoff_stage = 0;
        } else {
            self.backoff_stage = (self.backoff_stage + 1).min(16);
        }
        let mut fates = Vec::with_capacity(batch.len());
        for (mut p, &ok) in batch.into_iter().zip(acked) {
            self.stats.ensure(p.dest + 1);
            if ok {
                self.stats
                    .record_delivery(p.dest, 8.0 * p.payload.len() as f64);
                self.consecutive_losses[p.dest] = 0;
                fates.push(PacketFate::Acked {
                    dest: p.dest,
                    id: p.id,
                });
            } else {
                self.consecutive_losses[p.dest] += 1;
                if self.consecutive_losses[p.dest] >= self.blacklist_threshold {
                    self.blacklisted[p.dest] = true;
                }
                p.attempts += 1;
                if p.attempts >= self.cfg.retry_limit {
                    self.stats.record_drop(p.dest);
                    fates.push(PacketFate::Dropped {
                        dest: p.dest,
                        id: p.id,
                    });
                } else {
                    fates.push(PacketFate::Requeued {
                        dest: p.dest,
                        id: p.id,
                        attempts: p.attempts,
                    });
                    // Re-queue for a future joint transmission.
                    self.queue.push_back(p);
                }
            }
        }
        fates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n_clients: usize) -> JmbMac {
        JmbMac::new(MacConfig::default(), (0..n_clients).collect())
    }

    #[test]
    fn batch_takes_distinct_destinations() {
        let mut m = mac(3);
        m.enqueue(0, vec![1; 100]);
        m.enqueue(0, vec![2; 100]);
        m.enqueue(1, vec![3; 100]);
        m.enqueue(2, vec![4; 100]);
        let batch = m.select_batch();
        let dests: Vec<usize> = batch.iter().map(|p| p.dest).collect();
        assert_eq!(dests, vec![0, 1, 2]);
        // The second packet to client 0 stays queued.
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn batch_pads_to_common_length() {
        let mut m = mac(2);
        m.enqueue(0, vec![1; 50]);
        m.enqueue(1, vec![2; 200]);
        let batch = m.select_batch();
        assert_eq!(batch[0].payload.len(), 200);
        assert_eq!(batch[1].payload.len(), 200);
        assert_eq!(&batch[0].payload[..50], &[1u8; 50][..]);
        assert!(batch[0].payload[50..].iter().all(|&b| b == 0));
    }

    #[test]
    fn batch_respects_stream_cap() {
        let mut m = JmbMac::new(
            MacConfig {
                max_streams: 2,
                ..Default::default()
            },
            (0..5).collect(),
        );
        for c in 0..5 {
            m.enqueue(c, vec![0; 10]);
        }
        assert_eq!(m.select_batch().len(), 2);
        assert_eq!(m.queue_len(), 3);
    }

    #[test]
    fn lead_is_designated_ap_of_head() {
        let mut m = JmbMac::new(MacConfig::default(), vec![3, 1, 4]);
        assert_eq!(m.next_lead(), None);
        m.enqueue(2, vec![0; 10]);
        m.enqueue(0, vec![0; 10]);
        assert_eq!(m.next_lead(), Some(4));
    }

    #[test]
    fn designated_ap_can_be_remapped() {
        let mut m = JmbMac::new(MacConfig::default(), vec![0, 1]);
        m.enqueue(0, vec![0; 10]);
        assert_eq!(m.next_lead(), Some(0));
        m.set_designated_ap(0, 1);
        assert_eq!(m.designated_ap(0), 1);
        assert_eq!(m.next_lead(), Some(1));
    }

    #[test]
    fn max_streams_can_shrink_mid_run() {
        let mut m = mac(4);
        for c in 0..4 {
            m.enqueue(c, vec![0; 10]);
        }
        m.set_max_streams(2);
        assert_eq!(m.select_batch().len(), 2);
        // Never below one stream.
        m.set_max_streams(0);
        assert_eq!(m.config().max_streams, 1);
    }

    #[test]
    fn failed_packets_are_requeued_then_dropped() {
        let mut m = JmbMac::new(
            MacConfig {
                retry_limit: 2,
                ..Default::default()
            },
            vec![0, 1],
        );
        let id = m.enqueue(0, vec![9; 10]);
        // First attempt fails → requeued.
        let b = m.select_batch();
        let fates = m.complete_batch(b, &[false], 1e-3);
        assert_eq!(
            fates,
            vec![PacketFate::Requeued {
                dest: 0,
                id,
                attempts: 1
            }]
        );
        assert_eq!(m.queue_len(), 1);
        assert_eq!(m.stats.dropped_for(0), 0);
        // Second attempt fails → dropped (retry_limit 2).
        let b = m.select_batch();
        let fates = m.complete_batch(b, &[false], 1e-3);
        assert_eq!(fates, vec![PacketFate::Dropped { dest: 0, id }]);
        assert_eq!(m.queue_len(), 0);
        assert_eq!(m.stats.dropped_for(0), 1);
    }

    #[test]
    fn retry_limit_exhaustion_counts_every_attempt() {
        // Satellite: a packet is attempted exactly `retry_limit` times, each
        // failure after the first reported as a Requeued fate, the last as
        // Dropped.
        let limit = 5;
        let mut m = JmbMac::new(
            MacConfig {
                retry_limit: limit,
                ..Default::default()
            },
            vec![0],
        );
        m.blacklist_threshold = u32::MAX; // keep it schedulable
        let id = m.enqueue(0, vec![7; 10]);
        let mut attempts = 0;
        loop {
            let b = m.select_batch();
            assert_eq!(b.len(), 1, "packet must stay schedulable");
            attempts += 1;
            let fates = m.complete_batch(b, &[false], 1e-3);
            match fates[0] {
                PacketFate::Requeued { id: fid, .. } => assert_eq!(fid, id),
                PacketFate::Dropped { id: fid, .. } => {
                    assert_eq!(fid, id);
                    break;
                }
                PacketFate::Acked { .. } => panic!("never acked"),
            }
        }
        assert_eq!(attempts, limit);
        assert_eq!(m.stats.dropped_for(0), 1);
        assert_eq!(m.queue_len(), 0);
    }

    #[test]
    fn single_destination_queue_batches_one_at_a_time() {
        // Satellite: when every queued packet shares one destination, joint
        // batches degenerate to singletons — the rest stay queued in order.
        let mut m = mac(3);
        let ids: Vec<u64> = (0..4).map(|i| m.enqueue(1, vec![i as u8; 10])).collect();
        let b = m.select_batch();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].id, ids[0]);
        assert_eq!(m.queue_len(), 3);
        m.complete_batch(b, &[true], 1e-3);
        // FIFO order is preserved for the remainder.
        let b = m.select_batch();
        assert_eq!(b[0].id, ids[1]);
    }

    #[test]
    fn losses_are_decoupled_between_clients() {
        // §9: "if APs have stale channel information to a client, only the
        // packet to that client is affected".
        let mut m = mac(2);
        m.enqueue(0, vec![1; 100]);
        m.enqueue(1, vec![2; 100]);
        let b = m.select_batch();
        m.complete_batch(b, &[true, false], 2e-3);
        assert!(m.stats.delivered_bits_for(0) > 0.0);
        assert_eq!(m.stats.delivered_bits_for(1), 0.0);
        assert_eq!(m.queue_len(), 1); // client 1's packet awaits retry
    }

    #[test]
    fn stats_throughput() {
        let mut m = mac(2);
        m.enqueue(0, vec![0; 1250]); // 10 000 bits
        m.enqueue(1, vec![0; 1250]);
        let b = m.select_batch();
        m.complete_batch(b, &[true, true], 1e-3);
        let t = m.stats.throughput();
        assert!((t[0] - 1e7).abs() < 1.0);
        assert!((t[1] - 1e7).abs() < 1.0);
        assert_eq!(m.stats.transmissions(), 1);
    }

    #[test]
    fn contention_window_weighted_by_batch() {
        let m = mac(4);
        assert_eq!(m.contention_window(1), 16);
        assert_eq!(m.contention_window(4), 4);
        assert_eq!(m.contention_window(100), 1);
    }

    #[test]
    fn contention_window_grows_and_resets() {
        // Satellite: binary-exponential backoff — the window doubles per
        // failed joint transmission up to cw_max and snaps back to cw_min
        // after a fully-ACKed one.
        let mut m = JmbMac::new(
            MacConfig {
                cw_min: 16,
                cw_max: 64,
                retry_limit: 100,
                ..Default::default()
            },
            vec![0],
        );
        m.blacklist_threshold = u32::MAX;
        assert_eq!(m.contention_window(1), 16);
        m.enqueue(0, vec![0; 10]);
        for want in [32, 64, 64] {
            let b = m.select_batch();
            m.complete_batch(b, &[false], 1e-3);
            assert_eq!(m.contention_window(1), want);
        }
        assert_eq!(m.backoff_stage(), 3);
        let b = m.select_batch();
        m.complete_batch(b, &[true], 1e-3);
        assert_eq!(m.backoff_stage(), 0);
        assert_eq!(m.contention_window(1), 16);
    }

    #[test]
    fn empty_queue_behaviour() {
        // Satellite: an empty queue yields no lead, an empty batch, and a
        // no-op completion that records no transmission.
        let mut m = mac(2);
        assert_eq!(m.next_lead(), None);
        let b = m.select_batch();
        assert!(b.is_empty());
        let fates = m.complete_batch(b, &[], 1e-3);
        assert!(fates.is_empty());
        assert_eq!(m.stats.transmissions(), 0);
        assert_eq!(m.stats.airtime_s(), 0.0);
        assert_eq!(m.backoff_stage(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown client")]
    fn enqueue_validates_destination() {
        mac(2).enqueue(5, vec![]);
    }

    #[test]
    fn persistent_losses_blacklist_a_client() {
        // §9's hidden-terminal handling: a client with persistent losses is
        // excluded from joint batches; clearing (e.g. after re-measurement)
        // readmits it.
        let mut m = JmbMac::new(
            MacConfig {
                retry_limit: 100,
                ..Default::default()
            },
            vec![0, 1],
        );
        m.blacklist_threshold = 3;
        for _ in 0..3 {
            m.enqueue(0, vec![1; 10]);
            m.enqueue(1, vec![2; 10]);
            let b = m.select_batch();
            // Client 0 persistently fails; client 1 is fine.
            let acked: Vec<bool> = b.iter().map(|p| p.dest != 0).collect();
            m.complete_batch(b, &acked, 1e-3);
        }
        assert!(m.is_blacklisted(0));
        assert!(!m.is_blacklisted(1));
        // Client 0's packets stay queued but are not batched.
        let b = m.select_batch();
        assert!(b.iter().all(|p| p.dest != 0), "blacklisted client batched");
        assert!(m.queue_len() > 0, "its packets remain queued");
        let acks = vec![true; b.len()];
        m.complete_batch(b, &acks, 1e-3);
        // After re-admission it is scheduled again.
        m.clear_blacklist(0);
        let b = m.select_batch();
        assert!(b.iter().any(|p| p.dest == 0));
        let acks = vec![true; b.len()];
        m.complete_batch(b, &acks, 1e-3);
    }
}
