//! The channel-measurement phase (§5.1).
//!
//! Layout of the measurement packet on the air (sample offsets from the
//! reference time `t₀`, which is the packet start):
//!
//! ```text
//! | lead STF (160) | lead LTF (160) | slave₁ LTF | … | slaveₙ LTF |
//! |       round 0: lead sym | slave₁ sym | … | slaveₙ sym |
//! |       round 1: …                                        × R rounds
//! ```
//!
//! * The lead's preamble is the **sync header**: clients synchronise to it,
//!   and every slave measures its reference channel `h_lead(0)` from it.
//! * The per-slave LTF fields give each client a *coarse CFO* estimate per
//!   AP ("the receiver computes and uses different CFO and channel
//!   estimates for symbols corresponding to different APs", §5.1b).
//! * The interleaved rounds are the actual channel snapshot: one OFDM
//!   symbol per AP per round, repeated R times "to enable the clients to
//!   obtain accurate channel measurements by averaging" and interleaved
//!   "because we want the channels to be measured as if they were measured
//!   at the same time" (§5.1a).
//!
//! Client-side processing rotates every estimate back to `t₀` using the
//! per-AP CFO (refined across rounds), then averages — the receiver-side
//! algorithm of §5.1b.

use crate::error::JmbError;
use jmb_dsp::complex::wrap_phase;
use jmb_dsp::{fft, Complex64};
use jmb_phy::chanest::ChannelEstimate;
use jmb_phy::params::OfdmParams;
use jmb_phy::preamble;
use jmb_phy::sync;

/// The reference-time anchor within the measurement packet (and within
/// every sync header): the midpoint of the lead's LTF, in samples from the
/// packet start. All channel estimates — clients' per-AP estimates and
/// slaves' reference channels — are phase-referred to this instant.
pub const REF_ANCHOR: f64 = 240.0;

/// Ordering of the channel-estimation slots within the measurement packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotOrder {
    /// The paper's design (§5.1a): round-robin across APs, "because we want
    /// the channels to be measured as if they were measured at the same
    /// time" — each AP's samples sit at most one round from any other's.
    #[default]
    Interleaved,
    /// The ablation: each AP transmits its R symbols back to back, so the
    /// last AP's block is measured an entire packet after the first's, and
    /// the rotation back to the reference time must span that gap — CFO
    /// estimation error then rotates its whole column.
    Sequential,
}

/// Sample-layout of one measurement packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasurementPlan {
    /// Total number of APs (lead + slaves).
    pub n_aps: usize,
    /// Number of repeated estimation rounds.
    pub rounds: usize,
    /// Slot ordering (interleaved per the paper, or the sequential ablation).
    pub order: SlotOrder,
}

impl MeasurementPlan {
    /// Creates a plan with the paper's interleaved ordering.
    ///
    /// # Panics
    ///
    /// Panics if `n_aps == 0` or `rounds == 0`.
    pub fn new(n_aps: usize, rounds: usize) -> Self {
        Self::with_order(n_aps, rounds, SlotOrder::Interleaved)
    }

    /// Creates a plan with an explicit slot ordering.
    ///
    /// # Panics
    ///
    /// Panics if `n_aps == 0` or `rounds == 0`.
    pub fn with_order(n_aps: usize, rounds: usize, order: SlotOrder) -> Self {
        assert!(
            n_aps > 0 && rounds > 0,
            "need at least one AP and one round"
        );
        MeasurementPlan {
            n_aps,
            rounds,
            order,
        }
    }

    /// Offset (samples) of the lead preamble: always 0.
    pub fn preamble_offset(&self) -> usize {
        0
    }

    /// Offset of slave `i`'s CFO field (its LTF); `i` is 1-based slave
    /// numbering (slave 1 is AP 1).
    pub fn cfo_field_offset(&self, slave: usize) -> usize {
        debug_assert!((1..self.n_aps).contains(&slave));
        320 + (slave - 1) * preamble::LTF_LEN
    }

    /// Offset where the interleaved rounds begin.
    pub fn rounds_offset(&self) -> usize {
        320 + (self.n_aps - 1) * preamble::LTF_LEN
    }

    /// Offset of AP `ap`'s channel-estimation symbol in `round`
    /// (80 samples per slot).
    pub fn slot_offset(&self, params: &OfdmParams, round: usize, ap: usize) -> usize {
        debug_assert!(round < self.rounds && ap < self.n_aps);
        let slot = match self.order {
            SlotOrder::Interleaved => round * self.n_aps + ap,
            SlotOrder::Sequential => ap * self.rounds + round,
        };
        self.rounds_offset() + slot * params.symbol_len()
    }

    /// Total packet length in samples.
    pub fn total_len(&self, params: &OfdmParams) -> usize {
        self.rounds_offset() + self.rounds * self.n_aps * params.symbol_len()
    }

    /// The waveform segments AP `ap` transmits, as `(offset, samples)`
    /// pairs relative to the packet start.
    pub fn ap_segments(&self, params: &OfdmParams, ap: usize) -> Vec<(usize, Vec<Complex64>)> {
        let mut segs = Vec::new();
        if ap == 0 {
            segs.push((0, preamble::preamble(params)));
        } else {
            segs.push((self.cfo_field_offset(ap), preamble::ltf(params)));
        }
        let sym = chanest_symbol(params);
        for r in 0..self.rounds {
            segs.push((self.slot_offset(params, r, ap), sym.clone()));
        }
        segs
    }
}

/// The channel-estimation symbol every AP repeats in its slots: the LTF
/// sequence as one CP-prefixed OFDM symbol.
pub fn chanest_symbol(params: &OfdmParams) -> Vec<Complex64> {
    let bins = preamble::ltf_bins(params);
    let mut body = bins;
    fft::ifft_in_place(&mut body);
    let mut out = Vec::with_capacity(params.symbol_len());
    out.extend_from_slice(&body[params.fft_size - params.cp_len..]);
    out.extend_from_slice(&body);
    out
}

/// What a client learns from one measurement packet.
#[derive(Debug, Clone)]
pub struct ClientMeasurement {
    /// Per-AP channel estimates, all referred to the reference time `t₀`.
    pub per_ap: Vec<ChannelEstimate>,
    /// Per-AP CFO estimates relative to this client, Hz.
    pub cfo_per_ap: Vec<f64>,
    /// Noise variance per frequency bin, estimated from the lead LTF.
    pub noise_var: f64,
}

/// Client-side processing of a measurement packet (§5.1b).
///
/// `window` must start exactly at the packet start (symbol-level timing is
/// assumed from \[30\], as in the paper) and cover `plan.total_len()` samples.
pub fn client_estimate(
    params: &OfdmParams,
    plan: &MeasurementPlan,
    window: &[Complex64],
) -> Result<ClientMeasurement, JmbError> {
    if window.len() < plan.total_len(params) {
        return Err(JmbError::MeasurementShape {
            expected: plan.total_len(params),
            got: window.len(),
        });
    }
    let sym_len = params.symbol_len();
    let round_stride = match plan.order {
        SlotOrder::Interleaved => plan.n_aps * sym_len,
        SlotOrder::Sequential => sym_len,
    };

    // --- Coarse per-AP CFO.
    let mut cfo = Vec::with_capacity(plan.n_aps);
    // Lead: coarse from STF + fine from LTF.
    {
        let coarse = sync::coarse_cfo(params, &window[16..160]);
        let mut ltf = window[160 + 32..320].to_vec();
        sync::correct_cfo(params, &mut ltf, coarse, 0.0);
        let fine = sync::fine_cfo(params, &ltf);
        cfo.push(coarse + fine);
    }
    // Slaves: fine CFO from their LTF field (range ±1/(2·64·Ts) ≈ ±78 kHz
    // at 10 MHz — covers any sane crystal).
    for s in 1..plan.n_aps {
        let off = plan.cfo_field_offset(s);
        let region = &window[off + 32..off + preamble::LTF_LEN];
        cfo.push(sync::fine_cfo(params, region));
    }

    // --- Per-round channel estimates and CFO refinement, two passes.
    let plan_fft = fft::plan(params.fft_size);
    let occupied = params.occupied_subcarriers();
    let l = preamble::ltf_freq();

    let estimate_slot = |offset: usize, cfo_hz: f64| -> Vec<Complex64> {
        // De-rotate the slot with phase anchored at the reference time —
        // the lead LTF midpoint (sample 240), the same anchor
        // `slave_header_measurement` uses for the slaves' reference
        // channels. Clients and slaves referring their measurements to the
        // *same* instant is what makes the slave corrections cancel the
        // per-AP oscillator terms exactly (§5.1: "all these channels have
        // to be measured at the same time").
        let mut sym = window[offset..offset + sym_len].to_vec();
        let phase0 = -2.0
            * std::f64::consts::PI
            * cfo_hz
            * (offset as f64 - REF_ANCHOR)
            * params.sample_period();
        sync::correct_cfo(params, &mut sym, cfo_hz, phase0);
        let mut bins = sym[params.cp_len..].to_vec();
        plan_fft.forward(&mut bins);
        occupied
            .iter()
            .map(|&k| bins[params.bin(k)].scale(l[(k + 26) as usize]))
            .collect()
    };

    // Pass 1: estimate with coarse CFO, refine CFO from inter-round drift.
    let mut refined_cfo = cfo.clone();
    for ap in 0..plan.n_aps {
        if plan.rounds < 2 {
            break;
        }
        let mut drift = Complex64::ZERO;
        let mut prev: Option<Vec<Complex64>> = None;
        for r in 0..plan.rounds {
            let est = estimate_slot(plan.slot_offset(params, r, ap), cfo[ap]);
            if let Some(p) = prev {
                for (a, b) in est.iter().zip(&p) {
                    drift += *a * b.conj();
                }
            }
            prev = Some(est);
        }
        // Residual rotation per round ⇒ CFO correction.
        let dt = round_stride as f64 * params.sample_period();
        let residual = drift.arg() / (2.0 * std::f64::consts::PI * dt);
        refined_cfo[ap] = cfo[ap] + residual;
    }

    // Pass 2: estimate with refined CFO and average across rounds.
    let mut per_ap = Vec::with_capacity(plan.n_aps);
    for (ap, &ap_cfo) in refined_cfo.iter().enumerate().take(plan.n_aps) {
        let mut acc = vec![Complex64::ZERO; occupied.len()];
        for r in 0..plan.rounds {
            let est = estimate_slot(plan.slot_offset(params, r, ap), ap_cfo);
            for (a, e) in acc.iter_mut().zip(&est) {
                *a += *e;
            }
        }
        let gains = acc.into_iter().map(|g| g / plan.rounds as f64).collect();
        per_ap.push(ChannelEstimate {
            subcarriers: occupied.clone(),
            gains,
        });
    }

    let noise_var = jmb_phy::frame::noise_from_ltf(params, &window[160..320]);
    Ok(ClientMeasurement {
        per_ap,
        cfo_per_ap: refined_cfo,
        noise_var,
    })
}

/// Slave-side processing of a lead sync header (used both for the reference
/// measurement in the channel-measurement phase and before every joint
/// transmission, §5.2b).
///
/// `window` must start at the header (STF) and cover ≥ 320 samples. Returns
/// the lead channel estimate (phase anchored at the LTF midpoint so that
/// the ratio of two such estimates is exactly the accumulated oscillator
/// rotation between the two headers) and the estimated lead-minus-slave CFO.
pub fn slave_header_measurement(
    params: &OfdmParams,
    window: &[Complex64],
) -> Result<(ChannelEstimate, f64), JmbError> {
    if window.len() < 320 {
        return Err(JmbError::MeasurementShape {
            expected: 320,
            got: window.len(),
        });
    }
    let coarse = sync::coarse_cfo(params, &window[16..160]);
    let mut work = window[160..320].to_vec();
    sync::correct_cfo(params, &mut work, coarse, 0.0);
    let fine = sync::fine_cfo(params, &work[32..]);
    let cfo = coarse + fine;
    // Single-pass correction of the LTF field with the total CFO, with the
    // accumulated phase anchored to zero at the LTF midpoint (80 samples
    // into the field): CFO-estimate error then perturbs the *slope* of the
    // de-rotation, not its value at the instant the channel is deemed
    // measured. `correct_cfo` applies e^{j(phase0 − 2πf·n·Ts)}.
    let anchor = 80.0;
    let mut full = window[160..320].to_vec();
    let phase0 = 2.0 * std::f64::consts::PI * cfo * anchor * params.sample_period();
    sync::correct_cfo(params, &mut full, cfo, phase0);
    let est = jmb_phy::chanest::estimate_from_ltf(params, &full);
    Ok((est, cfo))
}

/// Relative misalignment between two phase observations (radians, wrapped):
/// helper used by the Fig. 7 probe.
pub fn misalignment(observed: Complex64, reference: Complex64) -> f64 {
    wrap_phase((observed * reference.conj()).arg())
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_phy::params::ChannelProfile;

    fn params() -> OfdmParams {
        OfdmParams::new(ChannelProfile::Usrp10MHz)
    }

    #[test]
    fn plan_layout_non_overlapping() {
        let p = params();
        let plan = MeasurementPlan::new(4, 3);
        // Collect all segments of all APs and check for overlap.
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for ap in 0..4 {
            for (off, seg) in plan.ap_segments(&p, ap) {
                spans.push((off, off + seg.len()));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} then {:?}", w[0], w[1]);
        }
        let last = spans.last().unwrap().1;
        assert_eq!(last, plan.total_len(&p));
    }

    #[test]
    fn plan_offsets() {
        let p = params();
        let plan = MeasurementPlan::new(3, 2);
        assert_eq!(plan.preamble_offset(), 0);
        assert_eq!(plan.cfo_field_offset(1), 320);
        assert_eq!(plan.cfo_field_offset(2), 480);
        assert_eq!(plan.rounds_offset(), 640);
        assert_eq!(plan.slot_offset(&p, 0, 0), 640);
        assert_eq!(plan.slot_offset(&p, 0, 2), 640 + 160);
        assert_eq!(plan.slot_offset(&p, 1, 0), 640 + 240);
        assert_eq!(plan.total_len(&p), 640 + 2 * 3 * 80);
    }

    #[test]
    fn chanest_symbol_is_cp_plus_ltf_body() {
        let p = params();
        let sym = chanest_symbol(&p);
        assert_eq!(sym.len(), 80);
        // CP = last 16 of body.
        for i in 0..16 {
            assert!((sym[i] - sym[64 + i]).abs() < 1e-12);
        }
        // Body equals the LTF symbol.
        let ltf_sym = preamble::ltf_symbol(&p);
        for i in 0..64 {
            assert!((sym[16 + i] - ltf_sym[i]).abs() < 1e-12);
        }
    }

    /// Builds the composite measurement packet as heard through ideal
    /// channels with per-AP CFOs applied.
    fn composite_window(
        p: &OfdmParams,
        plan: &MeasurementPlan,
        cfos: &[f64],
        gains: &[Complex64],
    ) -> Vec<Complex64> {
        let mut window = vec![Complex64::ZERO; plan.total_len(p)];
        let ts = p.sample_period();
        for ap in 0..plan.n_aps {
            for (off, seg) in plan.ap_segments(p, ap) {
                for (n, &x) in seg.iter().enumerate() {
                    let t = (off + n) as f64 * ts;
                    let rot = Complex64::cis(2.0 * std::f64::consts::PI * cfos[ap] * t);
                    window[off + n] += x * rot * gains[ap];
                }
            }
        }
        window
    }

    #[test]
    fn client_estimate_recovers_gains_and_cfos() {
        let p = params();
        let plan = MeasurementPlan::new(3, 4);
        let cfos = [500.0, -1200.0, 2500.0];
        let gains = [
            Complex64::from_polar(1.0, 0.3),
            Complex64::from_polar(0.7, -1.0),
            Complex64::from_polar(1.2, 2.0),
        ];
        let window = composite_window(&p, &plan, &cfos, &gains);
        let m = client_estimate(&p, &plan, &window).unwrap();
        assert_eq!(m.per_ap.len(), 3);
        for ap in 0..3 {
            assert!(
                (m.cfo_per_ap[ap] - cfos[ap]).abs() < 10.0,
                "ap {ap}: cfo {} vs {}",
                m.cfo_per_ap[ap],
                cfos[ap]
            );
            // Channel estimates referred to the anchor (sample 240): the
            // synthetic CFO rotation leaves exactly its value at the anchor.
            let anchor_rot = Complex64::cis(
                2.0 * std::f64::consts::PI * cfos[ap] * REF_ANCHOR * p.sample_period(),
            );
            let want = gains[ap] * anchor_rot;
            for (&k, g) in m.per_ap[ap].subcarriers.iter().zip(&m.per_ap[ap].gains) {
                assert!((*g - want).abs() < 0.05, "ap {ap} k={k}: {g} vs {want}");
            }
        }
    }

    #[test]
    fn client_estimate_rejects_short_window() {
        let p = params();
        let plan = MeasurementPlan::new(2, 2);
        let window = vec![Complex64::ZERO; 100];
        assert!(matches!(
            client_estimate(&p, &plan, &window),
            Err(JmbError::MeasurementShape { .. })
        ));
    }

    #[test]
    fn slave_header_measurement_estimates_cfo_and_channel() {
        let p = params();
        let cfo = 3_456.0;
        let gain = Complex64::from_polar(0.8, 1.1);
        let ts = p.sample_period();
        let window: Vec<Complex64> = preamble::preamble(&p)
            .iter()
            .enumerate()
            .map(|(n, &x)| {
                x * gain * Complex64::cis(2.0 * std::f64::consts::PI * cfo * n as f64 * ts)
            })
            .collect();
        let (est, cfo_hat) = slave_header_measurement(&p, &window).unwrap();
        assert!((cfo_hat - cfo).abs() < 10.0, "cfo {cfo_hat}");
        // Magnitudes match the gain.
        for g in &est.gains {
            assert!((g.abs() - 0.8).abs() < 0.01);
        }
    }

    #[test]
    fn two_headers_ratio_gives_rotation() {
        // The property phase sync depends on: measuring two headers Δt apart
        // yields estimates whose ratio is e^{j2πf·Δt}.
        let p = params();
        let cfo = 777.0;
        let ts = p.sample_period();
        let make_window = |t_start: f64| -> Vec<Complex64> {
            preamble::preamble(&p)
                .iter()
                .enumerate()
                .map(|(n, &x)| {
                    let t = t_start + n as f64 * ts;
                    x * Complex64::cis(2.0 * std::f64::consts::PI * cfo * t)
                })
                .collect()
        };
        let dt = 7.3e-3; // 7.3 ms between headers
        let (e1, _) = slave_header_measurement(&p, &make_window(0.0)).unwrap();
        let (e2, _) = slave_header_measurement(&p, &make_window(dt)).unwrap();
        let expected = wrap_phase(2.0 * std::f64::consts::PI * cfo * dt);
        // Average ratio phase across subcarriers.
        let mut acc = Complex64::ZERO;
        for (a, b) in e2.gains.iter().zip(&e1.gains) {
            acc += *a * b.conj();
        }
        let got = acc.arg();
        assert!(
            (wrap_phase(got - expected)).abs() < 0.02,
            "rotation {got} vs {expected}"
        );
    }

    #[test]
    fn misalignment_helper() {
        let a = Complex64::cis(0.5);
        let b = Complex64::cis(0.3);
        assert!((misalignment(a, b) - 0.2).abs() < 1e-12);
        assert!((misalignment(b, a) + 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ap_plan_rejected() {
        MeasurementPlan::new(0, 1);
    }
}
