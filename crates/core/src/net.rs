//! The sample-level JMB protocol testbench.
//!
//! This module wires the whole system together over the physical
//! ([`jmb_sim::Medium`]) simulator: a lead AP, slave APs, and clients, each
//! with a free-running oscillator, exchanging real OFDM waveforms.
//!
//! A [`JmbNetwork`] runs the paper's two protocol phases:
//!
//! * [`JmbNetwork::run_measurement`] — the channel-measurement phase
//!   (§5.1): the interleaved measurement packet of [`crate::measure`] is
//!   transmitted; every client estimates per-AP channels referred to one
//!   reference time and "feeds them back" (returned as data — the paper's
//!   feedback is an ordinary wireless transfer we model as reliable);
//!   every slave stores its reference channel `h_lead(0)`.
//! * [`JmbNetwork::joint_transmit`] — the data-transmission phase (§5.2):
//!   the lead prefixes a sync header; slaves re-measure the lead channel,
//!   compute their direct phase correction, and join after the software
//!   turnaround (`t_Δ = 150 µs`, §10a); clients receive the superposition
//!   and decode with a completely standard 802.11-style receiver.
//!
//! [`JmbNetwork::misalignment_probe`] reproduces the Fig. 7 experiment: the
//! lead and one slave alternate OFDM symbols and the receiver tracks the
//! deviation of their relative phase from its first observation.

use crate::csi::SyncHealth;
use crate::error::JmbError;
use crate::measure::{self, MeasurementPlan};
use crate::phasesync::PhaseSync;
use crate::precoder::Precoder;
use jmb_channel::multipath::{Multipath, MultipathSpec};
use jmb_channel::oscillator::{OscillatorSpec, PhaseTrajectory};
use jmb_channel::Link;
use jmb_dsp::rng::{normal, JmbRng};
use jmb_dsp::{fft, CMat, Complex64};
use jmb_phy::chanest::ChannelEstimate;
use jmb_phy::frame::{FrameRx, FrameTx, RxResult};
use jmb_phy::params::OfdmParams;
use jmb_phy::preamble;
use jmb_phy::rates::Mcs;
use jmb_sim::{Medium, NodeId};
use rand::Rng;

/// Configuration of a sample-level JMB network.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// OFDM numerology.
    pub params: OfdmParams,
    /// Total number of APs (the first is the lead).
    pub n_aps: usize,
    /// Number of clients.
    pub n_clients: usize,
    /// Oscillator population for every node.
    pub osc_spec: OscillatorSpec,
    /// Per-sample noise variance at clients.
    pub client_noise_var: f64,
    /// Per-sample noise variance at APs (infrastructure RX chains).
    pub ap_noise_var: f64,
    /// Target per-subcarrier SNR of the AP↔AP links, dB (APs are mounted on
    /// ledges with line of sight to each other — a strong link).
    pub ap_ap_snr_db: f64,
    /// Target per-subcarrier SNR (dB) of each client's *strongest* AP link.
    pub client_snr_db: Vec<f64>,
    /// Software turnaround between the lead header and the joint
    /// transmission (the paper's `t_Δ` = 150 µs).
    pub turnaround_s: f64,
    /// Static per-slave trigger-timing offset, RMS (\[30\] synchronises APs
    /// "up to a few nanoseconds"; the error is a slowly varying clock
    /// offset). Being quasi-constant, it is captured by channel measurement
    /// and inverted by beamforming — exactly as §5.2 argues for propagation
    /// delays.
    pub trigger_offset_s: f64,
    /// Packet-to-packet *innovation* of the trigger timing (sub-ns): the
    /// part of the timing error that changes between transmissions and
    /// therefore cannot be absorbed into the measured channel.
    pub trigger_jitter_s: f64,
    /// Interleaved rounds in the measurement packet.
    pub rounds: usize,
    /// Slot ordering of the measurement packet (the paper's interleaving,
    /// or the sequential ablation of §5.1a's design rationale).
    pub slot_order: crate::measure::SlotOrder,
    /// Master seed.
    pub seed: u64,
}

impl NetConfig {
    /// A conference-room default: USRP profile, 150 µs turnaround, 30 dB
    /// AP↔AP links. The number of interleaved measurement rounds adapts so
    /// the rounds section spans ≥ 32 symbol slots (~256 µs): the slave's
    /// initial CFO estimate is phase-limited by that span, and it must be
    /// good enough (σ ≈ 10–15 Hz) to carry within-packet tracking until
    /// cross-header refinement takes over.
    pub fn default_with(n_aps: usize, n_clients: usize, client_snr_db: f64, seed: u64) -> Self {
        NetConfig {
            params: OfdmParams::default(),
            n_aps,
            n_clients,
            osc_spec: OscillatorSpec::usrp2(),
            client_noise_var: 1e-6,
            ap_noise_var: 1e-6,
            ap_ap_snr_db: 30.0,
            client_snr_db: vec![client_snr_db; n_clients],
            turnaround_s: 150e-6,
            trigger_offset_s: 5e-9,
            trigger_jitter_s: 0.5e-9,
            rounds: 4.max(32usize.div_ceil(n_aps.max(1))),
            slot_order: crate::measure::SlotOrder::Interleaved,
            seed,
        }
    }
}

/// The sample-level network.
pub struct JmbNetwork {
    cfg: NetConfig,
    medium: Medium,
    aps: Vec<NodeId>,
    clients: Vec<NodeId>,
    /// Per-slave phase synchronisation state (index 0 belongs to AP 1).
    sync_state: Vec<PhaseSync>,
    /// Measured joint channel, one matrix per occupied subcarrier
    /// (rows = clients, cols = APs).
    h: Option<Vec<CMat>>,
    /// Per-client noise estimate (per bin), from the measurement phase.
    client_noise_bins: Vec<f64>,
    /// Static per-AP trigger offsets (index 0 = lead = 0).
    trigger_offsets: Vec<f64>,
    /// Corrections applied in the most recent joint transmission (index =
    /// AP; lead is `None`). Kept for experiment introspection.
    last_corrections: Vec<Option<crate::phasesync::PhaseCorrection>>,
    precoder: Option<Precoder>,
    ftx: FrameTx,
    frx: FrameRx,
    /// Receive-path scratch reused across every client decode: equalised
    /// symbols, LLR/depuncture buffers and the Viterbi decision lanes are
    /// allocated once per network, not once per frame.
    rx_scratch: jmb_phy::frame::RxScratch,
    now: f64,
    rng: JmbRng,
    /// Per-slave sync-header health (index 0 belongs to AP 1): a slave that
    /// misses K consecutive headers is suppressed from joint transmissions
    /// until it hears one again.
    sync_health: Vec<SyncHealth>,
}

impl JmbNetwork {
    /// Builds the network: places nodes, draws oscillators, calibrates
    /// links to the configured SNR targets.
    pub fn new(cfg: NetConfig) -> Result<Self, JmbError> {
        if cfg.n_aps == 0 || cfg.n_clients == 0 {
            return Err(JmbError::BadConfig("need at least one AP and one client"));
        }
        if cfg.client_snr_db.len() != cfg.n_clients {
            return Err(JmbError::BadConfig("client_snr_db length mismatch"));
        }
        if cfg.n_aps < cfg.n_clients {
            return Err(JmbError::BadConfig(
                "need at least as many AP antennas as clients",
            ));
        }
        let mut rng = jmb_dsp::rng::rng_from_seed(cfg.seed);
        let mut medium = Medium::new(cfg.params.clone(), rng.gen());
        let carrier = cfg.params.carrier_freq;

        let aps: Vec<NodeId> = (0..cfg.n_aps)
            .map(|_| {
                let traj = PhaseTrajectory::new(cfg.osc_spec, carrier, &mut rng);
                medium.add_node(traj, cfg.ap_noise_var)
            })
            .collect();
        let clients: Vec<NodeId> = (0..cfg.n_clients)
            .map(|_| {
                let traj = PhaseTrajectory::new(cfg.osc_spec, carrier, &mut rng);
                medium.add_node(traj, cfg.client_noise_var)
            })
            .collect();

        // Per-bin noise (a 64-point FFT sums 64 samples' noise variance).
        let ap_bin_noise = 64.0 * cfg.ap_noise_var;
        let client_bin_noise = 64.0 * cfg.client_noise_var;

        // AP ↔ AP links: strong, mildly dispersive, reciprocal.
        for i in 0..cfg.n_aps {
            for j in i + 1..cfg.n_aps {
                let mut link = Link::new(
                    Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                    rng.gen::<f64>() * 30e-9, // ≤ 30 ns of separation
                    Multipath::new(MultipathSpec::indoor_los(), &mut rng),
                );
                link.calibrate_snr(cfg.ap_ap_snr_db, ap_bin_noise);
                medium.set_reciprocal_link(aps[i], aps[j], link);
            }
        }
        // AP → client links: the strongest AP hits the client's SNR target,
        // the others fall up to 6 dB below it (random placement spread).
        for (j, &c) in clients.iter().enumerate() {
            let strongest = rng.gen_range(0..cfg.n_aps);
            for (i, &a) in aps.iter().enumerate() {
                let snr = if i == strongest {
                    cfg.client_snr_db[j]
                } else {
                    cfg.client_snr_db[j] - rng.gen::<f64>() * 6.0
                };
                let mut link = Link::new(
                    Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                    rng.gen::<f64>() * 60e-9, // ≤ 60 ns ≪ the 1.6 µs CP
                    Multipath::new(MultipathSpec::indoor_nlos(), &mut rng),
                );
                link.calibrate_snr(snr, client_bin_noise);
                medium.set_reciprocal_link(a, c, link);
            }
        }

        let sync_state = (1..cfg.n_aps).map(|_| PhaseSync::new()).collect();
        let sync_health = (1..cfg.n_aps).map(|_| SyncHealth::default()).collect();
        let trigger_offsets: Vec<f64> = (0..cfg.n_aps)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    normal(&mut rng, cfg.trigger_offset_s)
                }
            })
            .collect();
        let params = cfg.params.clone();
        Ok(JmbNetwork {
            cfg,
            medium,
            aps,
            clients,
            sync_state,
            h: None,
            client_noise_bins: Vec::new(),
            trigger_offsets,
            last_corrections: Vec::new(),
            precoder: None,
            ftx: FrameTx::new(params.clone()),
            frx: FrameRx::new(params),
            rx_scratch: jmb_phy::frame::RxScratch::new(),
            now: 1e-4,
            rng,
            sync_health,
        })
    }

    /// Per-slave sync health (index 0 = AP 1), for inspection.
    pub fn sync_health(&self) -> &[SyncHealth] {
        &self.sync_health
    }

    /// Current simulation time, seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Advances time without any transmissions (e.g. to let oscillators
    /// drift between the measurement and the data phases).
    pub fn advance(&mut self, dt: f64) {
        // jmb-allow(no-panic-hot-path): a negative dt is a harness programming error; simulated time only flows forward
        assert!(dt >= 0.0, "cannot rewind time");
        self.now += dt;
        self.medium.expire(self.now - 0.05);
    }

    /// Direct access to the medium (fault injection, traces).
    pub fn medium_mut(&mut self) -> &mut Medium {
        &mut self.medium
    }

    /// The measured joint channel (after [`JmbNetwork::run_measurement`]).
    pub fn measured_channel(&self) -> Option<&[CMat]> {
        self.h.as_deref()
    }

    /// The power-normalisation `k̂` of the current precoder.
    pub fn k_hat(&self) -> Option<f64> {
        self.precoder.as_ref().map(|p| p.k_hat())
    }

    /// Corrections applied in the most recent joint transmission.
    pub fn last_corrections(&self) -> &[Option<crate::phasesync::PhaseCorrection>] {
        &self.last_corrections
    }

    /// The current zero-forcing precoder, for inspection.
    pub fn precoder(&self) -> Option<&Precoder> {
        self.precoder.as_ref()
    }

    /// Per-slave phase-sync state (index 0 = AP 1), for inspection.
    pub fn sync_state(&self) -> &[PhaseSync] {
        &self.sync_state
    }

    /// Medium node ids of the APs (index 0 = lead).
    pub fn ap_nodes(&self) -> &[NodeId] {
        &self.aps
    }

    /// Medium node ids of the clients.
    pub fn client_nodes(&self) -> &[NodeId] {
        &self.clients
    }

    /// Raises every client's effective noise floor by `extra_var` (per
    /// time-domain sample, same normalised units as
    /// [`NetConfig::client_noise_var`]) to model aggregate out-of-cell
    /// interference as Gaussian noise. Takes effect at the next
    /// measurement/transmission; pass `0.0` to restore the clean floor.
    pub fn set_external_interference(&mut self, extra_var: f64) -> Result<(), JmbError> {
        if !extra_var.is_finite() || extra_var < 0.0 {
            return Err(JmbError::BadConfig(
                "external interference must be finite and non-negative",
            ));
        }
        let floor = self.cfg.client_noise_var + extra_var;
        for i in 0..self.clients.len() {
            let node = self.clients[i];
            self.medium.set_noise_var(node, floor);
        }
        Ok(())
    }

    /// Runs the channel-measurement phase (§5.1) at the current time.
    ///
    /// On return, the joint channel matrix is stored (feedback modelled as
    /// reliable), every slave holds its reference channel, and the
    /// zero-forcing precoder is (re)computed.
    pub fn run_measurement(&mut self) -> Result<(), JmbError> {
        let params = self.cfg.params.clone();
        let plan =
            MeasurementPlan::with_order(self.cfg.n_aps, self.cfg.rounds, self.cfg.slot_order);
        let ts = params.sample_period();
        let t0 = self.now;

        // Control-plane fault injection: a lost measurement exchange still
        // occupies the air, but no CSI is produced and every stored state
        // (references, precoder) stays as it was — stale.
        if self.medium.draw_meas_loss(t0) {
            let total = plan.total_len(&params);
            self.now = t0 + total as f64 * ts + 50e-6;
            self.medium.expire(self.now);
            return Err(JmbError::MeasurementLost);
        }

        // Schedule every AP's segments (slaves add trigger jitter).
        for (i, &ap) in self.aps.iter().enumerate() {
            for (off, seg) in plan.ap_segments(&params, i) {
                let jitter = if i == 0 {
                    0.0
                } else {
                    self.trigger_offsets[i] + normal(&mut self.rng, self.cfg.trigger_jitter_s)
                };
                self.medium.transmit(ap, t0 + off as f64 * ts + jitter, seg);
            }
        }

        // Clients estimate.
        let total = plan.total_len(&params);
        let occupied = params.occupied_subcarriers();
        let mut h = vec![CMat::zeros(self.cfg.n_clients, self.cfg.n_aps); occupied.len()];
        self.client_noise_bins.clear();
        for (j, &c) in self.clients.iter().enumerate() {
            let window = self.medium.render_rx(c, t0, total + 8);
            let m = measure::client_estimate(&params, &plan, &window)?;
            for (i, est) in m.per_ap.iter().enumerate() {
                for (k_idx, g) in est.gains.iter().enumerate() {
                    h[k_idx][(j, i)] = *g;
                }
            }
            self.client_noise_bins.push(m.noise_var);
        }

        // Slaves store their reference channel + a refined CFO seed. The
        // slave hears the whole measurement packet too (minus its own
        // slots), so it can run the same two-pass CFO refinement a client
        // runs on the lead's interleaved symbols — giving it a far better
        // initial frequency estimate than one header provides.
        for s in 1..self.cfg.n_aps {
            let window = self.medium.render_rx(self.aps[s], t0, total + 8);
            let (est, header_cfo) = measure::slave_header_measurement(&params, &window)?;
            // The multi-slot refinement accuracy improves with the span of
            // the interleaved rounds (≈ phase noise over the span): ~50 Hz
            // for a 2-AP packet, better as packets grow.
            let span_s = (plan.rounds * plan.n_aps) as f64 * params.symbol_len() as f64 * ts;
            let (refined_cfo, sigma) = match measure::client_estimate(&params, &plan, &window) {
                Ok(m) => (
                    m.cfo_per_ap[0],
                    (0.02 / (2.0 * std::f64::consts::PI * span_s)).max(10.0),
                ),
                Err(_) => (header_cfo, 200.0),
            };
            self.sync_state[s - 1].set_reference(est.clone());
            self.sync_state[s - 1].seed_cfo(&est, refined_cfo, sigma, t0 + 240.0 * ts);
        }

        self.precoder = Some(Precoder::zero_forcing(&h)?);
        self.h = Some(h);
        self.now = t0 + total as f64 * ts + 50e-6;
        self.medium.expire(self.now);
        Ok(())
    }

    /// Per-subcarrier SNR (dB) every client will see under the current
    /// precoder — `k̂²/N` per §9 — and the rate the effective-SNR algorithm
    /// selects from it.
    pub fn select_rate(&self) -> Option<Mcs> {
        let p = self.precoder.as_ref()?;
        let h = self.h.as_ref()?;
        // Per-client per-subcarrier received amplitude under the precoder
        // (the diagonal of H·W), against that client's fed-back noise; the
        // joint rate must clear every client (§9: same rate for all).
        let per_client: Vec<Vec<f64>> = (0..self.cfg.n_clients)
            .map(|j| {
                let noise = self.client_noise_bins.get(j).copied().unwrap_or(1e-12);
                (0..h.len())
                    .map(|k_idx| {
                        let g = p.stream_gain(k_idx, &h[k_idx], j);
                        jmb_dsp::stats::lin_to_db(g * g / noise)
                    })
                    .collect()
            })
            .collect();
        crate::baseline::select_joint_mcs(&per_client)
    }

    /// One joint data transmission (§5.2): all APs beamform `payloads[j]`
    /// to client `j` concurrently, at the same MCS for every client (§9).
    ///
    /// All payloads must have equal length (the MAC pads, §9). Returns each
    /// client's decode result.
    ///
    /// `apply_phase_sync = false` disables the slave corrections — the
    /// ablation showing why distributed phase synchronisation is necessary.
    pub fn joint_transmit(
        &mut self,
        payloads: &[Vec<u8>],
        mcs: Mcs,
        apply_phase_sync: bool,
    ) -> Result<Vec<Result<RxResult, JmbError>>, JmbError> {
        self.joint_transmit_masked(payloads, mcs, apply_phase_sync, None)
    }

    /// [`JmbNetwork::joint_transmit`] with an AP liveness mask: APs whose
    /// mask entry is `false` radiate nothing (mid-run failure). The precoder
    /// is *not* rebuilt — the surviving APs transmit their original weights,
    /// so the clients' nulls are imperfect and SINR degrades, exactly the
    /// transient the §9 failover (designated-AP re-election plus a fresh
    /// subset precoder on the fast path) exists to clean up.
    ///
    /// When the lead (AP 0) is masked out there is no sync header; slaves
    /// reuse the corrections from the most recent successful joint
    /// transmission (stale phase state — decoding degrades further with
    /// time, it does not error).
    pub fn joint_transmit_masked(
        &mut self,
        payloads: &[Vec<u8>],
        mcs: Mcs,
        apply_phase_sync: bool,
        active_aps: Option<&[bool]>,
    ) -> Result<Vec<Result<RxResult, JmbError>>, JmbError> {
        if payloads.len() != self.cfg.n_clients {
            return Err(JmbError::BadConfig("one payload per client required"));
        }
        if payloads.windows(2).any(|w| w[0].len() != w[1].len()) {
            return Err(JmbError::BadConfig("payloads must have equal length"));
        }
        if let Some(mask) = active_aps {
            if mask.len() != self.cfg.n_aps {
                return Err(JmbError::BadConfig("one mask entry per AP required"));
            }
            if mask.iter().all(|&a| !a) {
                return Err(JmbError::BadConfig("every AP masked out"));
            }
        }
        let is_active = |i: usize| active_aps.is_none_or(|m| m[i]);
        let precoder = self.precoder.clone().ok_or(JmbError::NoReference)?;
        let params = self.cfg.params.clone();
        let ts = params.sample_period();
        let t_h = self.now;

        // 1. Lead sync header (only if the lead's data path is up).
        if is_active(0) {
            self.medium
                .transmit(self.aps[0], t_h, preamble::preamble(&params));
        }

        // 2. Slaves measure and compute corrections. The measurement anchor
        //    is the LTF midpoint: t_h + 240 samples. A downed slave measures
        //    nothing; with the lead down, every slave falls back to its
        //    correction from the last successful transmission.
        let t_meas = t_h + 240.0 * ts;
        let mut corrections: Vec<Option<crate::phasesync::PhaseCorrection>> =
            vec![None; self.cfg.n_aps];
        // Slaves suppressed for this batch: degraded sync health means the
        // slave radiates nothing rather than transmitting misaligned energy.
        let mut suppressed = vec![false; self.cfg.n_aps];
        if is_active(0) {
            for (s, slot) in corrections.iter_mut().enumerate().skip(1) {
                if !is_active(s) {
                    continue;
                }
                // Fault injection: the slave fails to receive the header.
                if self.medium.draw_sync_miss(s, t_meas) {
                    self.medium
                        .trace
                        .emit(t_meas, jmb_sim::EventKind::SyncMissed { slave: s });
                    if self.sync_health[s - 1].record_miss() {
                        self.medium
                            .trace
                            .emit(t_meas, jmb_sim::EventKind::ApDegraded { ap: s });
                    }
                    if self.sync_health[s - 1].is_degraded() {
                        suppressed[s] = true;
                    } else {
                        // Stale fallback: reuse the correction from the last
                        // successful joint transmission (degrades with age).
                        *slot = self.last_corrections.get(s).cloned().flatten();
                    }
                    continue;
                }
                let window = self.medium.render_rx(self.aps[s], t_h, 320 + 8);
                let (est, cfo) = measure::slave_header_measurement(&params, &window)
                    .map_err(|_| JmbError::SyncHeaderMissed { slave: s })?;
                if self.sync_health[s - 1].record_sync() {
                    self.medium
                        .trace
                        .emit(t_meas, jmb_sim::EventKind::ApRestored { ap: s });
                }
                self.sync_state[s - 1].observe_header(&est, cfo, t_meas);
                *slot = Some(self.sync_state[s - 1].correction(&est)?);
            }
        } else {
            for (s, slot) in corrections.iter_mut().enumerate().skip(1) {
                if !is_active(s) {
                    continue;
                }
                *slot = self.last_corrections.get(s).cloned().flatten();
            }
        }

        self.last_corrections = corrections.clone();

        // 3. Build per-AP precoded waveforms.
        let streams: Vec<jmb_phy::frame::StreamBins> = payloads
            .iter()
            .map(|p| self.ftx.build_bins(mcs, p))
            .collect::<Result<_, _>>()?;
        let n_sym = streams[0].symbols.len();
        debug_assert!(streams.iter().all(|s| s.symbols.len() == n_sym));

        let t_d = t_h + 320.0 * ts + self.cfg.turnaround_s;
        let occupied = params.occupied_subcarriers();
        let ofdm = jmb_phy::ofdm::Ofdm::new(params.clone());

        for (m_idx, &ap) in self.aps.iter().enumerate() {
            if !is_active(m_idx) || suppressed[m_idx] {
                continue;
            }
            // Preamble bins: the same training sequence on every stream ⇒
            // this AP radiates seq × Σ_j W[m][j].
            let mut stf_b = preamble::stf_bins(&params);
            let mut ltf_b = preamble::ltf_bins(&params);
            // Data/SIGNAL symbol bins.
            let mut sym_bins: Vec<Vec<Complex64>> =
                vec![vec![Complex64::ZERO; params.fft_size]; n_sym];
            for (k_idx, &k) in occupied.iter().enumerate() {
                let b = params.bin(k);
                let w = precoder.weights_at(k_idx);
                let wsum: Complex64 = (0..precoder.n_streams()).map(|j| w[(m_idx, j)]).sum();
                // Per-subcarrier phase-sync correction.
                let corr = if apply_phase_sync {
                    corrections[m_idx]
                        .as_ref()
                        .map_or(Complex64::ONE, |c| c.phasor_at(k))
                } else {
                    Complex64::ONE
                };
                stf_b[b] *= wsum * corr;
                ltf_b[b] *= wsum * corr;
                for (s_idx, sym) in sym_bins.iter_mut().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (j, stream) in streams.iter().enumerate() {
                        acc = w[(m_idx, j)].mul_add(stream.symbols[s_idx][b], acc);
                    }
                    sym[b] = acc * corr;
                }
            }
            // Assemble the waveform.
            let mut wave = preamble::stf_from_bins(&params, &stf_b);
            wave.extend(preamble::ltf_from_bins(&params, &ltf_b));
            for sym in &sym_bins {
                wave.extend(ofdm.bins_to_samples(sym));
            }
            // Within-packet tracking (slaves only): rotate by the EWMA CFO
            // continuing from the header-measurement anchor (§5.2b).
            if apply_phase_sync && m_idx > 0 {
                let f_hat = corrections[m_idx].as_ref().map_or(0.0, |c| c.cfo_hz);
                if f_hat != 0.0 {
                    for (n, x) in wave.iter_mut().enumerate() {
                        let t = t_d + n as f64 * ts - t_meas;
                        *x *= Complex64::cis(2.0 * std::f64::consts::PI * f_hat * t);
                    }
                }
            }
            let jitter = if m_idx == 0 {
                0.0
            } else {
                self.trigger_offsets[m_idx] + normal(&mut self.rng, self.cfg.trigger_jitter_s)
            };
            self.medium.transmit(ap, t_d + jitter, wave);
        }

        // 4. Clients decode.
        let pkt_len = 320 + n_sym * params.symbol_len();
        let mut results = Vec::with_capacity(self.cfg.n_clients);
        for &c in &self.clients {
            let pad = 64usize;
            let window = self
                .medium
                .render_rx(c, t_d - pad as f64 * ts, pkt_len + 2 * pad);
            results.push(
                self.frx
                    .rx_frame_with(&mut self.rx_scratch, &window)
                    .map_err(JmbError::Rx),
            );
        }

        self.now = t_d + pkt_len as f64 * ts + 50e-6;
        self.medium.expire(self.now - 1e-3);
        Ok(results)
    }

    /// Diversity transmission (§8): every AP beamforms the *same* payload
    /// to client 0 with maximum-ratio weights.
    pub fn diversity_transmit(
        &mut self,
        payload: &[u8],
        mcs: Mcs,
    ) -> Result<Result<RxResult, JmbError>, JmbError> {
        let h = self.h.as_ref().ok_or(JmbError::NoReference)?;
        // MRT rows: channel from each AP to client 0 per subcarrier.
        let rows: Vec<Vec<Complex64>> = (0..h.len())
            .map(|k_idx| (0..self.cfg.n_aps).map(|i| h[k_idx][(0, i)]).collect())
            .collect();
        let mrt = Precoder::mrt(&rows)?;
        // Temporarily swap the precoder and client count, reuse the joint
        // pipeline with a single stream.
        let saved = self.precoder.replace(mrt);
        let saved_clients = self.cfg.n_clients;
        self.cfg.n_clients = 1;
        let out = self.joint_transmit(&[payload.to_vec()], mcs, true);
        self.cfg.n_clients = saved_clients;
        self.precoder = saved;
        Ok(out?.remove(0))
    }

    /// The Fig. 7 probe: lead and slave 1 alternate channel-estimation
    /// symbols; client 0 tracks the relative phase between them. Returns
    /// one misalignment sample (radians) per round after the first,
    /// measured against the first round's relative phase.
    ///
    /// Call [`JmbNetwork::run_measurement`] first (the slave needs its
    /// reference); `inter_round_gap_s` of oscillator drift separates rounds.
    pub fn misalignment_probe(
        &mut self,
        n_rounds: usize,
        inter_round_gap_s: f64,
    ) -> Result<Vec<f64>, JmbError> {
        self.misalignment_probe_with(
            n_rounds,
            inter_round_gap_s,
            crate::sync::SyncStrategyId::JmbLeadSlave,
        )
    }

    /// Strategy-aware variant of [`JmbNetwork::misalignment_probe`]: the
    /// waveform timeline (lead header, alternating chanest symbols) is
    /// identical, but the slave's correction source follows the chosen
    /// backend. `JmbLeadSlave` re-measures the in-band header every round
    /// (byte-identical to [`JmbNetwork::misalignment_probe`]); the
    /// out-of-band backends absorb a header observation only when their
    /// pilot/recalibration tick is due and extrapolate in between —
    /// reciprocity additionally sees noisier estimates (implicit CSI rides
    /// uncontrolled uplink frames).
    pub fn misalignment_probe_with(
        &mut self,
        n_rounds: usize,
        inter_round_gap_s: f64,
        strategy: crate::sync::SyncStrategyId,
    ) -> Result<Vec<f64>, JmbError> {
        if self.cfg.n_aps < 2 {
            return Err(JmbError::BadConfig("probe needs a lead and a slave"));
        }
        if !self.sync_state[0].has_reference() {
            return Err(JmbError::NoReference);
        }
        let params = self.cfg.params.clone();
        let ts = params.sample_period();
        let sym = measure::chanest_symbol(&params);
        let sym_len = params.symbol_len();
        let ofdm = jmb_phy::ofdm::Ofdm::new(params.clone());
        let mut reference_rel: Option<Complex64> = None;
        let mut out = Vec::with_capacity(n_rounds.saturating_sub(1));
        // Out-of-band update schedule (rival strategies): ticks are
        // quantized to round headers — the probe's rounds are the only
        // instants the sample-level medium renders.
        let update_interval_s = match strategy {
            crate::sync::SyncStrategyId::JmbLeadSlave => 0.0,
            crate::sync::SyncStrategyId::AirSyncPilot => crate::sync::AIRSYNC_PILOT_INTERVAL_S,
            crate::sync::SyncStrategyId::ReciprocityImplicit => {
                crate::sync::RECIPROCITY_RECAL_INTERVAL_S
            }
        };
        let mut next_update: Option<f64> = None;

        for _ in 0..n_rounds {
            let t_h = self.now;
            // Lead header; slave measures and corrects.
            self.medium
                .transmit(self.aps[0], t_h, preamble::preamble(&params));
            let window = self.medium.render_rx(self.aps[1], t_h, 320 + 8);
            let t_meas = t_h + 240.0 * ts;
            let (corr, t_anchor) = match strategy {
                crate::sync::SyncStrategyId::JmbLeadSlave => {
                    let (est, cfo) = measure::slave_header_measurement(&params, &window)
                        .map_err(|_| JmbError::SyncHeaderMissed { slave: 1 })?;
                    self.sync_state[0].observe_header(&est, cfo, t_meas);
                    (self.sync_state[0].correction(&est)?, t_meas)
                }
                crate::sync::SyncStrategyId::AirSyncPilot
                | crate::sync::SyncStrategyId::ReciprocityImplicit => {
                    if next_update.is_none_or(|t| t_meas >= t) {
                        let (mut est, mut cfo) =
                            measure::slave_header_measurement(&params, &window)
                                .map_err(|_| JmbError::SyncHeaderMissed { slave: 1 })?;
                        if strategy == crate::sync::SyncStrategyId::ReciprocityImplicit {
                            // Implicit estimates are noisier: 4× the
                            // header's estimation variance (the header
                            // averages two clean LTF repetitions; an
                            // overheard uplink frame does not).
                            for g in est.gains.iter_mut() {
                                *g += jmb_dsp::rng::complex_gaussian(
                                    &mut self.rng,
                                    1.5 * self.cfg.ap_noise_var,
                                );
                            }
                            cfo += normal(&mut self.rng, 300.0);
                        }
                        self.sync_state[0].observe_header(&est, cfo, t_meas);
                        next_update = Some(t_meas + update_interval_s);
                    }
                    self.sync_state[0].extrapolated_correction()?
                }
            };

            // Alternating symbols: lead at t_d, slave at t_d + 80·Ts.
            let t_d = t_h + 320.0 * ts + self.cfg.turnaround_s;
            self.medium.transmit(self.aps[0], t_d, sym.clone());
            // Slave applies per-subcarrier correction + within-packet CFO.
            let mut slave_bins = preamble::ltf_bins(&params);
            for &k in &params.occupied_subcarriers() {
                let b = params.bin(k);
                slave_bins[b] *= corr.phasor_at(k);
            }
            let mut slave_sym = ofdm.bins_to_samples(&slave_bins);
            let t_slave = t_d + sym_len as f64 * ts;
            for (n, x) in slave_sym.iter_mut().enumerate() {
                let t = t_slave + n as f64 * ts - t_anchor;
                *x *= Complex64::cis(2.0 * std::f64::consts::PI * corr.cfo_hz * t);
            }
            let jitter = self.trigger_offsets[1] + normal(&mut self.rng, self.cfg.trigger_jitter_s);
            self.medium
                .transmit(self.aps[1], t_slave + jitter, slave_sym);

            // Client: estimate both slots and compare their relative phase.
            let c = self.clients[0];
            let window = self.medium.render_rx(c, t_d, 2 * sym_len + 8);
            let lead_est = estimate_slot(&params, &window[..sym_len]);
            let slave_est = estimate_slot(&params, &window[sym_len..2 * sym_len]);
            let mut rel = Complex64::ZERO;
            for (a, b) in slave_est.gains.iter().zip(&lead_est.gains) {
                rel += *a * b.conj();
            }
            let rel = rel.normalize();
            match reference_rel {
                None => reference_rel = Some(rel),
                Some(r) => out.push(measure::misalignment(rel, r)),
            }

            self.now = t_d + 2.0 * sym_len as f64 * ts + inter_round_gap_s;
            self.medium.expire(self.now - 1e-3);
        }
        Ok(out)
    }
}

/// Estimates the channel from one 80-sample chanest slot (known LTF
/// content), without CFO correction (the probe arranges slots close enough
/// that residual rotation is part of what is being measured).
fn estimate_slot(params: &OfdmParams, slot: &[Complex64]) -> ChannelEstimate {
    let mut bins = slot[params.cp_len..params.symbol_len()].to_vec();
    fft::fft_in_place(&mut bins);
    let l = preamble::ltf_freq();
    let subcarriers = params.occupied_subcarriers();
    let gains = subcarriers
        .iter()
        .map(|&k| bins[params.bin(k)].scale(l[(k + 26) as usize]))
        .collect();
    ChannelEstimate { subcarriers, gains }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payloads(n: usize, len: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|j| (0..len).map(|i| (i * 7 + j * 13 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn two_by_two_joint_transmission_decodes() {
        // The headline behaviour: 2 independent APs with offset oscillators
        // deliver 2 concurrent packets to 2 single-antenna clients.
        let cfg = NetConfig::default_with(2, 2, 22.0, 42);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        let data = payloads(2, 100);
        let results = net.joint_transmit(&data, Mcs::ALL[2], true).unwrap();
        for (j, r) in results.iter().enumerate() {
            let rx = r.as_ref().unwrap_or_else(|e| panic!("client {j}: {e}"));
            assert_eq!(rx.payload, data[j], "client {j}");
        }
    }

    #[test]
    fn three_by_three_joint_transmission_decodes() {
        let cfg = NetConfig::default_with(3, 3, 22.0, 7);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        let data = payloads(3, 60);
        let results = net.joint_transmit(&data, Mcs::ALL[1], true).unwrap();
        for (j, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().expect("decode").payload, data[j], "client {j}");
        }
    }

    #[test]
    fn without_phase_sync_transmission_fails() {
        // The ablation: identical system, corrections disabled. After a
        // couple of milliseconds of oscillator drift the effective channel
        // is no longer what the clients measured and decoding collapses.
        let cfg = NetConfig::default_with(2, 2, 22.0, 43);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(2e-3);
        let data = payloads(2, 100);
        let results = net.joint_transmit(&data, Mcs::ALL[2], false).unwrap();
        let failures = results.iter().filter(|r| r.is_err()).count();
        assert!(
            failures >= 1,
            "expected decode failures without phase sync, got {failures}"
        );
    }

    #[test]
    fn repeated_transmissions_amortise_one_measurement() {
        // §5: "a single channel measurement phase can be followed by
        // multiple data transmissions" — run several packets several ms
        // apart on one measurement.
        let cfg = NetConfig::default_with(2, 2, 22.0, 44);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        // Use the network's own rate selection (this seed draws a poorly
        // conditioned channel; a fixed aggressive MCS would not be what the
        // real system transmits at).
        let mcs = net.select_rate().unwrap_or(Mcs::BASE);
        let data = payloads(2, 80);
        let mut ok = 0;
        let mut total = 0;
        for _ in 0..5 {
            net.advance(3e-3);
            let results = net.joint_transmit(&data, mcs, true).unwrap();
            for r in &results {
                total += 1;
                if r.is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(
            ok * 10 >= total * 8,
            "delivery {ok}/{total} below 80% across rounds"
        );
    }

    #[test]
    fn select_rate_reports_usable_mcs() {
        let cfg = NetConfig::default_with(2, 2, 22.0, 45);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        let mcs = net.select_rate().expect("usable rate at 22 dB");
        assert!(mcs.index() >= 2, "rate too low: {mcs}");
    }

    #[test]
    fn diversity_transmission_decodes() {
        let cfg = NetConfig::default_with(3, 1, 12.0, 46);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        let payload: Vec<u8> = (0..50).map(|i| i as u8).collect();
        let r = net.diversity_transmit(&payload, Mcs::ALL[0]).unwrap();
        assert_eq!(r.expect("diversity decode").payload, payload);
    }

    #[test]
    fn misalignment_probe_is_small() {
        let cfg = NetConfig::default_with(2, 1, 25.0, 47);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        let samples = net.misalignment_probe(20, 2e-3).unwrap();
        assert_eq!(samples.len(), 19);
        let median = jmb_dsp::stats::median(&samples.iter().map(|s| s.abs()).collect::<Vec<_>>());
        assert!(median < 0.1, "median misalignment {median} rad");
    }

    #[test]
    fn config_validation() {
        assert!(JmbNetwork::new(NetConfig::default_with(0, 1, 20.0, 1)).is_err());
        assert!(JmbNetwork::new(NetConfig::default_with(1, 2, 20.0, 1)).is_err());
        let mut cfg = NetConfig::default_with(2, 2, 20.0, 1);
        cfg.client_snr_db.pop();
        assert!(JmbNetwork::new(cfg).is_err());
    }

    #[test]
    fn joint_transmit_requires_measurement() {
        let cfg = NetConfig::default_with(2, 2, 20.0, 48);
        let mut net = JmbNetwork::new(cfg).unwrap();
        let data = payloads(2, 10);
        assert!(matches!(
            net.joint_transmit(&data, Mcs::ALL[0], true),
            Err(JmbError::NoReference)
        ));
    }

    #[test]
    fn masked_transmit_skips_downed_aps() {
        let cfg = NetConfig::default_with(3, 2, 22.0, 51);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        let data = payloads(2, 40);
        // One healthy transmission to populate last_corrections.
        let r = net.joint_transmit(&data, Mcs::BASE, true).unwrap();
        assert_eq!(r.len(), 2);
        // Slave AP 2 fails: the call still completes and returns per-client
        // results (decoding may degrade — the precoder is stale).
        net.advance(1e-3);
        let n_before = net.medium_mut().trace.transmit_count();
        net.medium_mut().trace.enable();
        let r = net
            .joint_transmit_masked(&data, Mcs::BASE, true, Some(&[true, true, false]))
            .unwrap();
        assert_eq!(r.len(), 2);
        let n_tx = net.medium_mut().trace.transmit_count() - n_before;
        assert_eq!(n_tx, 3, "header + 2 live AP waveforms, not 4");
        // Lead fails: no sync header, slaves reuse stale corrections, the
        // queue still moves (no error).
        net.advance(1e-3);
        let r = net
            .joint_transmit_masked(&data, Mcs::BASE, true, Some(&[false, true, true]))
            .unwrap();
        assert_eq!(r.len(), 2);
        // Mask validation.
        assert!(net
            .joint_transmit_masked(&data, Mcs::BASE, true, Some(&[true, true]))
            .is_err());
        assert!(net
            .joint_transmit_masked(&data, Mcs::BASE, true, Some(&[false, false, false]))
            .is_err());
    }

    #[test]
    fn sync_loss_storm_degrades_then_restores() {
        let cfg = NetConfig::default_with(3, 2, 22.0, 52);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        net.advance(1e-3);
        let data = payloads(2, 40);
        // One healthy transmission to populate last_corrections.
        net.joint_transmit(&data, Mcs::BASE, true).unwrap();
        net.medium_mut().trace.enable();
        // Slave 1 loses every header: stale fallback for K−1 batches, then
        // suppressed — never a panic, every call returns per-client results.
        let storm = jmb_sim::FaultConfig::builder()
            .per_slave_sync_loss(1, 1.0)
            .build()
            .unwrap();
        net.medium_mut().set_fault(storm);
        for _ in 0..4 {
            net.advance(1e-3);
            let r = net.joint_transmit(&data, Mcs::BASE, true).unwrap();
            assert_eq!(r.len(), 2);
        }
        assert!(net.sync_health()[0].is_degraded());
        let trace = &net.medium_mut().trace;
        assert_eq!(trace.sync_missed_count(), 4);
        assert_eq!(trace.degraded_count(), 1);
        // The storm clears: the next header restores the slave.
        net.medium_mut().set_fault(jmb_sim::FaultConfig::none());
        net.advance(1e-3);
        net.joint_transmit(&data, Mcs::BASE, true).unwrap();
        assert!(!net.sync_health()[0].is_degraded());
        assert_eq!(net.medium_mut().trace.restored_count(), 1);
    }

    #[test]
    fn measurement_loss_surfaces_typed_error() {
        let cfg = NetConfig::default_with(2, 2, 22.0, 53);
        let mut net = JmbNetwork::new(cfg).unwrap();
        let lossy = jmb_sim::FaultConfig::builder()
            .meas_loss_chance(1.0)
            .build()
            .unwrap();
        net.medium_mut().set_fault(lossy);
        let t0 = net.now();
        assert_eq!(net.run_measurement(), Err(JmbError::MeasurementLost));
        assert!(net.now() > t0, "the lost exchange still costs airtime");
        net.medium_mut().set_fault(jmb_sim::FaultConfig::none());
        net.run_measurement().unwrap();
    }

    #[test]
    fn unequal_payloads_rejected() {
        let cfg = NetConfig::default_with(2, 2, 20.0, 49);
        let mut net = JmbNetwork::new(cfg).unwrap();
        net.run_measurement().unwrap();
        let data = vec![vec![1u8; 10], vec![2u8; 20]];
        assert!(matches!(
            net.joint_transmit(&data, Mcs::ALL[0], true),
            Err(JmbError::BadConfig(_))
        ));
    }

    #[test]
    fn external_interference_backs_off_sample_path_rate() {
        // The sample-accurate path folds out-of-cell interference into the
        // client noise floor; the measurement *estimates* that floor from
        // the received window, so rate selection backs off automatically.
        let run = |extra_var: f64| {
            let cfg = NetConfig::default_with(2, 2, 25.0, 54);
            let clean_floor = cfg.client_noise_var;
            let mut net = JmbNetwork::new(cfg).unwrap();
            net.set_external_interference(extra_var).unwrap();
            let clients = net.client_nodes().to_vec();
            for c in clients {
                assert_eq!(net.medium_mut().noise_var(c), clean_floor + extra_var);
            }
            net.run_measurement().unwrap();
            net.select_rate()
        };
        // Clean floor: the effective-SNR algorithm finds a workable rate.
        assert!(run(0.0).is_some(), "clean cell must have a rate");
        // ~7 dB of extra floor (5x the 1e-6 default): the estimated noise
        // bins grow until no MCS clears every client — full back-off.
        assert!(run(5e-6).is_none(), "interference must force back-off");
        // Validation: rejects NaN and negative floors.
        let mut net = JmbNetwork::new(NetConfig::default_with(2, 1, 20.0, 55)).unwrap();
        assert!(net.set_external_interference(f64::NAN).is_err());
        assert!(net.set_external_interference(-1.0).is_err());
    }
}
