//! Distributed phase synchronization — the paper's core mechanism (§4, §5).
//!
//! Each slave AP keeps:
//!
//! * a **reference channel** `h_lead(0)`: its measurement of the lead AP's
//!   channel at the reference time of the last channel-measurement phase;
//! * a **long-term CFO estimate** relative to the lead, an EWMA over the
//!   per-header CFO estimates ("averaging over samples taken across many
//!   packets", §5.3);
//!
//! and before every joint transmission it measures the lead's channel again
//! from the sync header. The ratio
//!
//! ```text
//! h_lead(t) / h_lead(0) = e^{j(ω_lead − ω_slave)t}
//! ```
//!
//! is a **direct phase measurement** — "it is purely a division of two
//! direct measurements" (§5.2) — so the across-packet phase error does not
//! accumulate, no matter how long ago the reference was taken. Within the
//! packet the slave extrapolates with the EWMA CFO, which only has to stay
//! accurate for a few hundred microseconds (§5.3 first principle).
//!
//! The same machinery exposes the **naive** alternative (extrapolating the
//! phase from the first CFO estimate and elapsed time) so the motivation
//! experiment of §1 — 10 Hz of estimation error → 20° in 5.5 ms — can be
//! reproduced as an ablation.

use crate::error::JmbError;
use jmb_dsp::complex::wrap_phase;
use jmb_dsp::stats::Ewma;
use jmb_dsp::Complex64;
use jmb_phy::chanest::ChannelEstimate;

/// Default EWMA smoothing for the long-term CFO average.
pub const DEFAULT_CFO_ALPHA: f64 = 0.1;

/// The phase correction a slave applies to one joint transmission.
#[derive(Debug, Clone)]
pub struct PhaseCorrection {
    /// Occupied subcarrier indices (ascending).
    pub subcarriers: Vec<i32>,
    /// Unit phasor per occupied subcarrier: multiply the slave's transmit
    /// signal by this (it equals the fitted `e^{j(ω_lead−ω_slave)t}` with a
    /// per-subcarrier slope for sampling-offset slip).
    pub per_subcarrier: Vec<Complex64>,
    /// Fitted common phase (radians).
    pub common_phase: f64,
    /// Fitted per-subcarrier phase slope (radians per subcarrier index).
    pub slope: f64,
    /// CFO (Hz) to use for within-packet tracking (EWMA if available,
    /// otherwise the instantaneous header estimate).
    pub cfo_hz: f64,
}

impl PhaseCorrection {
    /// The correction phasor at a logical subcarrier.
    pub fn phasor_at(&self, subcarrier: i32) -> Complex64 {
        Complex64::cis(self.common_phase + self.slope * subcarrier as f64)
    }

    /// Within-packet rotation `e^{j2π·f̂·dt}` at `dt` seconds after the
    /// header measurement (§5.2b: "multiplying its transmitted signal by
    /// e^{j(ωT1−ωT2)t} where t is the time since the initial phase
    /// synchronization").
    pub fn packet_rotation(&self, dt: f64) -> Complex64 {
        Complex64::cis(2.0 * std::f64::consts::PI * self.cfo_hz * dt)
    }

    /// The full correction phasor for one subcarrier at `dt` seconds after
    /// the header measurement: the measured per-subcarrier phase, the
    /// within-packet CFO extrapolation, **and** the within-packet growth of
    /// the sampling-offset slope. The sampling clock is locked to the same
    /// crystal as the carrier (§5.2: "the MegaMIMO slave APs correct for
    /// the effect of sampling frequency offset during the packet by using a
    /// long-term averaged estimate, similar to the carrier frequency
    /// offset"), so the slip rate is `f̂/f_c` seconds per second and the
    /// per-subcarrier ramp grows at `2π·Δf_k·(f̂/f_c)` rad/s.
    pub fn correction_at(
        &self,
        subcarrier: i32,
        dt: f64,
        subcarrier_spacing: f64,
        carrier_freq: f64,
    ) -> Complex64 {
        let slope_growth =
            2.0 * std::f64::consts::PI * subcarrier_spacing * (self.cfo_hz / carrier_freq) * dt;
        Complex64::cis(
            self.common_phase
                + (self.slope + slope_growth) * subcarrier as f64
                + 2.0 * std::f64::consts::PI * self.cfo_hz * dt,
        )
    }
}

/// Slave-side phase synchronisation state.
#[derive(Debug, Clone)]
pub struct PhaseSync {
    reference: Option<ChannelEstimate>,
    /// Long-term CFO average relative to the lead (Hz).
    cfo_ewma: Ewma,
    /// First-ever CFO estimate and its time — the *naive* extrapolator's
    /// whole state.
    first_cfo: Option<(f64, f64)>,
    /// Previous header's channel gains and anchor time, for cross-header
    /// phase-unwrap CFO refinement.
    last_header: Option<(Vec<Complex64>, f64)>,
    /// Latest unwrap-refined CFO (more accurate than any single header
    /// estimate once the baseline spans milliseconds).
    refined_cfo: Option<f64>,
    /// 1σ uncertainty (Hz) of [`PhaseSync::tracking_cfo`], used to gate
    /// phase unwrapping.
    cfo_sigma: f64,
    /// Time of the last CFO update (uncertainty grows with oscillator
    /// drift between observations).
    last_update_t: f64,
    /// Number of raw per-header estimates averaged so far.
    raw_count: usize,
    observations: usize,
}

/// Longest gap between consecutive headers over which cross-header phase
/// unwrapping is even considered (beyond this, phase noise and oscillator
/// drift make the comparison meaningless).
const MAX_UNWRAP_DT: f64 = 0.05;
/// 1σ accuracy of a single raw per-header CFO estimate (Hz), at typical
/// AP↔AP SNRs.
const RAW_HEADER_SIGMA: f64 = 200.0;
/// 1σ phase-comparison noise between two headers (radians): estimation
/// noise plus oscillator phase noise over millisecond gaps.
const PHASE_SIGMA: f64 = 0.02;
/// Oscillator drift rate (Hz/√s) assumed when inflating stale uncertainty.
const DRIFT_RATE: f64 = 2.0;
/// Unwrap safety factor: refine only if `2π·GATE·σ·dt < π`, i.e. a GATE-σ
/// frequency error stays within half the ambiguity period.
const GATE: f64 = 3.0;

impl PhaseSync {
    /// Creates an empty synchroniser with the default EWMA constant.
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_CFO_ALPHA)
    }

    /// Creates a synchroniser with a custom EWMA smoothing factor.
    pub fn with_alpha(alpha: f64) -> Self {
        PhaseSync {
            reference: None,
            cfo_ewma: Ewma::new(alpha),
            first_cfo: None,
            last_header: None,
            refined_cfo: None,
            cfo_sigma: RAW_HEADER_SIGMA,
            last_update_t: 0.0,
            raw_count: 0,
            observations: 0,
        }
    }

    /// Stores the reference channel `h_lead(0)` measured during the channel
    /// measurement phase (§5.1c).
    pub fn set_reference(&mut self, est: ChannelEstimate) {
        self.reference = Some(est);
    }

    /// `true` once a reference channel has been recorded.
    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    /// The stored reference, if any.
    pub fn reference(&self) -> Option<&ChannelEstimate> {
        self.reference.as_ref()
    }

    /// Feeds one per-header CFO estimate (slave relative to lead, Hz) into
    /// the long-term average. `t` is when the header was heard; the first
    /// observation also seeds the naive extrapolator.
    pub fn observe_header_cfo(&mut self, cfo_hz: f64, t: f64) {
        self.cfo_ewma.update(cfo_hz);
        if self.first_cfo.is_none() {
            self.first_cfo = Some((cfo_hz, t));
        }
        self.observations += 1;
    }

    /// Feeds a full header observation: the lead-channel estimate (phase
    /// anchored at the header's LTF midpoint), the raw per-header CFO
    /// estimate, and the anchor time `t`.
    ///
    /// When a previous header is available and recent, the CFO fed to the
    /// EWMA is *refined by cross-header phase unwrapping*: the measured
    /// phase advance between the two headers, unwrapped with the current
    /// estimate, divided by the elapsed time. A direct phase measurement
    /// over a millisecond-scale baseline pins the frequency to ~1 Hz —
    /// this is how the "long term average … across multiple transmissions"
    /// (§5.2b) becomes accurate enough for within-packet tracking.
    pub fn observe_header(&mut self, est: &ChannelEstimate, raw_cfo_hz: f64, t: f64) {
        // Uncertainty grows with oscillator drift since the last update.
        let stale = (t - self.last_update_t).max(0.0);
        let sigma_now = (self.cfo_sigma * self.cfo_sigma + DRIFT_RATE * DRIFT_RATE * stale).sqrt();

        let current_best = self.refined_cfo.or(self.cfo_ewma.value());
        let mut unwrapped = false;
        if let (Some((prev, t_prev)), Some(f_hat)) = (&self.last_header, current_best) {
            let dt = t - *t_prev;
            // Gate: a GATE-σ frequency error must stay within half the
            // unwrap ambiguity period 1/dt, or a wrong wrap would corrupt
            // the estimate by ±1/dt Hz.
            let safe = dt > 0.0
                && dt <= MAX_UNWRAP_DT
                && 2.0 * std::f64::consts::PI * GATE * sigma_now * dt < std::f64::consts::PI;
            if safe {
                let mut acc = Complex64::ZERO;
                for (a, b) in est.gains.iter().zip(prev) {
                    acc += *a * b.conj();
                }
                let dphi = acc.arg(); // wrapped phase advance over dt
                let predicted = 2.0 * std::f64::consts::PI * f_hat * dt;
                let resid = wrap_phase(dphi - predicted);
                let refined = f_hat + resid / (2.0 * std::f64::consts::PI * dt);
                // A phase measurement over a ms-scale baseline pins the
                // frequency far better than any per-header estimate, so it
                // becomes the tracking value directly (lightly smoothed
                // against phase noise).
                self.refined_cfo = Some(match self.refined_cfo {
                    Some(prev_ref) => prev_ref + 0.5 * (refined - prev_ref),
                    None => refined,
                });
                self.cfo_sigma = (PHASE_SIGMA / (2.0 * std::f64::consts::PI * dt)).max(0.5);
                self.cfo_ewma.update(refined);
                unwrapped = true;
            }
        }
        if !unwrapped {
            // Fall back to averaging raw per-header estimates; uncertainty
            // shrinks like 1/√n until unwrapping becomes safe.
            self.raw_count += 1;
            self.cfo_ewma.update(raw_cfo_hz);
            let avg_sigma = RAW_HEADER_SIGMA / (self.raw_count as f64).sqrt();
            self.cfo_sigma = sigma_now.min(avg_sigma);
        }
        self.last_update_t = t;
        if self.first_cfo.is_none() {
            self.first_cfo = Some((raw_cfo_hz, t));
        }
        self.last_header = Some((est.gains.clone(), t));
        self.observations += 1;
    }

    /// Seeds the CFO estimate with an external measurement of known
    /// accuracy (e.g. the slave's multi-slot refinement over the
    /// channel-measurement packet).
    pub fn seed_cfo(&mut self, est: &ChannelEstimate, cfo_hz: f64, sigma_hz: f64, t: f64) {
        self.cfo_ewma.update(cfo_hz);
        self.refined_cfo = None;
        self.cfo_sigma = sigma_hz;
        self.last_update_t = t;
        self.last_header = Some((est.gains.clone(), t));
        if self.first_cfo.is_none() {
            self.first_cfo = Some((cfo_hz, t));
        }
        self.observations += 1;
    }

    /// The best CFO for within-packet tracking: the unwrap-refined value
    /// when available, otherwise the EWMA of per-header estimates.
    pub fn tracking_cfo(&self) -> Option<f64> {
        self.refined_cfo.or(self.cfo_ewma.value())
    }

    /// Current 1σ uncertainty of the tracking CFO, Hz.
    pub fn cfo_sigma(&self) -> f64 {
        self.cfo_sigma
    }

    /// The current long-term CFO estimate, if any header has been observed.
    pub fn cfo_estimate(&self) -> Option<f64> {
        self.cfo_ewma.value()
    }

    /// Number of headers observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Computes the phase correction from a fresh measurement of the lead's
    /// channel (§5.2b). `now` must cover the same subcarriers as the
    /// reference.
    ///
    /// The per-subcarrier phase of `now/ref` is fitted (weighted by channel
    /// power) with a common phase plus a linear slope — the slope captures
    /// sampling-offset slip; the fit rejects per-subcarrier estimation
    /// noise that a raw division would pass through.
    pub fn correction(&self, now: &ChannelEstimate) -> Result<PhaseCorrection, JmbError> {
        let reference = self.reference.as_ref().ok_or(JmbError::NoReference)?;
        if reference.subcarriers != now.subcarriers {
            return Err(JmbError::MeasurementShape {
                expected: reference.subcarriers.len(),
                got: now.subcarriers.len(),
            });
        }
        let n = now.subcarriers.len();
        // Ratio phasors, weighted by the product of magnitudes: both
        // measurements must be strong for the ratio phase to be
        // trustworthy. The linear-phase fit unwraps sequentially across
        // subcarriers, so the (possibly multi-radian) sampling-offset ramp
        // between the two measurements is fitted correctly.
        let mut ratios = Vec::with_capacity(n);
        for i in 0..n {
            ratios.push(now.gains[i] * reference.gains[i].conj());
        }
        if ratios.iter().map(|r| r.abs()).sum::<f64>() <= 0.0 {
            return Err(JmbError::Precoding(jmb_dsp::matrix::MatError::Singular));
        }
        let ks: Vec<f64> = now.subcarriers.iter().map(|&k| k as f64).collect();
        let (common, slope) = jmb_dsp::complex::fit_linear_phase(&ks, &ratios);
        let per_subcarrier = now
            .subcarriers
            .iter()
            .map(|&k| Complex64::cis(common + slope * k as f64))
            .collect();
        Ok(PhaseCorrection {
            subcarriers: now.subcarriers.clone(),
            per_subcarrier,
            common_phase: common,
            slope,
            cfo_hz: self.tracking_cfo().unwrap_or(0.0),
        })
    }

    /// A correction built from the *last heard* header instead of a fresh
    /// one — the fallback when the current sync header is lost. Returns the
    /// correction together with its anchor time (when that header was
    /// heard): within-packet tracking must extrapolate from the anchor, so
    /// the phase error grows with the anchor's age (see
    /// [`PhaseSync::extrapolation_error_rad`] for the budget check).
    ///
    /// Errors with [`JmbError::NoReference`] if no header (or no reference
    /// channel) has been recorded yet.
    pub fn extrapolated_correction(&self) -> Result<(PhaseCorrection, f64), JmbError> {
        let reference = self.reference.as_ref().ok_or(JmbError::NoReference)?;
        let (gains, t_anchor) = self.last_header.as_ref().ok_or(JmbError::NoReference)?;
        if gains.len() != reference.subcarriers.len() {
            return Err(JmbError::MeasurementShape {
                expected: reference.subcarriers.len(),
                got: gains.len(),
            });
        }
        let est = ChannelEstimate {
            subcarriers: reference.subcarriers.clone(),
            gains: gains.clone(),
        };
        Ok((self.correction(&est)?, *t_anchor))
    }

    /// Predicted 1σ phase error (radians) of a CFO-extrapolated correction
    /// evaluated at time `t`: `2π · σ_f · (t − t_header)`. Infinite when no
    /// header has ever been heard. This is what a caller compares against
    /// its error budget before accepting the fallback.
    pub fn extrapolation_error_rad(&self, t: f64) -> f64 {
        match &self.last_header {
            Some((_, t0)) => 2.0 * std::f64::consts::PI * self.cfo_sigma * (t - t0).max(0.0),
            None => f64::INFINITY,
        }
    }

    /// The **naive** correction of §1/§5.2: extrapolate the phase from the
    /// *first* CFO estimate and the elapsed time, with no re-measurement.
    /// Returns the predicted phasor `e^{j2π·f̂₀·(t−t₀)}`.
    ///
    /// Any error `δf` in `f̂₀` produces a phase error `2π·δf·(t−t₀)` that
    /// grows without bound — this is the approach the paper shows cannot
    /// work, reproduced here for the motivation/ablation experiments.
    pub fn naive_correction(&self, t: f64) -> Result<Complex64, JmbError> {
        let (f0, t0) = self.first_cfo.ok_or(JmbError::NoReference)?;
        Ok(Complex64::cis(2.0 * std::f64::consts::PI * f0 * (t - t0)))
    }
}

impl Default for PhaseSync {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::{complex_gaussian, rng_from_seed};
    use jmb_phy::params::OfdmParams;

    /// A synthetic channel estimate over the standard 52 subcarriers.
    fn estimate_from(mut f: impl FnMut(i32) -> Complex64) -> ChannelEstimate {
        let p = OfdmParams::default();
        let subcarriers = p.occupied_subcarriers();
        let gains = subcarriers.iter().map(|&k| f(k)).collect();
        ChannelEstimate { subcarriers, gains }
    }

    #[test]
    fn recovers_pure_rotation() {
        let mut ps = PhaseSync::new();
        let reference =
            estimate_from(|k| Complex64::from_polar(1.0 + 0.01 * k as f64, 0.1 * k as f64));
        ps.set_reference(reference.clone());
        let theta = 1.234;
        let now = estimate_from(|k| reference.gain_at(k).unwrap() * Complex64::cis(theta));
        let c = ps.correction(&now).unwrap();
        assert!(
            (wrap_phase(c.common_phase - theta)).abs() < 1e-9,
            "{}",
            c.common_phase
        );
        assert!(c.slope.abs() < 1e-12);
        for (&k, phasor) in c.subcarriers.iter().zip(&c.per_subcarrier) {
            assert!((*phasor - Complex64::cis(theta)).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn recovers_rotation_with_slope() {
        let mut ps = PhaseSync::new();
        let reference = estimate_from(|_| Complex64::ONE);
        ps.set_reference(reference);
        let theta = -0.8;
        let slope = 0.004;
        let now = estimate_from(|k| Complex64::cis(theta + slope * k as f64));
        let c = ps.correction(&now).unwrap();
        assert!((wrap_phase(c.common_phase - theta)).abs() < 1e-9);
        assert!((c.slope - slope).abs() < 1e-9);
        assert!((c.phasor_at(20) - Complex64::cis(theta + slope * 20.0)).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_noise_better_than_raw_division() {
        let mut rng = rng_from_seed(1);
        let mut ps = PhaseSync::new();
        let reference = estimate_from(|_| Complex64::ONE);
        ps.set_reference(reference);
        let theta = 0.5;
        let sigma2 = 0.01; // −20 dB measurement noise
        let now = estimate_from(|_| Complex64::cis(theta) + complex_gaussian(&mut rng, sigma2));
        let c = ps.correction(&now).unwrap();
        // Fitted common phase averages 52 subcarriers: error ≈ σ/√52 ≈ 0.014.
        assert!(
            (wrap_phase(c.common_phase - theta)).abs() < 0.02,
            "err {}",
            wrap_phase(c.common_phase - theta)
        );
    }

    #[test]
    fn wrap_safe_around_pi() {
        let mut ps = PhaseSync::new();
        let reference = estimate_from(|_| Complex64::ONE);
        ps.set_reference(reference);
        let theta = std::f64::consts::PI - 0.01;
        let now = estimate_from(|k| Complex64::cis(theta + 0.001 * k as f64));
        let c = ps.correction(&now).unwrap();
        assert!((wrap_phase(c.common_phase - theta)).abs() < 1e-6);
    }

    #[test]
    fn correction_recovers_rotation_at_exactly_pi() {
        // A rotation of exactly π sits on the wrap seam: +π and −π label
        // the same phasor, and the fit must recover that phasor — not an
        // average of the two labels (which would cancel to zero).
        let mut ps = PhaseSync::new();
        ps.set_reference(estimate_from(|_| Complex64::ONE));
        let plus = estimate_from(|_| Complex64::cis(std::f64::consts::PI));
        let minus = estimate_from(|_| Complex64::cis(-std::f64::consts::PI));
        let cp = ps.correction(&plus).unwrap();
        let cm = ps.correction(&minus).unwrap();
        assert!(
            wrap_phase(cp.common_phase - std::f64::consts::PI).abs() < 1e-9,
            "common phase {} is not the seam rotation",
            cp.common_phase
        );
        // Both labels of the seam produce the same correction.
        assert!(wrap_phase(cp.common_phase - cm.common_phase).abs() < 1e-9);
    }

    #[test]
    fn cross_header_unwrap_survives_a_phase_advance_past_pi() {
        // Header-to-header phase advance of π + 0.2 rad: the *measured*
        // advance wraps to 0.2 − π, so a wrap-naive refinement would pull
        // the CFO toward an alias 1/dt Hz away. Unwrapping against the
        // seeded estimate must recover the true frequency instead.
        let dt = 2e-3;
        let advance = std::f64::consts::PI + 0.2;
        let f_true = advance / (2.0 * std::f64::consts::PI * dt); // ≈ 266 Hz
        let mut ps = PhaseSync::new();
        let est1 = estimate_from(|_| Complex64::ONE);
        ps.set_reference(est1.clone());
        ps.seed_cfo(&est1, f_true - 6.0, 5.0, 0.0);
        let est2 = estimate_from(|_| Complex64::cis(advance));
        // The raw per-header CFO is garbage on purpose: the cross-header
        // phase measurement alone must pin the frequency.
        ps.observe_header(&est2, 0.0, dt);
        let f_hat = ps.tracking_cfo().unwrap();
        assert!(
            (f_hat - f_true).abs() < 1.0,
            "refined CFO {f_hat} Hz vs true {f_true} Hz"
        );
        // Nowhere near the wrap alias at f_true − 1/dt.
        assert!((f_hat - (f_true - 1.0 / dt)).abs() > 100.0);
    }

    #[test]
    fn faded_subcarriers_downweighted() {
        let mut rng = rng_from_seed(2);
        let mut ps = PhaseSync::new();
        // Half the band is deeply faded with garbage phase.
        let reference = estimate_from(|k| {
            if k < 0 {
                Complex64::new(1e-6, 0.0)
            } else {
                Complex64::ONE
            }
        });
        ps.set_reference(reference.clone());
        let theta = 0.3;
        let now = estimate_from(|k| {
            if k < 0 {
                complex_gaussian(&mut rng, 1e-12)
            } else {
                Complex64::cis(theta)
            }
        });
        let c = ps.correction(&now).unwrap();
        assert!(
            (wrap_phase(c.common_phase - theta)).abs() < 1e-3,
            "{}",
            c.common_phase
        );
    }

    #[test]
    fn errors_without_reference() {
        let ps = PhaseSync::new();
        let now = estimate_from(|_| Complex64::ONE);
        assert_eq!(ps.correction(&now).unwrap_err(), JmbError::NoReference);
        assert_eq!(ps.naive_correction(1.0).unwrap_err(), JmbError::NoReference);
    }

    #[test]
    fn shape_mismatch_detected() {
        let mut ps = PhaseSync::new();
        ps.set_reference(estimate_from(|_| Complex64::ONE));
        let bad = ChannelEstimate {
            subcarriers: vec![1, 2, 3],
            gains: vec![Complex64::ONE; 3],
        };
        assert!(matches!(
            ps.correction(&bad),
            Err(JmbError::MeasurementShape { .. })
        ));
    }

    #[test]
    fn ewma_cfo_converges() {
        let mut ps = PhaseSync::new();
        assert_eq!(ps.cfo_estimate(), None);
        // Noisy estimates around 440 Hz.
        let mut rng = rng_from_seed(3);
        for i in 0..200 {
            let noise = jmb_dsp::rng::normal(&mut rng, 30.0);
            ps.observe_header_cfo(440.0 + noise, i as f64 * 1e-3);
        }
        let est = ps.cfo_estimate().unwrap();
        assert!((est - 440.0).abs() < 15.0, "est {est}");
        assert_eq!(ps.observations(), 200);
    }

    #[test]
    fn within_packet_rotation() {
        let mut ps = PhaseSync::new();
        ps.observe_header_cfo(1000.0, 0.0);
        ps.set_reference(estimate_from(|_| Complex64::ONE));
        let c = ps.correction(&estimate_from(|_| Complex64::ONE)).unwrap();
        assert_eq!(c.cfo_hz, 1000.0);
        let rot = c.packet_rotation(0.5e-3);
        assert!((rot - Complex64::cis(std::f64::consts::PI)).abs() < 1e-9);
    }

    #[test]
    fn extrapolated_correction_reuses_last_header() {
        let mut ps = PhaseSync::new();
        let reference = estimate_from(|_| Complex64::ONE);
        ps.set_reference(reference);
        // No header yet: fallback impossible, budget infinite.
        assert_eq!(
            ps.extrapolated_correction().unwrap_err(),
            JmbError::NoReference
        );
        assert_eq!(ps.extrapolation_error_rad(1.0), f64::INFINITY);

        let theta = 0.7;
        let now = estimate_from(|_| Complex64::cis(theta));
        ps.observe_header(&now, 100.0, 2.0);
        let (c, anchor) = ps.extrapolated_correction().unwrap();
        assert_eq!(anchor, 2.0);
        // Identical to a fresh correction from the same estimate.
        let fresh = ps.correction(&now).unwrap();
        assert!((wrap_phase(c.common_phase - fresh.common_phase)).abs() < 1e-12);
        assert!((c.slope - fresh.slope).abs() < 1e-12);
    }

    #[test]
    fn extrapolation_error_grows_with_age() {
        let mut ps = PhaseSync::new();
        ps.set_reference(estimate_from(|_| Complex64::ONE));
        let now = estimate_from(|_| Complex64::ONE);
        ps.seed_cfo(&now, 400.0, 5.0, 1.0);
        let e1 = ps.extrapolation_error_rad(1.001);
        let e2 = ps.extrapolation_error_rad(1.010);
        assert!(e1 > 0.0 && e2 > e1, "e1={e1} e2={e2}");
        // 2π · 5 Hz · 1 ms ≈ 0.0314 rad.
        assert!((e1 - 2.0 * std::f64::consts::PI * 5.0 * 1e-3).abs() < 1e-9);
        // Before the anchor the error clamps to zero, not negative.
        assert_eq!(ps.extrapolation_error_rad(0.5), 0.0);
    }

    #[test]
    fn naive_extrapolation_drifts_as_paper_says() {
        // §1: a 10 Hz error gives ~0.35 rad after 5.5 ms.
        let mut ps = PhaseSync::new();
        let true_cfo = 500.0;
        let est_err = 10.0;
        ps.observe_header_cfo(true_cfo + est_err, 0.0);
        let t = 5.5e-3;
        let predicted = ps.naive_correction(t).unwrap();
        let actual = Complex64::cis(2.0 * std::f64::consts::PI * true_cfo * t);
        let err = wrap_phase((predicted * actual.conj()).arg()).abs();
        assert!((err - 0.3456).abs() < 1e-3, "drift {err}");
    }

    #[test]
    fn direct_measurement_does_not_drift() {
        // The contrast to the naive scheme: no matter how much time passed,
        // the correction tracks the actual rotation because it re-measures.
        let mut ps = PhaseSync::new();
        let reference = estimate_from(|_| Complex64::from_polar(0.9, -0.4));
        ps.set_reference(reference.clone());
        for &t in &[0.01, 0.1, 5.0] {
            let true_rotation = 2.0 * std::f64::consts::PI * 503.7 * t; // many wraps
            let now =
                estimate_from(|k| reference.gain_at(k).unwrap() * Complex64::cis(true_rotation));
            let c = ps.correction(&now).unwrap();
            let err = wrap_phase(c.common_phase - true_rotation).abs();
            assert!(err < 1e-6, "t={t}: err {err}");
        }
    }
}
