//! Joint beamforming precoders.
//!
//! The multiplexing precoder is zero-forcing: with the joint per-subcarrier
//! channel `H(k)` (rows = clients, columns = AP antennas) the APs transmit
//! `s(k) = k̂·H(k)⁻¹·x(k)` (paper Eq. 2, §9), so every client sees a clean,
//! interference-free copy of its own stream with signal amplitude `k̂`. The
//! scalar `k̂` enforces the per-AP power constraint (footnote 2) and is what
//! rate selection uses ("signal strength of k² at each client", §9).
//!
//! The diversity precoder (§8) is maximum-ratio transmission: every AP
//! transmits the *same* stream weighted by `h*/‖h‖`, adding coherently at
//! the single client for an up-to-`N²` SNR gain.

use crate::error::JmbError;
use jmb_dsp::{CMat, Complex64, ZfSolver};

/// A per-subcarrier joint precoder.
#[derive(Debug, Clone)]
pub struct Precoder {
    /// Per-subcarrier weights, `W(k)`: `n_tx × n_streams`.
    weights: Vec<CMat>,
    /// Per-subcarrier power normalisation `k̂(k)` (§9 speaks of "the signal
    /// strength, k², in each subcarrier": normalisation is per subcarrier,
    /// so an ill-conditioned subcarrier costs only itself — the effective-
    /// SNR rate selection then averages the damage in BER domain instead of
    /// the whole band paying the worst subcarrier's inversion penalty).
    k_hats: Vec<f64>,
    n_tx: usize,
    n_streams: usize,
}

impl Precoder {
    /// Builds the zero-forcing precoder from per-subcarrier channel
    /// matrices (`n_streams × n_tx` each, rows = clients).
    ///
    /// `W(k) = H(k)⁺`, scaled per subcarrier by `k̂(k)` so that the busiest
    /// AP antenna's transmit power on that subcarrier equals the unit
    /// per-AP budget — the paper's per-AP maximum-power constraint
    /// (footnote 2). Every AP may radiate up to the same power it would use
    /// transmitting alone, which is what makes throughput scale linearly
    /// with added APs: each new AP brings its own power budget.
    pub fn zero_forcing(h_per_subcarrier: &[CMat]) -> Result<Precoder, JmbError> {
        let _span = jmb_obs::span("zf_precoder");
        if h_per_subcarrier.is_empty() {
            return Err(JmbError::BadConfig("no subcarriers"));
        }
        let n_streams = h_per_subcarrier[0].rows();
        let n_tx = h_per_subcarrier[0].cols();
        if n_streams == 0 || n_tx == 0 {
            return Err(JmbError::BadConfig("empty channel matrix"));
        }
        if n_tx < n_streams {
            return Err(JmbError::BadConfig("fewer total AP antennas than streams"));
        }
        let mut weights = Vec::with_capacity(h_per_subcarrier.len());
        let mut k_hats = Vec::with_capacity(h_per_subcarrier.len());
        // One Gram+Cholesky solver reused across subcarriers: the per-loop
        // temporaries (Gram matrix, substitution scratch) are allocated once.
        let mut solver = ZfSolver::new(n_streams, n_tx);
        let mut col_gain = vec![0.0f64; n_streams];
        for h in h_per_subcarrier {
            if h.rows() != n_streams || h.cols() != n_tx {
                return Err(JmbError::MeasurementShape {
                    expected: n_streams * n_tx,
                    got: h.rows() * h.cols(),
                });
            }
            let mut w = CMat::zeros(n_tx, n_streams);
            solver.pinv_into(h, &mut w)?;
            // Per-stream power normalisation: every stream's precoding
            // column is scaled to unit power on each subcarrier, so client
            // j's received amplitude tracks the quality of its own channel
            // (`g_j(k) = 1/‖W col_j(k)‖`), exactly like ordinary fading its
            // receiver already equalises. Normalising the whole subcarrier
            // to a common `k·I` would instead force full amplitude through
            // *faded* directions — one AP's faded diagonal would blow up
            // the weights and drag every client on that subcarrier.
            for (j, g) in col_gain.iter_mut().enumerate() {
                // Column power read from the solver's contiguous scratch
                // (same ascending-antenna summation order as scanning the
                // strided column of `w`, so the gains are bit-identical).
                let p = solver.col_power(j);
                if p <= 0.0 || !p.is_finite() {
                    return Err(JmbError::Precoding(jmb_dsp::matrix::MatError::Singular));
                }
                *g = 1.0 / p.sqrt();
            }
            for m in 0..n_tx {
                for j in 0..n_streams {
                    w[(m, j)] = w[(m, j)] * col_gain[j];
                }
            }
            weights.push(w);
            // Summary normalisation for this subcarrier: RMS of the
            // per-stream received amplitudes.
            let rms = (col_gain.iter().map(|g| g * g).sum::<f64>() / n_streams as f64).sqrt();
            k_hats.push(rms);
        }
        // Global pass: enforce the per-AP maximum-power constraint
        // (footnote 2) on each antenna's power *summed over the symbol*:
        // the busiest antenna's mean (across subcarriers) power is pinned
        // to the unit budget. Instantaneous per-subcarrier overshoot is a
        // PAPR-like effect absorbed by amplifier backoff.
        let n_k = weights.len() as f64;
        let mut busiest = 0.0f64;
        for m in 0..n_tx {
            let p: f64 = weights
                .iter()
                .map(|w| (0..n_streams).map(|j| w[(m, j)].norm_sqr()).sum::<f64>())
                .sum::<f64>()
                / n_k;
            busiest = busiest.max(p);
        }
        if busiest <= 0.0 || !busiest.is_finite() {
            return Err(JmbError::Precoding(jmb_dsp::matrix::MatError::Singular));
        }
        let gamma = (1.0 / busiest).sqrt();
        for (w, k) in weights.iter_mut().zip(k_hats.iter_mut()) {
            w.scale_in_place(Complex64::real(gamma));
            *k *= gamma;
        }
        Ok(Precoder {
            weights,
            k_hats,
            n_tx,
            n_streams,
        })
    }

    /// The received signal amplitude of stream `j` on subcarrier `k_idx`
    /// under this precoder and the channel it was built from:
    /// `g_j(k) = [H·W]_{jj}`. Returns the diagonal entry magnitude given
    /// the stored weights applied to `h`.
    pub fn stream_gain(&self, k_idx: usize, h: &CMat, stream: usize) -> f64 {
        let g = self.effective_channel(k_idx, h);
        g[(stream, stream)].abs()
    }

    /// Builds the MRT diversity precoder from the per-subcarrier channel
    /// *vector* to a single client (`1 × n_tx` matrices or a vec of rows).
    ///
    /// Weight for antenna m: `h_m*/‖h‖`, scaled so the per-antenna unit
    /// power budget is respected (the limiting antenna is the strongest
    /// one).
    pub fn mrt(h_rows: &[Vec<Complex64>]) -> Result<Precoder, JmbError> {
        if h_rows.is_empty() || h_rows[0].is_empty() {
            return Err(JmbError::BadConfig("empty diversity channel"));
        }
        let n_tx = h_rows[0].len();
        let mut weights = Vec::with_capacity(h_rows.len());
        for row in h_rows {
            if row.len() != n_tx {
                return Err(JmbError::MeasurementShape {
                    expected: n_tx,
                    got: row.len(),
                });
            }
            let norm = row.iter().map(|h| h.norm_sqr()).sum::<f64>().sqrt();
            let mut w = CMat::zeros(n_tx, 1);
            if norm > 0.0 {
                for (m, h) in row.iter().enumerate() {
                    w[(m, 0)] = h.conj() / norm;
                }
            }
            weights.push(w);
        }
        // Normalise each subcarrier to the per-antenna budget.
        let mut k_hats = Vec::with_capacity(weights.len());
        for w in weights.iter_mut() {
            let mut worst = 0.0f64;
            for m in 0..n_tx {
                worst = worst.max(w[(m, 0)].norm_sqr());
            }
            if worst <= 0.0 {
                return Err(JmbError::Precoding(jmb_dsp::matrix::MatError::Singular));
            }
            let k_hat = (1.0 / worst).sqrt();
            w.scale_in_place(Complex64::real(k_hat));
            k_hats.push(k_hat);
        }
        Ok(Precoder {
            weights,
            k_hats,
            n_tx,
            n_streams: 1,
        })
    }

    /// Number of transmit antennas.
    pub fn n_tx(&self) -> usize {
        self.n_tx
    }

    /// Number of spatial streams.
    pub fn n_streams(&self) -> usize {
        self.n_streams
    }

    /// Number of subcarriers the precoder covers.
    pub fn n_subcarriers(&self) -> usize {
        self.weights.len()
    }

    /// The RMS (across streams) received signal amplitude on subcarrier
    /// `k_idx`: under zero-forcing with per-stream power normalisation the
    /// effective channel is diagonal with per-stream gains whose RMS this
    /// summarises — the `k̂(k)` of §9's `k²/N` rate-selection rule.
    pub fn k_hat_at(&self, k_idx: usize) -> f64 {
        self.k_hats[k_idx]
    }

    /// All per-subcarrier normalisations.
    pub fn k_hats(&self) -> &[f64] {
        &self.k_hats
    }

    /// Root-mean-square `k̂` across subcarriers (a scalar summary: the
    /// average received signal power is `k_hat()²`).
    pub fn k_hat(&self) -> f64 {
        (self.k_hats.iter().map(|k| k * k).sum::<f64>() / self.k_hats.len() as f64).sqrt()
    }

    /// The weight matrix at subcarrier index `k_idx`.
    pub fn weights_at(&self, k_idx: usize) -> &CMat {
        &self.weights[k_idx]
    }

    /// Applies the precoder at one subcarrier: stream vector `x` →
    /// per-antenna transmit vector `W(k)·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n_streams`.
    pub fn apply(&self, k_idx: usize, x: &[Complex64]) -> Vec<Complex64> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — stream count is part of the API contract
        assert_eq!(x.len(), self.n_streams, "stream vector length");
        self.weights[k_idx]
            .mul_vec(x)
            // jmb-allow(no-panic-hot-path): weights[k] is n_tx x n_streams by construction and x.len() was just asserted — mul_vec cannot fail
            .expect("dimensions fixed at construction")
    }

    /// The effective channel `H(k)·W(k)` a set of clients would see.
    pub fn effective_channel(&self, k_idx: usize, h: &CMat) -> CMat {
        h.mul_mat(&self.weights[k_idx])
            // jmb-allow(no-panic-hot-path): caller contract — h spans the same antennas that built this precoder; mul_mat only errors on shape mismatch
            .expect("dimensions fixed at construction")
    }

    /// Mean transmit power of antenna `m`, averaged over subcarriers,
    /// assuming unit-power streams.
    pub fn antenna_power(&self, m: usize) -> f64 {
        self.weights
            .iter()
            .map(|w| {
                (0..self.n_streams)
                    .map(|j| w[(m, j)].norm_sqr())
                    .sum::<f64>()
            })
            .sum::<f64>()
            / self.weights.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_dsp::rng::{complex_gaussian, rng_from_seed};

    fn random_h(rows: usize, cols: usize, seed: u64) -> CMat {
        let mut rng = rng_from_seed(seed);
        let data = (0..rows * cols)
            .map(|_| complex_gaussian(&mut rng, 1.0))
            .collect();
        CMat::from_vec(rows, cols, data)
    }

    #[test]
    fn zf_diagonalises_square_channel() {
        let hs: Vec<CMat> = (0..8).map(|k| random_h(3, 3, 100 + k)).collect();
        let p = Precoder::zero_forcing(&hs).unwrap();
        for (k, h) in hs.iter().enumerate() {
            let eff = p.effective_channel(k, h);
            assert!(eff.is_diagonal(1e-9), "subcarrier {k} not diagonal");
            // Diagonal entries are real positive per-stream gains whose RMS
            // (up to the global power pass) is this subcarrier's k̂ summary.
            let mut sq = 0.0;
            for j in 0..3 {
                let g = eff[(j, j)];
                assert!(g.re > 0.0 && g.im.abs() < 1e-9, "({j},{j}) = {g}");
                sq += g.re * g.re;
                assert!((p.stream_gain(k, h, j) - g.re).abs() < 1e-12);
            }
            let rms = (sq / 3.0).sqrt();
            assert!(
                (rms - p.k_hat_at(k)).abs() < 1e-9,
                "rms {rms} vs {}",
                p.k_hat_at(k)
            );
        }
    }

    #[test]
    fn zf_with_more_antennas_than_streams() {
        // 2 clients, 4 antennas (the 802.11n scenario): right pseudo-inverse.
        let hs: Vec<CMat> = (0..4).map(|k| random_h(2, 4, 7 + k)).collect();
        let p = Precoder::zero_forcing(&hs).unwrap();
        assert_eq!(p.n_tx(), 4);
        assert_eq!(p.n_streams(), 2);
        for (k, h) in hs.iter().enumerate() {
            assert!(p.effective_channel(k, h).is_diagonal(1e-9), "k={k}");
        }
    }

    #[test]
    fn per_antenna_power_within_budget() {
        let hs: Vec<CMat> = (0..16).map(|k| random_h(4, 4, 50 + k)).collect();
        let p = Precoder::zero_forcing(&hs).unwrap();
        let budget = 1.0; // per-AP unit power (the paper's constraint)
                          // The constraint is per antenna over the whole symbol: every
                          // antenna's mean (across subcarriers) power is within budget and
                          // the busiest antenna sits exactly at it. Per-subcarrier overshoot
                          // is a PAPR-like effect absorbed by amplifier backoff.
        let mut worst: f64 = 0.0;
        for m in 0..4 {
            let pw = p.antenna_power(m);
            assert!(pw <= budget + 1e-9, "antenna {m} power {pw}");
            worst = worst.max(pw);
        }
        assert!((worst - budget).abs() < 1e-9, "busiest {worst}");
    }

    #[test]
    fn k_hat_shrinks_with_ill_conditioning() {
        // A nearly-singular channel should force a smaller k̂ (the paper's
        // "K depends on the channel matrix H and … how well conditioned it
        // is", §11.2).
        let good = vec![CMat::identity(2)];
        let mut bad_h = CMat::identity(2);
        bad_h[(1, 1)] = Complex64::new(0.05, 0.0); // condition number 20
        let bad = vec![bad_h];
        let p_good = Precoder::zero_forcing(&good).unwrap();
        let p_bad = Precoder::zero_forcing(&bad).unwrap();
        // Per-stream normalisation confines the damage to the weak stream:
        // the summary k̂ shrinks (rms of {1, 0.05} ≈ 0.71) without the
        // strong stream paying for the weak one.
        assert!(
            p_bad.k_hat() < p_good.k_hat() * 0.8,
            "bad {} good {}",
            p_bad.k_hat(),
            p_good.k_hat()
        );
        let good_h = CMat::identity(2);
        let mut bad_h = CMat::identity(2);
        bad_h[(1, 1)] = Complex64::new(0.05, 0.0);
        assert!((p_bad.stream_gain(0, &bad_h, 0) - p_good.stream_gain(0, &good_h, 0)).abs() < 1e-9);
        assert!(p_bad.stream_gain(0, &bad_h, 1) < 0.1);
    }

    #[test]
    fn apply_matches_weights() {
        let hs: Vec<CMat> = (0..2).map(|k| random_h(2, 3, 11 + k)).collect();
        let p = Precoder::zero_forcing(&hs).unwrap();
        let x = vec![Complex64::new(1.0, 0.5), Complex64::new(-0.3, 0.2)];
        let tx = p.apply(0, &x);
        assert_eq!(tx.len(), 3);
        let manual = p.weights_at(0).mul_vec(&x).unwrap();
        for (a, b) in tx.iter().zip(&manual) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn singular_channel_rejected() {
        let mut h = CMat::zeros(2, 2);
        h[(0, 0)] = Complex64::ONE;
        h[(0, 1)] = Complex64::ONE;
        h[(1, 0)] = Complex64::ONE;
        h[(1, 1)] = Complex64::ONE;
        assert!(matches!(
            Precoder::zero_forcing(&[h]),
            Err(JmbError::Precoding(_))
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        let h = random_h(3, 2, 1);
        assert!(matches!(
            Precoder::zero_forcing(&[h]),
            Err(JmbError::BadConfig(_))
        ));
        assert!(matches!(
            Precoder::zero_forcing(&[]),
            Err(JmbError::BadConfig(_))
        ));
    }

    #[test]
    fn shape_mismatch_between_subcarriers() {
        let hs = vec![random_h(2, 2, 1), random_h(2, 3, 2)];
        assert!(matches!(
            Precoder::zero_forcing(&hs),
            Err(JmbError::MeasurementShape { .. })
        ));
    }

    #[test]
    fn mrt_combines_coherently() {
        // With N unit-magnitude random-phase channels, MRT delivers
        // amplitude k̂·‖h‖ = k̂·√N — the coherent N² power gain over a
        // single AP at 1/N the per-antenna power (§8, §11.4).
        let n = 8;
        let mut rng = rng_from_seed(3);
        let rows: Vec<Vec<Complex64>> = (0..4)
            .map(|_| {
                (0..n)
                    .map(|_| jmb_dsp::rng::random_phasor(&mut rng))
                    .collect()
            })
            .collect();
        let p = Precoder::mrt(&rows).unwrap();
        for (k, row) in rows.iter().enumerate() {
            let w = p.weights_at(k);
            let mut received = Complex64::ZERO;
            for (m, h) in row.iter().enumerate() {
                received += *h * w[(m, 0)];
            }
            // h·w = k̂·‖h‖ = k̂·√N, real positive.
            assert!(received.im.abs() < 1e-12);
            assert!(
                (received.re - p.k_hat() * (n as f64).sqrt()).abs() < 1e-9,
                "k={k}: {received}"
            );
        }
        // For equal-magnitude channels every antenna's weight magnitude is
        // 1/√N, so the unit per-antenna budget gives k̂ = √N and received
        // amplitude k̂·√N = N: received power N² — the paper's coherent
        // diversity gain over one AP at the same per-antenna power (§11.4).
        assert!(
            (p.k_hat() - (n as f64).sqrt()).abs() < 1e-9,
            "k_hat {}",
            p.k_hat()
        );
    }

    #[test]
    fn mrt_respects_per_antenna_budget() {
        let mut rng = rng_from_seed(4);
        let rows: Vec<Vec<Complex64>> = (0..8)
            .map(|_| (0..5).map(|_| complex_gaussian(&mut rng, 1.0)).collect())
            .collect();
        let p = Precoder::mrt(&rows).unwrap();
        for m in 0..5 {
            assert!(p.antenna_power(m) <= 1.0 + 1e-12, "antenna {m}");
        }
    }

    #[test]
    fn mrt_empty_rejected() {
        assert!(Precoder::mrt(&[]).is_err());
        assert!(Precoder::mrt(&[vec![]]).is_err());
    }
}
