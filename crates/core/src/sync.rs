//! Pluggable synchronization strategies.
//!
//! The paper's lead/slave resync (§5.2) is one answer to the distributed
//! phase-sync problem; the literature has others. This module extracts the
//! strategy decisions — *when* a slave refreshes its lead-relative phase,
//! *what* it measures, and *what the control plane costs* — behind one
//! trait, so the network models ([`crate::fastnet::FastNet`],
//! [`crate::net::JmbNetwork`]) stay fixed while the sync backend varies:
//!
//! * [`JmbLeadSlave`] — the paper's mechanism, verbatim: slaves re-measure
//!   the lead's channel from the in-band sync header of every joint
//!   transmission. This is the default, and the refactor's safety contract:
//!   it reproduces the pre-extraction network **bit-exactly** (pinned by
//!   the `sync_equivalence` fixture suite in `jmb-bench`).
//! * [`AirSyncPilot`] — continuous out-of-band pilot tracking: the lead
//!   broadcasts a short pilot every couple of milliseconds on a side
//!   channel, and slaves run the same sigma-weighted predict/correct phase
//!   tracker ([`PhaseSync`]'s unwrap-refined CFO filter — a steady-state
//!   Kalman form) against those pilots. Data frames carry no sync header,
//!   so in-band header loss cannot desynchronize the array; the price is a
//!   standing pilot airtime tax, surfaced through
//!   [`SyncStrategy::take_control_airtime_s`].
//! * [`ReciprocityImplicit`] — calibrated implicit CSI in the spirit of
//!   Rogalin et al.: slaves refresh their lead-relative phase from regular
//!   uplink traffic (reciprocity calibration), with zero dedicated
//!   per-client measurement frames. Updates are infrequent and noisier, so
//!   the phase-error envelope is wider than JMB's; the payoff is a much
//!   cheaper measurement phase
//!   ([`SyncStrategy::measurement_airtime_factor`]).
//!
//! The trait deliberately does **not** own fault draws, sync-health
//! bookkeeping, or trace emission — those stay in the network, which calls
//! [`SyncStrategy::on_header_missed`] only for strategies that actually
//! listen for in-band headers ([`SyncStrategy::uses_inband_header`]).

use crate::error::JmbError;
use crate::phasesync::{PhaseCorrection, PhaseSync};
use jmb_dsp::rng::{complex_gaussian, normal, JmbRng};
use jmb_phy::chanest::ChannelEstimate;
use jmb_sim::{NodeId, SubcarrierMedium};

pub use jmb_sim::SyncStrategyId;

/// 1σ accuracy (Hz) of a single raw per-header CFO estimate at typical
/// AP↔AP SNRs — the same constant the pre-extraction network used inline.
const RAW_HEADER_CFO_SIGMA_HZ: f64 = 200.0;

/// The paper's phase-error budget (§5.2): a slave whose extrapolated
/// correction would exceed this misalignment sits the batch out rather
/// than transmit destructively. Networks default to this value; the
/// `sync_shootout` bench pins the lead/slave CDF against it.
pub const SYNC_ERROR_BUDGET_RAD: f64 = 0.35;

/// AirSync pilot cadence: one out-of-band pilot broadcast by the lead
/// every 2 ms keeps a 2 Hz-accurate CFO tracker under 0.05 rad of
/// extrapolation error between pilots.
pub const AIRSYNC_PILOT_INTERVAL_S: f64 = 2e-3;
/// Airtime of one pilot broadcast (a 320-sample header plus guard at
/// 20 MS/s) — charged once per pilot, shared by every slave.
const AIRSYNC_PILOT_AIRTIME_S: f64 = 40e-6;

/// Reciprocity recalibration cadence: implicit estimates ride on uplink
/// traffic, which is bursty — model it as a 25 ms refresh.
pub const RECIPROCITY_RECAL_INTERVAL_S: f64 = 25e-3;
/// Implicit estimates are noisier than a dedicated header (no controlled
/// preamble; the calibration rides whatever uplink frame was heard).
const RECIPROCITY_NOISE_SCALE: f64 = 4.0;
/// Raw CFO sigma of one implicit estimate (Hz).
const RECIPROCITY_CFO_SIGMA_HZ: f64 = 400.0;
/// With implicit CSI the measurement phase shrinks to a short calibration
/// exchange: no per-client downlink measurement frames (the Rogalin-style
/// win), just uplink pilots the APs overhear anyway.
const RECIPROCITY_MEAS_AIRTIME_FACTOR: f64 = 0.2;

/// Out-of-band updates processed per catch-up call. Older due updates are
/// still *charged* (the pilots were on the air) but their estimates are
/// skipped — only the most recent few carry information the tracker has
/// not already absorbed.
const MAX_CATCHUP_UPDATES: u64 = 3;

/// Everything a strategy may touch when it measures: the medium (channel
/// rows and oscillator trajectories), the network's main RNG stream (so
/// the default strategy's draws land in exactly the pre-extraction order),
/// and the AP roster.
pub struct SyncCtx<'a> {
    /// The per-subcarrier medium.
    pub medium: &'a mut SubcarrierMedium,
    /// The network's main RNG stream (estimation noise, CFO noise).
    pub rng: &'a mut JmbRng,
    /// AP node ids; index 0 is the lead.
    pub aps: &'a [NodeId],
    /// Occupied subcarrier indices (ascending).
    pub occupied: &'a [i32],
    /// Estimation noise variance of one in-band sync-header measurement.
    pub header_noise_var: f64,
}

impl SyncCtx<'_> {
    /// Noisy per-subcarrier estimate of the lead→`slave` channel at `t`
    /// with explicit noise variance: one channel-row evaluation plus one
    /// complex-Gaussian draw per occupied subcarrier, in subcarrier order
    /// — the exact draw sequence of the pre-extraction network.
    pub fn estimate_with_var(&mut self, slave: usize, t: f64, var: f64) -> ChannelEstimate {
        let mut gains = Vec::with_capacity(self.occupied.len());
        self.medium
            .channel_row_into(self.aps[0], self.aps[slave], self.occupied, t, &mut gains);
        for g in gains.iter_mut() {
            *g += complex_gaussian(self.rng, var);
        }
        ChannelEstimate {
            subcarriers: self.occupied.to_vec(),
            gains,
        }
    }

    /// The in-band sync-header estimate of the lead→`slave` channel.
    pub fn header_estimate(&mut self, slave: usize, t: f64) -> ChannelEstimate {
        self.estimate_with_var(slave, t, self.header_noise_var)
    }

    /// Ground-truth lead-relative CFO of `slave` at `t` (Hz). Draws no
    /// noise itself — callers add their measurement error on top.
    pub fn true_cfo_hz(&mut self, slave: usize, t: f64) -> f64 {
        let f_lead = self.medium.trajectory_mut(self.aps[0]).cfo_hz_at(t);
        let f_slave = self.medium.trajectory_mut(self.aps[slave]).cfo_hz_at(t);
        f_lead - f_slave
    }

    /// Number of APs (lead included).
    pub fn n_aps(&self) -> usize {
        self.aps.len()
    }
}

/// A pluggable phase-synchronization backend.
///
/// The network owns the protocol timeline, fault draws, health
/// bookkeeping and trace events; the strategy owns per-slave phase state
/// and answers three questions: what correction does slave `s` apply at
/// header time `t` (heard or missed), how wrong is an extrapolated
/// correction predicted to be, and what did the sync control plane cost
/// the air since last asked.
pub trait SyncStrategy: Send {
    /// Which strategy this is.
    fn kind(&self) -> SyncStrategyId;

    /// Whether the strategy consumes the in-band sync header of each joint
    /// transmission. When `false`, the network skips per-header fault
    /// draws, miss events and health bookkeeping entirely — losing a frame
    /// header cannot desynchronize a strategy that never listens for it.
    fn uses_inband_header(&self) -> bool {
        true
    }

    /// Scale factor on the full channel-measurement exchange's airtime
    /// (1.0 = the paper's explicit per-client measurement frames).
    fn measurement_airtime_factor(&self) -> f64 {
        1.0
    }

    /// Called at the end of a successful full channel measurement at `t0`:
    /// the strategy stores per-slave reference channels and seeds its CFO
    /// trackers. `seed_sigma_hz` is the 1σ accuracy the measurement
    /// packet's span supports.
    fn on_measurement(&mut self, ctx: &mut SyncCtx<'_>, t0: f64, seed_sigma_hz: f64);

    /// A joint transmission's header instant `t_meas` arrived (and, for
    /// in-band strategies, the slave heard it). Returns the phase
    /// correction the slave applies for this packet plus its anchor time
    /// (within-packet CFO tracking extrapolates from the anchor).
    fn on_header(
        &mut self,
        ctx: &mut SyncCtx<'_>,
        slave: usize,
        t_meas: f64,
    ) -> Result<(PhaseCorrection, f64), JmbError>;

    /// The slave missed the in-band header at `t_meas` (only called when
    /// [`SyncStrategy::uses_inband_header`]). Returns a fallback
    /// correction and its anchor time, or `None` to sit the batch out.
    /// `degraded` is the network's health verdict for this slave;
    /// `budget_rad` the network's extrapolation-error budget.
    fn on_header_missed(
        &mut self,
        slave: usize,
        t_meas: f64,
        budget_rad: f64,
        degraded: bool,
    ) -> Option<(PhaseCorrection, f64)>;

    /// Predicted 1σ phase error (radians) of the correction slave `slave`
    /// would apply at time `t` without a fresh in-band header. Infinite
    /// before any reference exists.
    fn phase_error_rad(&self, slave: usize, t: f64) -> f64;

    /// The stored reference channel of `slave` (for decoupled
    /// re-measurement stitching, §7).
    fn reference(&self, slave: usize) -> Option<&ChannelEstimate>;

    /// Drains the out-of-band control airtime (seconds) accrued since the
    /// last call — pilot broadcasts, calibration exchanges. The traffic
    /// backend folds it into per-batch control overhead. Zero for
    /// strategies whose control plane rides in-band.
    fn take_control_airtime_s(&mut self) -> f64 {
        0.0
    }
}

/// Builds the strategy backend for `kind` in a network with `n_aps` APs.
pub fn strategy_for(kind: SyncStrategyId, n_aps: usize) -> Box<dyn SyncStrategy> {
    match kind {
        SyncStrategyId::JmbLeadSlave => Box::new(JmbLeadSlave::new(n_aps)),
        SyncStrategyId::AirSyncPilot => Box::new(AirSyncPilot::new(n_aps)),
        SyncStrategyId::ReciprocityImplicit => Box::new(ReciprocityImplicit::new(n_aps)),
    }
}

/// The paper's lead/slave resync (§5.2), extracted verbatim: per-slave
/// [`PhaseSync`] state, seeded at measurement time, updated from every
/// in-band sync header, with the CFO-extrapolated fallback on a miss.
pub struct JmbLeadSlave {
    sync: Vec<PhaseSync>,
}

impl JmbLeadSlave {
    /// Fresh state for a network with `n_aps` APs (index 0 = lead).
    pub fn new(n_aps: usize) -> Self {
        JmbLeadSlave {
            sync: (1..n_aps).map(|_| PhaseSync::new()).collect(),
        }
    }
}

impl SyncStrategy for JmbLeadSlave {
    fn kind(&self) -> SyncStrategyId {
        SyncStrategyId::JmbLeadSlave
    }

    fn on_measurement(&mut self, ctx: &mut SyncCtx<'_>, t0: f64, seed_sigma_hz: f64) {
        for s in 1..ctx.n_aps() {
            let est = ctx.header_estimate(s, t0);
            let seed = ctx.true_cfo_hz(s, t0) + normal(ctx.rng, seed_sigma_hz);
            self.sync[s - 1].set_reference(est.clone());
            self.sync[s - 1].seed_cfo(&est, seed, seed_sigma_hz, t0);
        }
    }

    fn on_header(
        &mut self,
        ctx: &mut SyncCtx<'_>,
        slave: usize,
        t_meas: f64,
    ) -> Result<(PhaseCorrection, f64), JmbError> {
        let est = ctx.header_estimate(slave, t_meas);
        let raw_cfo = ctx.true_cfo_hz(slave, t_meas) + normal(ctx.rng, RAW_HEADER_CFO_SIGMA_HZ);
        self.sync[slave - 1].observe_header(&est, raw_cfo, t_meas);
        Ok((self.sync[slave - 1].correction(&est)?, t_meas))
    }

    fn on_header_missed(
        &mut self,
        slave: usize,
        t_meas: f64,
        budget_rad: f64,
        degraded: bool,
    ) -> Option<(PhaseCorrection, f64)> {
        let within_budget = self.sync[slave - 1].extrapolation_error_rad(t_meas) <= budget_rad;
        if !degraded && within_budget {
            self.sync[slave - 1].extrapolated_correction().ok()
        } else {
            None
        }
    }

    fn phase_error_rad(&self, slave: usize, t: f64) -> f64 {
        self.sync[slave - 1].extrapolation_error_rad(t)
    }

    fn reference(&self, slave: usize) -> Option<&ChannelEstimate> {
        self.sync[slave - 1].reference()
    }
}

/// Shared machinery of the out-of-band strategies: per-slave [`PhaseSync`]
/// trackers updated on a global periodic schedule (pilots or calibration
/// exchanges are broadcast — one airtime charge covers every slave), with
/// corrections always extrapolated from the latest update.
struct OobTracker {
    sync: Vec<PhaseSync>,
    interval_s: f64,
    noise_scale: f64,
    cfo_sigma_hz: f64,
    update_airtime_s: f64,
    /// Global time of the next scheduled update; `None` until seeded.
    next_update_t: Option<f64>,
    pending_airtime_s: f64,
}

impl OobTracker {
    fn new(
        n_aps: usize,
        interval_s: f64,
        noise_scale: f64,
        cfo_sigma_hz: f64,
        update_airtime_s: f64,
    ) -> Self {
        OobTracker {
            sync: (1..n_aps).map(|_| PhaseSync::new()).collect(),
            interval_s,
            noise_scale,
            cfo_sigma_hz,
            update_airtime_s,
            next_update_t: None,
            pending_airtime_s: 0.0,
        }
    }

    /// Seeds references and CFO trackers (same shape as the measurement
    /// seeding of the in-band strategy) and starts the update schedule.
    fn seed(&mut self, ctx: &mut SyncCtx<'_>, t0: f64, seed_sigma_hz: f64) {
        for s in 1..ctx.n_aps() {
            let est = ctx.header_estimate(s, t0);
            let seed = ctx.true_cfo_hz(s, t0) + normal(ctx.rng, seed_sigma_hz);
            self.sync[s - 1].set_reference(est.clone());
            self.sync[s - 1].seed_cfo(&est, seed, seed_sigma_hz, t0);
        }
        self.next_update_t = Some(t0 + self.interval_s);
    }

    /// Processes every scheduled update due by `t`. All due updates are
    /// charged to the air (the broadcasts happen regardless), but only the
    /// most recent [`MAX_CATCHUP_UPDATES`] contribute estimates — older
    /// ones carry nothing the tracker's latest state does not supersede.
    /// Self-seeds on first contact if the network never ran a measurement.
    fn catch_up(&mut self, ctx: &mut SyncCtx<'_>, t: f64) {
        let first_tick = match self.next_update_t {
            Some(next) => next,
            None => {
                self.seed(ctx, t, self.cfo_sigma_hz);
                return;
            }
        };
        if t < first_tick {
            return;
        }
        let n_due = ((t - first_tick) / self.interval_s).floor() as u64 + 1;
        self.pending_airtime_s += n_due as f64 * self.update_airtime_s;
        let var = self.noise_scale * ctx.header_noise_var;
        for i in n_due.saturating_sub(MAX_CATCHUP_UPDATES)..n_due {
            let t_p = first_tick + i as f64 * self.interval_s;
            for s in 1..ctx.n_aps() {
                let est = ctx.estimate_with_var(s, t_p, var);
                let cfo = ctx.true_cfo_hz(s, t_p) + normal(ctx.rng, self.cfo_sigma_hz);
                self.sync[s - 1].observe_header(&est, cfo, t_p);
            }
        }
        self.next_update_t = Some(first_tick + n_due as f64 * self.interval_s);
    }

    /// The correction for `slave` at `t`: catch up the update schedule,
    /// then extrapolate from the latest absorbed update.
    fn correction_at(
        &mut self,
        ctx: &mut SyncCtx<'_>,
        slave: usize,
        t: f64,
    ) -> Result<(PhaseCorrection, f64), JmbError> {
        self.catch_up(ctx, t);
        self.sync[slave - 1].extrapolated_correction()
    }
}

/// Continuous out-of-band pilot tracking (AirSync-style): see the module
/// docs. Header-quality estimates at a 2 ms cadence keep the predictor's
/// extrapolation error well inside the paper's 0.35 rad budget, at the
/// cost of a standing pilot airtime tax.
pub struct AirSyncPilot {
    tracker: OobTracker,
}

impl AirSyncPilot {
    /// Fresh state for a network with `n_aps` APs.
    pub fn new(n_aps: usize) -> Self {
        AirSyncPilot {
            tracker: OobTracker::new(
                n_aps,
                AIRSYNC_PILOT_INTERVAL_S,
                1.0,
                RAW_HEADER_CFO_SIGMA_HZ,
                AIRSYNC_PILOT_AIRTIME_S,
            ),
        }
    }
}

impl SyncStrategy for AirSyncPilot {
    fn kind(&self) -> SyncStrategyId {
        SyncStrategyId::AirSyncPilot
    }

    fn uses_inband_header(&self) -> bool {
        false
    }

    fn on_measurement(&mut self, ctx: &mut SyncCtx<'_>, t0: f64, seed_sigma_hz: f64) {
        self.tracker.seed(ctx, t0, seed_sigma_hz);
    }

    fn on_header(
        &mut self,
        ctx: &mut SyncCtx<'_>,
        slave: usize,
        t_meas: f64,
    ) -> Result<(PhaseCorrection, f64), JmbError> {
        self.tracker.correction_at(ctx, slave, t_meas)
    }

    fn on_header_missed(
        &mut self,
        _slave: usize,
        _t_meas: f64,
        _budget_rad: f64,
        _degraded: bool,
    ) -> Option<(PhaseCorrection, f64)> {
        None // unreachable: no in-band headers to miss
    }

    fn phase_error_rad(&self, slave: usize, t: f64) -> f64 {
        self.tracker.sync[slave - 1].extrapolation_error_rad(t)
    }

    fn reference(&self, slave: usize) -> Option<&ChannelEstimate> {
        self.tracker.sync[slave - 1].reference()
    }

    fn take_control_airtime_s(&mut self) -> f64 {
        std::mem::take(&mut self.tracker.pending_airtime_s)
    }
}

/// Calibrated implicit CSI from uplink reciprocity (Rogalin et al.): see
/// the module docs. Updates are free of dedicated airtime but sparse and
/// noisy — the phase-error envelope is the widest of the three backends.
pub struct ReciprocityImplicit {
    tracker: OobTracker,
}

impl ReciprocityImplicit {
    /// Fresh state for a network with `n_aps` APs.
    pub fn new(n_aps: usize) -> Self {
        ReciprocityImplicit {
            tracker: OobTracker::new(
                n_aps,
                RECIPROCITY_RECAL_INTERVAL_S,
                RECIPROCITY_NOISE_SCALE,
                RECIPROCITY_CFO_SIGMA_HZ,
                0.0, // implicit: the uplink frames were on the air anyway
            ),
        }
    }
}

impl SyncStrategy for ReciprocityImplicit {
    fn kind(&self) -> SyncStrategyId {
        SyncStrategyId::ReciprocityImplicit
    }

    fn uses_inband_header(&self) -> bool {
        false
    }

    fn measurement_airtime_factor(&self) -> f64 {
        RECIPROCITY_MEAS_AIRTIME_FACTOR
    }

    fn on_measurement(&mut self, ctx: &mut SyncCtx<'_>, t0: f64, seed_sigma_hz: f64) {
        self.tracker.seed(ctx, t0, seed_sigma_hz);
    }

    fn on_header(
        &mut self,
        ctx: &mut SyncCtx<'_>,
        slave: usize,
        t_meas: f64,
    ) -> Result<(PhaseCorrection, f64), JmbError> {
        self.tracker.correction_at(ctx, slave, t_meas)
    }

    fn on_header_missed(
        &mut self,
        _slave: usize,
        _t_meas: f64,
        _budget_rad: f64,
        _degraded: bool,
    ) -> Option<(PhaseCorrection, f64)> {
        None // unreachable: no in-band headers to miss
    }

    fn phase_error_rad(&self, slave: usize, t: f64) -> f64 {
        self.tracker.sync[slave - 1].extrapolation_error_rad(t)
    }

    fn reference(&self, slave: usize) -> Option<&ChannelEstimate> {
        self.tracker.sync[slave - 1].reference()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmb_channel::oscillator::{OscillatorSpec, PhaseTrajectory};
    use jmb_phy::params::OfdmParams;
    use rand::Rng;

    /// A tiny two-AP medium for driving strategies directly.
    struct Rig {
        medium: SubcarrierMedium,
        rng: JmbRng,
        aps: Vec<NodeId>,
        occupied: Vec<i32>,
    }

    fn rig(n_aps: usize, seed: u64) -> Rig {
        let params = OfdmParams::default();
        let mut rng = jmb_dsp::rng::rng_from_seed(seed);
        let mut medium = SubcarrierMedium::new(params.clone(), rng.gen());
        let carrier = params.carrier_freq;
        let aps: Vec<NodeId> = (0..n_aps)
            .map(|_| {
                let traj = PhaseTrajectory::new(OscillatorSpec::usrp2(), carrier, &mut rng);
                medium.add_node(traj, 1.0)
            })
            .collect();
        for i in 0..n_aps {
            for j in 0..n_aps {
                if i == j {
                    continue;
                }
                let mut link = jmb_channel::Link::new(
                    jmb_dsp::Complex64::from_polar(1.0, jmb_dsp::rng::random_phase(&mut rng)),
                    rng.gen::<f64>() * 30e-9,
                    jmb_channel::multipath::Multipath::new(
                        jmb_channel::multipath::MultipathSpec::indoor_los(),
                        &mut rng,
                    ),
                );
                link.calibrate_snr(30.0, 1.0);
                medium.set_link(aps[i], aps[j], link);
            }
        }
        let occupied = params.occupied_subcarriers();
        Rig {
            medium,
            rng,
            aps,
            occupied,
        }
    }

    impl Rig {
        fn ctx(&mut self) -> SyncCtx<'_> {
            SyncCtx {
                medium: &mut self.medium,
                rng: &mut self.rng,
                aps: &self.aps,
                occupied: &self.occupied,
                header_noise_var: 0.5,
            }
        }
    }

    #[test]
    fn factory_builds_every_kind() {
        for kind in SyncStrategyId::ALL {
            let s = strategy_for(kind, 3);
            assert_eq!(s.kind(), kind);
            assert_eq!(
                s.uses_inband_header(),
                kind == SyncStrategyId::JmbLeadSlave,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn jmb_headers_refresh_and_error_grows_between_them() {
        let mut r = rig(2, 7);
        let mut s = JmbLeadSlave::new(2);
        assert_eq!(s.phase_error_rad(1, 0.1), f64::INFINITY);
        s.on_measurement(&mut r.ctx(), 1e-4, 10.0);
        assert!(s.reference(1).is_some());
        let (c, anchor) = s.on_header(&mut r.ctx(), 1, 2e-3).unwrap();
        assert_eq!(anchor, 2e-3);
        assert!(c.common_phase.is_finite() && c.cfo_hz.is_finite());
        // Error right after the header is ~0 and grows with staleness.
        let e0 = s.phase_error_rad(1, 2e-3);
        let e1 = s.phase_error_rad(1, 7e-3);
        assert!(e0 < e1, "{e0} vs {e1}");
    }

    #[test]
    fn jmb_missed_header_fallback_respects_budget_and_health() {
        let mut r = rig(2, 8);
        let mut s = JmbLeadSlave::new(2);
        // No header ever heard: no fallback.
        assert!(s.on_header_missed(1, 1e-3, 0.35, false).is_none());
        s.on_measurement(&mut r.ctx(), 1e-4, 10.0);
        let (_, anchor) = s.on_header(&mut r.ctx(), 1, 1e-3).unwrap();
        // Fresh state: fallback anchored at the last heard header.
        let (_, t_old) = s.on_header_missed(1, 2e-3, 0.35, false).unwrap();
        assert_eq!(t_old, anchor);
        // Degraded slaves never get a fallback, however fresh.
        assert!(s.on_header_missed(1, 2e-3, 0.35, true).is_none());
        // A zero budget rejects any nonzero predicted error.
        assert!(s.on_header_missed(1, 2.5e-3, 0.0, false).is_none());
    }

    #[test]
    fn jmb_fallback_is_inclusive_exactly_at_the_error_budget() {
        // The fallback gate compares `extrapolation_error_rad(t) <= budget`:
        // a predicted error *exactly* at 0.35 rad still transmits; the first
        // representable instant past it sits the batch out. Seeding fixes
        // the CFO sigma, so the error is the closed form `2π·σ·(t − t0)` and
        // the crossing time can be solved exactly.
        let mut r = rig(2, 13);
        let mut s = JmbLeadSlave::new(2);
        let (t0, sigma_hz) = (1e-4, 10.0);
        s.on_measurement(&mut r.ctx(), t0, sigma_hz);
        let t_star = t0 + SYNC_ERROR_BUDGET_RAD / (2.0 * std::f64::consts::PI * sigma_hz);
        let err = s.phase_error_rad(1, t_star);
        assert!(
            (err - SYNC_ERROR_BUDGET_RAD).abs() < 1e-12,
            "crossing-time error {err} rad is not at the budget"
        );
        // Exactly at the budget: fallback granted, anchored at the seed.
        let (_, anchor) = s.on_header_missed(1, t_star, err, false).unwrap();
        assert_eq!(anchor, t0);
        // The next representable error past the budget: no fallback.
        assert!(s
            .on_header_missed(1, t_star, err.next_down(), false)
            .is_none());
        // A nanosecond later the closed-form error exceeds the budget too.
        assert!(s.on_header_missed(1, t_star + 1e-9, err, false).is_none());
    }

    #[test]
    fn oob_strategies_supply_corrections_without_headers() {
        for kind in [
            SyncStrategyId::AirSyncPilot,
            SyncStrategyId::ReciprocityImplicit,
        ] {
            let mut r = rig(2, 9);
            let mut s = strategy_for(kind, 2);
            s.on_measurement(&mut r.ctx(), 1e-4, 10.0);
            // Corrections keep flowing at arbitrary later times.
            for &t in &[1e-3, 5e-3, 30e-3, 31e-3] {
                let (c, anchor) = s.on_header(&mut r.ctx(), 1, t).unwrap();
                assert!(c.common_phase.is_finite(), "{kind:?} at {t}");
                assert!(anchor <= t, "{kind:?}: anchor {anchor} after {t}");
            }
            // The predicted error stays finite once seeded.
            assert!(s.phase_error_rad(1, 40e-3).is_finite());
        }
    }

    #[test]
    fn oob_strategies_self_seed_without_a_measurement() {
        let mut r = rig(2, 10);
        let mut s = AirSyncPilot::new(2);
        let (c, _) = s.on_header(&mut r.ctx(), 1, 5e-3).unwrap();
        assert!(c.common_phase.is_finite());
    }

    #[test]
    fn airsync_charges_pilot_airtime_reciprocity_does_not() {
        let mut r = rig(2, 11);
        let mut air = AirSyncPilot::new(2);
        air.on_measurement(&mut r.ctx(), 0.0, 10.0);
        air.on_header(&mut r.ctx(), 1, 10e-3).unwrap();
        // 10 ms at one pilot per 2 ms: 5 pilots on the air, all charged
        // even though only the most recent few were absorbed.
        let charged = air.take_control_airtime_s();
        assert!(
            (charged - 5.0 * AIRSYNC_PILOT_AIRTIME_S).abs() < 1e-12,
            "charged {charged}"
        );
        // Drained: a second take returns zero.
        assert_eq!(air.take_control_airtime_s(), 0.0);

        let mut rec = ReciprocityImplicit::new(2);
        rec.on_measurement(&mut r.ctx(), 0.0, 10.0);
        rec.on_header(&mut r.ctx(), 1, 60e-3).unwrap();
        assert_eq!(rec.take_control_airtime_s(), 0.0);
        // But its measurement phase is far cheaper.
        assert!(rec.measurement_airtime_factor() < 0.5);
        assert_eq!(JmbLeadSlave::new(2).measurement_airtime_factor(), 1.0);
    }

    #[test]
    fn airsync_error_envelope_is_bounded_by_pilot_cadence() {
        let mut r = rig(2, 12);
        let mut s = AirSyncPilot::new(2);
        s.on_measurement(&mut r.ctx(), 0.0, 10.0);
        // Let the tracker converge over many pilots.
        s.on_header(&mut r.ctx(), 1, 50e-3).unwrap();
        // Worst case staleness = one pilot interval.
        let worst = s.phase_error_rad(1, 50e-3 + AIRSYNC_PILOT_INTERVAL_S);
        assert!(worst < 0.35, "worst-case pilot-gap error {worst} rad");
    }

    mod contract {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Trait contract, every backend: once seeded, corrections are
            /// finite, anchors never run ahead of the request time and are
            /// monotone across a monotone header sequence, the predicted
            /// phase error is finite and non-negative, and control airtime
            /// is non-negative and drains exactly once.
            #[test]
            fn corrections_finite_anchors_monotone(
                kind_i in 0usize..3,
                seed in 0u64..1000,
                n_aps in 2usize..4,
                steps in 1usize..8,
                dt_ms in 1.0..5.0f64,
            ) {
                let kind = SyncStrategyId::ALL[kind_i];
                let mut r = rig(n_aps, seed);
                let mut s = strategy_for(kind, n_aps);
                s.on_measurement(&mut r.ctx(), 1e-4, 10.0);
                for slave in 1..n_aps {
                    prop_assert!(s.reference(slave).is_some(), "{kind:?} slave {slave}");
                }
                // Time is globally monotone (the out-of-band schedules are
                // shared across slaves), so the clock is the outer loop —
                // exactly how `FastNet` drives the strategy.
                let mut last_anchor = vec![f64::NEG_INFINITY; n_aps - 1];
                for k in 1..=steps {
                    let t = 1e-4 + k as f64 * dt_ms * 1e-3;
                    for (i, last) in last_anchor.iter_mut().enumerate() {
                        let slave = i + 1;
                        let (c, anchor) = s.on_header(&mut r.ctx(), slave, t).unwrap();
                        prop_assert!(
                            c.common_phase.is_finite()
                                && c.slope.is_finite()
                                && c.cfo_hz.is_finite(),
                            "{kind:?} slave {slave} at {t}"
                        );
                        prop_assert!(c.per_subcarrier.iter().all(|p| p.norm_sqr().is_finite()));
                        prop_assert!(anchor <= t, "{kind:?}: anchor {anchor} ahead of {t}");
                        prop_assert!(
                            anchor >= *last,
                            "{kind:?}: anchor went backwards {last} -> {anchor}"
                        );
                        *last = anchor;
                        let e = s.phase_error_rad(slave, t + 1e-3);
                        prop_assert!(e.is_finite() && e >= 0.0, "{kind:?}: error {e}");
                    }
                }
                let charged = s.take_control_airtime_s();
                prop_assert!(charged >= 0.0, "{kind:?}: charged {charged}");
                prop_assert_eq!(s.take_control_airtime_s(), 0.0);
            }
        }
    }
}
