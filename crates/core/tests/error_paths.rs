//! Every recoverable `JmbError` variant has a reachable trigger path and a
//! useful `Display` message. The control plane degrades with typed errors
//! — it never panics on a lost control frame or a misconfigured network.

use jmb_core::fastnet::{FastConfig, FastNet};
use jmb_core::net::{JmbNetwork, NetConfig};
use jmb_core::{BackoffPolicy, CsiTracker, JmbError, PhaseSync};
use jmb_dsp::Complex64;
use jmb_phy::chanest::ChannelEstimate;
use jmb_sim::FaultConfig;

fn fast_cfg(n: usize, seed: u64) -> FastConfig {
    FastConfig::default_with(n, n, vec![20.0; n], seed)
}

fn flat_estimate(subcarriers: &[i32]) -> ChannelEstimate {
    ChannelEstimate {
        subcarriers: subcarriers.to_vec(),
        gains: vec![Complex64::new(1.0, 0.0); subcarriers.len()],
    }
}

#[test]
fn bad_config_from_empty_network() {
    let err = FastNet::new(FastConfig::default_with(0, 0, vec![], 1))
        .err()
        .expect("zero APs must be rejected");
    assert!(matches!(err, JmbError::BadConfig(_)));
    assert!(err.to_string().contains("bad configuration"), "{err}");

    let err = FastNet::new(FastConfig::default_with(2, 2, vec![20.0], 1))
        .err()
        .expect("SNR length mismatch must be rejected");
    assert!(matches!(err, JmbError::BadConfig(_)));
}

#[test]
fn bad_config_from_csi_tracker() {
    let err = CsiTracker::new(0, 1, 50e-3, BackoffPolicy::default()).unwrap_err();
    assert!(matches!(err, JmbError::BadConfig(_)));
    let err = CsiTracker::new(1, 1, 0.0, BackoffPolicy::default()).unwrap_err();
    assert!(matches!(err, JmbError::BadConfig(_)));
}

#[test]
fn no_reference_before_measurement() {
    // A network that never measured cannot joint-transmit.
    let mut net = FastNet::new(fast_cfg(2, 3)).unwrap();
    let err = net
        .joint_transmit_subset(&[0, 1], &[0, 1], 1500, 1, true)
        .unwrap_err();
    assert_eq!(err, JmbError::NoReference);
    assert!(err.to_string().contains("no reference"), "{err}");

    // Phase sync without a reference channel likewise.
    let sync = PhaseSync::new();
    assert_eq!(
        sync.correction(&flat_estimate(&[-1, 1])).unwrap_err(),
        JmbError::NoReference
    );
    assert_eq!(
        sync.extrapolated_correction().unwrap_err(),
        JmbError::NoReference
    );
}

#[test]
fn measurement_shape_on_mismatched_estimates() {
    let mut sync = PhaseSync::new();
    sync.set_reference(flat_estimate(&[-2, -1, 1, 2]));
    let err = sync.correction(&flat_estimate(&[-1, 1])).unwrap_err();
    assert_eq!(
        err,
        JmbError::MeasurementShape {
            expected: 4,
            got: 2
        }
    );
    let msg = err.to_string();
    assert!(msg.contains("expected 4") && msg.contains("got 2"), "{msg}");
}

#[test]
fn sync_header_missed_when_too_few_slaves_stay_coherent() {
    let mut net = FastNet::new(fast_cfg(3, 7)).unwrap();
    net.run_measurement().unwrap();
    net.set_control_faults(
        FaultConfig::builder()
            .per_slave_sync_loss(1, 1.0)
            .build()
            .unwrap(),
    );
    // Drive the slave through its fallback window into degradation.
    for _ in 0..3 {
        net.advance(1e-3);
        net.joint_transmit_subset(&[0, 1], &[0, 1, 2], 1500, 1, true)
            .unwrap();
    }
    assert!(net.sync_health()[0].is_degraded());
    // A full-width batch no longer fits the coherent APs: typed error.
    let err = net
        .joint_transmit_subset(&[0, 1, 2], &[0, 1, 2], 1500, 1, true)
        .unwrap_err();
    assert_eq!(err, JmbError::SyncHeaderMissed { slave: 1 });
    assert!(err.to_string().contains("slave 1"), "{err}");
}

#[test]
fn measurement_lost_surfaces_on_both_fidelities() {
    // Per-subcarrier network.
    let mut net = FastNet::new(fast_cfg(2, 9)).unwrap();
    net.set_control_faults(
        FaultConfig::builder()
            .meas_loss_chance(1.0)
            .build()
            .unwrap(),
    );
    let err = net.run_measurement().unwrap_err();
    assert_eq!(err, JmbError::MeasurementLost);
    assert!(err.to_string().contains("lost"), "{err}");

    // Sample-level network.
    let mut net = JmbNetwork::new(NetConfig::default_with(2, 2, 22.0, 9)).unwrap();
    net.medium_mut().set_fault(
        FaultConfig::builder()
            .meas_loss_chance(1.0)
            .build()
            .unwrap(),
    );
    assert_eq!(
        net.run_measurement().unwrap_err(),
        JmbError::MeasurementLost
    );
}
