//! Complex number arithmetic.
//!
//! JMB operates on complex baseband signals throughout: OFDM subcarriers,
//! channel coefficients, beamforming weights, and oscillator phasors are all
//! complex numbers. This module provides a small, fast `f64` complex type with
//! the operations the rest of the workspace needs.
//!
//! We implement this ourselves (instead of depending on `num-complex`) so the
//! DSP substrate stays dependency-free and the operations stay transparent.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// The type is `Copy` and 16 bytes; slices of `Complex64` are the universal
/// waveform representation in JMB (complex baseband samples).
///
/// # Examples
///
/// ```
/// use jmb_dsp::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::from_polar(1.0, std::f64::consts::FRAC_PI_2);
/// assert!((b.re).abs() < 1e-12);
/// assert!((b.im - 1.0).abs() < 1e-12);
/// assert_eq!(a * Complex64::ONE, a);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex64::new(r * c, r * s)
    }

    /// Returns the unit phasor `e^{jθ}`.
    ///
    /// This is the workhorse of oscillator modelling and phase correction:
    /// a carrier-frequency offset of `Δω` rad/s contributes `cis(Δω·t)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re - j·im`.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²` (a.k.a. power of the sample).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns `(magnitude, phase)`.
    #[inline]
    pub fn to_polar(self) -> (f64, f64) {
        (self.abs(), self.arg())
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns an all-infinite/NaN value when `z == 0`, mirroring `f64`
    /// semantics; callers inverting channel matrices must check conditioning
    /// first (see [`crate::matrix::CMat::inverse`]).
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `self / |self|`, the unit phasor with the same phase.
    ///
    /// Returns [`Complex64::ZERO`] for a zero input rather than NaN, which is
    /// the convenient behaviour when normalising measured (possibly-zero)
    /// channel taps.
    #[inline]
    pub fn normalize(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            Complex64::ZERO
        } else {
            self.scale(1.0 / a)
        }
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + acc`.
    ///
    /// Kept as an explicit method so inner loops (FFT butterflies, channel
    /// convolution) read naturally and the compiler can keep values in
    /// registers.
    #[inline]
    pub fn mul_add(self, b: Complex64, acc: Complex64) -> Complex64 {
        Complex64::new(
            self.re * b.re - self.im * b.im + acc.re,
            self.re * b.im + self.im * b.re + acc.im,
        )
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    // Complex division is multiplication by the reciprocal; the `*` here
    // is the intended arithmetic, not a typo.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::real(re)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// Mean power (average `|z|²`) of a slice of samples.
///
/// Returns `0.0` for an empty slice.
pub fn mean_power(samples: &[Complex64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sqr()).sum::<f64>() / samples.len() as f64
}

/// Inner product `Σ a_i · conj(b_i)` of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn inner_product(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner_product: length mismatch");
    let mut acc = Complex64::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y.conj(), acc);
    }
    acc
}

/// Wraps an angle to `(-π, π]`.
///
/// Phase differences measured by JMB (misalignment, CFO-induced rotation) are
/// only meaningful modulo 2π; this puts them in the principal branch.
#[inline]
pub fn wrap_phase(theta: f64) -> f64 {
    let mut t = theta % (2.0 * std::f64::consts::PI);
    if t > std::f64::consts::PI {
        t -= 2.0 * std::f64::consts::PI;
    } else if t <= -std::f64::consts::PI {
        t += 2.0 * std::f64::consts::PI;
    }
    t
}

/// Weighted linear-phase fit across ordered positions: finds `(common,
/// slope)` with `arg(phasor_i) ≈ common + slope·k_i`, weighted by each
/// phasor's magnitude.
///
/// The phases are **sequentially unwrapped** along `ks` before fitting, so
/// total phase spans of many radians across the band (e.g. the subcarrier
/// ramp left by sampling-clock slip between two measurements) are fitted
/// correctly as long as *adjacent* points differ by less than π.
///
/// Returns `(0, 0)` when the total weight is zero.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn fit_linear_phase(ks: &[f64], phasors: &[Complex64]) -> (f64, f64) {
    assert_eq!(ks.len(), phasors.len(), "fit_linear_phase: length mismatch");
    assert!(!ks.is_empty(), "fit_linear_phase: empty input");
    let weights: Vec<f64> = phasors.iter().map(|p| p.abs()).collect();
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return (0.0, 0.0);
    }
    // Sequential unwrap along the ordered positions.
    let mut phases = Vec::with_capacity(phasors.len());
    let mut prev_raw = phasors[0].arg();
    let mut prev = prev_raw;
    phases.push(prev);
    for p in &phasors[1..] {
        let raw = p.arg();
        prev += wrap_phase(raw - prev_raw);
        prev_raw = raw;
        phases.push(prev);
    }
    // Weighted least squares.
    let kbar = ks.iter().zip(&weights).map(|(k, w)| k * w).sum::<f64>() / wsum;
    let pbar = phases.iter().zip(&weights).map(|(p, w)| p * w).sum::<f64>() / wsum;
    let mut num = 0.0;
    let mut den = 0.0;
    for ((&k, &p), &w) in ks.iter().zip(&phases).zip(&weights) {
        num += w * (k - kbar) * (p - pbar);
        den += w * (k - kbar) * (k - kbar);
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    (wrap_phase(pbar - slope * kbar), slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::from(3.0), Complex64::new(3.0, 0.0));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.5, 0.7);
        let (r, th) = z.to_polar();
        assert!(close(r, 2.5));
        assert!(close(th, 0.7));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..100 {
            let th = k as f64 * 0.1 - 5.0;
            assert!(close(Complex64::cis(th).abs(), 1.0));
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, -2.0);
        let b = Complex64::new(-0.5, 3.0);
        assert_eq!(a + b - b, a);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0, Complex64::new(2.0, -4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Complex64::new(0.5, -1.0));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert!(close(a.norm_sqr(), 25.0));
        assert!(close(a.abs(), 5.0));
        // z * conj(z) = |z|^2
        let p = a * a.conj();
        assert!(close(p.re, 25.0) && close(p.im, 0.0));
    }

    #[test]
    fn inverse() {
        let a = Complex64::new(1.0, 2.0);
        let p = a * a.inv();
        assert!(close(p.re, 1.0) && close(p.im, 0.0));
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.0, PI);
        let e = z.exp();
        assert!(close(e.re, -1.0) && close(e.im, 0.0));
        let z2 = Complex64::new(1.0, 0.0);
        assert!(close(z2.exp().re, std::f64::consts::E));
    }

    #[test]
    fn normalize_unit_or_zero() {
        assert_eq!(Complex64::ZERO.normalize(), Complex64::ZERO);
        let z = Complex64::new(-3.0, 4.0).normalize();
        assert!(close(z.abs(), 1.0));
        assert!(close(z.arg(), Complex64::new(-3.0, 4.0).arg()));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.2, -0.3);
        let b = Complex64::new(0.4, 2.0);
        let c = Complex64::new(-1.0, 1.0);
        let fused = a.mul_add(b, c);
        let plain = a * b + c;
        assert!(close(fused.re, plain.re) && close(fused.im, plain.im));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![Complex64::new(1.0, 1.0); 4];
        let s: Complex64 = v.into_iter().sum();
        assert_eq!(s, Complex64::new(4.0, 4.0));
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<Complex64> = (0..16).map(|k| Complex64::cis(k as f64)).collect();
        assert!(close(mean_power(&v), 1.0));
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn inner_product_orthogonal_exponentials() {
        // e^{j2πk n/N} for different k are orthogonal over a period.
        let n = 16usize;
        let tone = |k: usize| -> Vec<Complex64> {
            (0..n)
                .map(|i| Complex64::cis(2.0 * PI * k as f64 * i as f64 / n as f64))
                .collect()
        };
        let ip = inner_product(&tone(3), &tone(5));
        assert!(ip.abs() < 1e-10);
        let self_ip = inner_product(&tone(3), &tone(3));
        assert!(close(self_ip.re, n as f64));
    }

    #[test]
    fn wrap_phase_principal_branch() {
        assert!(close(wrap_phase(3.0 * PI), PI));
        assert!(close(wrap_phase(-3.0 * PI), PI));
        assert!(close(wrap_phase(0.1), 0.1));
        assert!(close(wrap_phase(2.0 * PI + 0.1), 0.1));
        for k in -20..20 {
            let w = wrap_phase(k as f64 * 0.7);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn linear_phase_fit_small_slope() {
        let ks: Vec<f64> = (-10..=10).map(|k| k as f64).collect();
        let phasors: Vec<Complex64> = ks
            .iter()
            .map(|&k| Complex64::from_polar(2.0, 0.3 + 0.01 * k))
            .collect();
        let (c, s) = fit_linear_phase(&ks, &phasors);
        assert!((c - 0.3).abs() < 1e-9, "common {c}");
        assert!((s - 0.01).abs() < 1e-12, "slope {s}");
    }

    #[test]
    fn linear_phase_fit_unwraps_large_span() {
        // Total span of ~13 radians across the band (sampling-offset ramp):
        // a wrap-naive fit would collapse; sequential unwrapping must not.
        let ks: Vec<f64> = (-26..=26).map(|k| k as f64).collect();
        let slope = 0.25;
        let phasors: Vec<Complex64> = ks
            .iter()
            .map(|&k| Complex64::cis(-1.0 + slope * k))
            .collect();
        let (c, s) = fit_linear_phase(&ks, &phasors);
        assert!((s - slope).abs() < 1e-9, "slope {s}");
        assert!(wrap_phase(c + 1.0).abs() < 1e-9, "common {c}");
    }

    #[test]
    fn linear_phase_fit_weights_by_magnitude() {
        // One rogue low-magnitude phasor must barely influence the fit.
        let ks = vec![0.0, 1.0, 2.0, 3.0];
        let mut phasors: Vec<Complex64> = ks.iter().map(|&k| Complex64::cis(0.1 * k)).collect();
        phasors[2] = Complex64::from_polar(1e-6, 2.5);
        let (c, s) = fit_linear_phase(&ks, &phasors);
        assert!(c.abs() < 0.05, "common {c}");
        assert!((s - 0.1).abs() < 0.05, "slope {s}");
    }

    #[test]
    fn linear_phase_fit_zero_weight() {
        let (c, s) = fit_linear_phase(&[0.0, 1.0], &[Complex64::ZERO, Complex64::ZERO]);
        assert_eq!((c, s), (0.0, 0.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
