//! Fractional-sample delay.
//!
//! Propagation delays between APs and clients are generally not integer
//! multiples of the sample period (at 10 MHz one sample is 100 ns ≈ 30 m of
//! propagation; conference-room distances are a fraction of that). The
//! simulator therefore needs sub-sample delays: an integer part handled by
//! buffer offset and a fractional part handled here by windowed-sinc
//! interpolation.
//!
//! The paper notes (§5.2, footnote 3) that delay differences between APs show
//! up as per-subcarrier phase slopes that are *captured by channel
//! measurement and inverted by beamforming* — reproducing that effect
//! faithfully requires actually delaying the waveforms, which this module does.

use crate::complex::Complex64;

/// Number of taps on each side of the centre tap in the interpolation
/// kernel. 24 keeps the in-band interpolation error below ≈ −50 dB even at
/// OFDM's edge subcarriers (81% of Nyquist) — necessary because kernel
/// truncation error appears as acausal ringing in the effective channel
/// impulse response, which leaks outside the OFDM cyclic prefix and sets an
/// irreducible inter-symbol-interference floor for every simulation built
/// on this resampler.
const HALF_TAPS: usize = 24;

/// Applies a (possibly fractional) delay of `delay_samples ≥ 0` to `input`.
///
/// Returns a buffer of the same length as `input` plus the integer part of
/// the delay plus the interpolation-kernel tail, so no energy is truncated.
/// The output `y[n]` approximates `x[n − delay]` with `x` treated as zero
/// outside its support.
///
/// The fractional part is implemented with a Hann-windowed sinc interpolator
/// (17 taps), accurate to better than −60 dB interpolation error for signals
/// bandlimited to ~80% of Nyquist — comfortably covering OFDM occupied
/// bandwidth (52/64 of Nyquist).
///
/// # Panics
///
/// Panics if `delay_samples` is negative or non-finite.
pub fn fractional_delay(input: &[Complex64], delay_samples: f64) -> Vec<Complex64> {
    assert!(
        delay_samples.is_finite() && delay_samples >= 0.0,
        "delay must be finite and non-negative, got {delay_samples}"
    );
    let int_part = delay_samples.floor() as usize;
    let frac = delay_samples - delay_samples.floor();

    let out_len = input.len() + int_part + HALF_TAPS + 1;
    let mut out = vec![Complex64::ZERO; out_len];

    if frac < 1e-12 {
        // Pure integer delay: just shift.
        for (i, &x) in input.iter().enumerate() {
            out[i + int_part] = x;
        }
        return out;
    }

    // y[n] = Σ_k x[k] · h(n − int_part − k − frac), h = windowed sinc.
    // Equivalently convolve x with the fractional-delay kernel
    // h[m] = sinc(m − frac)·w(m − frac) for m in −HALF..=+HALF, then shift.
    let kernel: Vec<f64> = (-(HALF_TAPS as isize)..=HALF_TAPS as isize)
        .map(|m| {
            let t = m as f64 - frac;
            sinc(t) * hann_window(t)
        })
        .collect();

    for (k, &x) in input.iter().enumerate() {
        if x == Complex64::ZERO {
            continue;
        }
        for (j, &h) in kernel.iter().enumerate() {
            // m = j − HALF_TAPS; output index = k + int_part + m + HALF_TAPS
            //                                 = k + int_part + j.
            let idx = k + int_part + j;
            if idx < out.len() {
                out[idx] += x.scale(h);
            }
        }
    }
    // The kernel is centred HALF_TAPS into its support, so the whole output
    // is advanced by HALF_TAPS; trim the leading samples to re-align.
    out.drain(..HALF_TAPS);
    out
}

/// Resamples `input` at positions `n·ratio + offset` for `n = 0..out_len`,
/// using the same windowed-sinc interpolator as [`fractional_delay`].
///
/// This models a receiver whose ADC runs at a slightly different rate than
/// the transmitter's DAC (sampling-frequency offset): `ratio = fs_tx/fs_rx`,
/// so `ratio > 1` means the receiver clock is slow and the waveform drifts
/// later over time. `offset` (in input samples, ≥ 0) carries the propagation
/// delay. Positions outside the input are treated as zero.
///
/// # Panics
///
/// Panics if `ratio` or `offset` is non-finite, `ratio ≤ 0`, or `offset < 0`.
pub fn resample(input: &[Complex64], ratio: f64, offset: f64, out_len: usize) -> Vec<Complex64> {
    assert!(ratio.is_finite() && ratio > 0.0, "bad ratio {ratio}");
    assert!(offset.is_finite() && offset >= 0.0, "bad offset {offset}");
    let mut out = Vec::with_capacity(out_len);
    for n in 0..out_len {
        let pos = n as f64 * ratio - offset;
        out.push(interpolate_at(input, pos));
    }
    out
}

/// Windowed-sinc interpolation of `input` at (possibly fractional) position
/// `pos`; zero outside the signal's support.
pub fn interpolate_at(input: &[Complex64], pos: f64) -> Complex64 {
    if !pos.is_finite() {
        return Complex64::ZERO;
    }
    let base = pos.floor();
    let frac = pos - base;
    let base = base as isize;
    let mut acc = Complex64::ZERO;
    for m in -(HALF_TAPS as isize)..=HALF_TAPS as isize {
        let idx = base + m;
        if idx < 0 || idx as usize >= input.len() {
            continue;
        }
        let t = m as f64 - frac;
        let h = sinc(t) * hann_window(t);
        acc += input[idx as usize].scale(h);
    }
    acc
}

#[inline]
fn sinc(t: f64) -> f64 {
    if t.abs() < 1e-12 {
        1.0
    } else {
        let pt = std::f64::consts::PI * t;
        pt.sin() / pt
    }
}

/// Hann window over the kernel support `[-HALF_TAPS, HALF_TAPS]`.
#[inline]
fn hann_window(t: f64) -> f64 {
    let half = HALF_TAPS as f64 + 1.0;
    if t.abs() >= half {
        0.0
    } else {
        0.5 * (1.0 + (std::f64::consts::PI * t / half).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn integer_delay_is_exact_shift() {
        let x: Vec<Complex64> = (0..10).map(|i| Complex64::real(i as f64)).collect();
        let y = fractional_delay(&x, 3.0);
        for yi in y.iter().take(3) {
            assert_eq!(*yi, Complex64::ZERO);
        }
        for (i, xi) in x.iter().enumerate() {
            assert_eq!(y[i + 3], *xi);
        }
    }

    #[test]
    fn zero_delay_is_identity() {
        let x: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new(i as f64, -(i as f64)))
            .collect();
        let y = fractional_delay(&x, 0.0);
        assert_eq!(&y[..8], &x[..]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_rejected() {
        fractional_delay(&[Complex64::ONE], -0.5);
    }

    #[test]
    fn half_sample_delay_of_bandlimited_tone() {
        // Delay a bandlimited complex exponential by 0.5 samples and compare
        // against the analytically delayed tone. Frequency well inside the
        // kernel's accurate band.
        let n = 256;
        let f = 0.11; // cycles per sample
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * f * i as f64))
            .collect();
        let d = 0.5;
        let y = fractional_delay(&x, d);
        // Compare in the steady-state middle region (skip kernel edges).
        let mut max_err: f64 = 0.0;
        for (i, yi) in y.iter().enumerate().take(n - 32).skip(32) {
            let expected = Complex64::cis(2.0 * PI * f * (i as f64 - d));
            max_err = max_err.max((*yi - expected).abs());
        }
        assert!(max_err < 1e-3, "max interpolation error {max_err}");
    }

    #[test]
    fn arbitrary_fraction_phase_accuracy() {
        // The *phase* accuracy is what matters for JMB: per-subcarrier phase
        // slope from delay must be faithful.
        let n = 512;
        let f = 0.07;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * f * i as f64))
            .collect();
        for &d in &[0.123, 0.5, 0.77, 1.3, 2.9] {
            let y = fractional_delay(&x, d);
            let i = n / 2;
            let expected_phase = 2.0 * PI * f * (i as f64 - d);
            let got_phase = y[i].arg();
            let err = crate::complex::wrap_phase(got_phase - expected_phase).abs();
            assert!(err < 1e-3, "phase error {err} at delay {d}");
        }
    }

    #[test]
    fn energy_approximately_preserved() {
        let n = 256;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * 0.13 * i as f64) * 0.9)
            .collect();
        let ein: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let y = fractional_delay(&x, 1.37);
        let eout: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        assert!(
            (eout / ein - 1.0).abs() < 0.01,
            "energy ratio {}",
            eout / ein
        );
    }

    #[test]
    fn resample_unity_ratio_is_identity() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::cis(2.0 * PI * 0.09 * i as f64))
            .collect();
        let y = resample(&x, 1.0, 0.0, 64);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_matches_analytic_tone() {
        // 20 ppm fast transmitter clock: ratio = 1 + 2e-5.
        let n = 4000;
        let f = 0.05;
        let x: Vec<Complex64> = (0..n + 100)
            .map(|i| Complex64::cis(2.0 * PI * f * i as f64))
            .collect();
        let ratio = 1.0 + 2e-5;
        let y = resample(&x, ratio, 0.0, n);
        // Sample n of output corresponds to input position n·ratio.
        for &i in &[100usize, 1000, 3900] {
            let expected = Complex64::cis(2.0 * PI * f * i as f64 * ratio);
            assert!(
                (y[i] - expected).abs() < 2e-3,
                "at {i}: {} vs {expected}",
                y[i]
            );
        }
    }

    #[test]
    fn resample_with_offset_matches_fractional_delay() {
        let n = 256;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * 0.11 * i as f64))
            .collect();
        let d = 2.7;
        let a = fractional_delay(&x, d);
        let b = resample(&x, 1.0, d, n);
        for i in 40..n - 40 {
            assert!((a[i] - b[i]).abs() < 1e-3, "at {i}");
        }
    }

    #[test]
    fn interpolate_outside_support_is_zero() {
        let x = vec![Complex64::ONE; 8];
        assert_eq!(interpolate_at(&x, -60.0), Complex64::ZERO);
        assert_eq!(interpolate_at(&x, 100.0), Complex64::ZERO);
        assert_eq!(interpolate_at(&x, f64::NAN), Complex64::ZERO);
    }

    #[test]
    #[should_panic(expected = "bad ratio")]
    fn resample_rejects_bad_ratio() {
        resample(&[Complex64::ONE], 0.0, 0.0, 1);
    }

    #[test]
    fn output_length_covers_delay() {
        let x = vec![Complex64::ONE; 10];
        let y = fractional_delay(&x, 5.25);
        assert!(y.len() >= 15, "len {}", y.len());
    }
}
