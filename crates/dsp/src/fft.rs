//! Radix-2 fast Fourier transform.
//!
//! OFDM modulation is an IFFT and demodulation is an FFT (§ of any OFDM text;
//! JMB's PHY uses 64-point transforms). This module implements an iterative
//! in-place radix-2 Cooley–Tukey transform with twiddle factors precomputed in
//! an [`FftPlan`], so per-symbol transforms do no trigonometry and no
//! allocation.
//!
//! Hot paths should not build plans at all: [`plan`] returns a process-wide
//! cached [`FftPlan`] per size (thread-local fast path, `OnceLock`-backed
//! global table), and [`fft_in_place`] / [`ifft_in_place`] wrap it for
//! one-line call sites.
//!
//! Conventions: `forward` computes `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (no scaling)
//! and `inverse` computes `x[n] = (1/N)·Σ_k X[k]·e^{+j2πkn/N}`, so
//! `inverse(forward(x)) == x`.

use crate::complex::Complex64;
use std::cell::RefCell;
use std::collections::HashMap;
use std::f64::consts::PI;
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable FFT plan for a fixed power-of-two size.
///
/// # Examples
///
/// ```
/// use jmb_dsp::{Complex64, FftPlan};
///
/// let plan = FftPlan::new(8);
/// let mut buf = vec![Complex64::ZERO; 8];
/// buf[1] = Complex64::ONE; // a single tone in time → phasor ramp in frequency
/// plan.forward(&mut buf);
/// for (k, x) in buf.iter().enumerate() {
///     let expected = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / 8.0);
///     assert!((*x - expected).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Twiddles for the forward transform: `e^{-j2πk/N}` for `k in 0..N/2`.
    twiddles: Vec<Complex64>,
    /// Bit-reversal permutation indices.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        FftPlan {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for length-zero transforms (never true; plans are
    /// always non-empty). Provided for clippy-friendly API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for (i, &r) in self.bitrev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                buf.swap(i, r);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex64], conjugate: bool) {
        let n = self.n;
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * step];
                    if conjugate {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }

    /// In-place forward DFT (no normalisation).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "FFT buffer length mismatch");
        let _span = jmb_obs::span("fft_forward");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT with `1/N` normalisation.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.n, "FFT buffer length mismatch");
        let _span = jmb_obs::span("fft_inverse");
        self.permute(buf);
        self.butterflies(buf, true);
        let scale = 1.0 / self.n as f64;
        for x in buf.iter_mut() {
            *x = x.scale(scale);
        }
    }
}

/// Process-wide plan cache: one [`FftPlan`] per size, shared across threads.
///
/// Determinism audit (`no-unordered-iteration`): this `HashMap` is only
/// ever accessed by key (`entry(n)`) — it is never iterated, drained, or
/// collected from — so its nondeterministic bucket order cannot reach any
/// emitted value. The plans themselves are pure functions of `n`.
static GLOBAL_PLANS: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();

thread_local! {
    /// Per-thread fast path: plans indexed by `log2(n)` so the steady-state
    /// lookup is a vector index, no locking and no hashing.
    static LOCAL_PLANS: RefCell<Vec<Option<Arc<FftPlan>>>> = const { RefCell::new(Vec::new()) };
}

fn global_plan(n: usize) -> Arc<FftPlan> {
    let map = GLOBAL_PLANS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = map.lock().unwrap_or_else(|e| e.into_inner());
    Arc::clone(guard.entry(n).or_insert_with(|| Arc::new(FftPlan::new(n))))
}

/// Returns the shared plan for transforms of length `n`, building it on
/// first use. Subsequent calls from the same thread are a vector lookup;
/// the twiddle/permutation tables are computed once per process.
///
/// This is the entry point every per-packet / per-symbol path should use —
/// `FftPlan::new` is for one-off construction in tests and offline tools.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
pub fn plan(n: usize) -> Arc<FftPlan> {
    assert!(
        n.is_power_of_two() && n > 0,
        "FFT size must be a power of two, got {n}"
    );
    let slot = n.trailing_zeros() as usize;
    LOCAL_PLANS.with(|cell| {
        let mut local = cell.borrow_mut();
        if local.len() <= slot {
            local.resize(slot + 1, None);
        }
        if let Some(p) = &local[slot] {
            return Arc::clone(p);
        }
        let p = global_plan(n);
        local[slot] = Some(Arc::clone(&p));
        p
    })
}

/// In-place forward DFT of `buf` using the cached plan for its length.
///
/// # Panics
///
/// Panics if `buf.len()` is zero or not a power of two.
pub fn fft_in_place(buf: &mut [Complex64]) {
    plan(buf.len()).forward(buf);
}

/// In-place inverse DFT (with `1/N` normalisation) of `buf` using the
/// cached plan for its length.
///
/// # Panics
///
/// Panics if `buf.len()` is zero or not a power of two.
pub fn ifft_in_place(buf: &mut [Complex64]) {
    plan(buf.len()).inverse(buf);
}

/// Naive O(N²) DFT used as a test oracle and for odd sizes.
///
/// Computes `X[k] = Σ_n x[n]·e^{-j2πkn/N}`.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (i, &x) in input.iter().enumerate() {
                acc += x * Complex64::cis(-2.0 * PI * (k * i) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "mismatch: {x} vs {y} (tol {tol})");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        FftPlan::new(12);
    }

    #[test]
    fn impulse_becomes_flat() {
        let plan = FftPlan::new(16);
        let mut buf = vec![Complex64::ZERO; 16];
        buf[0] = Complex64::ONE;
        plan.forward(&mut buf);
        for x in &buf {
            assert!((*x - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_becomes_impulse() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex64::ONE; 8];
        plan.forward(&mut buf);
        assert!((buf[0] - Complex64::real(8.0)).abs() < 1e-12);
        for x in &buf[1..] {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[2usize, 4, 8, 64, 128] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
                .collect();
            let expected = dft_naive(&input);
            let plan = FftPlan::new(n);
            let mut buf = input.clone();
            plan.forward(&mut buf);
            assert_close(&buf, &expected, 1e-9 * n as f64);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let mut buf = input.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        assert_close(&buf, &input, 1e-10);
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 64;
        let plan = FftPlan::new(n);
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 1.1).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let time_energy: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let mut buf = input;
        plan.forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|x| x.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn single_tone_localises() {
        // A pure subcarrier k0 in time domain should produce a single FFT bin.
        let n = 64;
        let k0 = 7usize;
        let plan = FftPlan::new(n);
        let mut buf: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        plan.forward(&mut buf);
        for (k, x) in buf.iter().enumerate() {
            if k == k0 {
                assert!((x.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(x.abs() < 1e-9, "leakage at bin {k}: {x}");
            }
        }
    }

    #[test]
    fn cached_plan_is_shared_and_matches_fresh() {
        let a = plan(64);
        let b = plan(64);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same thread must reuse the cached plan"
        );
        let input: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64 * 0.7).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let mut cached = input.clone();
        let mut fresh = input.clone();
        a.forward(&mut cached);
        FftPlan::new(64).forward(&mut fresh);
        // Identical plans, identical arithmetic: bit-for-bit equal.
        assert_eq!(cached, fresh);
    }

    #[test]
    fn cache_is_consistent_across_threads() {
        let from_main = plan(128);
        let from_thread = std::thread::spawn(|| plan(128)).join().unwrap();
        // Different threads go through the same global table, so the plans
        // are the same allocation, not merely equal.
        assert!(Arc::ptr_eq(&from_main, &from_thread));
    }

    #[test]
    fn in_place_helpers_roundtrip() {
        let input: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let mut buf = input.clone();
        fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        assert_close(&buf, &input, 1e-10);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cached_plan_rejects_non_power_of_two() {
        plan(48);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let plan = FftPlan::new(n);
        let a: Vec<Complex64> = (0..n).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(0.0, (i * i) as f64))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        let mut fab: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        plan.forward(&mut fab);
        let sum: Vec<Complex64> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fab, &sum, 1e-9);
    }
}
