//! # jmb-dsp — signal-processing substrate for JMB
//!
//! Self-contained DSP building blocks used by every other crate in the JMB
//! workspace:
//!
//! * [`Complex64`] — complex arithmetic (we implement it ourselves rather than
//!   pull in `num-complex`, which keeps the hot paths simple and dependency-free),
//! * [`fft`] — radix-2 FFT/IFFT with precomputed twiddle tables,
//! * [`matrix`] — dense complex linear algebra (inverse, pseudo-inverse,
//!   solve, condition estimation) sized for the small channel matrices JMB
//!   inverts when beamforming,
//! * [`stats`] — percentiles, CDFs, running statistics, dB conversions,
//! * [`delay`] — fractional-sample delay for modelling propagation delays,
//! * [`rng`] — deterministic Gaussian / circularly-symmetric complex Gaussian
//!   sampling helpers.
//!
//! Everything here is deterministic: all randomness flows through
//! caller-provided RNGs so experiments are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod delay;
pub mod fft;
pub mod matrix;
pub mod rng;
pub mod stats;

pub use complex::Complex64;
pub use fft::{fft_in_place, ifft_in_place, FftPlan};
pub use matrix::{CMat, ZfSolver};
