//! Dense complex linear algebra.
//!
//! JMB's beamforming inverts the joint channel matrix `H` (one row per client,
//! one column per AP antenna, §4 of the paper) and computes pseudo-inverses
//! when the APs collectively have more antennas than there are clients. The
//! matrices involved are small (at most ~20×20 in the paper's testbed), so a
//! straightforward Gauss–Jordan with partial pivoting is both adequate and
//! easy to verify.

use crate::complex::Complex64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Errors from linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatError {
    /// The matrix is singular (or numerically so) and cannot be inverted.
    Singular,
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// The operation requires a square matrix.
    NotSquare,
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::Singular => write!(f, "matrix is singular"),
            MatError::DimensionMismatch { left, right } => write!(
                f,
                "dimension mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for MatError {}

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use jmb_dsp::{CMat, Complex64};
///
/// let h = CMat::from_rows(&[
///     &[Complex64::new(1.0, 0.0), Complex64::new(0.0, 1.0)],
///     &[Complex64::new(0.0, -1.0), Complex64::new(2.0, 0.0)],
/// ]);
/// let inv = h.inverse().unwrap();
/// let prod = h.mul_mat(&inv).unwrap();
/// assert!(prod.is_identity(1e-10));
/// ```
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        CMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: length mismatch");
        CMat { rows, cols, data }
    }

    /// Creates an `n × n` diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = CMat::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as a new vector.
    pub fn col(&self, c: usize) -> Vec<Complex64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMat {
        let mut t = CMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Hermitian (conjugate) transpose `Aᴴ`.
    pub fn hermitian(&self) -> CMat {
        let mut t = CMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)].conj();
            }
        }
        t
    }

    /// Reshapes the matrix to `rows × cols`, zero-filled, reusing the
    /// existing allocation when it is large enough. Intended for scratch
    /// buffers that live across hot-loop iterations.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Complex64::ZERO);
    }

    /// Matrix product `self · rhs` written into `out` (allocation-free once
    /// `out`'s buffer has grown to size; `out` is reshaped as needed).
    ///
    /// `out` must not alias `self` or `rhs`.
    pub fn mul_into(&self, rhs: &CMat, out: &mut CMat) -> Result<(), MatError> {
        if self.cols != rhs.rows {
            return Err(MatError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        out.reset(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = a.mul_add(rhs[(k, c)], out[(r, c)]);
                }
            }
        }
        Ok(())
    }

    /// Matrix–vector product `self · v` written into `out` (cleared and
    /// refilled; allocation-free once `out`'s capacity suffices).
    pub fn mul_vec_into(&self, v: &[Complex64], out: &mut Vec<Complex64>) -> Result<(), MatError> {
        if self.cols != v.len() {
            return Err(MatError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        out.clear();
        out.reserve(self.rows);
        for r in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for c in 0..self.cols {
                acc = self[(r, c)].mul_add(v[c], acc);
            }
            out.push(acc);
        }
        Ok(())
    }

    /// Hermitian (conjugate) transpose written into `out`.
    ///
    /// `out` must not alias `self`.
    pub fn hermitian_into(&self, out: &mut CMat) {
        out.reset(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)].conj();
            }
        }
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, k: Complex64) {
        for x in &mut self.data {
            *x *= k;
        }
    }

    /// Matrix product `self · rhs`.
    pub fn mul_mat(&self, rhs: &CMat) -> Result<CMat, MatError> {
        if self.cols != rhs.rows {
            return Err(MatError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] = a.mul_add(rhs[(k, c)], out[(r, c)]);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Result<Vec<Complex64>, MatError> {
        if self.cols != v.len() {
            return Err(MatError::DimensionMismatch {
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                let mut acc = Complex64::ZERO;
                for c in 0..self.cols {
                    acc = self[(r, c)].mul_add(v[c], acc);
                }
                acc
            })
            .collect())
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMat {
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x * k).collect(),
        }
    }

    /// Frobenius norm `√Σ|a_ij|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute row sum (induced ∞-norm).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// `true` if `‖self − I‖∞ < tol`.
    pub fn is_identity(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                let expect = if r == c {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                if (self[(r, c)] - expect).abs() >= tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if all off-diagonal entries have magnitude below `tol`.
    ///
    /// This is the property joint beamforming must achieve: the *effective*
    /// channel `H·W` seen by the clients must be diagonal (paper Eq. 1), i.e.
    /// each client hears only its own stream.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c && self[(r, c)].abs() >= tol {
                    return false;
                }
            }
        }
        true
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting.
    ///
    /// Returns [`MatError::Singular`] if a pivot is (numerically) zero.
    pub fn inverse(&self) -> Result<CMat, MatError> {
        if !self.is_square() {
            return Err(MatError::NotSquare);
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = CMat::identity(n);
        // Scale-aware singularity threshold.
        let scale = self.inf_norm().max(f64::MIN_POSITIVE);
        let eps = 1e-13 * scale;

        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below the diagonal.
            let pivot_row = (col..n)
                .max_by(|&i, &j| {
                    a[(i, col)]
                        .abs()
                        .partial_cmp(&a[(j, col)].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty range");
            if a[(pivot_row, col)].abs() <= eps {
                return Err(MatError::Singular);
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(pivot_row, c)];
                    a[(pivot_row, c)] = tmp;
                    let tmp = inv[(col, c)];
                    inv[(col, c)] = inv[(pivot_row, c)];
                    inv[(pivot_row, c)] = tmp;
                }
            }
            let pivot = a[(col, col)].inv();
            for c in 0..n {
                a[(col, c)] *= pivot;
                inv[(col, c)] *= pivot;
            }
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor == Complex64::ZERO {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] -= factor * ac;
                    inv[(r, c)] -= factor * ic;
                }
            }
        }
        Ok(inv)
    }

    /// Solves `self · x = b` via the inverse (adequate at JMB's matrix sizes).
    pub fn solve(&self, b: &[Complex64]) -> Result<Vec<Complex64>, MatError> {
        self.inverse()?.mul_vec(b)
    }

    /// Moore–Penrose pseudo-inverse.
    ///
    /// * Square: plain inverse.
    /// * Fat (`rows < cols`, more total AP antennas than clients): right
    ///   pseudo-inverse `Aᴴ(AAᴴ)⁻¹`, the minimum-power zero-forcing precoder.
    /// * Tall (`rows > cols`): left pseudo-inverse `(AᴴA)⁻¹Aᴴ`.
    pub fn pseudo_inverse(&self) -> Result<CMat, MatError> {
        use std::cmp::Ordering;
        match self.rows.cmp(&self.cols) {
            Ordering::Equal => self.inverse(),
            Ordering::Less => {
                let ah = self.hermitian();
                let gram = self.mul_mat(&ah)?; // rows × rows
                ah.mul_mat(&gram.inverse()?)
            }
            Ordering::Greater => {
                let ah = self.hermitian();
                let gram = ah.mul_mat(self)?; // cols × cols
                gram.inverse()?.mul_mat(&ah)
            }
        }
    }

    /// Largest singular value, by power iteration on `AᴴA`.
    pub fn sigma_max(&self) -> f64 {
        self.extreme_singular_value(false)
    }

    /// Smallest singular value, by inverse power iteration on `AᴴA`.
    ///
    /// Returns `0.0` if `AᴴA` is singular.
    pub fn sigma_min(&self) -> f64 {
        self.extreme_singular_value(true)
    }

    /// 2-norm condition number `σ_max / σ_min` (∞ if singular).
    ///
    /// The paper (§11.2) notes JMB's beamforming throughput depends on how
    /// well-conditioned the channel matrix is; this is the measurement used
    /// by the experiment harness to report it.
    pub fn condition_number(&self) -> f64 {
        let smin = self.sigma_min();
        if smin <= 0.0 {
            f64::INFINITY
        } else {
            self.sigma_max() / smin
        }
    }

    fn extreme_singular_value(&self, smallest: bool) -> f64 {
        // Power iteration on M = AᴴA (Hermitian PSD). For the smallest
        // singular value we iterate with M⁻¹ instead.
        let m = match self.hermitian().mul_mat(self) {
            Ok(m) => m,
            Err(_) => return 0.0,
        };
        let op = if smallest {
            match m.inverse() {
                Ok(inv) => inv,
                Err(_) => return 0.0,
            }
        } else {
            m
        };
        let n = op.rows();
        // Deterministic, generically non-orthogonal start vector.
        let mut v: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 + i as f64 * 0.173, 0.31 * (i as f64 + 1.0)))
            .collect();
        let mut lambda = 0.0f64;
        for _ in 0..200 {
            let w = op.mul_vec(&v).expect("dims agree");
            let norm = w.iter().map(|x| x.norm_sqr()).sum::<f64>().sqrt();
            if norm == 0.0 {
                return 0.0;
            }
            let new_lambda = norm;
            v = w.iter().map(|&x| x / norm).collect();
            if (new_lambda - lambda).abs() <= 1e-12 * new_lambda.max(1.0) {
                lambda = new_lambda;
                break;
            }
            lambda = new_lambda;
        }
        // lambda approximates the top eigenvalue of op = AᴴA (or its inverse).
        if smallest {
            (1.0 / lambda).sqrt()
        } else {
            lambda.sqrt()
        }
    }
}

/// Allocation-free right pseudo-inverse solver for the zero-forcing case:
/// `H` is `n_streams × n_tx` with `n_streams ≤ n_tx` (every stream needs at
/// least one antenna), and the minimum-power ZF precoder is
/// `W = Hᴴ(HHᴴ)⁻¹`.
///
/// Instead of forming `(HHᴴ)⁻¹` explicitly (a Gauss–Jordan per subcarrier
/// plus three temporary matrices), the solver computes the Gram matrix
/// `G = HHᴴ` (Hermitian positive definite for full-rank `H`), factors it as
/// `G = LLᴴ` (Cholesky), solves `L·Y = H` and `Lᴴ·X = Y` by substitution,
/// and writes `W = Xᴴ` into the caller's output matrix. All intermediates
/// live in scratch buffers owned by the solver, so a per-subcarrier loop
/// does zero allocations after the first iteration.
#[derive(Debug, Clone)]
pub struct ZfSolver {
    n_streams: usize,
    n_tx: usize,
    /// `n_streams × n_streams` Gram matrix, overwritten by its Cholesky
    /// factor `L` (lower triangle; strict upper triangle is garbage).
    gram: Vec<Complex64>,
    /// `n_streams × n_tx` substitution scratch (`Y`, then `X`).
    work: Vec<Complex64>,
    /// `n_tx × n_streams` conjugate transpose of the current channel:
    /// `ht[k*n + j] = h[j][k]*`. Staged once per solve so the Gram
    /// assembly's inner loop runs over contiguous memory.
    ht: Vec<Complex64>,
}

impl ZfSolver {
    /// Creates a solver for `n_streams × n_tx` channels (`n_streams ≤ n_tx`).
    ///
    /// # Panics
    ///
    /// Panics if `n_streams == 0`, `n_tx == 0`, or `n_streams > n_tx`.
    pub fn new(n_streams: usize, n_tx: usize) -> Self {
        assert!(n_streams > 0 && n_tx > 0, "empty channel");
        assert!(
            n_streams <= n_tx,
            "zero-forcing needs n_streams ({n_streams}) <= n_tx ({n_tx})"
        );
        ZfSolver {
            n_streams,
            n_tx,
            gram: vec![Complex64::ZERO; n_streams * n_streams],
            work: vec![Complex64::ZERO; n_streams * n_tx],
            ht: vec![Complex64::ZERO; n_streams * n_tx],
        }
    }

    /// Assembles the Gram matrix `G = H·Hᴴ` (lower triangle + diagonal;
    /// Hermitian) into the solver's scratch and returns the largest diagonal
    /// entry.
    ///
    /// This is the first stage of [`ZfSolver::pinv_into`], split out so the
    /// benchmark suite can measure it in isolation. `H`'s conjugate transpose
    /// is staged once into a `n_tx × n_streams` scratch so the accumulation
    /// inner loop runs over contiguous rows (one broadcast element times one
    /// contiguous row per step), which LLVM vectorises; per output cell the
    /// summation order is ascending `k`, identical to a direct dot-product
    /// scan, so the assembled Gram matrix is bitwise identical to the naive
    /// triple loop.
    ///
    /// Returns [`MatError::Singular`] when the largest diagonal entry is not
    /// a positive finite number, and [`MatError::DimensionMismatch`] when
    /// `h`'s shape does not match the solver's.
    pub fn gram_assembly(&mut self, h: &CMat) -> Result<f64, MatError> {
        let (n, m) = (self.n_streams, self.n_tx);
        if h.rows() != n || h.cols() != m {
            return Err(MatError::DimensionMismatch {
                left: (n, m),
                right: (h.rows(), h.cols()),
            });
        }

        // Stage Hᴴ so the k-outer accumulation below reads contiguous rows.
        for j in 0..n {
            let hj = h.row(j);
            for (k, &hjk) in hj.iter().enumerate() {
                self.ht[k * n + j] = hjk.conj();
            }
        }

        // G = H·Hᴴ, lower triangle + diagonal only. Row i of G accumulates
        // rank-1 updates `hi[k] * ht[k][..=i]` for ascending k: per cell this
        // is the same ascending-k multiply-accumulate chain as the reference
        // dot product, just with the j loop innermost (contiguous).
        let mut max_diag = 0.0f64;
        for i in 0..n {
            let hi = h.row(i);
            let row = &mut self.gram[i * n..i * n + i + 1];
            row.fill(Complex64::ZERO);
            for (&a, ht_row) in hi.iter().zip(self.ht.chunks_exact(n)) {
                for (g, &t) in row.iter_mut().zip(&ht_row[..i + 1]) {
                    *g = a.mul_add(t, *g);
                }
            }
            max_diag = max_diag.max(row[i].re);
        }
        if max_diag <= 0.0 || !max_diag.is_finite() {
            return Err(MatError::Singular);
        }
        Ok(max_diag)
    }

    /// Squared 2-norm of column `j` of the precoder `W` computed by the last
    /// successful [`ZfSolver::pinv_into`], summed in ascending-antenna order
    /// (bitwise identical to scanning `W`'s column directly — conjugation
    /// does not change `|·|²`). Reads the solver's contiguous substitution
    /// scratch instead of striding down the output matrix.
    pub fn col_power(&self, j: usize) -> f64 {
        let m = self.n_tx;
        self.work[j * m..(j + 1) * m]
            .iter()
            .fold(0.0, |p, w| p + w.norm_sqr())
    }

    /// Computes `W = H⁺ = Hᴴ(HHᴴ)⁻¹` into `out` (`n_tx × n_streams`).
    ///
    /// Returns [`MatError::Singular`] when `H` is (numerically) rank
    /// deficient, and [`MatError::DimensionMismatch`] when `h`'s shape does
    /// not match the solver's.
    pub fn pinv_into(&mut self, h: &CMat, out: &mut CMat) -> Result<(), MatError> {
        let (n, m) = (self.n_streams, self.n_tx);
        let max_diag = self.gram_assembly(h)?;

        // In-place Cholesky G → L. The pivot threshold is relative to the
        // largest diagonal (the pivots are squared singular values, so this
        // rejects channels with 2-norm condition number ≳ 3·10⁶ — far past
        // anything beamforming could use).
        let eps = 1e-13 * max_diag;
        for j in 0..n {
            let mut d = self.gram[j * n + j].re;
            for k in 0..j {
                d -= self.gram[j * n + k].norm_sqr();
            }
            if d <= eps {
                return Err(MatError::Singular);
            }
            let ljj = d.sqrt();
            self.gram[j * n + j] = Complex64::real(ljj);
            for i in j + 1..n {
                let mut s = self.gram[i * n + j];
                for k in 0..j {
                    s -= self.gram[i * n + k] * self.gram[j * n + k].conj();
                }
                self.gram[i * n + j] = s.scale(1.0 / ljj);
            }
        }

        // Forward substitution L·Y = H (Y is n × m, row i depends on rows < i).
        // AXPY form: row i starts as H's row i and subtracts `l_ik · row_k`
        // for ascending k, so each cell sees the same ascending-k chain of
        // unfused `s - l·w` updates as a per-cell scan (bitwise identical),
        // while the inner loop walks two contiguous rows.
        for i in 0..n {
            let (prev, rest) = self.work.split_at_mut(i * m);
            let row_i = &mut rest[..m];
            row_i.copy_from_slice(h.row(i));
            for (k, w_k) in prev.chunks_exact(m).enumerate() {
                let l = self.gram[i * n + k];
                for (r, &w) in row_i.iter_mut().zip(w_k) {
                    *r -= l * w;
                }
            }
            let inv = 1.0 / self.gram[i * n + i].re;
            for r in row_i.iter_mut() {
                *r = r.scale(inv);
            }
        }
        // Back substitution Lᴴ·X = Y in place (row i depends on rows > i),
        // same AXPY restructuring with ascending k in `i+1..n`.
        for i in (0..n).rev() {
            let (head, rest) = self.work.split_at_mut((i + 1) * m);
            let row_i = &mut head[i * m..];
            for (k, w_k) in (i + 1..n).zip(rest.chunks_exact(m)) {
                let l = self.gram[k * n + i].conj();
                for (r, &w) in row_i.iter_mut().zip(w_k) {
                    *r -= l * w;
                }
            }
            let inv = 1.0 / self.gram[i * n + i].re;
            for r in row_i.iter_mut() {
                *r = r.scale(inv);
            }
        }

        // W = Xᴴ (n_tx × n_streams).
        out.reset(m, n);
        for i in 0..n {
            for c in 0..m {
                out[(c, i)] = self.work[i * m + c].conj();
            }
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMat {
    type Output = CMat;
    fn add(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMat {
    type Output = CMat;
    fn sub(self, rhs: &CMat) -> CMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        CMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMat {
    type Output = CMat;
    fn mul(self, rhs: &CMat) -> CMat {
        self.mul_mat(rhs).expect("matrix dimension mismatch in `*`")
    }
}

impl fmt::Debug for CMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn random_like(rows: usize, cols: usize, seed: u64) -> CMat {
        // Simple deterministic pseudo-random fill (xorshift).
        let mut s = seed | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let data = (0..rows * cols).map(|_| c(next(), next())).collect();
        CMat::from_vec(rows, cols, data)
    }

    #[test]
    fn identity_and_diag() {
        let i3 = CMat::identity(3);
        assert!(i3.is_identity(0.0_f64.max(1e-15)));
        let d = CMat::diag(&[c(1.0, 0.0), c(0.0, 2.0)]);
        assert_eq!(d[(0, 0)], c(1.0, 0.0));
        assert_eq!(d[(1, 1)], c(0.0, 2.0));
        assert_eq!(d[(0, 1)], Complex64::ZERO);
        assert!(d.is_diagonal(1e-15));
        assert!(!d.is_identity(1e-15));
    }

    #[test]
    fn mul_by_identity_is_noop() {
        let a = random_like(4, 4, 42);
        let i = CMat::identity(4);
        assert_eq!(a.mul_mat(&i).unwrap(), a);
        assert_eq!(i.mul_mat(&a).unwrap(), a);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = CMat::zeros(2, 3);
        let b = CMat::zeros(2, 3);
        assert!(matches!(
            a.mul_mat(&b),
            Err(MatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn hermitian_involution() {
        let a = random_like(3, 5, 7);
        assert_eq!(a.hermitian().hermitian(), a);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        for seed in 1..10u64 {
            let a = random_like(4, 4, seed);
            let inv = a.inverse().expect("generic random matrix invertible");
            assert!(a.mul_mat(&inv).unwrap().is_identity(1e-9));
            assert!(inv.mul_mat(&a).unwrap().is_identity(1e-9));
        }
    }

    #[test]
    fn singular_detected() {
        // Rank-1 matrix.
        let a = CMat::from_rows(&[&[c(1.0, 1.0), c(2.0, 2.0)], &[c(2.0, 2.0), c(4.0, 4.0)]]);
        assert_eq!(a.inverse().unwrap_err(), MatError::Singular);
        assert_eq!(CMat::zeros(3, 3).inverse().unwrap_err(), MatError::Singular);
    }

    #[test]
    fn non_square_inverse_rejected() {
        assert_eq!(
            CMat::zeros(2, 3).inverse().unwrap_err(),
            MatError::NotSquare
        );
    }

    #[test]
    fn solve_linear_system() {
        let a = CMat::from_rows(&[&[c(2.0, 0.0), c(1.0, 0.0)], &[c(1.0, 0.0), c(3.0, 0.0)]]);
        let x_true = vec![c(1.0, -1.0), c(0.5, 2.0)];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-10);
        }
    }

    #[test]
    fn fat_pseudo_inverse_is_right_inverse() {
        // 2 clients, 4 total AP antennas: H is 2x4, H·H⁺ = I₂.
        let h = random_like(2, 4, 99);
        let pinv = h.pseudo_inverse().unwrap();
        assert_eq!(pinv.rows(), 4);
        assert_eq!(pinv.cols(), 2);
        assert!(h.mul_mat(&pinv).unwrap().is_identity(1e-9));
    }

    #[test]
    fn tall_pseudo_inverse_is_left_inverse() {
        let h = random_like(5, 2, 123);
        let pinv = h.pseudo_inverse().unwrap();
        assert!(pinv.mul_mat(&h).unwrap().is_identity(1e-9));
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let i = CMat::identity(4);
        let k = i.condition_number();
        assert!((k - 1.0).abs() < 1e-6, "cond(I) = {k}");
    }

    #[test]
    fn condition_number_of_scaled_diag() {
        let d = CMat::diag(&[c(10.0, 0.0), c(1.0, 0.0)]);
        let k = d.condition_number();
        assert!((k - 10.0).abs() < 1e-4, "cond = {k}");
    }

    #[test]
    fn sigma_bounds_frobenius() {
        let a = random_like(4, 4, 5);
        let smax = a.sigma_max();
        let fro = a.frobenius_norm();
        assert!(smax <= fro + 1e-9);
        assert!(smax * 2.0 >= fro); // rank ≤ 4 ⇒ fro ≤ 2·σmax
    }

    #[test]
    fn singular_matrix_condition_is_infinite() {
        let a = CMat::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(2.0, 0.0), c(4.0, 0.0)]]);
        assert!(a.condition_number().is_infinite());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = random_like(3, 3, 11);
        let b = random_like(3, 3, 12);
        let s = &(&a + &b) - &b;
        for (x, y) in s.as_slice().iter().zip(a.as_slice()) {
            assert!((*x - *y).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_into_matches_mul_mat_and_reuses_buffer() {
        let a = random_like(3, 5, 21);
        let b = random_like(5, 2, 22);
        let mut out = CMat::zeros(1, 1); // wrong shape on purpose
        a.mul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.mul_mat(&b).unwrap());
        // Second use with different shapes reuses the grown buffer.
        let c = random_like(2, 2, 23);
        let d = random_like(2, 2, 24);
        c.mul_into(&d, &mut out).unwrap();
        assert_eq!(out, c.mul_mat(&d).unwrap());
        assert!(matches!(
            a.mul_into(&d, &mut out),
            Err(MatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_into_matches_mul_vec() {
        let a = random_like(4, 3, 31);
        let v = vec![c(1.0, 2.0), c(-0.5, 0.0), c(0.0, -3.0)];
        let mut out = Vec::new();
        a.mul_vec_into(&v, &mut out).unwrap();
        assert_eq!(out, a.mul_vec(&v).unwrap());
        assert!(a.mul_vec_into(&v[..2], &mut out).is_err());
    }

    #[test]
    fn hermitian_into_matches_hermitian() {
        let a = random_like(3, 4, 41);
        let mut out = CMat::zeros(0, 0);
        a.hermitian_into(&mut out);
        assert_eq!(out, a.hermitian());
    }

    #[test]
    fn scale_in_place_matches_scale() {
        let a = random_like(3, 3, 51);
        let k = c(0.3, -1.1);
        let mut b = a.clone();
        b.scale_in_place(k);
        assert_eq!(b, a.scale(k));
    }

    #[test]
    fn zf_solver_matches_pseudo_inverse() {
        for seed in 1..8u64 {
            for &(rows, cols) in &[(2usize, 4usize), (3, 3), (4, 10), (1, 2)] {
                let h = random_like(rows, cols, seed * 100 + rows as u64 * 10 + cols as u64);
                let mut solver = ZfSolver::new(rows, cols);
                let mut w = CMat::zeros(0, 0);
                solver.pinv_into(&h, &mut w).expect("full-rank random");
                let reference = h.pseudo_inverse().unwrap();
                assert_eq!(w.rows(), cols);
                assert_eq!(w.cols(), rows);
                for (x, y) in w.as_slice().iter().zip(reference.as_slice()) {
                    assert!((*x - *y).abs() < 1e-9, "{rows}x{cols} seed {seed}");
                }
                // And it is a true right inverse.
                assert!(h.mul_mat(&w).unwrap().is_identity(1e-9));
            }
        }
    }

    #[test]
    fn zf_solver_reuse_across_calls() {
        let mut solver = ZfSolver::new(3, 6);
        let mut w = CMat::zeros(0, 0);
        for seed in 1..20u64 {
            let h = random_like(3, 6, 1000 + seed);
            solver.pinv_into(&h, &mut w).unwrap();
            assert!(h.mul_mat(&w).unwrap().is_identity(1e-9), "seed {seed}");
        }
    }

    #[test]
    fn zf_solver_rejects_rank_deficient() {
        // Rank-1 2×2 (the channel two co-located clients would produce).
        let h = CMat::from_rows(&[&[c(1.0, 0.0), c(1.0, 0.0)], &[c(1.0, 0.0), c(1.0, 0.0)]]);
        let mut solver = ZfSolver::new(2, 2);
        let mut w = CMat::zeros(0, 0);
        assert_eq!(solver.pinv_into(&h, &mut w), Err(MatError::Singular));
        // All-zero channel.
        let z = CMat::zeros(2, 3);
        let mut solver = ZfSolver::new(2, 3);
        assert_eq!(solver.pinv_into(&z, &mut w), Err(MatError::Singular));
    }

    #[test]
    fn zf_solver_shape_mismatch() {
        let mut solver = ZfSolver::new(2, 4);
        let mut w = CMat::zeros(0, 0);
        let h = random_like(3, 4, 1);
        assert!(matches!(
            solver.pinv_into(&h, &mut w),
            Err(MatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "n_streams")]
    fn zf_solver_rejects_underdetermined() {
        ZfSolver::new(3, 2);
    }

    #[test]
    fn rows_and_cols_access() {
        let a = CMat::from_rows(&[&[c(1.0, 0.0), c(2.0, 0.0)], &[c(3.0, 0.0), c(4.0, 0.0)]]);
        assert_eq!(a.row(1), &[c(3.0, 0.0), c(4.0, 0.0)]);
        assert_eq!(a.col(0), vec![c(1.0, 0.0), c(3.0, 0.0)]);
        assert_eq!(a.transpose()[(0, 1)], c(3.0, 0.0));
    }
}
