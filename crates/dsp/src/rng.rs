//! Deterministic random sampling helpers.
//!
//! Every stochastic element of the JMB simulation — fading taps, AWGN,
//! oscillator ppm draws, topology placement — samples through these helpers
//! from a caller-supplied [`rand::RngCore`], so a single seed reproduces an
//! entire experiment bit-for-bit.

use crate::complex::Complex64;
use rand::Rng;
use rand::SeedableRng;

/// The RNG used throughout JMB experiments: a small-state, fast, seedable
/// generator ([`rand::rngs::StdRng`], which is ChaCha12 — cryptographic
/// quality is irrelevant here, determinism across platforms is what matters).
pub type JmbRng = rand::rngs::StdRng;

/// Creates the experiment RNG from a seed.
pub fn rng_from_seed(seed: u64) -> JmbRng {
    JmbRng::seed_from_u64(seed)
}

/// Derives an independent child RNG from a parent seed and a stream label.
///
/// Used to give each node/link in a simulation its own decorrelated stream
/// while the whole simulation still derives from one master seed. The mixing
/// is SplitMix64-style so nearby labels produce unrelated streams.
pub fn derive_rng(master_seed: u64, stream: u64) -> JmbRng {
    let mut z =
        master_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    JmbRng::seed_from_u64(z)
}

/// Samples a standard normal via Box–Muller.
///
/// (`rand_distr` is outside the allowed dependency set, and Box–Muller is
/// plenty for simulation noise.)
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a zero-mean Gaussian with the given standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    standard_normal(rng) * sigma
}

/// Samples a circularly-symmetric complex Gaussian `CN(0, σ²)`.
///
/// Total variance `σ²` is split evenly between I and Q, so
/// `E[|z|²] = sigma2`. This is the standard model for both Rayleigh-fading
/// channel taps and complex AWGN.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma2: f64) -> Complex64 {
    let s = (sigma2 / 2.0).sqrt();
    Complex64::new(normal(rng, s), normal(rng, s))
}

/// Samples a uniformly random phase in `[-π, π)`.
pub fn random_phase<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.gen::<f64>() - 0.5) * 2.0 * std::f64::consts::PI
}

/// Samples a unit-magnitude phasor with uniformly random phase.
pub fn random_phasor<R: Rng + ?Sized>(rng: &mut R) -> Complex64 {
    Complex64::cis(random_phase(rng))
}

/// Fills a buffer with complex AWGN of total power `noise_power`.
pub fn fill_awgn<R: Rng + ?Sized>(rng: &mut R, noise_power: f64, buf: &mut [Complex64]) {
    for x in buf.iter_mut() {
        *x = complex_gaussian(rng, noise_power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_streams_decorrelated() {
        let mut a = derive_rng(7, 0);
        let mut b = derive_rng(7, 1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_stream_reproducible() {
        let mut a = derive_rng(123, 45);
        let mut b = derive_rng(123, 45);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn complex_gaussian_power() {
        let mut rng = rng_from_seed(2);
        let n = 100_000;
        let p: f64 = (0..n)
            .map(|_| complex_gaussian(&mut rng, 2.5).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 2.5).abs() < 0.05, "power {p}");
    }

    #[test]
    fn complex_gaussian_circular_symmetry() {
        // I and Q should carry equal power and be uncorrelated.
        let mut rng = rng_from_seed(3);
        let n = 100_000;
        let mut pi = 0.0;
        let mut pq = 0.0;
        let mut cross = 0.0;
        for _ in 0..n {
            let z = complex_gaussian(&mut rng, 1.0);
            pi += z.re * z.re;
            pq += z.im * z.im;
            cross += z.re * z.im;
        }
        pi /= n as f64;
        pq /= n as f64;
        cross /= n as f64;
        assert!((pi - 0.5).abs() < 0.01);
        assert!((pq - 0.5).abs() < 0.01);
        assert!(cross.abs() < 0.01);
    }

    #[test]
    fn random_phase_in_range_and_uniform() {
        let mut rng = rng_from_seed(4);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let p = random_phase(&mut rng);
            assert!((-std::f64::consts::PI..std::f64::consts::PI).contains(&p));
            sum += p;
        }
        assert!((sum / n as f64).abs() < 0.03);
    }

    #[test]
    fn random_phasor_unit_magnitude() {
        let mut rng = rng_from_seed(5);
        for _ in 0..100 {
            assert!((random_phasor(&mut rng).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fill_awgn_power() {
        let mut rng = rng_from_seed(6);
        let mut buf = vec![Complex64::ZERO; 50_000];
        fill_awgn(&mut rng, 0.3, &mut buf);
        let p = crate::complex::mean_power(&buf);
        assert!((p - 0.3).abs() < 0.01, "power {p}");
    }
}
