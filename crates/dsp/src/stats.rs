//! Statistics helpers: percentiles, CDFs, running moments, dB conversions.
//!
//! The paper reports its results as medians, 95th percentiles, CDFs of
//! per-client gains, and dB quantities (SNR reduction, INR). This module
//! provides exactly those reductions, so experiment code and benches share
//! one audited implementation.

/// Converts a linear power ratio to decibels (`10·log₁₀`).
#[inline]
pub fn lin_to_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear *amplitude* ratio to decibels (`20·log₁₀`).
#[inline]
pub fn amp_to_db(lin: f64) -> f64 {
    20.0 * lin.log10()
}

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns `NaN` for an empty slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Percentile with linear interpolation between closest ranks.
///
/// `p` is in percent (0–100). Returns `NaN` for an empty slice.
///
/// # Examples
///
/// ```
/// use jmb_dsp::stats::percentile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// An empirical CDF: sorted values paired with cumulative fractions.
///
/// Matches how the paper plots Figs. 7, 10, and 13 (value on x, fraction of
/// runs/receivers on y).
#[derive(Debug, Clone)]
pub struct Cdf {
    /// Sorted sample values (x-axis).
    pub values: Vec<f64>,
    /// Cumulative fraction `(i+1)/n` for each sorted value (y-axis).
    pub fractions: Vec<f64>,
}

impl Cdf {
    /// Builds the empirical CDF of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn new(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Cdf of empty sample");
        let mut values: Vec<f64> = xs.to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        let n = values.len() as f64;
        let fractions = (0..values.len()).map(|i| (i + 1) as f64 / n).collect();
        Cdf { values, fractions }
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self
            .values
            .binary_search_by(|v| v.partial_cmp(&x).expect("NaN"))
        {
            Ok(mut i) => {
                // Step to the last equal value so ties are fully counted.
                while i + 1 < self.values.len() && self.values[i + 1] == x {
                    i += 1;
                }
                self.fractions[i]
            }
            Err(0) => 0.0,
            Err(i) => self.fractions[i - 1],
        }
    }

    /// Value at cumulative fraction `q` (0–1): the q-quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.values, q * 100.0)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the CDF holds no samples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Numerically stable running mean/variance (Welford's algorithm).
///
/// Used for long-running accumulations such as per-subcarrier EVM tracking
/// and the EWMA seeding in the phase-sync pipeline.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Current population variance (`NaN` when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Current sample variance (`NaN` with fewer than 2 observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// Exponentially weighted moving average.
///
/// JMB slave APs maintain "a continuously averaged estimate of their offset
/// with the lead transmitter across multiple transmissions" (§5.2b); this is
/// that averager.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` ∈ (0, 1].
    ///
    /// Smaller `alpha` = longer memory. The first observation initialises the
    /// average directly.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feeds one observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Discards all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for &db in &[-20.0, -3.0, 0.0, 3.0, 10.0, 25.0] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_lin(10.0) - 10.0).abs() < 1e-12);
        assert!((amp_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn mean_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[]).is_nan());
    }

    #[test]
    fn percentile_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 25.0), 20.0);
        assert_eq!(percentile(&xs, 95.0), 48.0);
        assert_eq!(median(&xs), 30.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
    }

    #[test]
    fn cdf_fractions_monotone() {
        let xs = [0.3, 0.1, 0.2, 0.2];
        let cdf = Cdf::new(&xs);
        assert_eq!(cdf.len(), 4);
        assert_eq!(*cdf.fractions.last().unwrap(), 1.0);
        for w in cdf.fractions.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for w in cdf.values.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn cdf_fraction_at() {
        let cdf = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(1.0), 0.25);
        assert_eq!(cdf.fraction_at(2.5), 0.5);
        assert_eq!(cdf.fraction_at(4.0), 1.0);
        assert_eq!(cdf.fraction_at(100.0), 1.0);
    }

    #[test]
    fn cdf_ties_counted_fully() {
        let cdf = Cdf::new(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(cdf.fraction_at(1.0), 0.75);
    }

    #[test]
    fn cdf_quantile_matches_percentile() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let cdf = Cdf::new(&xs);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(0.95), percentile(&xs, 95.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn cdf_rejects_empty() {
        Cdf::new(&[]);
    }

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        assert!((w.variance() - variance(&xs)).abs() < 1e-12);
        assert!(w.sample_variance() > w.variance());
    }

    #[test]
    fn welford_empty_is_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
    }

    #[test]
    fn ewma_converges_to_constant() {
        let mut e = Ewma::new(0.2);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.update(3.0);
        }
        assert!((e.value().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_sample_initialises() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.update(5.0), 5.0);
        let v = e.update(6.0);
        assert!((v - 5.1).abs() < 1e-12);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }
}
