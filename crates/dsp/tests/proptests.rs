//! Property-based tests for the DSP substrate's core invariants.

use jmb_dsp::complex::{fit_linear_phase, wrap_phase};
use jmb_dsp::stats::{db_to_lin, lin_to_db, percentile, Cdf};
use jmb_dsp::{CMat, Complex64, FftPlan};
use proptest::prelude::*;

fn complex_strategy() -> impl Strategy<Value = Complex64> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #[test]
    fn complex_mul_commutes(a in complex_strategy(), b in complex_strategy()) {
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn complex_conj_distributes_over_mul(a in complex_strategy(), b in complex_strategy()) {
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn wrap_phase_is_idempotent_and_in_branch(theta in -1e4..1e4f64) {
        let w = wrap_phase(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-9 && w <= std::f64::consts::PI + 1e-9);
        prop_assert!((wrap_phase(w) - w).abs() < 1e-12);
        // Same phasor.
        prop_assert!((Complex64::cis(theta) - Complex64::cis(w)).abs() < 1e-9);
    }

    #[test]
    fn fft_roundtrip_any_signal(
        values in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 64)
    ) {
        let input: Vec<Complex64> = values.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let plan = FftPlan::new(64);
        let mut buf = input.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval(
        values in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 64)
    ) {
        let input: Vec<Complex64> = values.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let e_time: f64 = input.iter().map(|x| x.norm_sqr()).sum();
        let plan = FftPlan::new(64);
        let mut buf = input;
        plan.forward(&mut buf);
        let e_freq: f64 = buf.iter().map(|x| x.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((e_time - e_freq).abs() < 1e-6 * (1.0 + e_time));
    }

    #[test]
    fn matrix_inverse_roundtrip(
        entries in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 9)
    ) {
        let data: Vec<Complex64> = entries.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let m = CMat::from_vec(3, 3, data);
        // Skip (numerically) singular draws — inverse() must *reject* them,
        // never return garbage.
        match m.inverse() {
            Ok(inv) => {
                let prod = m.mul_mat(&inv).unwrap();
                prop_assert!(prod.is_identity(1e-6), "A·A⁻¹ not identity");
            }
            Err(_) => {
                // Singular is an acceptable verdict only if the matrix is
                // genuinely ill-conditioned.
                prop_assert!(m.condition_number() > 1e6 || m.frobenius_norm() < 1e-9);
            }
        }
    }

    #[test]
    fn hermitian_transpose_involution(
        entries in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 12)
    ) {
        let data: Vec<Complex64> = entries.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let m = CMat::from_vec(3, 4, data);
        prop_assert_eq!(m.hermitian().hermitian(), m);
    }

    #[test]
    fn cached_plan_fft_matches_naive_dft(
        values in prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 64)
    ) {
        // The plan-cache path must agree with the O(N²) oracle on any
        // signal, i.e. caching twiddles changes nothing numerically.
        let input: Vec<Complex64> = values.iter().map(|&(r, i)| Complex64::new(r, i)).collect();
        let oracle = jmb_dsp::fft::dft_naive(&input);
        let mut buf = input;
        jmb_dsp::fft_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&oracle) {
            prop_assert!((*a - *b).abs() < 1e-6, "cached FFT diverges from DFT oracle");
        }
    }

    #[test]
    fn mul_into_matches_mul_mat(
        dims in (1usize..5, 1usize..5, 1usize..5),
        a_entries in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 16),
        b_entries in prop::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 16),
    ) {
        let (m, k, n) = dims;
        let a = CMat::from_vec(
            m, k,
            a_entries.iter().cycle().take(m * k).map(|&(r, i)| Complex64::new(r, i)).collect(),
        );
        let b = CMat::from_vec(
            k, n,
            b_entries.iter().cycle().take(k * n).map(|&(r, i)| Complex64::new(r, i)).collect(),
        );
        let fresh = a.mul_mat(&b).unwrap();
        // Scratch deliberately starts with the wrong shape and stale
        // contents: mul_into must reshape and fully overwrite.
        let mut out = CMat::from_vec(1, 2, vec![Complex64::new(9.0, 9.0); 2]);
        a.mul_into(&b, &mut out).unwrap();
        prop_assert_eq!(&out, &fresh);
        // And reusing the same scratch again stays correct.
        a.mul_into(&b, &mut out).unwrap();
        prop_assert_eq!(&out, &fresh);
    }

    #[test]
    fn db_roundtrip(db in -80.0..80.0f64) {
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn percentile_bounded_by_extremes(
        xs in prop::collection::vec(-1e6..1e6f64, 1..200),
        p in 0.0..100.0f64
    ) {
        let v = percentile(&xs, p);
        let lo = xs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = xs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn cdf_monotone(xs in prop::collection::vec(-1e3..1e3f64, 1..100)) {
        let cdf = Cdf::new(&xs);
        for w in cdf.values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for w in cdf.fractions.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!((cdf.fractions.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_phase_fit_recovers_parameters(
        common in -3.0..3.0f64,
        slope in -0.2..0.2f64,
    ) {
        let ks: Vec<f64> = (-26..=26).filter(|&k| k != 0).map(|k| k as f64).collect();
        let phasors: Vec<Complex64> =
            ks.iter().map(|&k| Complex64::cis(common + slope * k)).collect();
        let (c, s) = fit_linear_phase(&ks, &phasors);
        prop_assert!((s - slope).abs() < 1e-9, "slope {} vs {}", s, slope);
        prop_assert!(wrap_phase(c - common).abs() < 1e-9, "common {} vs {}", c, common);
    }
}
