//! Diagnostics: severities, spans, and the human / JSON renderers.

use std::fmt;

/// How strongly a lint's findings gate the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but does not fail the run unless promoted with
    /// `--deny`.
    Warn,
    /// Gating: any deny-level diagnostic makes `jmb-lint` exit non-zero.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One finding, anchored to a `file:line:col` span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint that produced this finding (e.g. `no-panic-hot-path`).
    pub lint: &'static str,
    /// Effective severity (after any `--deny` promotion).
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it — always actionable, never empty.
    pub suggestion: String,
}

impl Diagnostic {
    /// `file:line:col` for sorting and display.
    pub fn span(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }

    /// The stable one-line human rendering.
    pub fn render_human(&self) -> String {
        format!(
            "{}: {} [{}] {}\n    suggestion: {}",
            self.span(),
            self.severity,
            self.lint,
            self.message,
            self.suggestion
        )
    }
}

/// Render a diagnostic batch as a JSON array (stable field order, no
/// trailing whitespace). Hand-rolled: the workspace vendors all
/// dependencies, so no serde.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"lint\":{},", json_str(d.lint)));
        out.push_str(&format!(
            "\"severity\":{},",
            json_str(&d.severity.to_string())
        ));
        out.push_str(&format!("\"file\":{},", json_str(&d.file)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"col\":{},", d.col));
        out.push_str(&format!("\"message\":{},", json_str(&d.message)));
        out.push_str(&format!("\"suggestion\":{}", json_str(&d.suggestion)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Render a diagnostic batch as paste-ready `jmb-allow` suppression lines
/// (`--fix-allow`): one line per finding, giving the file:line anchor and
/// the exact comment to put above it, with a reason stub the author must
/// replace. Allow-hygiene findings (`allow-syntax`, `unused-allow`) are
/// about suppression comments themselves and are skipped — suppressing a
/// suppression is never the fix.
pub fn render_fix_allow(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        if d.lint == "allow-syntax" || d.lint == "unused-allow" {
            continue;
        }
        out.push_str(&format!(
            "{}:{}: // jmb-allow({}): TODO(audit) — {}\n",
            d.file, d.line, d.lint, d.message
        ));
    }
    out
}

/// Escape a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        let d = Diagnostic {
            lint: "safety-comment",
            severity: Severity::Deny,
            file: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            message: "tab\there \"quoted\"".into(),
            suggestion: "back\\slash".into(),
        };
        let json = render_json(std::slice::from_ref(&d));
        assert!(json.contains(r#""message":"tab\there \"quoted\"""#));
        assert!(json.contains(r#""suggestion":"back\\slash""#));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn empty_batch_is_empty_array() {
        assert_eq!(render_json(&[]), "[]");
    }
}
