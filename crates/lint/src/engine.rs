//! The lint engine: file discovery, lint dispatch, suppression
//! application, and the allow-hygiene meta-lints.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, Severity};
use crate::lints;
use crate::source::SourceFile;
use crate::symbols::SymbolIndex;

/// Directory names never scanned, wherever they appear.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Paths (workspace-relative prefixes) excluded from scanning: the golden
/// fixtures are deliberately broken and must not fail the real tree.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Collect every `.rs` file under `root` that the lints apply to,
/// returning workspace-relative paths (forward slashes, sorted).
pub fn discover(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if !SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    out.push(path);
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Load and classify every discovered file.
pub fn load(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    discover(root)?
        .into_iter()
        .map(|path| {
            let src = fs::read_to_string(&path)?;
            Ok(SourceFile::new(rel_path(root, &path), src))
        })
        .collect()
}

/// Run every lint over `files`, apply suppressions, and append the
/// allow-hygiene meta-diagnostics. Returns diagnostics sorted by span.
///
/// This is the pure core — the binary wraps it with discovery and
/// rendering, tests and golden fixtures call it directly.
pub fn run(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    // The cross-file symbol pass runs once; every container lint resolves
    // names against it.
    let index = SymbolIndex::build(files);
    for f in files {
        lints::no_panic_hot_path(f, &mut raw);
        lints::no_wallclock_in_sim(f, &mut raw);
        lints::seeded_rng_only(f, &mut raw);
        lints::safety_comment(f, &mut raw);
        lints::doc_public_items(f, &mut raw);
        lints::no_unordered_iteration(f, &index, &mut raw);
        lints::float_reduction_order(f, &index, &mut raw);
        lints::no_ambient_parallelism(f, &mut raw);
    }
    lints::trace_taxonomy_complete(files, &mut raw);
    lints::ordered_merge(files, &mut raw);

    // Apply suppressions: an allow matches diagnostics of its lint on its
    // target line. Malformed allows never suppress.
    let mut out: Vec<Diagnostic> = Vec::new();
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new(); // (file, line, lint)
    for d in raw {
        let suppressed = files
            .iter()
            .find(|f| f.rel == d.file)
            .map(|f| {
                f.allows.iter().any(|a| {
                    a.has_reason
                        && lints::is_known_lint(&a.lint)
                        && a.lint == d.lint
                        && a.target_line == d.line
                })
            })
            .unwrap_or(false);
        if suppressed {
            used.insert((d.file.clone(), d.line, d.lint.to_string()));
        } else {
            out.push(d);
        }
    }

    // Allow hygiene: malformed, unknown-lint, and unused allows.
    for f in files {
        for a in &f.allows {
            if !a.has_reason {
                out.push(Diagnostic {
                    lint: "allow-syntax",
                    severity: lints::severity_of("allow-syntax"),
                    file: f.rel.clone(),
                    line: a.comment_line,
                    col: a.col,
                    message: "jmb-allow without a reason — the reason is the audit trail".into(),
                    suggestion: "write `// jmb-allow(lint-name): <why this site is exempt>`".into(),
                });
            } else if !lints::is_known_lint(&a.lint) {
                out.push(Diagnostic {
                    lint: "allow-syntax",
                    severity: lints::severity_of("allow-syntax"),
                    file: f.rel.clone(),
                    line: a.comment_line,
                    col: a.col,
                    message: format!("jmb-allow names unknown lint `{}`", a.lint),
                    suggestion: "run `jmb-lint --list` for the catalogue".into(),
                });
            } else if !used.contains(&(f.rel.clone(), a.target_line, a.lint.clone())) {
                out.push(Diagnostic {
                    lint: "unused-allow",
                    severity: lints::severity_of("unused-allow"),
                    file: f.rel.clone(),
                    line: a.comment_line,
                    col: a.col,
                    message: format!(
                        "jmb-allow({}) suppressed nothing on line {}",
                        a.lint, a.target_line
                    ),
                    suggestion: "delete the stale allow (or move it next to the site it \
                                 was meant to cover)"
                        .into(),
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    out
}

/// Promote every warning to deny (`--deny`).
pub fn promote(diags: &mut [Diagnostic]) {
    for d in diags {
        d.severity = Severity::Deny;
    }
}

/// Does the batch gate the build (any deny-level diagnostic)?
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, src: &str) -> Vec<Diagnostic> {
        run(&[SourceFile::new(rel.into(), src.into())])
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "fn f(v: Vec<u8>) -> u8 {\n    // jmb-allow(no-panic-hot-path): v is non-empty by construction\n    *v.first().unwrap()\n}\n";
        assert!(one("crates/core/src/fastnet.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected_and_does_not_suppress() {
        let src = "fn f(v: Vec<u8>) -> u8 {\n    // jmb-allow(no-panic-hot-path)\n    *v.first().unwrap()\n}\n";
        let d = one("crates/core/src/fastnet.rs", src);
        let lints: Vec<&str> = d.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"allow-syntax"));
        assert!(lints.contains(&"no-panic-hot-path"));
    }

    #[test]
    fn unknown_lint_name_is_rejected() {
        let src = "// jmb-allow(no-such-lint): because\nfn f() {}\n";
        let d = one("crates/dsp/src/fft.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "allow-syntax");
    }

    #[test]
    fn unused_allow_is_warned() {
        let src = "// jmb-allow(no-panic-hot-path): nothing here panics\nfn f() {}\n";
        let d = one("crates/core/src/fastnet.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].lint, "unused-allow");
        assert_eq!(d[0].severity, Severity::Warn);
        assert!(!has_deny(&d));
        let mut d = d;
        promote(&mut d);
        assert!(has_deny(&d));
    }

    #[test]
    fn wrong_lint_name_does_not_suppress_other_lint() {
        let src = "fn f(v: Vec<u8>) -> u8 {\n    // jmb-allow(no-wallclock-in-sim): wrong lint\n    *v.first().unwrap()\n}\n";
        let d = one("crates/core/src/fastnet.rs", src);
        let lints: Vec<&str> = d.iter().map(|d| d.lint).collect();
        assert!(lints.contains(&"no-panic-hot-path"));
        assert!(lints.contains(&"unused-allow"));
    }

    #[test]
    fn diagnostics_are_sorted_by_span() {
        let src = "fn f(v: Vec<u8>) { v.last().unwrap(); v.first().unwrap(); }\nfn g() { let t = Instant::now(); }\n";
        let d = one("crates/sim/src/medium.rs", src);
        let spans: Vec<(u32, u32)> = d.iter().map(|d| (d.line, d.col)).collect();
        let mut sorted = spans.clone();
        sorted.sort();
        assert_eq!(spans, sorted);
        assert_eq!(d.len(), 3);
    }
}
