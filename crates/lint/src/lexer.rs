//! A hand-rolled Rust token scanner.
//!
//! `jmb-lint` must not depend on `syn` (the build environment vendors every
//! dependency, and a full parse is unnecessary): every invariant the lint
//! registry checks is visible at the token level, provided strings, char
//! literals, lifetimes, and all four comment shapes are classified
//! correctly. The lexer therefore handles exactly the token surface that
//! matters for *not mis-firing*:
//!
//! * line comments `//`, outer docs `///`, inner docs `//!` (but `////…`
//!   is a plain comment, per rustc);
//! * block comments `/* … */` with nesting, outer docs `/** … */`, inner
//!   docs `/*! … */`;
//! * string literals with escapes, byte strings `b"…"`, raw strings
//!   `r"…"` / `r#"…"#` with any number of hashes, raw byte strings;
//! * char literals (including escaped, e.g. `'\''`) vs lifetimes (`'a`);
//! * raw identifiers `r#match`;
//! * numbers, without swallowing range operators (`0..n` lexes as three
//!   tokens).
//!
//! Everything else is a single-character punct. Tokens carry 1-based
//! line/column spans so diagnostics point at the offending token.

/// What a token is. Comment text and string contents are recoverable via
/// [`Token::text`] against the original source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `fn`, …). Raw
    /// identifiers (`r#match`) lex as `Ident` with the `r#` included in
    /// the span.
    Ident,
    /// A lifetime such as `'a` (also labels: `'outer:`).
    Lifetime,
    /// A char or byte-char literal: `'x'`, `b'\n'`.
    CharLit,
    /// A string literal of any flavour: `"…"`, `b"…"`, `r#"…"#`.
    StrLit,
    /// A numeric literal (integers, floats, with suffixes).
    Number,
    /// A single punctuation character.
    Punct(u8),
    /// A comment; `doc` distinguishes rustdoc comments.
    Comment {
        /// True for `/* … */` shapes, false for `// …` shapes.
        block: bool,
        /// True for `///`, `//!`, `/** … */`, `/*! … */`.
        doc: bool,
    },
}

/// One lexed token with its source span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True if this is the identifier `word`.
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// True if this is the punct `ch`.
    pub fn is_punct(&self, ch: u8) -> bool {
        self.kind == TokenKind::Punct(ch)
    }
}

/// Lex `src` into a token stream. Never fails: malformed input (e.g. an
/// unterminated string) lexes as a best-effort token running to the end of
/// the file — the lint engine works on real, compiling source, so error
/// recovery only has to be non-crashing, not clever.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, tracking line/col.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    // `//`, `///`, `//!`; `////…` is a plain comment.
                    let doc =
                        (self.peek(2) == b'/' && self.peek(3) != b'/') || self.peek(2) == b'!';
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::Comment { block: false, doc }, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    // `/* … */` with nesting; `/**` and `/*!` are docs,
                    // but `/**/` (empty) and `/***` are not.
                    let doc =
                        (self.peek(2) == b'*' && self.peek(3) != b'*' && self.peek(3) != b'/')
                            || self.peek(2) == b'!';
                    self.bump_n(2);
                    let mut depth = 1u32;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(TokenKind::Comment { block: true, doc }, start, line, col);
                }
                b'r' | b'b' if self.raw_or_byte_prefix() => {
                    // Handled fully inside raw_or_byte_prefix's caller:
                    // figure out which literal shape follows the prefix.
                    self.lex_prefixed_literal(start, line, col);
                }
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    while {
                        let p = self.peek(0);
                        p == b'_' || p.is_ascii_alphanumeric() || p >= 0x80
                    } {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => {
                    self.lex_number();
                    self.emit(TokenKind::Number, start, line, col);
                }
                b'\'' => self.lex_quote(start, line, col),
                b'"' => {
                    self.lex_string();
                    self.emit(TokenKind::StrLit, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct(c), start, line, col);
                }
            }
        }
        self.out
    }

    /// Does the `r`/`b` at the cursor start a raw/byte literal (as opposed
    /// to a plain identifier like `rate` or `bins`)?
    fn raw_or_byte_prefix(&self) -> bool {
        match self.peek(0) {
            b'r' => {
                // r"…", r#"…"#, r#ident, br"…" not reachable here (b first).
                matches!(self.peek(1), b'"' | b'#')
            }
            b'b' => match self.peek(1) {
                b'"' | b'\'' => true,
                b'r' => matches!(self.peek(2), b'"' | b'#'),
                _ => false,
            },
            _ => false,
        }
    }

    fn lex_prefixed_literal(&mut self, start: usize, line: u32, col: u32) {
        // Consume the prefix letters.
        if self.peek(0) == b'b' {
            self.bump();
            if self.peek(0) == b'\'' {
                self.lex_quote(start, line, col); // b'x' — byte char
                return;
            }
            if self.peek(0) == b'"' {
                self.lex_string();
                self.emit(TokenKind::StrLit, start, line, col);
                return;
            }
            // br…
            self.bump(); // the `r`
        } else {
            self.bump(); // the `r`
        }
        // Raw identifier r#ident (only for the bare-`r` case).
        if self.peek(0) == b'#' && (self.peek(1) == b'_' || self.peek(1).is_ascii_alphabetic()) {
            self.bump(); // '#'
            while {
                let p = self.peek(0);
                p == b'_' || p.is_ascii_alphanumeric() || p >= 0x80
            } {
                self.bump();
            }
            self.emit(TokenKind::Ident, start, line, col);
            return;
        }
        // Raw string: zero or more '#', then '"'.
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#` followed by something else — lex defensively as punct.
            self.emit(TokenKind::Punct(b'#'), start, line, col);
            return;
        }
        self.bump(); // opening quote
        'scan: while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                // Need exactly `hashes` '#' after the quote to close.
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        self.emit(TokenKind::StrLit, start, line, col);
    }

    /// Consume a `"…"` string body (cursor on the opening quote),
    /// honouring `\"` and `\\` escapes.
    fn lex_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    fn lex_number(&mut self) {
        // Leading digits (any radix — 0x… just consumes alnums).
        while {
            let p = self.peek(0);
            p == b'_' || p.is_ascii_alphanumeric()
        } {
            // Exponent sign: 1e-3, 2.5E+7.
            let p = self.peek(0);
            self.bump();
            if (p == b'e' || p == b'E') && matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
        }
        // A fractional part only if '.' is followed by a digit — keeps
        // `0..n` and `1.method()` from being swallowed.
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while {
                let p = self.peek(0);
                p == b'_' || p.is_ascii_alphanumeric()
            } {
                let p = self.peek(0);
                self.bump();
                if (p == b'e' || p == b'E') && matches!(self.peek(0), b'+' | b'-') {
                    self.bump();
                }
            }
        }
    }

    /// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal),
    /// starting at a `'` (or at the `b` of `b'x'`).
    fn lex_quote(&mut self, start: usize, line: u32, col: u32) {
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // the opening '
        let c = self.peek(0);
        if c == b'\\' {
            // Escaped char literal: consume escape then closing quote.
            self.bump();
            self.bump(); // escape body (covers \', \\, \n, and the x of \x7f)
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump(); // rest of \x7f or \u{…}
            }
            self.bump(); // closing '
            self.emit(TokenKind::CharLit, start, line, col);
        } else if (c == b'_' || c.is_ascii_alphabetic()) && self.peek(1) != b'\'' {
            // Lifetime: ident chars, no closing quote.
            while {
                let p = self.peek(0);
                p == b'_' || p.is_ascii_alphanumeric()
            } {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line, col);
        } else {
            // Char literal: one (possibly multibyte) char then closing '.
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump(); // closing '
            self.emit(TokenKind::CharLit, start, line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn comments_and_docs() {
        let toks = kinds("// plain\n/// doc\n//! inner\n//// not doc\ncode");
        assert_eq!(
            toks[0].0,
            TokenKind::Comment {
                block: false,
                doc: false
            }
        );
        assert_eq!(
            toks[1].0,
            TokenKind::Comment {
                block: false,
                doc: true
            }
        );
        assert_eq!(
            toks[2].0,
            TokenKind::Comment {
                block: false,
                doc: true
            }
        );
        assert_eq!(
            toks[3].0,
            TokenKind::Comment {
                block: false,
                doc: false
            }
        );
        assert_eq!(toks[4].1, "code");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still */ after";
        let toks = kinds(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].1, "/* outer /* inner */ still */");
        assert_eq!(toks[1].1, "after");
    }

    #[test]
    fn block_doc_comments() {
        assert_eq!(
            kinds("/** d */")[0].0,
            TokenKind::Comment {
                block: true,
                doc: true
            }
        );
        assert_eq!(
            kinds("/*! d */")[0].0,
            TokenKind::Comment {
                block: true,
                doc: true
            }
        );
        assert_eq!(
            kinds("/**/ x")[0].0,
            TokenKind::Comment {
                block: true,
                doc: false
            }
        );
    }

    #[test]
    fn unwrap_in_string_is_not_an_ident() {
        let src = r#"let s = "call .unwrap() here"; s.len()"#;
        assert!(!idents(src).contains(&"unwrap".to_string()));
        assert!(idents(src).contains(&"len".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " and unwrap() inside"# ; x"##;
        let toks = kinds(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::StrLit).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("unwrap"));
        assert!(!idents(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_string_embedded_quote_hash_run_shorter_than_delimiter() {
        let src = r###"r##"has "# inside"## end"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[0].1, r###"r##"has "# inside"##"###);
        assert_eq!(toks[1].1, "end");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(kinds(r#"b"bytes""#)[0].0, TokenKind::StrLit);
        assert_eq!(kinds(r##"br#"raw bytes"#"##)[0].0, TokenKind::StrLit);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::CharLit);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let q = '\\''; }";
        let toks = lex(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0].text(src), "'a'");
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("r#match r#unsafe normal");
        assert_eq!(toks[0].1, "r#match");
        assert_eq!(toks[1].1, "r#unsafe");
        assert_eq!(toks[2].1, "normal");
        assert!(toks.iter().all(|t| t.0 == TokenKind::Ident));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        assert!(idents("for i in 0..n_aps {}").contains(&"n_aps".to_string()));
        assert!(idents("1.max(2)").contains(&"max".to_string()));
        let toks = kinds("1.5e-3 0xff_u32 1_000");
        assert_eq!(toks[0].1, "1.5e-3");
        assert_eq!(toks[1].1, "0xff_u32");
        assert_eq!(toks[2].1, "1_000");
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_reaches_eof_without_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::StrLit);
    }

    #[test]
    fn turbofish_lexes_as_colon_colon_angle_sequence() {
        // The chain analysis in `symbols` back-walks `.sum::<f64>()`
        // expecting exactly `sum : : < f64 > ( )` — `::` is two single
        // colons, never a fused token, and `<`/`>` stay plain puncts.
        let toks = kinds("xs.iter().sum::<f64>()");
        let tail: Vec<&str> = toks.iter().map(|(_, s)| s.as_str()).collect();
        let sum_at = tail.iter().position(|&s| s == "sum").unwrap();
        assert_eq!(
            &tail[sum_at..],
            &["sum", ":", ":", "<", "f64", ">", "(", ")"]
        );
        assert!(toks[sum_at].0 == TokenKind::Ident);
        assert!(toks[sum_at + 4].0 == TokenKind::Ident); // f64 is an ident
    }

    #[test]
    fn method_chain_spans_point_at_each_method() {
        // Diagnostics anchor on the method ident, so every segment of a
        // multi-line chain must carry its own line/col.
        let src = "m.keys()\n    .copied()\n    .collect()";
        let toks = lex(src);
        let at = |name: &str| {
            toks.iter()
                .find(|t| t.kind == TokenKind::Ident && t.text(src) == name)
                .unwrap()
        };
        assert_eq!((at("keys").line, at("keys").col), (1, 3));
        assert_eq!((at("copied").line, at("copied").col), (2, 6));
        assert_eq!((at("collect").line, at("collect").col), (3, 6));
    }
}
