//! # jmb-lint — repo-invariant static analysis for the JMB workspace
//!
//! The workspace's correctness argument rests on invariants `rustc` and
//! clippy cannot see: sweeps must replay byte-identically across seeds
//! and `--threads` (so no wall-clock reads and no OS entropy in sim
//! code), the control plane must degrade instead of panic (so no
//! `unwrap`/`assert!` on hot paths — `JmbError` exists for a reason), and
//! the 19-variant trace taxonomy is only trustworthy if every variant is
//! both emitted and tested. `jmb-lint` makes those invariants machine
//! -checked: a zero-dependency token scanner ([`lexer`]) feeds a registry
//! of repo-specific lints ([`lints`]) whose findings gate CI.
//!
//! Design points:
//!
//! * **No `syn`.** The build environment vendors all dependencies, and
//!   every invariant here is visible at the token level once strings,
//!   char literals vs lifetimes, raw strings, and nested comments are
//!   classified correctly.
//! * **Suppressions are audit records.** `// jmb-allow(lint-name):
//!   reason` — the reason is mandatory, unknown lint names are errors,
//!   and an allow that suppresses nothing is itself reported, so the
//!   suppression set can only shrink.
//! * **Diagnostics are data.** Every finding carries a `file:line:col`
//!   span, a message, and an actionable suggestion, rendered human- or
//!   machine-readable (`--format json`, consumed by the CI artifact
//!   upload).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod source;
pub mod symbols;

pub use diag::{render_fix_allow, render_json, Diagnostic, Severity};
pub use source::SourceFile;
