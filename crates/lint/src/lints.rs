//! The lint registry: every repo invariant `jmb-lint` enforces.
//!
//! Each lint is a pure function from lexed sources to diagnostics. The
//! catalogue ([`LINTS`]) is the single source of truth for names,
//! default severities, and one-line descriptions (`--list` prints it;
//! DESIGN.md §3.10 documents the rationale for each entry).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::{
    analyze_chain, forward_ordering_adapter, local_unordered_bindings, SymbolIndex,
};

/// Catalogue entry for one lint.
pub struct LintInfo {
    /// Stable kebab-case name (used in `jmb-allow(...)`).
    pub name: &'static str,
    /// Default severity before any `--deny` promotion.
    pub severity: Severity,
    /// One-line description for `--list`.
    pub description: &'static str,
}

/// The full catalogue, in evaluation order.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "no-panic-hot-path",
        severity: Severity::Deny,
        description: "forbid unwrap/expect/panic!/unreachable!/todo!/unimplemented!/assert! in \
                      non-test hot-path code (fastnet, net, precoder, mac, csi, jmb-sim, \
                      jmb-traffic, jmb-scenario, phy decode chain); steer toward JmbError",
    },
    LintInfo {
        name: "no-wallclock-in-sim",
        severity: Severity::Deny,
        description: "forbid std::time::{SystemTime, Instant} and thread::sleep outside \
                      jmb-obs::span and crates/bench — simulated time must come from the \
                      event loop, never the host clock",
    },
    LintInfo {
        name: "seeded-rng-only",
        severity: Severity::Deny,
        description: "forbid rand::thread_rng/from_entropy/OsRng everywhere (tests included): \
                      all randomness flows from salted, seeded constructors",
    },
    LintInfo {
        name: "safety-comment",
        severity: Severity::Deny,
        description: "every `unsafe` block or fn must carry a `// SAFETY:` comment \
                      explaining why the contract holds",
    },
    LintInfo {
        name: "trace-taxonomy-complete",
        severity: Severity::Deny,
        description: "every EventKind variant must have an emission site outside jmb-obs \
                      and appear in at least one test",
    },
    LintInfo {
        name: "doc-public-items",
        severity: Severity::Deny,
        description: "every public item in jmb-core and jmb-obs must have a doc comment",
    },
    LintInfo {
        name: "no-unordered-iteration",
        severity: Severity::Deny,
        description: "forbid iterating/draining/collecting-from HashMap/HashSet (including \
                      re-exports, aliases, and fields resolved cross-file) in result-producing \
                      code of jmb-core/sim/traffic/city/obs/dsp unless routed through a sorted \
                      adapter or key-sorted loop",
    },
    LintInfo {
        name: "float-reduction-order",
        severity: Severity::Deny,
        description: "forbid .sum()/.product()/.fold() over unordered containers — \
                      floating-point reduction order must be pinned for byte-identical CSVs",
    },
    LintInfo {
        name: "no-ambient-parallelism",
        severity: Severity::Deny,
        description: "available_parallelism/JMB_THREADS may steer scheduling (SweepConfig \
                      defaults, bench CLIs) but must not flow into emitted values — forbidden \
                      outside crates/bench and the SweepConfig default",
    },
    LintInfo {
        name: "ordered-merge",
        severity: Severity::Deny,
        description: "every public `merge` fn on report/registry types must document its key \
                      order and be exercised by a test in its own crate",
    },
    LintInfo {
        name: "allow-syntax",
        severity: Severity::Deny,
        description: "jmb-allow comments must name a known lint and give a non-empty reason",
    },
    LintInfo {
        name: "unused-allow",
        severity: Severity::Warn,
        description: "a jmb-allow comment that suppressed nothing is stale and must be removed",
    },
];

/// Default severity for `name` (the catalogue is authoritative).
pub fn severity_of(name: &str) -> Severity {
    LINTS
        .iter()
        .find(|l| l.name == name)
        .map(|l| l.severity)
        .unwrap_or(Severity::Deny)
}

/// Is `name` a known lint (valid in `jmb-allow(...)`)?
pub fn is_known_lint(name: &str) -> bool {
    LINTS.iter().any(|l| l.name == name)
}

/// Files subject to `no-panic-hot-path`: the §4/§9 hot paths named in the
/// roadmap, all of `jmb-sim` and `jmb-traffic`, and the jmb-phy decode
/// chain (everything `frame::decode` touches).
fn is_hot_path(rel: &str) -> bool {
    const CORE_HOT: &[&str] = &[
        "crates/core/src/fastnet.rs",
        "crates/core/src/net.rs",
        "crates/core/src/precoder.rs",
        "crates/core/src/mac.rs",
        "crates/core/src/csi.rs",
    ];
    const PHY_DECODE: &[&str] = &[
        "crates/phy/src/frame.rs",
        "crates/phy/src/sync.rs",
        "crates/phy/src/ofdm.rs",
        "crates/phy/src/chanest.rs",
        "crates/phy/src/modulation.rs",
        "crates/phy/src/interleaver.rs",
        "crates/phy/src/convcode.rs",
        "crates/phy/src/viterbi.rs",
        "crates/phy/src/scrambler.rs",
        "crates/phy/src/crc.rs",
    ];
    CORE_HOT.contains(&rel)
        || PHY_DECODE.contains(&rel)
        || rel.starts_with("crates/sim/src/")
        || rel.starts_with("crates/traffic/src/")
        || rel.starts_with("crates/scenario/src/")
}

/// `no-panic-hot-path`: ban panicking constructs in non-test hot-path
/// code. `debug_assert*` is exempt (compiled out of release sweeps).
pub fn no_panic_hot_path(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !is_hot_path(&file.rel) || file.is_test_file() {
        return;
    }
    const PANIC_MACROS: &[&str] = &[
        "panic",
        "unreachable",
        "todo",
        "unimplemented",
        "assert",
        "assert_eq",
        "assert_ne",
    ];
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(tok);
        let next_is = |ch: u8| {
            file.next_significant(i)
                .is_some_and(|j| file.tokens[j].is_punct(ch))
        };
        if (name == "unwrap" || name == "expect")
            && next_is(b'(')
            && file
                .prev_significant(i)
                .is_some_and(|j| file.tokens[j].is_punct(b'.'))
        {
            out.push(Diagnostic {
                lint: "no-panic-hot-path",
                severity: severity_of("no-panic-hot-path"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!("`.{name}()` can panic in hot-path code"),
                suggestion: "propagate a typed `JmbError` (`ok_or`/`map_err` + `?`), or, if \
                             the call is provably infallible, annotate the line with \
                             `// jmb-allow(no-panic-hot-path): <the invariant>`"
                    .into(),
            });
        } else if PANIC_MACROS.contains(&name) && next_is(b'!') {
            out.push(Diagnostic {
                lint: "no-panic-hot-path",
                severity: severity_of("no-panic-hot-path"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!("`{name}!` panics in hot-path code"),
                suggestion: "return `JmbError::BadConfig`/a typed error for caller mistakes, \
                             use `debug_assert!` for internal invariants checked in CI, or \
                             annotate with `// jmb-allow(no-panic-hot-path): <the invariant>`"
                    .into(),
            });
        }
    }
}

/// `no-wallclock-in-sim`: the host clock must never influence simulated
/// behaviour. Only `jmb-obs::span` (explicitly wall-clock, kept out of
/// the event stream) and the `crates/bench` timing harnesses may read it.
/// Test code is exempt: a test that times itself cannot perturb results.
pub fn no_wallclock_in_sim(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if file.rel == "crates/obs/src/span.rs" || file.rel.starts_with("crates/bench/") {
        return;
    }
    let test_file = file.is_test_file();
    for (i, tok) in file.tokens.iter().enumerate() {
        if test_file || file.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(tok);
        let flagged = match name {
            "SystemTime" | "Instant" => true,
            "sleep" => {
                // Only `thread::sleep` — a local fn named `sleep` would
                // need the `thread ::` path prefix to be flagged.
                let p1 = file.prev_significant(i);
                let p0 = p1.and_then(|j| file.prev_significant(j));
                let p_1 = p0.and_then(|j| file.prev_significant(j));
                matches!((p_1, p0, p1), (Some(a), Some(b), Some(c))
                    if file.tokens[a].is_ident(&file.src, "thread")
                        && file.tokens[b].is_punct(b':')
                        && file.tokens[c].is_punct(b':'))
            }
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                lint: "no-wallclock-in-sim",
                severity: severity_of("no-wallclock-in-sim"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{name}` reads the host clock — simulation results must not depend on \
                     wall-clock time"
                ),
                suggestion: "drive time from the event loop (`advance`/simulated seconds); \
                             for kernel timing use `jmb_obs::span`, which never enters the \
                             event stream"
                    .into(),
            });
        }
    }
}

/// `seeded-rng-only`: every random draw must come from a salted, seeded
/// generator so runs replay byte-identically. Applies to tests too —
/// flaky tests are how determinism regressions slip in.
pub fn seeded_rng_only(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    const ENTROPY_SOURCES: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
    for tok in &file.tokens {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(tok);
        if ENTROPY_SOURCES.contains(&name) {
            out.push(Diagnostic {
                lint: "seeded-rng-only",
                severity: severity_of("seeded-rng-only"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!("`{name}` draws OS entropy — runs would no longer replay"),
                suggestion: "construct the generator from the experiment seed via the salted \
                             constructors (e.g. `SmallRng::seed_from_u64(salt(seed, …))`)"
                    .into(),
            });
        }
    }
}

/// `safety-comment`: an `unsafe` block or fn must justify itself with a
/// `// SAFETY:` comment immediately above or trailing on the same line.
pub fn safety_comment(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, tok) in file.tokens.iter().enumerate() {
        if !tok.is_ident(&file.src, "unsafe") {
            continue;
        }
        // Comments directly above the `unsafe` token (walk back through
        // a contiguous comment run).
        let mut justified = (0..i)
            .rev()
            .take_while(|&j| matches!(file.tokens[j].kind, TokenKind::Comment { .. }))
            .any(|j| file.text(&file.tokens[j]).contains("SAFETY:"));
        // Or a trailing comment on the same source line.
        justified |= file.tokens[i + 1..]
            .iter()
            .take_while(|t| t.line == tok.line)
            .any(|t| {
                matches!(t.kind, TokenKind::Comment { .. }) && t.text(&file.src).contains("SAFETY:")
            });
        if !justified {
            out.push(Diagnostic {
                lint: "safety-comment",
                severity: severity_of("safety-comment"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: "`unsafe` without a `// SAFETY:` comment".into(),
                suggestion: "state the specific contract being upheld (aliasing, bounds, \
                             initialization, …) in a `// SAFETY:` comment directly above \
                             the `unsafe` keyword"
                    .into(),
            });
        }
    }
}

/// `doc-public-items`: every `pub` item at module level (or in an
/// inherent impl) in `jmb-core` and `jmb-obs` needs a doc comment.
/// `pub(crate)` and friends are not public API; trait-impl items inherit
/// the trait's docs and are skipped.
pub fn doc_public_items(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !(file.rel.starts_with("crates/core/src/") || file.rel.starts_with("crates/obs/src/")) {
        return;
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Block {
        Mod,
        InherentImpl,
        Other,
    }
    let mut stack: Vec<Block> = vec![Block::Mod]; // file root behaves like a module
    let mut last_kw: Option<&str> = None;
    let mut impl_saw_for = false;
    const ITEM_KWS: &[&str] = &[
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "async",
        "unsafe", "extern",
    ];
    for (i, tok) in file.tokens.iter().enumerate() {
        match tok.kind {
            TokenKind::Punct(b'{') => {
                let block = match last_kw {
                    Some("mod") => Block::Mod,
                    Some("impl") if !impl_saw_for => Block::InherentImpl,
                    _ => Block::Other,
                };
                stack.push(block);
                last_kw = None;
                impl_saw_for = false;
            }
            TokenKind::Punct(b'}') => {
                if stack.len() > 1 {
                    stack.pop();
                }
                last_kw = None;
            }
            TokenKind::Punct(b';') | TokenKind::Punct(b'=') => last_kw = None,
            TokenKind::Ident => {
                let name = file.text(tok);
                match name {
                    "impl" => {
                        last_kw = Some("impl");
                        impl_saw_for = false;
                    }
                    "for" if last_kw == Some("impl") => impl_saw_for = true,
                    "mod" if last_kw != Some("impl") => last_kw = Some("mod"),
                    "fn" | "struct" | "enum" | "trait" | "match" | "if" | "while" | "loop"
                    | "move"
                        if last_kw != Some("impl") =>
                    {
                        last_kw = Some("");
                    }
                    "pub"
                        if !file.in_test[i]
                            && *stack.last().unwrap_or(&Block::Other) != Block::Other =>
                    {
                        check_pub_item(file, i, ITEM_KWS, out);
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// Shared tail of `doc_public_items`: given the index of a `pub` token in
/// item position, require a doc comment (or `#[doc…]` attribute) above it.
fn check_pub_item(file: &SourceFile, pub_idx: usize, item_kws: &[&str], out: &mut Vec<Diagnostic>) {
    let Some(next) = file.next_significant(pub_idx) else {
        return;
    };
    // `pub(crate)` / `pub(super)` — restricted visibility, not public API.
    if file.tokens[next].is_punct(b'(') {
        return;
    }
    let item_kw = file.text(&file.tokens[next]);
    if !item_kws.contains(&item_kw) {
        return; // `pub use` re-exports and anything unrecognised
    }
    if item_kw == "mod" {
        // `pub mod name;` (out-of-line): the module's documentation is the
        // `//!` header of its own file, which rustc's `missing_docs`
        // already attributes correctly — only inline `pub mod name { … }`
        // needs a doc comment at the declaration.
        let name = file.next_significant(next);
        let after = name.and_then(|j| file.next_significant(j));
        if after.is_some_and(|j| file.tokens[j].is_punct(b';')) {
            return;
        }
    }
    // Walk backwards over attributes and comments looking for a doc.
    let mut j = pub_idx;
    while let Some(prev) = j.checked_sub(1) {
        match file.tokens[prev].kind {
            TokenKind::Comment { doc: true, .. } => return, // documented
            TokenKind::Comment { doc: false, .. } => j = prev,
            TokenKind::Punct(b']') => {
                // Skip the attribute `#[ … ]` backwards; `#[doc = …]` or
                // `#[doc(hidden)]` counts as documentation.
                let mut depth = 0i32;
                let mut k = prev;
                let mut has_doc_attr = false;
                loop {
                    match file.tokens[k].kind {
                        TokenKind::Punct(b']') => depth += 1,
                        TokenKind::Punct(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident if file.text(&file.tokens[k]) == "doc" => {
                            has_doc_attr = true;
                        }
                        _ => {}
                    }
                    let Some(k2) = k.checked_sub(1) else { break };
                    k = k2;
                }
                if has_doc_attr {
                    return;
                }
                // Step over the leading `#` of the attribute.
                j = k.saturating_sub(1);
                if !file.tokens.get(j).is_some_and(|t| t.is_punct(b'#')) {
                    j = k;
                }
            }
            _ => break,
        }
    }
    let tok = &file.tokens[pub_idx];
    out.push(Diagnostic {
        lint: "doc-public-items",
        severity: severity_of("doc-public-items"),
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        message: format!("public `{item_kw}` has no doc comment"),
        suggestion: "add a `///` doc comment — state what the item does and, for fallible \
                     APIs, when it errors"
            .into(),
    });
}

/// `trace-taxonomy-complete`: cross-file. Parse the `EventKind` enum out
/// of `crates/obs/src/event.rs`, then require each variant to (a) be
/// constructed at least once outside `jmb-obs` in non-test code, and
/// (b) appear in at least one test (as an identifier or a string literal
/// — `TraceQuery::kind` matches by name string).
pub fn trace_taxonomy_complete(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    const EVENT_RS: &str = "crates/obs/src/event.rs";
    let Some(event_file) = files.iter().find(|f| f.rel == EVENT_RS) else {
        return; // not linting the full workspace (e.g. a fixture subset)
    };
    let variants = parse_event_kind_variants(event_file);
    for (variant, line, col) in &variants {
        let emitted = files.iter().any(|f| {
            !f.rel.starts_with("crates/obs/")
                && !f.is_test_file()
                && has_eventkind_ref(f, variant, false)
        });
        let tested = files.iter().any(|f| {
            let whole_file = f.is_test_file();
            f.tokens.iter().enumerate().any(|(i, t)| {
                (whole_file || f.in_test[i])
                    && match t.kind {
                        TokenKind::Ident => f.text(t) == variant,
                        TokenKind::StrLit => f.text(t).trim_matches('"') == variant,
                        _ => false,
                    }
            })
        });
        if !emitted {
            out.push(Diagnostic {
                lint: "trace-taxonomy-complete",
                severity: severity_of("trace-taxonomy-complete"),
                file: EVENT_RS.into(),
                line: *line,
                col: *col,
                message: format!(
                    "`EventKind::{variant}` is never emitted outside jmb-obs — a taxonomy \
                     entry nothing produces is dead vocabulary"
                ),
                suggestion: format!(
                    "emit `EventKind::{variant}` from the subsystem that owns the condition, \
                     or delete the variant"
                ),
            });
        }
        if !tested {
            out.push(Diagnostic {
                lint: "trace-taxonomy-complete",
                severity: severity_of("trace-taxonomy-complete"),
                file: EVENT_RS.into(),
                line: *line,
                col: *col,
                message: format!(
                    "`EventKind::{variant}` appears in no test — its emission conditions are \
                     unverified"
                ),
                suggestion: format!(
                    "assert the variant in a trace-replay test (e.g. \
                     `TraceQuery::kind(\"{variant}\")` with a count bound)"
                ),
            });
        }
    }
}

/// Extract `(name, line, col)` for each variant of `pub enum EventKind`.
fn parse_event_kind_variants(file: &SourceFile) -> Vec<(String, u32, u32)> {
    let toks = &file.tokens;
    let mut variants = Vec::new();
    // Find `enum EventKind {`.
    let Some(open) = (0..toks.len()).find_map(|i| {
        if toks[i].is_ident(&file.src, "enum")
            && file
                .next_significant(i)
                .is_some_and(|j| toks[j].is_ident(&file.src, "EventKind"))
        {
            let j = file.next_significant(i)?;
            let brace = file.next_significant(j)?;
            toks[brace].is_punct(b'{').then_some(brace)
        } else {
            None
        }
    }) else {
        return variants;
    };
    let mut depth = 1i32;
    let mut expecting_variant = true;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        match toks[i].kind {
            TokenKind::Punct(b'{') | TokenKind::Punct(b'(') => {
                depth += 1;
                expecting_variant = false;
            }
            TokenKind::Punct(b'}') | TokenKind::Punct(b')') => {
                depth -= 1;
            }
            TokenKind::Punct(b',') if depth == 1 => expecting_variant = true,
            TokenKind::Ident if depth == 1 && expecting_variant => {
                let t = &toks[i];
                variants.push((file.text(t).to_string(), t.line, t.col));
                expecting_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// Does `file` reference `EventKind::<variant>`? Honours local renames
/// (`use jmb_sim::EventKind as TraceKind;`). With `include_test` false,
/// test-region tokens don't count.
fn has_eventkind_ref(file: &SourceFile, variant: &str, include_test: bool) -> bool {
    // Local names for the enum: `EventKind` plus any `EventKind as X`.
    let mut names: Vec<&str> = vec!["EventKind"];
    for (i, t) in file.tokens.iter().enumerate() {
        if t.is_ident(&file.src, "EventKind") {
            if let Some(j) = file.next_significant(i) {
                if file.tokens[j].is_ident(&file.src, "as") {
                    if let Some(k) = file.next_significant(j) {
                        if file.tokens[k].kind == TokenKind::Ident {
                            names.push(file.text(&file.tokens[k]));
                        }
                    }
                }
            }
        }
    }
    file.tokens.iter().enumerate().any(|(i, t)| {
        if !include_test && file.in_test[i] {
            return false;
        }
        if !t.is_ident(&file.src, variant) {
            return false;
        }
        // Require an `EventKind ::` (or alias `::`) prefix.
        let p1 = file.prev_significant(i);
        let p0 = p1.and_then(|j| file.prev_significant(j));
        let p_1 = p0.and_then(|j| file.prev_significant(j));
        matches!((p_1, p0, p1), (Some(a), Some(b), Some(c))
            if file.tokens[a].kind == TokenKind::Ident
                && names.contains(&file.text(&file.tokens[a]))
                && file.tokens[b].is_punct(b':')
                && file.tokens[c].is_punct(b':'))
    })
}

/// Files whose computation can reach emitted results (CSVs, traces,
/// registries): the container-determinism lints apply here and nowhere
/// else. Bench harnesses format results but draw them from these crates.
fn is_result_producing(rel: &str) -> bool {
    const SCOPES: &[&str] = &[
        "crates/core/src/",
        "crates/sim/src/",
        "crates/traffic/src/",
        "crates/city/src/",
        "crates/obs/src/",
        "crates/dsp/src/",
    ];
    SCOPES.iter().any(|s| rel.starts_with(s))
}

/// Methods that observe a container in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// `no-unordered-iteration`: iterating a `HashMap`/`HashSet` (resolved
/// through the cross-file [`SymbolIndex`] — re-exports, type aliases, and
/// struct fields included) in result-producing code is a finding unless
/// the values are routed through an ordering adapter (`sort*`,
/// `collect::<BTree…>`) within the same expression.
pub fn no_unordered_iteration(file: &SourceFile, index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    if !is_result_producing(&file.rel) || file.is_test_file() {
        return;
    }
    let locals = local_unordered_bindings(file, index);
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(tok);
        // Method-call form: `<chain>.iter()` / `.drain(..)` / `.keys()`.
        if ITER_METHODS.contains(&name) {
            let called = file
                .next_significant(i)
                .is_some_and(|j| toks[j].is_punct(b'(') || toks[j].is_punct(b':'));
            let dotted = file
                .prev_significant(i)
                .is_some_and(|j| toks[j].is_punct(b'.'));
            if !(called && dotted) {
                continue;
            }
            let info = analyze_chain(file, i, index, &locals);
            if info.unordered && !info.ordered_adapter && !forward_ordering_adapter(file, i) {
                out.push(Diagnostic {
                    lint: "no-unordered-iteration",
                    severity: severity_of("no-unordered-iteration"),
                    file: file.rel.clone(),
                    line: tok.line,
                    col: tok.col,
                    message: format!(
                        "`.{name}()` on an unordered container — iteration order can reach \
                         emitted results"
                    ),
                    suggestion: "switch the container to BTreeMap/BTreeSet, sort the keys \
                                 before iterating, or — if order provably never reaches \
                                 output — annotate with \
                                 `// jmb-allow(no-unordered-iteration): <why>`"
                        .into(),
                });
            }
            continue;
        }
        // `for pat in <field path>` loop form (method-call receivers are
        // caught above; this covers bare `for k in self.index` sugar).
        if name == "for" {
            // `impl Trait for Type` and `for<'a>` are not loops.
            if file
                .next_significant(i)
                .is_some_and(|j| toks[j].is_punct(b'<'))
            {
                continue;
            }
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut in_idx = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => depth -= 1,
                    TokenKind::Punct(b'{') | TokenKind::Punct(b';') if depth == 0 => break,
                    TokenKind::Ident if depth == 0 && toks[j].is_ident(&file.src, "in") => {
                        in_idx = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let Some(in_idx) = in_idx else { continue };
            // Iterated expression: tokens to the loop-body `{`. Only the
            // bare path form (`&map`, `self.field`) is handled here.
            let mut expr: Vec<usize> = Vec::new();
            let mut k = in_idx + 1;
            let mut bare = true;
            while k < toks.len() {
                match toks[k].kind {
                    TokenKind::Punct(b'{') => break,
                    TokenKind::Punct(b'&') | TokenKind::Comment { .. } => {}
                    TokenKind::Ident if file.text(&toks[k]) == "mut" => {}
                    TokenKind::Ident => expr.push(k),
                    TokenKind::Punct(b'.') => {}
                    _ => {
                        bare = false;
                        break;
                    }
                }
                k += 1;
            }
            if !bare || expr.is_empty() {
                continue;
            }
            let hit = expr.iter().any(|&e| {
                let n = file.text(&toks[e]);
                n != "self" && (locals.contains(n) || index.unordered_fields.contains(n))
            });
            if hit {
                let t0 = &toks[in_idx];
                out.push(Diagnostic {
                    lint: "no-unordered-iteration",
                    severity: severity_of("no-unordered-iteration"),
                    file: file.rel.clone(),
                    line: t0.line,
                    col: t0.col,
                    message: "`for` loop over an unordered container — iteration order can \
                              reach emitted results"
                        .into(),
                    suggestion: "iterate a sorted key list (`let mut ks: Vec<_> = …; \
                                 ks.sort();`), switch to BTreeMap/BTreeSet, or annotate with \
                                 `// jmb-allow(no-unordered-iteration): <why>`"
                        .into(),
                });
            }
        }
    }
}

/// `float-reduction-order`: a floating-point `.sum()` / `.product()` /
/// `.fold()` whose chain originates in an unordered container accumulates
/// in nondeterministic order — the one FP hazard CSV byte-compares only
/// catch probabilistically.
pub fn float_reduction_order(file: &SourceFile, index: &SymbolIndex, out: &mut Vec<Diagnostic>) {
    if !is_result_producing(&file.rel) || file.is_test_file() {
        return;
    }
    const REDUCERS: &[&str] = &["sum", "product", "fold"];
    let locals = local_unordered_bindings(file, index);
    let toks = &file.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if file.in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        let name = file.text(tok);
        if !REDUCERS.contains(&name) {
            continue;
        }
        let called = file
            .next_significant(i)
            .is_some_and(|j| toks[j].is_punct(b'(') || toks[j].is_punct(b':'));
        let dotted = file
            .prev_significant(i)
            .is_some_and(|j| toks[j].is_punct(b'.'));
        if !(called && dotted) {
            continue;
        }
        let info = analyze_chain(file, i, index, &locals);
        if info.unordered && !info.ordered_adapter {
            out.push(Diagnostic {
                lint: "float-reduction-order",
                severity: severity_of("float-reduction-order"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`.{name}()` over an unordered container — floating-point accumulation \
                     order is nondeterministic"
                ),
                suggestion: "collect into a sorted container first (or sort a key list and \
                             index), so the reduction visits values in a pinned order"
                    .into(),
            });
        }
    }
}

/// `no-ambient-parallelism`: host parallelism may pick worker counts (the
/// `SweepConfig` default, bench CLIs) but must never flow into emitted
/// values. Everywhere else, reading `available_parallelism` or a
/// `JMB_THREADS`-style env knob is a finding.
pub fn no_ambient_parallelism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    // crates/bench: CLIs may default worker counts from the host.
    // experiment.rs: the one sanctioned `SweepConfig` default.
    // crates/lint: this tool necessarily spells the banned tokens.
    if file.rel.starts_with("crates/bench/")
        || file.rel.starts_with("crates/lint/")
        || file.rel == "crates/core/src/experiment.rs"
    {
        return;
    }
    if file.is_test_file() {
        return;
    }
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let flagged = match tok.kind {
            TokenKind::Ident => file.text(tok) == "available_parallelism",
            TokenKind::StrLit => file.text(tok).contains("JMB_THREADS"),
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                lint: "no-ambient-parallelism",
                severity: severity_of("no-ambient-parallelism"),
                file: file.rel.clone(),
                line: tok.line,
                col: tok.col,
                message: "ambient parallelism read outside the scheduling layer — host core \
                          counts must not influence emitted values"
                    .into(),
                suggestion: "take the worker count from `SweepConfig.parallelism` (or a CLI \
                             `--threads` flag plumbed through it); results must be identical \
                             at every parallelism level"
                    .into(),
            });
        }
    }
}

/// `ordered-merge` (cross-file): every public `merge` fn on the
/// report/registry crates must say in its doc comment what order it
/// combines shards in, and be exercised by at least one test in its own
/// crate — merge order is exactly where cross-shard FP nondeterminism
/// hides.
pub fn ordered_merge(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    const MERGE_SCOPES: &[&str] = &[
        "crates/obs/src/",
        "crates/traffic/src/",
        "crates/city/src/",
        "crates/core/src/",
    ];
    for file in files {
        if !MERGE_SCOPES.iter().any(|s| file.rel.starts_with(s)) || file.is_test_file() {
            continue;
        }
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if file.in_test[i] || !tok.is_ident(&file.src, "fn") {
                continue;
            }
            let Some(name_idx) = file.next_significant(i) else {
                continue;
            };
            if !toks[name_idx].is_ident(&file.src, "merge") {
                continue;
            }
            // Public API only: `pub fn merge` (not `pub(crate)`, not
            // private — those cannot leak unordered shards to callers).
            let Some(vis) = file.prev_significant(i) else {
                continue;
            };
            if !toks[vis].is_ident(&file.src, "pub") {
                continue;
            }
            let mtok = &toks[name_idx];
            if !merge_doc_mentions_order(file, vis) {
                out.push(Diagnostic {
                    lint: "ordered-merge",
                    severity: severity_of("ordered-merge"),
                    file: file.rel.clone(),
                    line: mtok.line,
                    col: mtok.col,
                    message: "public `merge` does not document its combination order".into(),
                    suggestion: "state the order in the doc comment (e.g. \"shards are \
                                 combined in key order\" / \"runs are pooled in slice \
                                 order\") — merge order is part of the determinism contract"
                        .into(),
                });
            }
            if !merge_tested_in_crate(files, &file.rel) {
                out.push(Diagnostic {
                    lint: "ordered-merge",
                    severity: severity_of("ordered-merge"),
                    file: file.rel.clone(),
                    line: mtok.line,
                    col: mtok.col,
                    message: "public `merge` is never exercised by a test in its crate".into(),
                    suggestion: "add a test that merges shards in two different orders and \
                                 asserts identical output (see \
                                 `Registry::merge_is_deterministic_pooling`)"
                        .into(),
                });
            }
        }
    }
}

/// Walk back from the item's first token (`pub`) over attributes and
/// comments; true if a doc comment exists and mentions "order".
fn merge_doc_mentions_order(file: &SourceFile, item_start: usize) -> bool {
    let toks = &file.tokens;
    let mut j = item_start;
    let mut doc = String::new();
    while let Some(prev) = j.checked_sub(1) {
        match toks[prev].kind {
            TokenKind::Comment { doc: true, .. } => {
                doc.push_str(file.text(&toks[prev]));
                doc.push('\n');
                j = prev;
            }
            TokenKind::Comment { doc: false, .. } => j = prev,
            TokenKind::Punct(b']') => {
                // Skip an attribute `#[…]` backwards.
                let mut depth = 0i32;
                let mut k = prev;
                loop {
                    match toks[k].kind {
                        TokenKind::Punct(b']') => depth += 1,
                        TokenKind::Punct(b'[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    let Some(k2) = k.checked_sub(1) else { break };
                    k = k2;
                }
                j = k.saturating_sub(1);
                if !toks.get(j).is_some_and(|t| t.is_punct(b'#')) {
                    j = k;
                }
            }
            _ => break,
        }
    }
    !doc.is_empty() && doc.to_lowercase().contains("order")
}

/// Is a `merge` call (`.merge(` or `::merge(`) present in test code of the
/// same crate as `rel` (its `#[cfg(test)]` regions, its `tests/` tree, or
/// the workspace-level `tests/` directory)?
fn merge_tested_in_crate(files: &[SourceFile], rel: &str) -> bool {
    let crate_prefix = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .map(|c| format!("crates/{c}/"));
    files.iter().any(|f| {
        let same_crate = match &crate_prefix {
            Some(p) => f.rel.starts_with(p.as_str()),
            None => false,
        };
        let workspace_tests = f.rel.starts_with("tests/");
        if !(same_crate || workspace_tests) {
            return false;
        }
        let whole_file = f.is_test_file();
        f.tokens.iter().enumerate().any(|(i, t)| {
            (whole_file || f.in_test[i])
                && t.is_ident(&f.src, "merge")
                && f.prev_significant(i)
                    .is_some_and(|j| f.tokens[j].is_punct(b'.') || f.tokens[j].is_punct(b':'))
                && f.next_significant(i)
                    .is_some_and(|j| f.tokens[j].is_punct(b'('))
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_for(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(rel.into(), src.into());
        let mut out = Vec::new();
        no_panic_hot_path(&f, &mut out);
        no_wallclock_in_sim(&f, &mut out);
        seeded_rng_only(&f, &mut out);
        safety_comment(&f, &mut out);
        doc_public_items(&f, &mut out);
        out
    }

    #[test]
    fn hot_path_unwrap_flagged_only_in_hot_files() {
        let src = "fn f(v: Vec<u8>) -> u8 { v.first().unwrap().clone() }";
        assert_eq!(diags_for("crates/core/src/fastnet.rs", src).len(), 1);
        assert_eq!(diags_for("crates/core/src/experiment.rs", src).len(), 0);
    }

    #[test]
    fn unwrap_in_test_mod_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(v: Vec<u8>) { v.first().unwrap(); }\n}";
        assert!(diags_for("crates/core/src/fastnet.rs", src).is_empty());
    }

    #[test]
    fn debug_assert_is_exempt_but_assert_is_not() {
        let src = "fn f(n: usize) { debug_assert_eq!(n, 1); assert_eq!(n, 1); }";
        let d = diags_for("crates/sim/src/medium.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("assert_eq"));
    }

    #[test]
    fn field_named_expect_is_not_a_call() {
        // `expect` not preceded by `.` or not followed by `(` must not fire.
        let src = "struct S { expect: u8 }\nfn f(s: S) -> u8 { s.expect }";
        assert!(diags_for("crates/core/src/mac.rs", src).is_empty());
    }

    #[test]
    fn wallclock_flagged_outside_span_and_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(diags_for("crates/sim/src/medium.rs", src).len(), 1);
        assert!(diags_for("crates/bench/src/bin/perf.rs", src).is_empty());
        assert!(diags_for("crates/obs/src/span.rs", src).is_empty());
    }

    #[test]
    fn thread_sleep_flagged_but_other_sleep_not() {
        let src = "fn f() { std::thread::sleep(d); }";
        assert_eq!(diags_for("crates/traffic/src/sim.rs", src).len(), 1);
        let ok = "fn f(radio: &mut Radio) { radio.sleep(); }";
        assert!(diags_for("crates/traffic/src/sim.rs", ok).is_empty());
    }

    #[test]
    fn entropy_rng_flagged_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let mut r = rand::thread_rng(); }\n}";
        assert_eq!(diags_for("crates/dsp/src/rng.rs", src).len(), 1);
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(diags_for("crates/dsp/src/fft.rs", bad).len(), 1);
        let good = "fn f(p: *const u8) -> u8 {\n // SAFETY: p is valid for reads; caller contract\n unsafe { *p }\n}";
        assert!(diags_for("crates/dsp/src/fft.rs", good).is_empty());
        let trailing = "fn f(p: *const u8) -> u8 { unsafe { *p } // SAFETY: caller contract\n}";
        assert!(diags_for("crates/dsp/src/fft.rs", trailing).is_empty());
    }

    #[test]
    fn pub_item_without_doc_flagged_in_core_only() {
        let src = "pub fn undocumented() {}";
        assert_eq!(diags_for("crates/core/src/csi.rs", src).len(), 1);
        assert!(diags_for("crates/phy/src/ofdm.rs", src).is_empty());
        let documented = "/// Does the thing.\npub fn documented() {}";
        assert!(diags_for("crates/core/src/csi.rs", documented).is_empty());
        let derived = "/// Doc.\n#[derive(Clone)]\npub struct S;";
        assert!(diags_for("crates/core/src/csi.rs", derived).is_empty());
    }

    #[test]
    fn pub_crate_and_trait_impls_are_exempt() {
        let src = "pub(crate) fn internal() {}\nimpl std::fmt::Display for S {\n    pub fn weird() {}\n    fn fmt(&self) {}\n}";
        assert!(diags_for("crates/obs/src/event.rs", src).is_empty());
    }

    #[test]
    fn inherent_impl_pub_fn_needs_doc() {
        let src = "/// S.\npub struct S;\nimpl S {\n    pub fn no_doc(&self) {}\n}";
        let d = diags_for("crates/obs/src/registry.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("fn"));
    }

    #[test]
    fn taxonomy_detects_unemitted_and_untested_variants() {
        let event = SourceFile::new(
            "crates/obs/src/event.rs".into(),
            "/// K.\npub enum EventKind {\n /// A.\n Used { n: usize },\n /// B.\n Orphan,\n}"
                .into(),
        );
        let emitter = SourceFile::new(
            "crates/sim/src/medium.rs".into(),
            "fn f(t: &Trace) { t.record(EventKind::Used { n: 1 }); }".into(),
        );
        let test = SourceFile::new(
            "tests/observability.rs".into(),
            "fn check(q: Q) { q.kind(\"Used\").assert_count_between(1, 9); }".into(),
        );
        let mut out = Vec::new();
        trace_taxonomy_complete(&[event, emitter, test], &mut out);
        // `Used` is emitted and tested; `Orphan` is neither → 2 findings.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.message.contains("Orphan")));
    }

    fn container_diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(rel.into(), src.into());
        let idx = SymbolIndex::build(std::slice::from_ref(&f));
        let mut out = Vec::new();
        no_unordered_iteration(&f, &idx, &mut out);
        float_reduction_order(&f, &idx, &mut out);
        out
    }

    #[test]
    fn hashmap_iteration_flagged_in_result_scope_only() {
        let src = "fn f(m: &HashMap<u32, f64>) { for (k, v) in m.iter() { emit(*k, *v); } }";
        assert_eq!(container_diags("crates/traffic/src/sim.rs", src).len(), 1);
        assert!(container_diags("crates/bench/src/sweeps.rs", src).is_empty());
        assert!(container_diags("crates/traffic/tests/x.rs", src).is_empty());
    }

    #[test]
    fn sorted_adapter_and_btreemap_are_clean() {
        let sorted = "fn f(m: &HashMap<u32, f64>) -> Vec<u32> { let mut ks: Vec<u32> = \
                      m.keys().copied().collect::<BTreeSet<_>>().into_iter().collect(); ks }";
        assert!(container_diags("crates/core/src/net.rs", sorted).is_empty());
        let btree = "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum() }";
        assert!(container_diags("crates/core/src/net.rs", btree).is_empty());
    }

    #[test]
    fn float_sum_over_hashset_flagged_with_turbofish() {
        let src = "fn f(s: &HashSet<u64>) -> f64 { s.iter().map(|x| *x as f64).sum::<f64>() }";
        let d = container_diags("crates/city/src/city.rs", src);
        // `.iter()` and `.sum::<f64>()` both fire.
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|d| d.lint == "float-reduction-order"));
    }

    #[test]
    fn for_loop_over_unordered_field_flagged() {
        let src = "struct S { idx: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for k in &self.idx { emit(k); } } }";
        let d = container_diags("crates/obs/src/registry.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("for"));
    }

    #[test]
    fn keyed_access_without_iteration_is_clean() {
        let src = "fn f(m: &mut HashMap<u64, f64>, k: u64) -> Option<f64> { \
                   m.insert(k, 1.0); m.remove(&k) }";
        assert!(container_diags("crates/traffic/src/sim.rs", src).is_empty());
    }

    #[test]
    fn ambient_parallelism_flagged_outside_scheduling_layer() {
        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }";
        let mut out = Vec::new();
        no_ambient_parallelism(
            &SourceFile::new("crates/traffic/src/sim.rs".into(), src.into()),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        out.clear();
        no_ambient_parallelism(
            &SourceFile::new("crates/core/src/experiment.rs".into(), src.into()),
            &mut out,
        );
        assert!(out.is_empty());
        out.clear();
        no_ambient_parallelism(
            &SourceFile::new("crates/bench/src/sweeps.rs".into(), src.into()),
            &mut out,
        );
        assert!(out.is_empty());
        let env = "fn f() -> String { std::env::var(\"JMB_THREADS\").unwrap_or_default() }";
        out.clear();
        no_ambient_parallelism(
            &SourceFile::new("crates/city/src/city.rs".into(), env.into()),
            &mut out,
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn ordered_merge_requires_doc_order_and_same_crate_test() {
        let undocumented = SourceFile::new(
            "crates/city/src/report.rs".into(),
            "/// Pools shard reports.\npub struct R;\nimpl R {\n    /// Pools counters.\n    pub fn merge(&mut self, o: &R) {}\n}\n".into(),
        );
        let good = SourceFile::new(
            "crates/obs/src/reg2.rs".into(),
            "/// Registry.\npub struct G;\nimpl G {\n    /// Combines shards in key order.\n    pub fn merge(&mut self, o: &G) {}\n}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let mut g = super::G; g.merge(&super::G); }\n}\n".into(),
        );
        let mut out = Vec::new();
        ordered_merge(&[undocumented, good], &mut out);
        // report.rs: doc lacks "order" AND no test in crates/city → 2.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.file == "crates/city/src/report.rs"));
    }

    #[test]
    fn private_merge_is_exempt() {
        let f = SourceFile::new(
            "crates/obs/src/h.rs".into(),
            "struct H;\nimpl H {\n    fn merge(&mut self, o: &H) {}\n}\n".into(),
        );
        let mut out = Vec::new();
        ordered_merge(std::slice::from_ref(&f), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn taxonomy_variant_parser_handles_payloads() {
        let event = SourceFile::new(
            "crates/obs/src/event.rs".into(),
            "pub enum EventKind {\n A { x: Vec<(usize, f64)> },\n B(usize),\n C,\n}".into(),
        );
        let v = parse_event_kind_variants(&event);
        let names: Vec<&str> = v.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }
}
