//! `jmb-lint` — run the repo-invariant lints over the workspace.
//!
//! ```text
//! jmb-lint [--deny] [--format human|json] [--root <dir>] [--list]
//! ```
//!
//! Exit status: 0 when no gating diagnostic remains, 1 otherwise, 2 on
//! usage or I/O errors. `--deny` promotes warnings (e.g. `unused-allow`)
//! to deny, which is how CI runs it.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use jmb_lint::{engine, lints, render_fix_allow, render_json};

/// Print to stdout, treating a closed pipe (`jmb-lint --list | head`) as a
/// clean early exit rather than a panic.
fn out(line: std::fmt::Arguments<'_>) {
    if writeln!(std::io::stdout(), "{line}").is_err() {
        std::process::exit(0);
    }
}

const USAGE: &str = "\
jmb-lint: repo-invariant static analysis for the JMB workspace

USAGE:
    jmb-lint [OPTIONS]

OPTIONS:
    --deny             promote warnings to deny (CI mode); exit 1 on any finding
    --format <fmt>     output format: human (default) | json
    --fix-allow        dry-run burn-down helper: print one paste-ready
                       `jmb-allow` suppression line per finding instead of
                       diagnostics (reason stub included; same exit status)
    --root <dir>       workspace root (default: walk up from cwd to the
                       directory whose Cargo.toml declares [workspace])
    --list             print the lint catalogue and exit
    -h, --help         this text

Suppression: `// jmb-allow(lint-name): reason` on the offending line or the
line above. The reason is mandatory; stale allows are reported.";

fn main() -> ExitCode {
    let mut deny = false;
    let mut fix_allow = false;
    let mut format = String::from("human");
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--fix-allow" => fix_allow = true,
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                _ => return usage_error("--format takes `human` or `json`"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root takes a directory"),
            },
            "--list" => {
                for l in lints::LINTS {
                    out(format_args!(
                        "{:<24} {:<5} {}",
                        l.name, l.severity, l.description
                    ));
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                out(format_args!("{USAGE}"));
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("jmb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let files = match engine::load(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "jmb-lint: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let mut diags = engine::run(&files);
    if deny {
        engine::promote(&mut diags);
    }

    if fix_allow {
        let text = render_fix_allow(&diags);
        if !text.is_empty() {
            out(format_args!("{}", text.trim_end()));
        }
    } else if format == "json" {
        out(format_args!("{}", render_json(&diags)));
    } else {
        for d in &diags {
            out(format_args!("{}", d.render_human()));
        }
        out(format_args!(
            "jmb-lint: {} file(s) scanned, {} finding(s)",
            files.len(),
            diags.len()
        ));
    }

    if engine::has_deny(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("jmb-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the current directory to the workspace root (the
/// Cargo.toml that declares `[workspace]`).
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}
