//! A lexed source file plus the two derived facts every lint needs:
//! which tokens are test code, and which lines carry `jmb-allow`
//! suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// A `jmb-allow` suppression comment, parsed.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint being suppressed.
    pub lint: String,
    /// Line of the comment itself.
    pub comment_line: u32,
    /// Column of the comment.
    pub col: u32,
    /// The line whose diagnostics this allow covers.
    pub target_line: u32,
    /// False if the mandatory `: reason` part is missing or empty.
    pub has_reason: bool,
}

/// One lexed, classified source file.
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel: String,
    /// Full source text.
    pub src: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` is inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: Vec<bool>,
    /// Parsed `jmb-allow` comments.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Lex and classify `src` as file `rel`.
    pub fn new(rel: String, src: String) -> Self {
        let tokens = lex(&src);
        let in_test = test_mask(&src, &tokens);
        let allows = parse_allows(&src, &tokens);
        SourceFile {
            rel,
            src,
            tokens,
            in_test,
            allows,
        }
    }

    /// Is this file test-only by location (an integration-test tree or an
    /// example)? Files under any `tests/` directory are test code in
    /// their entirety.
    pub fn is_test_file(&self) -> bool {
        self.rel.starts_with("tests/") || self.rel.contains("/tests/")
    }

    /// Token text shorthand.
    pub fn text(&self, tok: &Token) -> &str {
        tok.text(&self.src)
    }

    /// Index of the previous non-comment token before `i`, if any.
    pub fn prev_significant(&self, i: usize) -> Option<usize> {
        (0..i)
            .rev()
            .find(|&j| !matches!(self.tokens[j].kind, TokenKind::Comment { .. }))
    }

    /// Index of the next non-comment token after `i`, if any.
    pub fn next_significant(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len())
            .find(|&j| !matches!(self.tokens[j].kind, TokenKind::Comment { .. }))
    }
}

/// Mark every token that lives under a `#[cfg(test)]` or `#[test]`
/// attribute (the attribute's item, through its closing `}` or `;`).
/// `#[cfg(not(test))]` does *not* count as test code.
fn test_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    let mut pending_test = false;
    while i < tokens.len() {
        if tokens[i].is_punct(b'#') && tokens.get(i + 1).is_some_and(|t| t.is_punct(b'[')) {
            // Scan the attribute to its matching `]`.
            let attr_start = i;
            let mut depth = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if is_test_attr(src, &tokens[attr_start..=j.min(tokens.len() - 1)]) {
                pending_test = true;
                for t in &mut mask[attr_start..=j.min(tokens.len() - 1)] {
                    *t = true;
                }
            }
            i = j + 1;
            continue;
        }
        if pending_test && !matches!(tokens[i].kind, TokenKind::Comment { .. }) {
            // The attributed item: everything up to its closing `;` (for
            // `use`/`struct X;` forms) or through its matched `{ … }`.
            let item_start = i;
            let mut depth = 0i32;
            let mut j = i;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokenKind::Punct(b'{') => depth += 1,
                    TokenKind::Punct(b'}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Punct(b';') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            for t in &mut mask[item_start..=j.min(tokens.len() - 1)] {
                *t = true;
            }
            pending_test = false;
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Does an attribute token slice (`#` `[` … `]`) gate test code?
fn is_test_attr(src: &str, attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text(src))
        .collect();
    // `#[test]` (possibly `#[tokio::test]`-shaped in other repos).
    if idents.last() == Some(&"test") && !idents.contains(&"cfg") {
        return true;
    }
    // `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not `#[cfg(not(test))]`.
    if idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not") {
        return true;
    }
    false
}

/// Parse `// jmb-allow(lint-name): reason` comments. A trailing comment
/// covers its own line; a standalone comment line covers the next line
/// that holds actual code (skipping further standalone allow lines, so
/// allows stack).
fn parse_allows(src: &str, tokens: &[Token]) -> Vec<Allow> {
    let mut allows: Vec<Allow> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let TokenKind::Comment { doc: false, .. } = tok.kind else {
            continue;
        };
        let text = tok.text(src);
        let body = text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start();
        let Some(rest) = body.strip_prefix("jmb-allow") else {
            continue;
        };
        let (lint, has_reason) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((name, tail)) => {
                let tail = tail.trim_end_matches("*/").trim();
                let reason_ok = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
                (name.trim().to_string(), reason_ok)
            }
            // `jmb-allow` with no parseable `(lint-name)` — keep it, the
            // engine reports it as malformed rather than silently inert.
            None => (String::new(), false),
        };
        // Trailing (code earlier on the same line) or standalone?
        let standalone = !tokens[..i]
            .iter()
            .any(|t| t.line == tok.line && !matches!(t.kind, TokenKind::Comment { .. }));
        allows.push(Allow {
            lint,
            comment_line: tok.line,
            col: tok.col,
            target_line: if standalone { 0 } else { tok.line },
            has_reason,
        });
    }
    // Resolve standalone allows: target the next line that carries any
    // token other than further allow comments.
    let allow_lines: std::collections::BTreeSet<u32> = allows
        .iter()
        .filter(|a| a.target_line == 0)
        .map(|a| a.comment_line)
        .collect();
    for a in &mut allows {
        if a.target_line != 0 {
            continue;
        }
        a.target_line = tokens
            .iter()
            .filter(|t| t.line > a.comment_line && !allow_lines.contains(&t.line))
            .map(|t| t.line)
            .next()
            .unwrap_or(a.comment_line);
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), src.into())
    }

    fn test_idents(f: &SourceFile) -> Vec<String> {
        f.tokens
            .iter()
            .zip(&f.in_test)
            .filter(|(t, &m)| m && t.kind == TokenKind::Ident)
            .map(|(t, _)| f.text(t).to_string())
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let f =
            file("fn hot() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\nfn also_hot() {}");
        let ids = test_idents(&f);
        assert!(ids.contains(&"helper".to_string()));
        assert!(!ids.contains(&"hot".to_string()));
        assert!(!ids.contains(&"also_hot".to_string()));
    }

    #[test]
    fn test_fn_is_masked_but_not_cfg_not_test() {
        let f = file("#[test]\nfn a_case() {}\n#[cfg(not(test))]\nfn production() {}");
        let ids = test_idents(&f);
        assert!(ids.contains(&"a_case".to_string()));
        assert!(!ids.contains(&"production".to_string()));
    }

    #[test]
    fn stacked_attributes_and_semicolon_items() {
        let f = file("#[cfg(test)]\nuse std::collections::HashMap;\nfn hot() {}");
        let ids = test_idents(&f);
        assert!(ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"hot".to_string()));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let f = file("let x = v.pop(); // jmb-allow(no-panic-hot-path): checked above\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].target_line, 1);
        assert!(f.allows[0].has_reason);
        assert_eq!(f.allows[0].lint, "no-panic-hot-path");
    }

    #[test]
    fn standalone_allows_stack_onto_next_code_line() {
        let f = file(
            "// jmb-allow(no-panic-hot-path): invariant A\n// jmb-allow(no-wallclock-in-sim): invariant B\nlet x = 1;\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].target_line, 3);
        assert_eq!(f.allows[1].target_line, 3);
    }

    #[test]
    fn reasonless_allow_is_flagged() {
        let f = file("// jmb-allow(safety-comment)\nunsafe { }\n");
        assert_eq!(f.allows.len(), 1);
        assert!(!f.allows[0].has_reason);
        let g = file("// jmb-allow(safety-comment):   \nunsafe { }\n");
        assert!(!g.allows[0].has_reason);
    }

    #[test]
    fn doc_comments_never_parse_as_allows() {
        let f = file("/// jmb-allow(no-panic-hot-path): doc text, not a suppression\nfn f() {}\n");
        assert!(f.allows.is_empty());
    }
}
