//! Cross-file symbol resolution for the determinism lints.
//!
//! The per-file token lints in [`crate::lints`] can see `HashMap` spelled
//! out, but not a re-export (`pub use std::collections::HashMap as
//! FastMap`), a type alias (`type PlanCache = HashMap<usize, Plan>`), or a
//! struct field declared with an unordered type in another file and
//! iterated via `self.field`. [`SymbolIndex`] closes that gap: it is built
//! once per engine run over the whole workspace token stream and records
//! every name that denotes an unordered container, plus every struct field
//! whose declared type is one. The container lints
//! (`no-unordered-iteration`, `float-reduction-order`) then resolve method
//! chains against the index instead of against literal token text.
//!
//! The index is deliberately an over-approximation: it matches by *name*,
//! not by type-checked path, so a field named `meta` declared as a
//! `HashMap` anywhere marks every `self.meta` in the workspace. That is
//! the right trade for a determinism ratchet — false positives are
//! silenced with an audited `jmb-allow` reason, while a false negative
//! would let nondeterministic iteration reach a CSV.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Workspace-wide name facts, built once per engine run.
pub struct SymbolIndex {
    /// Type names that denote an unordered container: the std seeds
    /// (`HashMap`, `HashSet`) closed over `use … as` renames, `pub use`
    /// re-exports, and `type X = …` aliases (to a fixpoint, so alias
    /// chains resolve).
    pub unordered_types: BTreeSet<String>,
    /// Struct field names declared with an unordered type anywhere in the
    /// workspace; lets chain analysis flag `self.field.iter()` across
    /// files.
    pub unordered_fields: BTreeSet<String>,
}

impl SymbolIndex {
    /// Build the index over all workspace sources.
    pub fn build(files: &[SourceFile]) -> SymbolIndex {
        let mut types: BTreeSet<String> = ["HashMap", "HashSet"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // Close aliases and re-exports to a fixpoint: `type A = HashMap<…>`
        // then `type B = A` both land in the set regardless of file order.
        loop {
            let before = types.len();
            for f in files {
                collect_aliases(f, &mut types);
            }
            if types.len() == before {
                break;
            }
        }
        let mut fields = BTreeSet::new();
        for f in files {
            collect_struct_fields(f, &types, &mut fields);
        }
        SymbolIndex {
            unordered_types: types,
            unordered_fields: fields,
        }
    }

    /// Is `name` a known unordered container type (or alias of one)?
    pub fn is_unordered_type(&self, name: &str) -> bool {
        self.unordered_types.contains(name)
    }
}

/// Add to `types` every name aliased to a known unordered type in `f`:
/// `use … X as Y;` (including `pub use` re-exports) and `type Y = …X…;`.
fn collect_aliases(f: &SourceFile, types: &mut BTreeSet<String>) {
    let toks = &f.tokens;
    let mut added: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = f.text(t);
        // `<unordered> as <new-name>` — covers `use` renames and re-exports.
        if types.contains(text) {
            if let Some(j) = f.next_significant(i) {
                if toks[j].is_ident(&f.src, "as") {
                    if let Some(k) = f.next_significant(j) {
                        if toks[k].kind == TokenKind::Ident {
                            added.push(f.text(&toks[k]).to_string());
                        }
                    }
                }
            }
        }
        // `type <new-name> … = <rhs containing an unordered name> ;`
        if text == "type" {
            let Some(name_idx) = f.next_significant(i) else {
                continue;
            };
            if toks[name_idx].kind != TokenKind::Ident {
                continue;
            }
            // Scan forward to the `=` (skipping generic params), then the
            // RHS until `;`.
            let mut j = name_idx + 1;
            let mut saw_eq = false;
            let mut rhs_unordered = false;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') => {
                        break
                    }
                    TokenKind::Punct(b'=') => saw_eq = true,
                    TokenKind::Ident if saw_eq && types.contains(f.text(&toks[j])) => {
                        rhs_unordered = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if rhs_unordered {
                added.push(f.text(&toks[name_idx]).to_string());
            }
        }
    }
    types.extend(added);
}

/// Add to `fields` every named struct field in `f` whose declared type
/// mentions an unordered container name. Tuple structs have no field
/// names to resolve and are skipped.
fn collect_struct_fields(f: &SourceFile, types: &BTreeSet<String>, fields: &mut BTreeSet<String>) {
    let toks = &f.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident(&f.src, "struct") {
            continue;
        }
        // Walk to the struct body `{` (the header — name, generics, where
        // clause — contains no braces). A `;` or `(` first means a unit or
        // tuple struct.
        let mut j = i + 1;
        let open = loop {
            match toks.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct(b'{')) => break Some(j),
                Some(TokenKind::Punct(b';')) | Some(TokenKind::Punct(b'(')) | None => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else { continue };
        // Scan the body at depth 1 for `name : TYPE ,` entries.
        let mut depth = 1i32;
        let mut k = open + 1;
        while k < toks.len() && depth > 0 {
            match toks[k].kind {
                TokenKind::Punct(b'{') | TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => {
                    depth += 1
                }
                TokenKind::Punct(b'}') | TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                    depth -= 1
                }
                TokenKind::Ident if depth == 1 => {
                    // Field name must be followed by a single `:` (not `::`).
                    let name = f.text(&toks[k]);
                    if let Some(c) = f.next_significant(k) {
                        let colon = toks[c].is_punct(b':')
                            && !f
                                .next_significant(c)
                                .is_some_and(|c2| toks[c2].is_punct(b':') && c2 == c + 1);
                        if colon && name != "pub" && name != "crate" {
                            // Type region: tokens until `,` at depth 1 or
                            // the closing `}`.
                            let mut d2 = 0i32;
                            let mut m = c + 1;
                            let mut unordered = false;
                            while m < toks.len() {
                                match toks[m].kind {
                                    TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => d2 += 1,
                                    TokenKind::Punct(b')') | TokenKind::Punct(b']') => d2 -= 1,
                                    // `,` inside generic args still has
                                    // d2 == 0 (we don't track `<>`), so
                                    // only stop when not inside angles.
                                    TokenKind::Punct(b',')
                                        if d2 <= 0 && angle_depth(f, c + 1, m) == 0 =>
                                    {
                                        break;
                                    }
                                    TokenKind::Punct(b'}') if d2 <= 0 => break,
                                    TokenKind::Ident if types.contains(f.text(&toks[m])) => {
                                        unordered = true;
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            if unordered {
                                fields.insert(name.to_string());
                            }
                            k = m;
                            continue;
                        }
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
}

/// Net `<` minus `>` depth over `toks[from..to)` — crude but sufficient to
/// tell a generic-argument comma from a field separator in type position,
/// where shift operators cannot appear.
fn angle_depth(f: &SourceFile, from: usize, to: usize) -> i32 {
    let mut d = 0i32;
    for t in &f.tokens[from..to] {
        match t.kind {
            TokenKind::Punct(b'<') => d += 1,
            TokenKind::Punct(b'>') => d -= 1,
            _ => {}
        }
    }
    d
}

/// Names bound to unordered containers *within* `file`: `let`/param/field
/// annotations (`name: HashMap<…>`) and constructor bindings
/// (`let name = HashMap::new()`). Used alongside the workspace-global
/// field set when resolving a method chain's receiver.
pub fn local_unordered_bindings(file: &SourceFile, index: &SymbolIndex) -> BTreeSet<String> {
    let toks = &file.tokens;
    let mut locals = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `let [mut] name = <Unordered>::…` constructor binding.
        if file.text(t) == "let" {
            let mut j = file.next_significant(i);
            if j.is_some_and(|j| toks[j].is_ident(&file.src, "mut")) {
                j = file.next_significant(j.unwrap());
            }
            let Some(name_idx) = j else { continue };
            if toks[name_idx].kind != TokenKind::Ident {
                continue;
            }
            let Some(after) = file.next_significant(name_idx) else {
                continue;
            };
            if toks[after].is_punct(b'=') {
                if let Some(rhs) = file.next_significant(after) {
                    if toks[rhs].kind == TokenKind::Ident
                        && index.is_unordered_type(file.text(&toks[rhs]))
                    {
                        locals.insert(file.text(&toks[name_idx]).to_string());
                    }
                }
            }
            continue;
        }
        // Generic `name : TYPE` annotation (let-with-type, fn params,
        // struct-literal init from a constructor). Require a single `:`.
        let Some(c) = file.next_significant(i) else {
            continue;
        };
        if !toks[c].is_punct(b':') {
            continue;
        }
        if toks.get(c + 1).is_some_and(|n| n.is_punct(b':')) {
            continue; // `::` path, not an annotation
        }
        if file
            .prev_significant(i)
            .is_some_and(|p| toks[p].is_punct(b':'))
        {
            continue; // second segment of a `::` path
        }
        // Scan the annotation region until a terminator at depth 0.
        let mut d = 0i32;
        let mut angles = 0i32;
        let mut m = c + 1;
        while m < toks.len() {
            match toks[m].kind {
                TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => d += 1,
                TokenKind::Punct(b')') | TokenKind::Punct(b']') | TokenKind::Punct(b'}') => {
                    if d == 0 {
                        break;
                    }
                    d -= 1;
                }
                TokenKind::Punct(b'<') => angles += 1,
                TokenKind::Punct(b'>') => angles -= 1,
                TokenKind::Punct(b',') | TokenKind::Punct(b';') | TokenKind::Punct(b'=')
                    if d == 0 && angles <= 0 =>
                {
                    break
                }
                TokenKind::Punct(b'{') if d == 0 => break,
                TokenKind::Ident if index.is_unordered_type(file.text(&toks[m])) => {
                    locals.insert(file.text(t).to_string());
                }
                _ => {}
            }
            m += 1;
        }
    }
    locals
}

/// What a backwards walk over a method chain learned about its receiver.
pub struct ChainInfo {
    /// Some value segment (root binding, path type, or struct field)
    /// resolved to an unordered container.
    pub unordered: bool,
    /// The chain passed through an ordering adapter (`sort*`, `BTree*`),
    /// so iteration order is deterministic even if the root is unordered.
    pub ordered_adapter: bool,
}

/// Is `name` an identifier that imposes a deterministic order on whatever
/// flows through it (`sort`, `sort_by_key`, `sorted_rows`, `BTreeMap` in a
/// `collect` turbofish, …)?
pub fn is_ordering_ident(name: &str) -> bool {
    name.starts_with("sort") || name.starts_with("Sorted") || name.starts_with("BTree")
}

/// Walk the method chain ending at `method_idx` (an identifier preceded by
/// `.`) backwards to its receiver, resolving value segments against the
/// index and `locals`. Handles nested call arguments, turbofish generics,
/// `?`, and `::` paths.
pub fn analyze_chain(
    file: &SourceFile,
    method_idx: usize,
    index: &SymbolIndex,
    locals: &BTreeSet<String>,
) -> ChainInfo {
    let toks = &file.tokens;
    let mut info = ChainInfo {
        unordered: false,
        ordered_adapter: false,
    };
    let Some(dot) = file.prev_significant(method_idx) else {
        return info;
    };
    if !toks[dot].is_punct(b'.') {
        return info;
    }
    let Some(mut cur) = file.prev_significant(dot) else {
        return info;
    };
    // `just_closed` — the ident we are about to classify sits before a
    // call/turbofish we already skipped, i.e. it is a method name, not a
    // value segment.
    let mut just_closed = false;
    for _ in 0..512 {
        match toks[cur].kind {
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                let Some(open) = skip_back_matched(file, cur, &mut info) else {
                    return info;
                };
                let Some(p) = file.prev_significant(open) else {
                    return info;
                };
                cur = p;
                just_closed = true;
            }
            TokenKind::Punct(b'>') => {
                // Turbofish / generic args: skip to the matching `<`,
                // scanning the region for ordering idents
                // (`collect::<BTreeMap<_, _>>()`).
                let mut d = 0i32;
                let mut k = cur;
                loop {
                    match toks[k].kind {
                        TokenKind::Punct(b'>') => d += 1,
                        TokenKind::Punct(b'<') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident => {
                            let name = file.text(&toks[k]);
                            if is_ordering_ident(name) {
                                info.ordered_adapter = true;
                            }
                            if index.is_unordered_type(name) {
                                info.unordered = true;
                            }
                        }
                        _ => {}
                    }
                    let Some(k2) = k.checked_sub(1) else {
                        return info;
                    };
                    k = k2;
                }
                // Expect `::` before the `<`; land on the method ident.
                let p1 = file.prev_significant(k);
                let p0 = p1.and_then(|j| file.prev_significant(j));
                match (p0, p1) {
                    (Some(a), Some(b)) if toks[a].is_punct(b':') && toks[b].is_punct(b':') => {
                        let Some(m) = file.prev_significant(a) else {
                            return info;
                        };
                        cur = m;
                        just_closed = true;
                    }
                    _ => {
                        let Some(m) = p1 else { return info };
                        cur = m;
                    }
                }
            }
            TokenKind::Punct(b'?') => {
                let Some(p) = file.prev_significant(cur) else {
                    return info;
                };
                cur = p;
            }
            TokenKind::Ident => {
                let name = file.text(&toks[cur]);
                if is_ordering_ident(name) {
                    info.ordered_adapter = true;
                }
                let prev = file.prev_significant(cur);
                // `::` path segment(s): resolve every segment as a type name.
                let is_path = matches!(prev, Some(p) if toks[p].is_punct(b':')
                    && file.prev_significant(p).is_some_and(|q| toks[q].is_punct(b':')));
                if is_path {
                    let mut seg = cur;
                    loop {
                        let segname = file.text(&toks[seg]);
                        if index.is_unordered_type(segname) {
                            info.unordered = true;
                        }
                        if is_ordering_ident(segname) {
                            info.ordered_adapter = true;
                        }
                        // Step to the previous path segment over `::`,
                        // skipping `::<…>` generic-argument groups
                        // (`HashMap::<u32, u32>::new`).
                        let p1 = file.prev_significant(seg);
                        let p0 = p1.and_then(|j| file.prev_significant(j));
                        let (Some(b), Some(c)) = (p0, p1) else { break };
                        if !(toks[b].is_punct(b':') && toks[c].is_punct(b':')) {
                            break;
                        }
                        let Some(mut a) = file.prev_significant(b) else {
                            break;
                        };
                        if toks[a].is_punct(b'>') {
                            let mut d = 0i32;
                            let mut k = a;
                            let open = loop {
                                match toks[k].kind {
                                    TokenKind::Punct(b'>') => d += 1,
                                    TokenKind::Punct(b'<') => {
                                        d -= 1;
                                        if d == 0 {
                                            break Some(k);
                                        }
                                    }
                                    TokenKind::Ident => {
                                        let n = file.text(&toks[k]);
                                        if index.is_unordered_type(n) {
                                            info.unordered = true;
                                        }
                                        if is_ordering_ident(n) {
                                            info.ordered_adapter = true;
                                        }
                                    }
                                    _ => {}
                                }
                                match k.checked_sub(1) {
                                    Some(k2) => k = k2,
                                    None => break None,
                                }
                            };
                            let Some(open) = open else { break };
                            let q1 = file.prev_significant(open);
                            let q0 = q1.and_then(|j| file.prev_significant(j));
                            match (q0, q1) {
                                (Some(x), Some(y))
                                    if toks[x].is_punct(b':') && toks[y].is_punct(b':') =>
                                {
                                    match file.prev_significant(x) {
                                        Some(z) => a = z,
                                        None => break,
                                    }
                                }
                                _ => break,
                            }
                        }
                        if toks[a].kind == TokenKind::Ident {
                            seg = a;
                        } else {
                            break;
                        }
                    }
                    return info;
                }
                if !just_closed {
                    // Value segment (field or root binding).
                    if locals.contains(name)
                        || index.unordered_fields.contains(name)
                        || index.is_unordered_type(name)
                    {
                        info.unordered = true;
                        return info;
                    }
                }
                match prev {
                    Some(p) if toks[p].is_punct(b'.') => {
                        let Some(q) = file.prev_significant(p) else {
                            return info;
                        };
                        cur = q;
                        just_closed = false;
                    }
                    _ => return info, // chain root reached
                }
            }
            _ => return info,
        }
    }
    info
}

/// Skip backwards from a closing `)`/`]` at `close` to its matching open
/// bracket, recording ordering idents seen inside (e.g.
/// `.sort_by_key(…)` arguments). Returns the index of the open bracket.
fn skip_back_matched(file: &SourceFile, close: usize, info: &mut ChainInfo) -> Option<usize> {
    let toks = &file.tokens;
    let mut d = 0i32;
    let mut k = close;
    loop {
        match toks[k].kind {
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => d += 1,
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => {
                d -= 1;
                if d == 0 {
                    return Some(k);
                }
            }
            TokenKind::Ident if is_ordering_ident(file.text(&toks[k])) => {
                info.ordered_adapter = true;
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
}

/// Scan forward from `from` to the end of the enclosing expression
/// (a `;`, a `{`, or an unbalanced closer at depth 0) looking for an
/// ordering adapter downstream of a flagged call —
/// `map.keys().collect::<BTreeSet<_>>()` is deterministic even though
/// `.keys()` itself is not.
pub fn forward_ordering_adapter(file: &SourceFile, from: usize) -> bool {
    let toks = &file.tokens;
    let mut d = 0i32;
    for t in toks.iter().skip(from) {
        match t.kind {
            TokenKind::Punct(b'(') | TokenKind::Punct(b'[') => d += 1,
            TokenKind::Punct(b')') | TokenKind::Punct(b']') => {
                if d == 0 {
                    return false;
                }
                d -= 1;
            }
            // `}` too: without it the scan would walk out of the enclosing
            // function and match ordering idents in unrelated code below.
            TokenKind::Punct(b';') | TokenKind::Punct(b'{') | TokenKind::Punct(b'}') if d == 0 => {
                return false
            }
            TokenKind::Ident if is_ordering_ident(t.text(&file.src)) => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.into(), src.into())
    }

    #[test]
    fn seeds_and_use_renames_resolve() {
        let f = file(
            "crates/core/src/a.rs",
            "pub use std::collections::HashMap as FastMap;\n",
        );
        let idx = SymbolIndex::build(&[f]);
        assert!(idx.is_unordered_type("HashMap"));
        assert!(idx.is_unordered_type("FastMap"));
        assert!(!idx.is_unordered_type("BTreeMap"));
    }

    #[test]
    fn type_alias_chains_resolve_across_files() {
        let a = file(
            "crates/core/src/a.rs",
            "type PlanCache = std::collections::HashMap<usize, Plan>;\n",
        );
        // Defined in a *different* file, aliasing the alias — the fixpoint
        // must close the chain regardless of file order.
        let b = file("crates/core/src/b.rs", "type Cache2 = PlanCache;\n");
        let idx = SymbolIndex::build(&[b, a]);
        assert!(idx.is_unordered_type("PlanCache"));
        assert!(idx.is_unordered_type("Cache2"));
    }

    #[test]
    fn struct_fields_with_unordered_types_are_indexed() {
        let f = file(
            "crates/traffic/src/a.rs",
            "struct S { pub meta: HashMap<u64, (f64, usize)>, n: usize, tags: Vec<String> }\n",
        );
        let idx = SymbolIndex::build(&[f]);
        assert!(idx.unordered_fields.contains("meta"));
        assert!(!idx.unordered_fields.contains("n"));
        assert!(!idx.unordered_fields.contains("tags"));
    }

    #[test]
    fn generic_field_commas_do_not_split_the_type() {
        let f = file(
            "crates/core/src/a.rs",
            "struct S { a: BTreeMap<u32, u32>, b: HashSet<u8> }\n",
        );
        let idx = SymbolIndex::build(&[f]);
        assert!(!idx.unordered_fields.contains("a"));
        assert!(idx.unordered_fields.contains("b"));
    }

    #[test]
    fn local_bindings_from_annotations_and_constructors() {
        let f = file(
            "crates/core/src/a.rs",
            "fn f(seen: &HashSet<u32>) { let mut m = HashMap::new(); let v: Vec<u8> = vec![]; }\n",
        );
        let idx = SymbolIndex::build(&[]);
        let locals = local_unordered_bindings(&f, &idx);
        assert!(locals.contains("seen"));
        assert!(locals.contains("m"));
        assert!(!locals.contains("v"));
    }

    #[test]
    fn chain_resolves_root_field_and_adapter() {
        let src = "fn f(&self) { let x: f64 = self.meta.values().map(|v| v.0).sum(); }";
        let f = file("crates/traffic/src/a.rs", src);
        let decl = file(
            "crates/traffic/src/b.rs",
            "struct S { meta: HashMap<u64, (f64, usize)> }",
        );
        let idx = SymbolIndex::build(&[decl]);
        let locals = local_unordered_bindings(&f, &idx);
        let sum_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident(&f.src, "sum"))
            .unwrap();
        let info = analyze_chain(&f, sum_idx, &idx, &locals);
        assert!(info.unordered);
        assert!(!info.ordered_adapter);
    }

    #[test]
    fn sorted_adapter_in_chain_clears_the_finding() {
        let src = "fn f(m: &HashMap<u32, f64>) -> Vec<u32> { m.keys().copied().collect::<BTreeSet<_>>().into_iter().collect() }";
        let f = file("crates/core/src/a.rs", src);
        let idx = SymbolIndex::build(&[]);
        let locals = local_unordered_bindings(&f, &idx);
        let into_iter = f
            .tokens
            .iter()
            .position(|t| t.is_ident(&f.src, "into_iter"))
            .unwrap();
        let info = analyze_chain(&f, into_iter, &idx, &locals);
        assert!(info.ordered_adapter);
        let keys = f
            .tokens
            .iter()
            .position(|t| t.is_ident(&f.src, "keys"))
            .unwrap();
        assert!(forward_ordering_adapter(&f, keys));
    }

    #[test]
    fn path_constructor_receiver_resolves() {
        let src = "fn f() { for k in std::collections::HashMap::<u32, u32>::new().keys() {} }";
        let f = file("crates/core/src/a.rs", src);
        let idx = SymbolIndex::build(&[]);
        let keys = f
            .tokens
            .iter()
            .position(|t| t.is_ident(&f.src, "keys"))
            .unwrap();
        let info = analyze_chain(&f, keys, &idx, &BTreeSet::new());
        assert!(info.unordered);
    }
}
