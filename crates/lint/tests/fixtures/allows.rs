//@path crates/core/src/mac.rs
//! Fixture: allow hygiene — malformed, unknown-lint, and stale allows.

fn reasonless(v: Vec<u8>) -> u8 {
    // jmb-allow(no-panic-hot-path)
    *v.first().unwrap()
}

fn unknown_lint(v: Vec<u8>) -> u8 {
    // jmb-allow(no-such-lint): the lint name is wrong, so nothing is suppressed
    v.len() as u8
}

// jmb-allow(no-panic-hot-path): stale — nothing on the next line panics
fn stale_allow(v: Vec<u8>) -> usize {
    v.len()
}

fn wrong_lint_name(v: Vec<u8>) -> u8 {
    // jmb-allow(no-wallclock-in-sim): names the wrong lint, so the unwrap still fires
    *v.first().unwrap()
}
