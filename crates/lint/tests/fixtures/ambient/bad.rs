//@path crates/traffic/src/workers.rs
// Thread-count decisions belong to the scheduling layer (SweepConfig /
// jmb-bench CLI), never to simulation crates.
fn pick_workers() -> usize {
    if let Ok(v) = std::env::var("JMB_THREADS") {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
