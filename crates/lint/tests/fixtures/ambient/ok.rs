//@path crates/bench/src/bin/threads_probe.rs
// Same calls are fine here: crates/bench IS the scheduling layer.
fn main() {
    let n = std::env::var("JMB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        });
    println!("{n}");
}
