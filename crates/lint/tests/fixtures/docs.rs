//@path crates/obs/src/registry.rs
//! Fixture: `doc-public-items` — public API in jmb-core/jmb-obs needs docs.

pub fn undocumented_fn() {}

pub struct UndocumentedStruct;

/// Documented — no finding.
pub fn documented_fn() {}

/// Documented struct.
#[derive(Debug, Clone)]
pub struct WithDerives;

pub(crate) fn crate_visible_is_exempt() {}

/// A documented type with an inherent impl.
pub struct Holder(u8);

impl Holder {
    pub fn undocumented_method(&self) -> u8 {
        self.0
    }

    /// Documented method — no finding.
    pub fn documented_method(&self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for Holder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

pub mod out_of_line_shim;

/// Inline modules are items like any other.
pub mod inline {
    pub fn nested_undocumented() {}
}
