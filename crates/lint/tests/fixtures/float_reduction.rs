//@path crates/dsp/src/power.rs
// Floating-point reductions: `+` is not associative, so a sum over an
// unordered container changes bytes when the iteration order changes.
use std::collections::{BTreeMap, HashMap, HashSet};

fn sum_over_map_values(m: &HashMap<u32, f64>) -> f64 {
    m.values().sum::<f64>()
}

fn fold_over_set(s: &HashSet<u64>) -> f64 {
    s.iter().fold(0.0, |acc, &x| acc + x as f64)
}

fn product_over_slice_is_fine(xs: &[f64]) -> f64 {
    xs.iter().product()
}

// `b`, not `m`: bindings resolve by name file-wide, and `m` is already
// classified unordered by `sum_over_map_values` above.
fn sum_over_btree_is_fine(b: &BTreeMap<u32, f64>) -> f64 {
    b.values().sum()
}
