//@path crates/obs/src/tally.rs
/// Cross-shard tally with a pinned pooling order.
pub struct Tally {
    /// Accumulated value.
    pub total: f64,
}

impl Tally {
    /// Pools `other` into `self`. Callers pool shards in **slice order**
    /// (cell index order), so the float sum is bit-identical run to run.
    pub fn merge(&mut self, other: &Tally) {
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn merge_is_order_pinned() {
        let mut a = super::Tally { total: 1.0 };
        a.merge(&super::Tally { total: 2.0 });
        assert!((a.total - 3.0).abs() < 1e-12);
    }
}
