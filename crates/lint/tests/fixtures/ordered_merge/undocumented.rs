//@path crates/city/src/shard_report.rs
/// Per-shard tally pooled across cells.
pub struct ShardTally {
    /// Frames delivered by this shard.
    pub delivered: u64,
}

impl ShardTally {
    /// Pools another shard's counters into this one.
    //
    // Doc never states the pooling order, and no test in crates/city
    // calls it: ordered-merge fires twice.
    pub fn merge(&mut self, other: &ShardTally) {
        self.delivered += other.delivered;
    }
}
