//@path crates/core/src/fastnet.rs
//! Fixture: every shape of `no-panic-hot-path` violation, plus the forms
//! that must NOT fire (suppressed, test code, debug_assert, strings).

fn bad_unwrap(v: Vec<u8>) -> u8 {
    *v.first().unwrap()
}

fn bad_expect(v: Vec<u8>) -> u8 {
    *v.first().expect("non-empty")
}

fn bad_macros(n: usize) {
    assert!(n > 0, "positive");
    assert_eq!(n, 1);
    if n > 9 {
        panic!("too many");
    }
    match n {
        1 => {}
        _ => unreachable!("only one"),
    }
}

fn suppressed(v: Vec<u8>) -> u8 {
    // jmb-allow(no-panic-hot-path): v is non-empty — the caller builds it with at least one element
    *v.first().unwrap()
}

fn trailing_suppressed(v: Vec<u8>) -> u8 {
    *v.first().unwrap() // jmb-allow(no-panic-hot-path): same invariant, trailing form
}

fn not_violations(n: usize, s: &str) -> bool {
    debug_assert!(n > 0);
    debug_assert_eq!(n, n);
    // A comment saying unwrap() is fine, as is "a string .expect( call":
    s.contains("unwrap()")
}

struct Carrier {
    expect: u8,
}

fn field_access(c: Carrier) -> u8 {
    c.expect
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1u8];
        assert_eq!(*v.first().unwrap(), 1);
        v.get(9).expect("will panic, and that is fine in a test");
    }
}
