//@path crates/dsp/src/rng.rs
//! Fixture: `seeded-rng-only` violations — OS entropy is forbidden even in
//! test code, because flaky tests are how determinism regressions land.

fn bad_thread_rng() {
    let mut r = rand::thread_rng();
    let _ = r;
}

fn bad_from_entropy() {
    let r = SmallRng::from_entropy();
    let _ = r;
}

fn good_seeded(seed: u64) {
    let r = SmallRng::seed_from_u64(seed);
    let _ = r;
}

#[cfg(test)]
mod tests {
    #[test]
    fn entropy_in_tests_still_flagged() {
        let _ = rand::rngs::OsRng;
    }
}
