//@path crates/dsp/src/fft.rs
//! Fixture: `safety-comment` — every `unsafe` needs a `// SAFETY:` rationale.

fn bad_block(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe fn bad_fn(p: *const u8) -> u8 {
    *p
}

fn good_block(v: &[u8]) -> u8 {
    // SAFETY: the caller guarantees v is non-empty (checked at the API
    // boundary), so index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

fn good_trailing(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // SAFETY: v verified non-empty above
}

// SAFETY: this fn only reads the first byte; callers pass non-null p.
unsafe fn good_fn(p: *const u8) -> u8 {
    *p
}

fn not_a_violation(s: &str) -> bool {
    // The word unsafe in a comment or "an unsafe string" must not fire.
    s.contains("unsafe")
}
