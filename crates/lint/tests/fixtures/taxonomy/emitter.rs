//@path crates/sim/src/medium.rs
//! Fixture: emission sites for the taxonomy check, including through a
//! local rename of the enum.

use jmb_obs::EventKind as TraceKind;

fn emit_healthy(trace: &mut Trace, node: usize) {
    trace.emit(0.0, TraceKind::Healthy { node });
}

fn emit_never_tested(trace: &mut Trace) {
    trace.emit(0.0, EventKind::NeverTested(3));
}

#[cfg(test)]
mod tests {
    #[test]
    fn emission_in_test_code_does_not_count_as_an_emission_site() {
        // NeverEmitted constructed only here — still "never emitted".
        let _ = EventKind::NeverEmitted;
    }
}
