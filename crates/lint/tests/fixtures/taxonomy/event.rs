//@path crates/obs/src/event.rs
//! Fixture: a miniature `EventKind` with one healthy variant, one never
//! emitted, one never tested, and one suppressed as intentionally
//! emission-only.

/// Fixture event kinds.
pub enum EventKind {
    /// Emitted and tested — no findings.
    Healthy {
        /// Node index.
        node: usize,
    },
    /// Tested but never emitted.
    NeverEmitted,
    /// Emitted but never appears in a test.
    NeverTested(usize),
    /// Neither emitted nor tested, but suppressed with a reason.
    // jmb-allow(trace-taxonomy-complete): reserved for the PR that lands AP power-save; tracked in ROADMAP
    Reserved,
}
