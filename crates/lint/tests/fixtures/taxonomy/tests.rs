//@path tests/observability.rs
//! Fixture: test-side references — an identifier use and a string-literal
//! use (the `TraceQuery::kind` form) both count.

fn replay_asserts(q: TraceQuery) {
    q.kind("Healthy").assert_count_between(1, 100);
    let _ = EventKind::NeverEmitted;
}
