//@path crates/traffic/src/consumer.rs
// Consuming module: every unordered container below arrived via a rename
// or alias declared in types.rs, never by its std name.
use crate::types::{FastMap, FlowTable, NodeSet};

fn renamed_map_iteration(m: &FastMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, v) in m.iter() {
        acc += v;
    }
    acc
}

fn aliased_set_for_loop(s: &NodeSet) -> u64 {
    let mut acc = 0u64;
    for id in s {
        acc = acc.wrapping_add(u64::from(*id));
    }
    acc
}

fn struct_field_drain(t: &mut FlowTable) -> usize {
    t.flows.drain().count()
}

fn sorted_adapter_is_fine(m: &FastMap<u64, f64>) -> Vec<u64> {
    use std::collections::BTreeSet;
    m.keys().copied().collect::<BTreeSet<_>>().into_iter().collect()
}

fn keyed_access_is_fine(m: &FastMap<u64, f64>, k: u64) -> f64 {
    m.get(&k).copied().unwrap_or(0.0)
}

// Named `b`, not `m`: binding resolution is name-based and file-wide (the
// documented over-approximation), so reusing `m` here would inherit the
// FastMap classification from the functions above.
fn ordered_container_is_fine(b: &std::collections::BTreeMap<u64, f64>) -> f64 {
    b.values().sum()
}
