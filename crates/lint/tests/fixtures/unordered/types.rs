//@path crates/traffic/src/types.rs
// Exporting module: the unordered types reach consumers only through
// renames, so the lint must resolve aliases cross-file.
pub use std::collections::HashMap as FastMap;

pub type NodeSet = std::collections::HashSet<u32>;

pub struct FlowTable {
    pub flows: FastMap<u64, f64>,
    pub order: Vec<u64>,
}
