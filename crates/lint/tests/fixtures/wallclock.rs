//@path crates/sim/src/medium.rs
//! Fixture: `no-wallclock-in-sim` violations and exemptions.

use std::time::{Duration, Instant, SystemTime};

fn bad_instant() -> Instant {
    Instant::now()
}

fn bad_systemtime() -> SystemTime {
    SystemTime::now()
}

fn bad_sleep(d: Duration) {
    std::thread::sleep(d);
}

struct Radio;
impl Radio {
    fn sleep(&mut self) {}
}

fn not_a_violation(r: &mut Radio) {
    // A method named `sleep` on a domain type is not the host clock.
    r.sleep();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let t0 = std::time::Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(t0.elapsed().as_nanos() > 0);
    }
}
