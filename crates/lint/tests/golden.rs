//! Golden-fixture tests: each `tests/fixtures/*.rs` file carries a
//! `//@path` directive naming the workspace path it pretends to live at;
//! the engine's findings are compared line-for-line against the matching
//! `.expected` file. Regenerate an expected file by running the test with
//! `JMB_LINT_REGEN=1` and inspecting the diff.

use std::fs;
use std::path::{Path, PathBuf};

use jmb_lint::{engine, render_fix_allow, render_json, Diagnostic, SourceFile};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Load a fixture file, honouring its `//@path` directive.
fn load_fixture(path: &Path) -> SourceFile {
    let src = fs::read_to_string(path).unwrap();
    let first = src.lines().next().unwrap_or_default();
    let rel = first
        .strip_prefix("//@path ")
        .unwrap_or_else(|| panic!("{} must start with `//@path <rel>`", path.display()))
        .trim()
        .to_string();
    SourceFile::new(rel, src)
}

fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| {
            format!(
                "{}:{}:{} {} [{}] {}",
                d.file, d.line, d.col, d.severity, d.lint, d.message
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Compare against the golden file, or rewrite it under JMB_LINT_REGEN=1.
fn check_golden(name: &str, actual: &str) {
    let expected_path = fixtures_dir().join(name);
    if std::env::var_os("JMB_LINT_REGEN").is_some() {
        fs::write(&expected_path, format!("{}\n", actual.trim_end())).unwrap();
        return;
    }
    let expected = fs::read_to_string(&expected_path)
        .unwrap_or_else(|_| panic!("missing golden file {}", expected_path.display()));
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "golden mismatch for {name} (set JMB_LINT_REGEN=1 to regenerate)"
    );
}

fn run_single(fixture: &str) -> Vec<Diagnostic> {
    let file = load_fixture(&fixtures_dir().join(fixture));
    engine::run(std::slice::from_ref(&file))
}

#[test]
fn golden_panic_hot_path() {
    check_golden(
        "panic_hot_path.expected",
        &render(&run_single("panic_hot_path.rs")),
    );
}

#[test]
fn golden_wallclock() {
    check_golden("wallclock.expected", &render(&run_single("wallclock.rs")));
}

#[test]
fn golden_rng_entropy() {
    check_golden(
        "rng_entropy.expected",
        &render(&run_single("rng_entropy.rs")),
    );
}

#[test]
fn golden_safety() {
    check_golden("safety.expected", &render(&run_single("safety.rs")));
}

#[test]
fn golden_allows() {
    check_golden("allows.expected", &render(&run_single("allows.rs")));
}

#[test]
fn golden_docs() {
    check_golden("docs.expected", &render(&run_single("docs.rs")));
}

#[test]
fn golden_taxonomy_cross_file() {
    let dir = fixtures_dir().join("taxonomy");
    let mut files: Vec<SourceFile> = ["event.rs", "emitter.rs", "tests.rs"]
        .iter()
        .map(|n| load_fixture(&dir.join(n)))
        .collect();
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    check_golden("taxonomy.expected", &render(&engine::run(&files)));
}

/// Load every fixture in a subdirectory, sorted by pretend path — the
/// shape cross-file lints (symbol resolution, ordered-merge) need.
fn run_dir(sub: &str, names: &[&str]) -> Vec<Diagnostic> {
    let dir = fixtures_dir().join(sub);
    let mut files: Vec<SourceFile> = names.iter().map(|n| load_fixture(&dir.join(n))).collect();
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    engine::run(&files)
}

#[test]
fn golden_unordered_iteration_cross_file() {
    // The unordered types reach consumer.rs only through a `pub use … as`
    // rename and a `type` alias — exercises SymbolIndex's fixpoint closure.
    check_golden(
        "unordered.expected",
        &render(&run_dir("unordered", &["types.rs", "consumer.rs"])),
    );
}

#[test]
fn golden_float_reduction() {
    check_golden(
        "float_reduction.expected",
        &render(&run_single("float_reduction.rs")),
    );
}

#[test]
fn golden_ambient_parallelism() {
    // bad.rs (crates/traffic) is flagged; ok.rs (crates/bench) makes the
    // same calls from the scheduling layer and stays clean.
    check_golden(
        "ambient.expected",
        &render(&run_dir("ambient", &["bad.rs", "ok.rs"])),
    );
}

#[test]
fn golden_ordered_merge() {
    check_golden(
        "ordered_merge.expected",
        &render(&run_dir(
            "ordered_merge",
            &["undocumented.rs", "documented.rs"],
        )),
    );
}

#[test]
fn golden_fix_allow() {
    // `--fix-allow` output is a CI-facing contract too: one paste-ready
    // suppression line per finding, hygiene lints skipped.
    check_golden(
        "fix_allow.expected",
        &render_fix_allow(&run_dir("ambient", &["bad.rs", "ok.rs"])),
    );
}

#[test]
fn golden_json_output() {
    // The JSON renderer is part of the CI contract (artifact upload), so
    // its exact shape is pinned too.
    check_golden(
        "panic_hot_path.json.expected",
        &render_json(&run_single("panic_hot_path.rs")),
    );
}

#[test]
fn json_output_is_parseable_by_a_naive_reader() {
    // Sanity beyond the golden: balanced brackets/braces and one object
    // per diagnostic (the CI consumer is `python -m json.tool`-level).
    let json = render_json(&run_single("panic_hot_path.rs"));
    let diags = run_single("panic_hot_path.rs");
    assert_eq!(json.matches("{\"lint\"").count(), diags.len());
    assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
}
