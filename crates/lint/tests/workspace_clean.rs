//! Meta-test: `jmb-lint` runs clean on its own workspace. This is the
//! same gate CI applies (`jmb-lint --deny`), expressed as a test so a
//! plain `cargo test` catches invariant regressions without the extra CI
//! round-trip.

use std::path::Path;

use jmb_lint::engine;

#[test]
fn workspace_has_zero_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected workspace root at {}",
        root.display()
    );
    let files = engine::load(&root).expect("workspace sources readable");
    assert!(
        files.len() > 50,
        "discovery looks broken: only {} files found",
        files.len()
    );
    let mut diags = engine::run(&files);
    engine::promote(&mut diags); // CI runs --deny: warnings gate too
    let rendered: Vec<String> = diags.iter().map(|d| d.render_human()).collect();
    assert!(
        diags.is_empty(),
        "jmb-lint found {} violation(s) in the workspace:\n{}",
        diags.len(),
        rendered.join("\n")
    );
}
