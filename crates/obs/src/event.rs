//! The unified event type.
//!
//! One enum covers every layer's happenings — medium (transmit / render /
//! drop / corruption), MAC and traffic (enqueue, lead election, batch
//! selection, ACK, retry), liveness (AP down/up), and control plane (sync
//! misses, CSI staleness, re-measurement, degradation). Each recorded
//! [`Event`] carries a global timestamp and a per-trace sequence number so
//! simultaneous events keep a total order.

/// Why a transmission or packet was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Fault injection removed the waveform from the air (deep fade or an
    /// un-modelled collision).
    Fault,
    /// The link layer exhausted the packet's retry budget (§9: packets stay
    /// queued until ACKed — but not forever).
    RetryLimit,
}

impl DropCause {
    /// Stable name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            DropCause::Fault => "Fault",
            DropCause::RetryLimit => "RetryLimit",
        }
    }

    /// Inverse of [`DropCause::name`].
    pub fn from_name(s: &str) -> Option<DropCause> {
        match s {
            "Fault" => Some(DropCause::Fault),
            "RetryLimit" => Some(DropCause::RetryLimit),
            _ => None,
        }
    }
}

/// Why a bounded run stopped (carried by [`EventKind::ScenarioStopped`]
/// and returned by bounded event loops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The run drained its event queue and finished naturally.
    Completed,
    /// The processed-event budget (`max_events`) was exhausted first.
    MaxEvents,
    /// The simulated-time budget (`max_sim_time`) was exhausted first.
    MaxSimTime,
    /// An external stop predicate fired (in practice: the scenario
    /// runner's wall-clock deadline). This is the one cause that is not
    /// deterministic across machines, which is why wall-clock budgets are
    /// safety nets, never part of a scenario's pass criteria.
    Wallclock,
}

impl StopCause {
    /// Stable name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            StopCause::Completed => "Completed",
            StopCause::MaxEvents => "MaxEvents",
            StopCause::MaxSimTime => "MaxSimTime",
            StopCause::Wallclock => "Wallclock",
        }
    }

    /// Inverse of [`StopCause::name`].
    pub fn from_name(s: &str) -> Option<StopCause> {
        match s {
            "Completed" => Some(StopCause::Completed),
            "MaxEvents" => Some(StopCause::MaxEvents),
            "MaxSimTime" => Some(StopCause::MaxSimTime),
            "Wallclock" => Some(StopCause::Wallclock),
            _ => None,
        }
    }
}

/// Which pluggable synchronization backend a network is running — carried
/// by [`EventKind::SyncStrategySwitched`] and shared by every layer that
/// names a strategy (the `[sync]` manifest section, the `JMB_SYNC` env,
/// bench CLI flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncStrategyId {
    /// The paper's lead/slave resync: slaves re-measure the lead's channel
    /// from the in-band sync header of every joint transmission (§5.2).
    #[default]
    JmbLeadSlave,
    /// Continuous out-of-band pilot tracking: the lead broadcasts periodic
    /// pilots on a side channel and slaves run a Kalman-style phase
    /// predictor, so data frames need no in-band sync header.
    AirSyncPilot,
    /// Calibrated implicit CSI from uplink reciprocity: slaves refresh
    /// their lead-relative phase from regular uplink traffic, with zero
    /// dedicated per-client measurement frames.
    ReciprocityImplicit,
}

impl SyncStrategyId {
    /// Every strategy, in declaration order.
    pub const ALL: [SyncStrategyId; 3] = [
        SyncStrategyId::JmbLeadSlave,
        SyncStrategyId::AirSyncPilot,
        SyncStrategyId::ReciprocityImplicit,
    ];

    /// Stable name used in JSON output.
    pub fn name(self) -> &'static str {
        match self {
            SyncStrategyId::JmbLeadSlave => "JmbLeadSlave",
            SyncStrategyId::AirSyncPilot => "AirSyncPilot",
            SyncStrategyId::ReciprocityImplicit => "ReciprocityImplicit",
        }
    }

    /// Inverse of [`SyncStrategyId::name`].
    pub fn from_name(s: &str) -> Option<SyncStrategyId> {
        match s {
            "JmbLeadSlave" => Some(SyncStrategyId::JmbLeadSlave),
            "AirSyncPilot" => Some(SyncStrategyId::AirSyncPilot),
            "ReciprocityImplicit" => Some(SyncStrategyId::ReciprocityImplicit),
            _ => None,
        }
    }

    /// Stable kebab-case token used by manifests, CLI flags and the
    /// `JMB_SYNC` env.
    pub fn token(self) -> &'static str {
        match self {
            SyncStrategyId::JmbLeadSlave => "jmb-lead-slave",
            SyncStrategyId::AirSyncPilot => "airsync-pilot",
            SyncStrategyId::ReciprocityImplicit => "reciprocity-implicit",
        }
    }

    /// Inverse of [`SyncStrategyId::token`].
    pub fn from_token(s: &str) -> Option<SyncStrategyId> {
        match s {
            "jmb-lead-slave" => Some(SyncStrategyId::JmbLeadSlave),
            "airsync-pilot" => Some(SyncStrategyId::AirSyncPilot),
            "reciprocity-implicit" => Some(SyncStrategyId::ReciprocityImplicit),
            _ => None,
        }
    }
}

/// What happened (the payload of an [`Event`]; the *when* lives on the
/// event itself).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Medium: a waveform was scheduled.
    Transmit {
        /// Node index.
        node: usize,
        /// Length in samples.
        len: usize,
        /// Mean sample power.
        power: f64,
    },
    /// Medium: a receive window was rendered.
    Render {
        /// Node index.
        node: usize,
        /// Length in samples.
        len: usize,
    },
    /// A transmission or packet was dropped.
    Dropped {
        /// Node index (transmitter for [`DropCause::Fault`], destination
        /// client for [`DropCause::RetryLimit`]).
        node: usize,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// Medium: a scheduled waveform had its payload samples corrupted in
    /// flight by fault injection (pre-CRC, so receivers see a CRC
    /// rejection).
    Corrupted {
        /// Transmitting node index.
        node: usize,
    },
    /// MAC: a downlink packet entered the shared queue.
    Enqueued {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
    },
    /// MAC: the designated AP of the head-of-queue packet was elected lead
    /// for a joint transmission (§9).
    LeadElected {
        /// Lead AP index.
        ap: usize,
    },
    /// MAC: a joint batch was selected from the shared queue.
    BatchSelected {
        /// Number of packets (= concurrent streams) in the batch.
        n_packets: usize,
    },
    /// MAC: a packet was acknowledged (asynchronously, §9).
    Acked {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
    },
    /// MAC: a packet was not acknowledged and returned to the queue for a
    /// future joint transmission.
    Retry {
        /// Destination client.
        client: usize,
        /// Queue-assigned packet id.
        id: u64,
        /// Attempts made so far.
        attempt: u32,
    },
    /// An AP went down (fault schedule).
    ApDown {
        /// AP index.
        ap: usize,
    },
    /// An AP recovered.
    ApUp {
        /// AP index.
        ap: usize,
    },
    /// Control plane: a slave AP missed the lead's sync header for a joint
    /// transmission (fault injection or a physically failed measurement).
    SyncMissed {
        /// Slave AP index.
        slave: usize,
    },
    /// Control plane: CSI age exceeded the staleness threshold and a
    /// re-measurement became due.
    CsiStale {
        /// Age of the oldest CSI entry, seconds.
        age_s: f64,
    },
    /// Control plane: a re-measurement was scheduled (initial attempt or a
    /// backoff retry after a lost measurement frame).
    RemeasureScheduled {
        /// Earliest time the attempt may run, seconds.
        at: f64,
        /// Attempt number (1 = first retry after a failure).
        attempt: u32,
    },
    /// Control plane: a measurement frame was lost and the re-measurement
    /// attempt failed.
    RemeasureFailed {
        /// Attempt number that failed.
        attempt: u32,
    },
    /// Control plane: a re-measurement succeeded and refreshed the CSI.
    RemeasureOk {
        /// Attempt number that succeeded (1 = first try).
        attempt: u32,
    },
    /// PHY control plane: a measurement frame was lost in flight (the
    /// attempt-numbered [`EventKind::RemeasureFailed`] view of the same
    /// loss is emitted by the layer that owns the backoff tracker).
    MeasurementLost,
    /// Control plane: a slave AP accumulated enough consecutive sync-header
    /// misses to be marked degraded (excluded from joint batches until it
    /// re-syncs).
    ApDegraded {
        /// Slave AP index.
        ap: usize,
    },
    /// Control plane: a degraded slave AP heard a sync header again and was
    /// restored to service.
    ApRestored {
        /// Slave AP index.
        ap: usize,
    },
    /// Control plane: the network switched its synchronization backend (or
    /// a run started on a non-default one).
    SyncStrategySwitched {
        /// The strategy now in effect.
        strategy: SyncStrategyId,
    },
    /// City: a cell's event loop started an epoch of its shard.
    CellStarted {
        /// Cell index (row-major in the grid).
        cell: usize,
        /// Frequency-reuse color assigned to the cell.
        color: usize,
    },
    /// City: the aggregate out-of-cell interference applied to a cell for
    /// the current epoch.
    CellInterference {
        /// Cell index (row-major in the grid).
        cell: usize,
        /// Interference-to-noise ratio folded into the cell's floor, dB.
        inr_db: f64,
    },
    /// City: a cell's event loop finished its shard for an epoch.
    CellFinished {
        /// Cell index (row-major in the grid).
        cell: usize,
        /// Packets the cell delivered this epoch.
        delivered: u64,
    },
    /// Scenario: a declarative manifest run began.
    ScenarioStarted {
        /// Number of assertions the manifest declares.
        assertions: usize,
    },
    /// Scenario: one assertion of the manifest was evaluated.
    ScenarioAssertion {
        /// Assertion index in manifest order.
        index: usize,
        /// Whether the assertion held.
        passed: bool,
    },
    /// Scenario: the run ended (naturally or at a resource limit).
    ScenarioStopped {
        /// Why the run stopped.
        cause: StopCause,
        /// Simulation events processed before stopping.
        events: u64,
    },
}

impl EventKind {
    /// Stable kind name (used by [`crate::TraceQuery::kind`] and JSON
    /// output).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Transmit { .. } => "Transmit",
            EventKind::Render { .. } => "Render",
            EventKind::Dropped { .. } => "Dropped",
            EventKind::Corrupted { .. } => "Corrupted",
            EventKind::Enqueued { .. } => "Enqueued",
            EventKind::LeadElected { .. } => "LeadElected",
            EventKind::BatchSelected { .. } => "BatchSelected",
            EventKind::Acked { .. } => "Acked",
            EventKind::Retry { .. } => "Retry",
            EventKind::ApDown { .. } => "ApDown",
            EventKind::ApUp { .. } => "ApUp",
            EventKind::SyncMissed { .. } => "SyncMissed",
            EventKind::CsiStale { .. } => "CsiStale",
            EventKind::RemeasureScheduled { .. } => "RemeasureScheduled",
            EventKind::RemeasureFailed { .. } => "RemeasureFailed",
            EventKind::RemeasureOk { .. } => "RemeasureOk",
            EventKind::MeasurementLost => "MeasurementLost",
            EventKind::ApDegraded { .. } => "ApDegraded",
            EventKind::ApRestored { .. } => "ApRestored",
            EventKind::SyncStrategySwitched { .. } => "SyncStrategySwitched",
            EventKind::CellStarted { .. } => "CellStarted",
            EventKind::CellInterference { .. } => "CellInterference",
            EventKind::CellFinished { .. } => "CellFinished",
            EventKind::ScenarioStarted { .. } => "ScenarioStarted",
            EventKind::ScenarioAssertion { .. } => "ScenarioAssertion",
            EventKind::ScenarioStopped { .. } => "ScenarioStopped",
        }
    }

    /// The city cell index this event concerns, if any.
    pub fn cell(&self) -> Option<usize> {
        match *self {
            EventKind::CellStarted { cell, .. }
            | EventKind::CellInterference { cell, .. }
            | EventKind::CellFinished { cell, .. } => Some(cell),
            _ => None,
        }
    }

    /// The AP index this event concerns, if any (slaves count as APs).
    pub fn ap(&self) -> Option<usize> {
        match *self {
            EventKind::LeadElected { ap }
            | EventKind::ApDown { ap }
            | EventKind::ApUp { ap }
            | EventKind::ApDegraded { ap }
            | EventKind::ApRestored { ap } => Some(ap),
            EventKind::SyncMissed { slave } => Some(slave),
            _ => None,
        }
    }

    /// The client index this event concerns, if any.
    pub fn client(&self) -> Option<usize> {
        match *self {
            EventKind::Enqueued { client, .. }
            | EventKind::Acked { client, .. }
            | EventKind::Retry { client, .. } => Some(client),
            _ => None,
        }
    }

    /// The medium node index this event concerns, if any.
    pub fn node(&self) -> Option<usize> {
        match *self {
            EventKind::Transmit { node, .. }
            | EventKind::Render { node, .. }
            | EventKind::Dropped { node, .. }
            | EventKind::Corrupted { node } => Some(node),
            _ => None,
        }
    }
}

/// One recorded event: *when* (timestamp + per-trace sequence number) and
/// *what* ([`EventKind`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Per-trace sequence number (0-based, assigned at emission; the
    /// determinism tie-break for simultaneous events).
    pub seq: u64,
    /// Global time, seconds.
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// One-line JSON rendering: `{"seq":N,"t":T,"kind":"Name",...fields}`.
    ///
    /// Numbers use Rust's shortest round-trip formatting, so equal values
    /// serialize to equal bytes and [`Event::from_json`] recovers them
    /// exactly.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"t\":{},\"kind\":\"{}\"",
            self.seq,
            self.t,
            self.kind.name()
        );
        match &self.kind {
            EventKind::Transmit { node, len, power } => {
                push_field(&mut s, "node", *node as u64);
                push_field(&mut s, "len", *len as u64);
                s.push_str(&format!(",\"power\":{power}"));
            }
            EventKind::Render { node, len } => {
                push_field(&mut s, "node", *node as u64);
                push_field(&mut s, "len", *len as u64);
            }
            EventKind::Dropped { node, cause } => {
                push_field(&mut s, "node", *node as u64);
                s.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
            }
            EventKind::Corrupted { node } => push_field(&mut s, "node", *node as u64),
            EventKind::Enqueued { client, id } | EventKind::Acked { client, id } => {
                push_field(&mut s, "client", *client as u64);
                push_field(&mut s, "id", *id);
            }
            EventKind::LeadElected { ap }
            | EventKind::ApDown { ap }
            | EventKind::ApUp { ap }
            | EventKind::ApDegraded { ap }
            | EventKind::ApRestored { ap } => push_field(&mut s, "ap", *ap as u64),
            EventKind::BatchSelected { n_packets } => {
                push_field(&mut s, "n_packets", *n_packets as u64)
            }
            EventKind::Retry {
                client,
                id,
                attempt,
            } => {
                push_field(&mut s, "client", *client as u64);
                push_field(&mut s, "id", *id);
                push_field(&mut s, "attempt", *attempt as u64);
            }
            EventKind::SyncMissed { slave } => push_field(&mut s, "slave", *slave as u64),
            EventKind::CsiStale { age_s } => s.push_str(&format!(",\"age_s\":{age_s}")),
            EventKind::RemeasureScheduled { at, attempt } => {
                s.push_str(&format!(",\"at\":{at}"));
                push_field(&mut s, "attempt", *attempt as u64);
            }
            EventKind::RemeasureFailed { attempt } | EventKind::RemeasureOk { attempt } => {
                push_field(&mut s, "attempt", *attempt as u64)
            }
            EventKind::MeasurementLost => {}
            EventKind::SyncStrategySwitched { strategy } => {
                s.push_str(&format!(",\"strategy\":\"{}\"", strategy.name()));
            }
            EventKind::CellStarted { cell, color } => {
                push_field(&mut s, "cell", *cell as u64);
                push_field(&mut s, "color", *color as u64);
            }
            EventKind::CellInterference { cell, inr_db } => {
                push_field(&mut s, "cell", *cell as u64);
                s.push_str(&format!(",\"inr_db\":{inr_db}"));
            }
            EventKind::CellFinished { cell, delivered } => {
                push_field(&mut s, "cell", *cell as u64);
                push_field(&mut s, "delivered", *delivered);
            }
            EventKind::ScenarioStarted { assertions } => {
                push_field(&mut s, "assertions", *assertions as u64);
            }
            EventKind::ScenarioAssertion { index, passed } => {
                push_field(&mut s, "index", *index as u64);
                push_field(&mut s, "passed", u64::from(*passed));
            }
            EventKind::ScenarioStopped { cause, events } => {
                s.push_str(&format!(",\"cause\":\"{}\"", cause.name()));
                push_field(&mut s, "events", *events);
            }
        }
        s.push('}');
        s
    }

    /// Parses one line produced by [`Event::to_json`]. Returns `None` on
    /// anything malformed (foreign JSON is out of scope — this is a replay
    /// format, not a general parser).
    pub fn from_json(line: &str) -> Option<Event> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut seq = None;
        let mut t = None;
        let mut num = std::collections::BTreeMap::new();
        let mut strs = std::collections::BTreeMap::new();
        for part in body.split(',') {
            let (k, v) = part.split_once(':')?;
            let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
            let v = v.trim();
            if let Some(sv) = v.strip_prefix('"').and_then(|x| x.strip_suffix('"')) {
                strs.insert(k, sv);
            } else {
                let fv: f64 = v.parse().ok()?;
                match k {
                    "seq" => seq = Some(fv as u64),
                    "t" => t = Some(fv),
                    _ => {
                        num.insert(k, fv);
                    }
                }
            }
        }
        let kind_name = strs.get("kind").copied();
        let get = |k: &str| num.get(k).map(|&v| v as usize);
        let getf = |k: &str| num.get(k).copied();
        let kind = match kind_name? {
            "Transmit" => EventKind::Transmit {
                node: get("node")?,
                len: get("len")?,
                power: getf("power")?,
            },
            "Render" => EventKind::Render {
                node: get("node")?,
                len: get("len")?,
            },
            "Dropped" => EventKind::Dropped {
                node: get("node")?,
                cause: DropCause::from_name(strs.get("cause")?)?,
            },
            "Corrupted" => EventKind::Corrupted { node: get("node")? },
            "Enqueued" => EventKind::Enqueued {
                client: get("client")?,
                id: get("id")? as u64,
            },
            "LeadElected" => EventKind::LeadElected { ap: get("ap")? },
            "BatchSelected" => EventKind::BatchSelected {
                n_packets: get("n_packets")?,
            },
            "Acked" => EventKind::Acked {
                client: get("client")?,
                id: get("id")? as u64,
            },
            "Retry" => EventKind::Retry {
                client: get("client")?,
                id: get("id")? as u64,
                attempt: get("attempt")? as u32,
            },
            "ApDown" => EventKind::ApDown { ap: get("ap")? },
            "ApUp" => EventKind::ApUp { ap: get("ap")? },
            "SyncMissed" => EventKind::SyncMissed {
                slave: get("slave")?,
            },
            "CsiStale" => EventKind::CsiStale {
                age_s: getf("age_s")?,
            },
            "RemeasureScheduled" => EventKind::RemeasureScheduled {
                at: getf("at")?,
                attempt: get("attempt")? as u32,
            },
            "RemeasureFailed" => EventKind::RemeasureFailed {
                attempt: get("attempt")? as u32,
            },
            "RemeasureOk" => EventKind::RemeasureOk {
                attempt: get("attempt")? as u32,
            },
            "MeasurementLost" => EventKind::MeasurementLost,
            "ApDegraded" => EventKind::ApDegraded { ap: get("ap")? },
            "SyncStrategySwitched" => EventKind::SyncStrategySwitched {
                strategy: SyncStrategyId::from_name(strs.get("strategy")?)?,
            },
            "ApRestored" => EventKind::ApRestored { ap: get("ap")? },
            "CellStarted" => EventKind::CellStarted {
                cell: get("cell")?,
                color: get("color")?,
            },
            "CellInterference" => EventKind::CellInterference {
                cell: get("cell")?,
                inr_db: getf("inr_db")?,
            },
            "CellFinished" => EventKind::CellFinished {
                cell: get("cell")?,
                delivered: get("delivered")? as u64,
            },
            "ScenarioStarted" => EventKind::ScenarioStarted {
                assertions: get("assertions")?,
            },
            "ScenarioAssertion" => EventKind::ScenarioAssertion {
                index: get("index")?,
                passed: getf("passed")? != 0.0,
            },
            "ScenarioStopped" => EventKind::ScenarioStopped {
                cause: StopCause::from_name(strs.get("cause")?)?,
                events: get("events")? as u64,
            },
            _ => return None,
        };
        Some(Event {
            seq: seq?,
            t: t?,
            kind,
        })
    }
}

/// Appends `,"name":V` with integer formatting (all our integer fields —
/// indices, ids, attempts — fit u64).
fn push_field(s: &mut String, name: &str, v: u64) {
    s.push_str(&format!(",\"{name}\":{v}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: EventKind) {
        let e = Event {
            seq: 42,
            t: 0.001625,
            kind,
        };
        let json = e.to_json();
        let back = Event::from_json(&json).unwrap_or_else(|| panic!("parse failed: {json}"));
        assert_eq!(back, e, "json was {json}");
    }

    #[test]
    fn json_roundtrip_every_kind() {
        roundtrip(EventKind::Transmit {
            node: 3,
            len: 320,
            power: 0.012345,
        });
        roundtrip(EventKind::Render { node: 1, len: 80 });
        roundtrip(EventKind::Dropped {
            node: 2,
            cause: DropCause::Fault,
        });
        roundtrip(EventKind::Dropped {
            node: 2,
            cause: DropCause::RetryLimit,
        });
        roundtrip(EventKind::Corrupted { node: 0 });
        roundtrip(EventKind::Enqueued { client: 5, id: 77 });
        roundtrip(EventKind::LeadElected { ap: 2 });
        roundtrip(EventKind::BatchSelected { n_packets: 4 });
        roundtrip(EventKind::Acked { client: 1, id: 9 });
        roundtrip(EventKind::Retry {
            client: 0,
            id: 3,
            attempt: 2,
        });
        roundtrip(EventKind::ApDown { ap: 1 });
        roundtrip(EventKind::ApUp { ap: 1 });
        roundtrip(EventKind::SyncMissed { slave: 3 });
        roundtrip(EventKind::CsiStale { age_s: 0.0525 });
        roundtrip(EventKind::RemeasureScheduled {
            at: 0.125,
            attempt: 3,
        });
        roundtrip(EventKind::RemeasureFailed { attempt: 1 });
        roundtrip(EventKind::RemeasureOk { attempt: 2 });
        roundtrip(EventKind::MeasurementLost);
        roundtrip(EventKind::ApDegraded { ap: 2 });
        roundtrip(EventKind::ApRestored { ap: 2 });
        for strategy in SyncStrategyId::ALL {
            roundtrip(EventKind::SyncStrategySwitched { strategy });
        }
        roundtrip(EventKind::CellStarted { cell: 37, color: 2 });
        roundtrip(EventKind::CellInterference {
            cell: 37,
            inr_db: 11.75,
        });
        roundtrip(EventKind::CellFinished {
            cell: 37,
            delivered: 12345,
        });
        roundtrip(EventKind::ScenarioStarted { assertions: 6 });
        roundtrip(EventKind::ScenarioAssertion {
            index: 2,
            passed: true,
        });
        roundtrip(EventKind::ScenarioAssertion {
            index: 3,
            passed: false,
        });
        for cause in [
            StopCause::Completed,
            StopCause::MaxEvents,
            StopCause::MaxSimTime,
            StopCause::Wallclock,
        ] {
            roundtrip(EventKind::ScenarioStopped { cause, events: 99 });
        }
    }

    #[test]
    fn sync_strategy_names_and_tokens_roundtrip() {
        for id in SyncStrategyId::ALL {
            assert_eq!(SyncStrategyId::from_name(id.name()), Some(id));
            assert_eq!(SyncStrategyId::from_token(id.token()), Some(id));
        }
        assert_eq!(SyncStrategyId::from_name("Nope"), None);
        assert_eq!(SyncStrategyId::from_token("nope"), None);
        assert_eq!(SyncStrategyId::default(), SyncStrategyId::JmbLeadSlave);
    }

    #[test]
    fn stop_cause_names_roundtrip() {
        for cause in [
            StopCause::Completed,
            StopCause::MaxEvents,
            StopCause::MaxSimTime,
            StopCause::Wallclock,
        ] {
            assert_eq!(StopCause::from_name(cause.name()), Some(cause));
        }
        assert_eq!(StopCause::from_name("Nope"), None);
    }

    #[test]
    fn accessors_pick_the_right_index() {
        assert_eq!(EventKind::SyncMissed { slave: 3 }.ap(), Some(3));
        assert_eq!(EventKind::LeadElected { ap: 1 }.ap(), Some(1));
        assert_eq!(EventKind::Acked { client: 2, id: 0 }.client(), Some(2));
        assert_eq!(EventKind::Corrupted { node: 4 }.node(), Some(4));
        assert_eq!(EventKind::MeasurementLost.ap(), None);
        assert_eq!(EventKind::CsiStale { age_s: 0.1 }.client(), None);
        assert_eq!(EventKind::CellStarted { cell: 9, color: 1 }.cell(), Some(9));
        assert_eq!(
            EventKind::CellFinished {
                cell: 4,
                delivered: 0
            }
            .cell(),
            Some(4)
        );
        assert_eq!(EventKind::ApDown { ap: 0 }.cell(), None);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Event::from_json("").is_none());
        assert!(Event::from_json("{}").is_none());
        assert!(Event::from_json("{\"seq\":1,\"t\":0.0,\"kind\":\"Nope\"}").is_none());
        assert!(Event::from_json("{\"seq\":1,\"t\":0.0,\"kind\":\"Acked\"}").is_none());
        assert!(Event::from_json("not json at all").is_none());
    }
}
