//! # jmb-obs — the observability substrate
//!
//! Every other crate in the workspace needs the same three things to be
//! *seen*: counters that are cheap enough for hot paths, a structured
//! event trace that tests and offline tooling can query, and scoped
//! timers for the handful of kernels that dominate wall-clock time. This
//! crate provides all three with zero dependencies, so it can sit below
//! `jmb-dsp` at the very bottom of the workspace:
//!
//! * [`registry::Registry`] — typed counters, gauges, and fixed-bucket
//!   histograms with optional numeric labels. Deterministic: storage is
//!   ordered maps, and parallel sweeps shard one registry per run and
//!   [`registry::Registry::merge`] them in index order (the same pooling
//!   discipline as the traffic layer's metric merge).
//! * [`trace::Trace`] + [`event::Event`] — a timestamped, seq-numbered
//!   event pipeline with pluggable [`sink::TraceSink`]s (in-memory ring
//!   buffer, JSON-lines file, predicate filter). Disabled traces cost one
//!   branch per event.
//! * [`query::TraceQuery`] — filter recorded (or replayed) events by
//!   kind, AP, client, node, or time window, and assert ordering,
//!   monotone timestamps, and count bounds. JSON-lines written by
//!   [`sink::JsonLinesSink`] replay through [`query::read_jsonl`].
//! * [`span`] — scoped wall-clock timers for hot kernels (FFT, precoder
//!   synthesis, the traffic event loop). Span durations are wall-clock
//!   and therefore *never* enter the event trace — traces must stay
//!   byte-identical across machines and thread counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod query;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::{DropCause, Event, EventKind, StopCause, SyncStrategyId};
pub use query::{read_jsonl, TraceQuery};
pub use registry::{Histogram, Registry};
pub use sink::{FilterSink, JsonLinesSink, RingBufferSink, TraceSink};
pub use span::{reset_spans, set_spans_enabled, span, span_report, spans_enabled, SpanStat};
pub use trace::Trace;
