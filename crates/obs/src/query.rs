//! Trace replay and assertion API.
//!
//! [`TraceQuery`] is a small builder over a recorded (or replayed) event
//! slice: narrow by kind / AP / client / node / time-window, then read
//! counts and times or assert protocol properties — ordering, monotone
//! timestamps, count bounds. Assertions panic with the offending events in
//! the message, so a failing integration test points straight at the
//! stream.

use crate::event::Event;
use std::io::{self, BufRead};
use std::path::Path;

/// A filtered view over an event slice.
#[derive(Debug, Clone)]
pub struct TraceQuery<'a> {
    events: Vec<&'a Event>,
}

impl<'a> TraceQuery<'a> {
    /// Queries everything in `events` (e.g. `trace.events()` or a replayed
    /// [`read_jsonl`] vector).
    pub fn new(events: &'a [Event]) -> Self {
        TraceQuery {
            events: events.iter().collect(),
        }
    }

    /// Narrows to events whose kind name equals `name` (see
    /// [`crate::EventKind::name`]).
    pub fn kind(mut self, name: &str) -> Self {
        self.events.retain(|e| e.kind.name() == name);
        self
    }

    /// Narrows to events concerning AP `ap` (slave indices count as APs).
    pub fn ap(mut self, ap: usize) -> Self {
        self.events.retain(|e| e.kind.ap() == Some(ap));
        self
    }

    /// Narrows to events concerning client `client`.
    pub fn client(mut self, client: usize) -> Self {
        self.events.retain(|e| e.kind.client() == Some(client));
        self
    }

    /// Narrows to events concerning medium node `node`.
    pub fn node(mut self, node: usize) -> Self {
        self.events.retain(|e| e.kind.node() == Some(node));
        self
    }

    /// Narrows to the half-open time window `[t0, t1)`.
    pub fn between(mut self, t0: f64, t1: f64) -> Self {
        self.events.retain(|e| e.t >= t0 && e.t < t1);
        self
    }

    /// The selected events, in stream order.
    pub fn events(&self) -> &[&'a Event] {
        &self.events
    }

    /// Number of selected events.
    pub fn count(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing matched.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Timestamps of the selected events, in stream order.
    pub fn times(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.t).collect()
    }

    /// First selected event, if any.
    pub fn first(&self) -> Option<&'a Event> {
        self.events.first().copied()
    }

    /// Last selected event, if any.
    pub fn last(&self) -> Option<&'a Event> {
        self.events.last().copied()
    }

    /// Asserts timestamps never decrease along the stream. Returns `self`
    /// for chaining.
    ///
    /// This is the guard for clock-domain bugs: a component that stamps
    /// events with a clock that runs ahead of (and later falls back to)
    /// another time domain produces a stream that violates this.
    #[track_caller]
    pub fn assert_monotone_time(self) -> Self {
        for w in self.events.windows(2) {
            assert!(
                w[1].t >= w[0].t,
                "trace time went backwards: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        self
    }

    /// Asserts sequence numbers strictly increase along the stream (always
    /// true for a single un-cleared trace; catches splicing mistakes when
    /// streams are merged or replayed). Returns `self` for chaining.
    #[track_caller]
    pub fn assert_monotone_seq(self) -> Self {
        for w in self.events.windows(2) {
            assert!(
                w[1].seq > w[0].seq,
                "trace seq not increasing: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        self
    }

    /// Asserts the selected count lies in `[lo, hi]` (inclusive). Returns
    /// `self` for chaining.
    #[track_caller]
    pub fn assert_count_between(self, lo: usize, hi: usize) -> Self {
        let n = self.events.len();
        assert!(
            n >= lo && n <= hi,
            "event count {n} outside [{lo}, {hi}]; first: {:?}",
            self.events.first()
        );
        self
    }

    /// Asserts at least `lo` events matched. Returns `self` for chaining.
    #[track_caller]
    pub fn assert_count_at_least(self, lo: usize) -> Self {
        let n = self.events.len();
        assert!(n >= lo, "event count {n} < {lo}");
        self
    }

    /// Asserts the first `first`-kind event precedes the first
    /// `second`-kind event (both must exist among the selected events).
    /// Returns `self` for chaining.
    #[track_caller]
    pub fn assert_precedes(self, first: &str, second: &str) -> Self {
        let a = self
            .events
            .iter()
            .find(|e| e.kind.name() == first)
            .unwrap_or_else(|| panic!("no {first} event in stream"));
        let b = self
            .events
            .iter()
            .find(|e| e.kind.name() == second)
            .unwrap_or_else(|| panic!("no {second} event in stream"));
        assert!(
            (a.t, a.seq) <= (b.t, b.seq),
            "{first} ({a:?}) does not precede {second} ({b:?})"
        );
        self
    }
}

/// Replays a JSON-lines trace file written via
/// [`crate::sink::JsonLinesSink`] (or [`crate::Trace::to_jsonl`]). Blank
/// lines are skipped; a malformed line is an error naming its line number.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<Event>> {
    let f = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for (i, line) in io::BufReader::new(f).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let e = Event::from_json(&line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad trace line {}: {line}", i + 1),
            )
        })?;
        out.push(e);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn stream() -> Vec<Event> {
        let kinds = vec![
            EventKind::Enqueued { client: 0, id: 1 },
            EventKind::LeadElected { ap: 1 },
            EventKind::SyncMissed { slave: 2 },
            EventKind::ApDegraded { ap: 2 },
            EventKind::Acked { client: 0, id: 1 },
            EventKind::ApRestored { ap: 2 },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| Event {
                seq: i as u64,
                t: 0.1 * i as f64,
                kind,
            })
            .collect()
    }

    #[test]
    fn filters_compose() {
        let es = stream();
        assert_eq!(TraceQuery::new(&es).kind("SyncMissed").count(), 1);
        assert_eq!(TraceQuery::new(&es).ap(2).count(), 3);
        assert_eq!(TraceQuery::new(&es).ap(2).kind("ApDegraded").count(), 1);
        assert_eq!(TraceQuery::new(&es).client(0).count(), 2);
        assert_eq!(TraceQuery::new(&es).between(0.15, 0.45).count(), 3);
        assert!(TraceQuery::new(&es).kind("Render").is_empty());
        assert_eq!(
            TraceQuery::new(&es).times(),
            vec![0.0, 0.1, 0.2, 0.30000000000000004, 0.4, 0.5]
        );
    }

    #[test]
    fn assertions_pass_on_well_formed_stream() {
        let es = stream();
        TraceQuery::new(&es)
            .assert_monotone_time()
            .assert_monotone_seq()
            .assert_count_between(6, 6)
            .assert_precedes("ApDegraded", "ApRestored")
            .assert_precedes("Enqueued", "Acked");
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn monotone_time_catches_regression() {
        let mut es = stream();
        es[3].t = 0.05;
        let _ = TraceQuery::new(&es).assert_monotone_time();
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn precedes_catches_inversion() {
        let mut es = stream();
        es.swap(3, 5); // restore now before degrade
        let es: Vec<Event> = es
            .into_iter()
            .enumerate()
            .map(|(i, mut e)| {
                e.seq = i as u64;
                e.t = 0.1 * i as f64;
                e
            })
            .collect();
        let _ = TraceQuery::new(&es).assert_precedes("ApDegraded", "ApRestored");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn count_bound_catches_excess() {
        let es = stream();
        let _ = TraceQuery::new(&es).assert_count_between(0, 2);
    }

    #[test]
    fn jsonl_file_roundtrip() {
        let es = stream();
        let path = std::env::temp_dir().join("jmb_obs_query_test.jsonl");
        let mut body = String::new();
        for e in &es {
            body.push_str(&e.to_json());
            body.push('\n');
        }
        std::fs::write(&path, body).unwrap();
        let back = read_jsonl(&path).unwrap();
        assert_eq!(back, es);
        std::fs::remove_file(&path).ok();
    }
}
