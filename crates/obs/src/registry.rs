//! The metrics registry: typed counters, gauges, and fixed-bucket
//! histograms with optional numeric labels.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Storage is `BTreeMap` keyed by `(name, label)`, so
//!    iteration order — and therefore any rendering — is stable. Parallel
//!    sweeps follow the same pooling discipline as the traffic layer: one
//!    registry per run, merged in index order with [`Registry::merge`].
//!    Merge accumulates f64 sums in a fixed order so merged gauge values
//!    are bit-identical run to run.
//! 2. **Hot-path cost.** A counter bump is one map lookup and an integer
//!    add; no locks, no atomics — each simulation owns its registry
//!    outright, which is cheaper than any sharing scheme and is what the
//!    deterministic merge model wants anyway.
//! 3. **Numeric labels.** The only label cardinality this workspace needs
//!    is "per client" / "per AP", so labels are `Option<u32>` indices, not
//!    string maps.

use std::collections::BTreeMap;

/// Metric key: a static name plus an optional numeric label (client or AP
/// index).
type Key = (&'static str, Option<u32>);

/// A fixed-bucket histogram: counts per bucket plus running sum / min /
/// max, enough for latency percentile bands without storing every sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram with the given upper bucket bounds (must be sorted
    /// ascending); samples above the last bound land in an overflow
    /// bucket.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Smallest bucket upper bound at or above the `q`-quantile of the
    /// recorded distribution (`+inf` for the overflow bucket), or 0 if
    /// empty. Coarse by construction — use the raw series when exact
    /// percentiles matter.
    pub fn quantile_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target.max(1) {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram bucket bounds differ at merge"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One deterministic metric row, for rendering and diffing.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone integer counter.
    Counter(u64),
    /// An f64 gauge / accumulator.
    Gauge(f64),
    /// A fixed-bucket histogram.
    Hist(Histogram),
}

/// A deterministic metrics registry (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    hists: BTreeMap<Key, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Increments the unlabeled counter `name` by 1.
    pub fn inc(&mut self, name: &'static str) {
        self.inc_by(name, 1);
    }

    /// Increments the unlabeled counter `name` by `n`.
    pub fn inc_by(&mut self, name: &'static str, n: u64) {
        *self.counters.entry((name, None)).or_insert(0) += n;
    }

    /// Increments counter `name{label}` by 1.
    pub fn inc_at(&mut self, name: &'static str, label: u32) {
        *self.counters.entry((name, Some(label))).or_insert(0) += 1;
    }

    /// Reads the unlabeled counter `name` (0 if never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(&(name, None)).copied().unwrap_or(0)
    }

    /// Reads counter `name{label}` (0 if never touched).
    pub fn counter_at(&self, name: &'static str, label: u32) -> u64 {
        self.counters
            .get(&(name, Some(label)))
            .copied()
            .unwrap_or(0)
    }

    /// Sum of counter `name` over every label (including unlabeled).
    pub fn counter_total(&self, name: &'static str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| v)
            .sum()
    }

    /// Sets the unlabeled gauge `name`.
    pub fn gauge_set(&mut self, name: &'static str, v: f64) {
        self.gauges.insert((name, None), v);
    }

    /// Adds to the unlabeled gauge `name` (starting from 0).
    pub fn gauge_add(&mut self, name: &'static str, v: f64) {
        *self.gauges.entry((name, None)).or_insert(0.0) += v;
    }

    /// Adds to gauge `name{label}` (starting from 0).
    pub fn gauge_add_at(&mut self, name: &'static str, label: u32, v: f64) {
        *self.gauges.entry((name, Some(label))).or_insert(0.0) += v;
    }

    /// Reads the unlabeled gauge `name` (0 if never touched).
    pub fn gauge(&self, name: &'static str) -> f64 {
        self.gauges.get(&(name, None)).copied().unwrap_or(0.0)
    }

    /// Reads gauge `name{label}` (0 if never touched).
    pub fn gauge_at(&self, name: &'static str, label: u32) -> f64 {
        self.gauges
            .get(&(name, Some(label)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Gauge values for labels `0..n` in index order (missing labels read
    /// as 0) — the deterministic way to recover a per-client vector.
    pub fn gauge_vec(&self, name: &'static str, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.gauge_at(name, i as u32)).collect()
    }

    /// Registers (or re-registers) the unlabeled histogram `name` with the
    /// given bucket bounds; existing samples are discarded.
    pub fn register_hist(&mut self, name: &'static str, bounds: &[f64]) {
        self.hists.insert((name, None), Histogram::new(bounds));
    }

    /// Records a sample into histogram `name`. The histogram must have
    /// been registered — bucket bounds are an explicit schema decision,
    /// not something to default silently.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.hists
            .get_mut(&(name, None))
            .unwrap_or_else(|| panic!("histogram {name:?} not registered"))
            .observe(v);
    }

    /// Reads histogram `name`, if registered.
    pub fn hist(&self, name: &'static str) -> Option<&Histogram> {
        self.hists.get(&(name, None))
    }

    /// Merges `other` into `self` — counters add, gauges add, histograms
    /// pool. Accumulation visits `other`'s maps in key order, so merging
    /// shards in index order is deterministic down to f64 bit patterns.
    pub fn merge(&mut self, other: &Registry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            *self.gauges.entry(k).or_insert(0.0) += v;
        }
        for (k, h) in &other.hists {
            match self.hists.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(*k, h.clone());
                }
            }
        }
    }

    /// Every metric in deterministic `(name, label)` order — counters,
    /// then gauges, then histograms.
    pub fn rows(&self) -> Vec<(&'static str, Option<u32>, MetricValue)> {
        let mut out = Vec::new();
        for (&(n, l), &v) in &self.counters {
            out.push((n, l, MetricValue::Counter(v)));
        }
        for (&(n, l), &v) in &self.gauges {
            out.push((n, l, MetricValue::Gauge(v)));
        }
        for (&(n, l), h) in &self.hists {
            out.push((n, l, MetricValue::Hist(h.clone())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_labels() {
        let mut r = Registry::new();
        r.inc("tx");
        r.inc("tx");
        r.inc_by("tx", 3);
        r.inc_at("drops", 0);
        r.inc_at("drops", 2);
        r.inc_at("drops", 2);
        assert_eq!(r.counter("tx"), 5);
        assert_eq!(r.counter("drops"), 0);
        assert_eq!(r.counter_at("drops", 2), 2);
        assert_eq!(r.counter_total("drops"), 3);
    }

    #[test]
    fn gauges_accumulate_and_vectorize() {
        let mut r = Registry::new();
        r.gauge_add("airtime_s", 0.25);
        r.gauge_add("airtime_s", 0.5);
        r.gauge_set("elapsed_s", 2.0);
        r.gauge_add_at("bits", 1, 100.0);
        r.gauge_add_at("bits", 1, 50.0);
        assert_eq!(r.gauge("airtime_s"), 0.75);
        assert_eq!(r.gauge("elapsed_s"), 2.0);
        assert_eq!(r.gauge_vec("bits", 3), vec![0.0, 150.0, 0.0]);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut r = Registry::new();
        r.register_hist("lat", &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.002, 0.05, 0.5] {
            r.observe("lat", v);
        }
        let h = r.hist("lat").unwrap();
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 0.5525).abs() < 1e-12);
        assert_eq!(h.min(), 0.0005);
        assert_eq!(h.max(), 0.5);
        assert_eq!(h.quantile_bound(0.5), 0.01);
        assert_eq!(h.quantile_bound(1.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn observe_requires_registration() {
        let mut r = Registry::new();
        r.observe("nope", 1.0);
    }

    #[test]
    fn merge_is_deterministic_pooling() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for r in [&mut a, &mut b] {
            r.register_hist("lat", &[0.01, 0.1]);
        }
        a.inc_by("tx", 2);
        a.gauge_add_at("bits", 0, 1.5);
        a.observe("lat", 0.005);
        b.inc_by("tx", 3);
        b.inc("drops");
        b.gauge_add_at("bits", 0, 2.5);
        b.gauge_add_at("bits", 1, 4.0);
        b.observe("lat", 0.05);

        let mut merged = Registry::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.counter("tx"), 5);
        assert_eq!(merged.counter("drops"), 1);
        assert_eq!(merged.gauge_vec("bits", 2), vec![4.0, 4.0]);
        let h = merged.hist("lat").unwrap();
        assert_eq!(h.counts(), &[1, 1, 0]);

        // Same shards, same order, same bits.
        let mut again = Registry::new();
        again.merge(&a);
        again.merge(&b);
        assert_eq!(again.rows(), merged.rows());
    }

    #[test]
    fn rows_are_ordered() {
        let mut r = Registry::new();
        r.inc("b");
        r.inc("a");
        r.inc_at("a", 1);
        r.gauge_set("g", 1.0);
        let names: Vec<(&str, Option<u32>)> = r.rows().iter().map(|(n, l, _)| (*n, *l)).collect();
        assert_eq!(
            names,
            vec![("a", None), ("a", Some(1)), ("b", None), ("g", None)]
        );
    }
}
