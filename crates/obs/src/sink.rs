//! Pluggable trace destinations.
//!
//! A [`crate::Trace`] always keeps its in-memory buffer (tests query it);
//! sinks are *additional* destinations events stream through as they are
//! emitted — a bounded ring buffer for flight-recorder debugging, a
//! JSON-lines file for offline inspection and replay, or a predicate
//! filter wrapped around either.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination events stream through at emission time.
pub trait TraceSink {
    /// Receives one event (called in emission order).
    fn record(&mut self, e: &Event);
    /// Flushes any buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Keeps the most recent `capacity` events — a flight recorder.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<Event>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, e: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(e.clone());
    }
}

/// Streams events as JSON lines to any writer (one event per line, the
/// format [`crate::query::read_jsonl`] replays).
pub struct JsonLinesSink<W: Write> {
    w: W,
}

impl JsonLinesSink<BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonLinesSink {
            w: BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(w: W) -> Self {
        JsonLinesSink { w }
    }

    /// Consumes the sink and returns the writer (flushed).
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, e: &Event) {
        // An I/O error must never abort a simulation mid-run; the flush at
        // the end surfaces persistent failures soon enough for tooling.
        let _ = writeln!(self.w, "{}", e.to_json());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Forwards only events matching a predicate to an inner sink.
pub struct FilterSink<S: TraceSink> {
    pred: Box<dyn Fn(&Event) -> bool + Send>,
    inner: S,
}

impl<S: TraceSink> FilterSink<S> {
    /// Wraps `inner`, forwarding only events where `pred` returns true.
    pub fn new(pred: impl Fn(&Event) -> bool + Send + 'static, inner: S) -> Self {
        FilterSink {
            pred: Box::new(pred),
            inner,
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TraceSink> TraceSink for FilterSink<S> {
    fn record(&mut self, e: &Event) {
        if (self.pred)(e) {
            self.inner.record(e);
        }
    }

    fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(seq: u64, t: f64, ap: usize) -> Event {
        Event {
            seq,
            t,
            kind: EventKind::LeadElected { ap },
        }
    }

    #[test]
    fn ring_buffer_keeps_tail() {
        let mut s = RingBufferSink::new(3);
        assert!(s.is_empty());
        for i in 0..5 {
            s.record(&ev(i, i as f64, 0));
        }
        assert_eq!(s.len(), 3);
        let seqs: Vec<u64> = s.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut s = JsonLinesSink::new(Vec::new());
        s.record(&ev(0, 0.5, 2));
        s.record(&ev(1, 0.75, 3));
        let out = String::from_utf8(s.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json(lines[0]).unwrap(), ev(0, 0.5, 2));
        assert_eq!(Event::from_json(lines[1]).unwrap(), ev(1, 0.75, 3));
    }

    #[test]
    fn filter_sink_forwards_matches_only() {
        let ring = RingBufferSink::new(8);
        let mut f = FilterSink::new(|e| e.kind.ap() == Some(1), ring);
        f.record(&ev(0, 0.0, 0));
        f.record(&ev(1, 0.1, 1));
        f.record(&ev(2, 0.2, 1));
        let seqs: Vec<u64> = f.inner().events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }
}
