//! Scoped wall-clock timers for hot kernels.
//!
//! A span measures real elapsed time, which varies machine to machine and
//! run to run — so span data lives in a process-global table and **never**
//! enters the event trace (traces must stay byte-identical across thread
//! counts and hosts). The table is gated by one atomic bool so a disabled
//! span costs a single relaxed load; enabling is an explicit opt-in from
//! perf tooling (`perf_baseline`), never the default.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

// Determinism audit (`no-unordered-iteration`): the span table is a
// `BTreeMap` so `snapshot()` reports in name order — already-ordered, and
// wall-clock data never reaches traces/CSVs regardless.
fn table() -> &'static Mutex<BTreeMap<&'static str, SpanStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, SpanStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Aggregate wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per entry, or 0 if never entered.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Turns span recording on or off process-wide.
pub fn set_spans_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently on.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded span statistics.
pub fn reset_spans() {
    table().lock().unwrap().clear();
}

/// Snapshot of all span statistics, in name order.
pub fn span_report() -> Vec<(&'static str, SpanStat)> {
    table()
        .lock()
        .unwrap()
        .iter()
        .map(|(&n, &s)| (n, s))
        .collect()
}

/// Times a scope: the returned guard records elapsed wall-clock time into
/// the global table on drop. When recording is disabled the guard is inert
/// (one relaxed atomic load at construction, nothing at drop).
///
/// ```
/// jmb_obs::set_spans_enabled(true);
/// {
///     let _g = jmb_obs::span("fft");
///     // ... kernel work ...
/// }
/// let report = jmb_obs::span_report();
/// assert_eq!(report[0].0, "fft");
/// assert_eq!(report[0].1.count, 1);
/// # jmb_obs::set_spans_enabled(false);
/// # jmb_obs::reset_spans();
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        start: if spans_enabled() {
            Some((name, Instant::now()))
        } else {
            None
        },
    }
}

/// Guard returned by [`span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<(&'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.start.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let mut t = table().lock().unwrap();
            let s = t.entry(name).or_default();
            s.count += 1;
            s.total_ns += ns;
            s.max_ns = s.max_ns.max(ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle: the table is process-global,
    // so separate #[test] fns would race each other under the parallel
    // test runner.
    #[test]
    fn span_lifecycle() {
        reset_spans();

        // Disabled: nothing recorded.
        assert!(!spans_enabled());
        {
            let _g = span("idle");
        }
        assert!(span_report().is_empty());

        set_spans_enabled(true);
        {
            let _g = span("kernel_b");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _g = span("kernel_a");
        }
        {
            let _g = span("kernel_b");
        }
        set_spans_enabled(false);

        let report = span_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, "kernel_a"); // name order
        assert_eq!(report[0].1.count, 1);
        assert_eq!(report[1].0, "kernel_b");
        assert_eq!(report[1].1.count, 2);
        assert!(report[1].1.total_ns >= 1_000_000);
        assert!(report[1].1.max_ns <= report[1].1.total_ns);
        assert!(report[1].1.mean_ns() <= report[1].1.max_ns);

        reset_spans();
        assert!(span_report().is_empty());
    }
}
