//! The trace pipeline: an append-only, seq-numbered event log with
//! pluggable sinks.
//!
//! Emission discipline: components *own* their trace (the medium, the fast
//! network, the traffic simulator each keep one), stamp events with the
//! clock of their own time domain, and the [`crate::TraceQuery`] API reads
//! streams after the fact. Disabled traces cost one branch per event, so
//! clean runs stay byte-identical whether or not the binary was built with
//! observability in mind.

use crate::event::{DropCause, Event, EventKind};
use crate::query::TraceQuery;
use crate::sink::TraceSink;

/// An append-only event log with optional streaming sinks.
///
/// Not `Clone`: a trace identifies one component's event stream, and sinks
/// (files, rings) cannot be meaningfully duplicated.
#[derive(Default)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
    buffer: bool,
    next_seq: u64,
    sinks: Vec<Box<dyn TraceSink + Send>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.enabled)
            .field("events", &self.events.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Trace {
    /// Creates a disabled trace (enable with [`Trace::enable`]).
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
            buffer: true,
            next_seq: 0,
            sinks: Vec::new(),
        }
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (existing events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns the in-memory buffer on/off (on by default). With buffering
    /// off, events stream to sinks only — for long runs dumped straight to
    /// a JSONL file.
    pub fn set_buffering(&mut self, on: bool) {
        self.buffer = on;
    }

    /// Attaches a streaming sink (and implies nothing about `enabled` —
    /// call [`Trace::enable`] separately).
    pub fn attach_sink(&mut self, sink: impl TraceSink + Send + 'static) {
        self.sinks.push(Box::new(sink));
    }

    /// Detaches every sink, flushing each first.
    pub fn detach_sinks(&mut self) {
        for s in self.sinks.iter_mut() {
            s.flush();
        }
        self.sinks.clear();
    }

    /// Flushes all attached sinks.
    pub fn flush(&mut self) {
        for s in self.sinks.iter_mut() {
            s.flush();
        }
    }

    /// Records an event at time `t` if enabled, assigning the next
    /// sequence number.
    pub fn emit(&mut self, t: f64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let e = Event {
            seq: self.next_seq,
            t,
            kind,
        };
        self.next_seq += 1;
        for s in self.sinks.iter_mut() {
            s.record(&e);
        }
        if self.buffer {
            self.events.push(e);
        }
    }

    /// All buffered events in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// A query over the buffered events.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery::new(&self.events)
    }

    /// The buffered events as JSON lines (the replay format).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// Number of buffered events matching a predicate on the kind.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events.iter().filter(|e| pred(&e.kind)).count()
    }

    /// Number of transmissions recorded.
    pub fn transmit_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Transmit { .. }))
    }

    /// Number of drops recorded (any cause).
    pub fn drop_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Dropped { .. }))
    }

    /// Number of drops recorded with the given cause.
    pub fn drop_count_by(&self, cause: DropCause) -> usize {
        self.count(|k| matches!(k, EventKind::Dropped { cause: c, .. } if *c == cause))
    }

    /// Number of in-flight corruptions recorded.
    pub fn corrupt_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Corrupted { .. }))
    }

    /// Number of MAC acknowledgments recorded.
    pub fn ack_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Acked { .. }))
    }

    /// Number of MAC retries recorded.
    pub fn retry_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::Retry { .. }))
    }

    /// Number of missed sync headers recorded.
    pub fn sync_missed_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::SyncMissed { .. }))
    }

    /// Number of scheduled re-measurements recorded.
    pub fn remeasure_scheduled_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::RemeasureScheduled { .. }))
    }

    /// Number of failed re-measurements recorded.
    pub fn remeasure_failed_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::RemeasureFailed { .. }))
    }

    /// Number of AP degradations recorded.
    pub fn degraded_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ApDegraded { .. }))
    }

    /// Number of AP restorations recorded.
    pub fn restored_count(&self) -> usize {
        self.count(|k| matches!(k, EventKind::ApRestored { .. }))
    }

    /// Clears the buffered log (sequence numbering continues; sinks are
    /// untouched).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    #[test]
    fn disabled_by_default() {
        let mut t = Trace::new();
        t.emit(
            0.0,
            EventKind::Dropped {
                node: 0,
                cause: DropCause::Fault,
            },
        );
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn records_when_enabled_and_assigns_seq() {
        let mut t = Trace::new();
        t.enable();
        t.emit(
            0.5,
            EventKind::Transmit {
                node: 1,
                len: 80,
                power: 0.01,
            },
        );
        t.emit(
            0.6,
            EventKind::Dropped {
                node: 2,
                cause: DropCause::Fault,
            },
        );
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].seq, 0);
        assert_eq!(t.events()[1].seq, 1);
        assert_eq!(t.transmit_count(), 1);
        assert_eq!(t.drop_count(), 1);
    }

    #[test]
    fn disable_keeps_history() {
        let mut t = Trace::new();
        t.enable();
        t.emit(0.0, EventKind::Render { node: 0, len: 10 });
        t.disable();
        t.emit(
            1.0,
            EventKind::Dropped {
                node: 0,
                cause: DropCause::Fault,
            },
        );
        assert_eq!(t.events().len(), 1);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn counters_cover_the_taxonomy() {
        let mut t = Trace::new();
        t.enable();
        t.emit(0.0, EventKind::Enqueued { client: 0, id: 1 });
        t.emit(0.1, EventKind::LeadElected { ap: 2 });
        t.emit(0.1, EventKind::BatchSelected { n_packets: 3 });
        t.emit(0.2, EventKind::Acked { client: 0, id: 1 });
        t.emit(
            0.2,
            EventKind::Retry {
                client: 1,
                id: 2,
                attempt: 1,
            },
        );
        t.emit(
            0.3,
            EventKind::Dropped {
                node: 1,
                cause: DropCause::RetryLimit,
            },
        );
        t.emit(0.4, EventKind::ApDown { ap: 0 });
        t.emit(0.5, EventKind::ApUp { ap: 0 });
        t.emit(0.6, EventKind::Corrupted { node: 1 });
        t.emit(0.7, EventKind::SyncMissed { slave: 2 });
        t.emit(0.7, EventKind::CsiStale { age_s: 0.1 });
        t.emit(
            0.7,
            EventKind::RemeasureScheduled {
                at: 0.8,
                attempt: 1,
            },
        );
        t.emit(0.8, EventKind::RemeasureFailed { attempt: 1 });
        t.emit(0.9, EventKind::ApDegraded { ap: 2 });
        t.emit(1.0, EventKind::ApRestored { ap: 2 });
        assert_eq!(t.sync_missed_count(), 1);
        assert_eq!(t.remeasure_scheduled_count(), 1);
        assert_eq!(t.remeasure_failed_count(), 1);
        assert_eq!(t.degraded_count(), 1);
        assert_eq!(t.restored_count(), 1);
        assert_eq!(t.ack_count(), 1);
        assert_eq!(t.retry_count(), 1);
        assert_eq!(t.corrupt_count(), 1);
        assert_eq!(t.drop_count_by(DropCause::RetryLimit), 1);
        assert_eq!(t.drop_count_by(DropCause::Fault), 0);
        assert_eq!(t.drop_count(), 1);
    }

    #[test]
    fn sinks_receive_streamed_events() {
        let mut t = Trace::new();
        t.attach_sink(RingBufferSink::new(2));
        t.enable();
        for i in 0..4 {
            t.emit(i as f64, EventKind::LeadElected { ap: i });
        }
        // Buffer keeps everything; the jsonl rendering round-trips.
        assert_eq!(t.events().len(), 4);
        let lines: Vec<Event> = t
            .to_jsonl()
            .lines()
            .map(|l| Event::from_json(l).unwrap())
            .collect();
        assert_eq!(lines, t.events());
        t.detach_sinks();
    }

    #[test]
    fn unbuffered_mode_streams_only() {
        let mut t = Trace::new();
        t.set_buffering(false);
        t.enable();
        t.emit(0.0, EventKind::LeadElected { ap: 0 });
        assert!(t.events().is_empty());
    }
}
