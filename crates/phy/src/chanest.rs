//! Channel estimation and pilot phase tracking.
//!
//! Least-squares channel estimation from the two repeated LTF symbols, and
//! per-symbol pilot tracking of the residual common phase and timing slope.
//!
//! Pilot tracking is how JMB clients follow the *lead AP's* oscillator
//! through a packet: "each client uses standard OFDM techniques to track the
//! phase of the lead AP symbol by symbol" (§5.3, third principle). The
//! receiver never needs an explicit CFO estimate of any slave AP — the
//! slaves have already aligned themselves to the lead.

use crate::ofdm::PILOT_BASE;
use crate::params::OfdmParams;
use crate::preamble::ltf_freq;
use jmb_dsp::Complex64;

/// A per-subcarrier channel estimate over the 52 occupied subcarriers,
/// stored in ascending subcarrier order (−26 … +26 skipping DC).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelEstimate {
    /// Occupied subcarrier indices, ascending.
    pub subcarriers: Vec<i32>,
    /// Estimated complex gain per occupied subcarrier.
    pub gains: Vec<Complex64>,
}

impl ChannelEstimate {
    /// Gain at a given logical subcarrier, if occupied.
    pub fn gain_at(&self, subcarrier: i32) -> Option<Complex64> {
        self.subcarriers
            .iter()
            .position(|&k| k == subcarrier)
            .map(|i| self.gains[i])
    }

    /// Gains for the data subcarriers only, in `params.data_subcarriers`
    /// order (the order [`crate::ofdm::Ofdm::extract_data`] produces).
    pub fn data_gains(&self, params: &OfdmParams) -> Vec<Complex64> {
        params
            .data_subcarriers
            .iter()
            // jmb-allow(no-panic-hot-path): the workspace runs one OFDM numerology — the estimate covers every occupied bin of the same params
            .map(|&k| self.gain_at(k).expect("data subcarrier occupied"))
            .collect()
    }

    /// Gains for the pilot subcarriers, in pilot order (−21, −7, +7, +21).
    pub fn pilot_gains(&self, params: &OfdmParams) -> [Complex64; 4] {
        let mut out = [Complex64::ZERO; 4];
        for (i, &k) in params.pilot_subcarriers.iter().enumerate() {
            // jmb-allow(no-panic-hot-path): the workspace runs one OFDM numerology — the estimate covers every occupied bin of the same params
            out[i] = self.gain_at(k).expect("pilot subcarrier occupied");
        }
        out
    }

    /// Average channel power across occupied subcarriers.
    pub fn mean_power(&self) -> f64 {
        self.gains.iter().map(|g| g.norm_sqr()).sum::<f64>() / self.gains.len() as f64
    }

    /// Rotates every subcarrier's gain by the phasor `rot` (used when
    /// referring an estimate to a different reference time, §5.1b).
    pub fn rotated(&self, rot: Complex64) -> ChannelEstimate {
        ChannelEstimate {
            subcarriers: self.subcarriers.clone(),
            gains: self.gains.iter().map(|&g| g * rot).collect(),
        }
    }
}

/// Estimates the channel from the LTF portion of a received packet.
///
/// `ltf_samples` must be the 160-sample LTF (32-sample guard + 2 × 64).
/// The two repetitions are averaged (√2 noise reduction) — the same reason
/// JMB repeats channel-measurement symbols (§5.1a).
///
/// # Panics
///
/// Panics if `ltf_samples.len() != 160`.
pub fn estimate_from_ltf(params: &OfdmParams, ltf_samples: &[Complex64]) -> ChannelEstimate {
    // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the frame parser slices exactly one LTF window
    assert_eq!(ltf_samples.len(), crate::preamble::LTF_LEN, "need full LTF");
    let plan = jmb_dsp::fft::plan(params.fft_size);
    let l = ltf_freq();

    let mut sym1 = ltf_samples[32..96].to_vec();
    let mut sym2 = ltf_samples[96..160].to_vec();
    plan.forward(&mut sym1);
    plan.forward(&mut sym2);

    let subcarriers = params.occupied_subcarriers();
    let gains = subcarriers
        .iter()
        .map(|&k| {
            let bin = params.bin(k);
            let known = l[(k + 26) as usize]; // ±1
                                              // H = Y / L = Y * L since L ∈ {±1}.
            (sym1[bin] + sym2[bin]).scale(0.5 * known)
        })
        .collect();
    ChannelEstimate { subcarriers, gains }
}

/// Result of pilot tracking on one data symbol.
#[derive(Debug, Clone, Copy)]
pub struct PilotTrack {
    /// Common phase error (radians) across the symbol.
    pub common_phase: f64,
    /// Residual linear phase slope per subcarrier index (radians/subcarrier),
    /// produced by sampling-frequency offset or timing drift.
    pub slope: f64,
}

impl PilotTrack {
    /// The correction phasor for a given subcarrier: multiply the received
    /// value by this to undo the tracked rotation.
    pub fn correction(&self, subcarrier: i32) -> Complex64 {
        Complex64::cis(-(self.common_phase + self.slope * subcarrier as f64))
    }
}

/// Tracks residual phase from the 4 pilots of one demodulated symbol.
///
/// `pilot_rx` are the received pilot values (in pilot order), `channel` the
/// estimated pilot-subcarrier gains, and `polarity` the 802.11 pilot polarity
/// `p_n` for this symbol. Returns the common phase and per-subcarrier slope
/// fitted across the pilots (weighted least squares with channel-power
/// weights, so faded pilots contribute less).
pub fn track_pilots(
    params: &OfdmParams,
    pilot_rx: &[Complex64; 4],
    channel: &[Complex64; 4],
    polarity: f64,
) -> PilotTrack {
    // Residual rotation on pilot i: r_i = y_i / (h_i · P_i · p_n).
    let mut phases = [0.0f64; 4];
    let mut weights = [0.0f64; 4];
    for i in 0..4 {
        let expected = channel[i].scale(PILOT_BASE[i] * polarity);
        let r = pilot_rx[i] * expected.conj();
        phases[i] = r.arg();
        weights[i] = expected.norm_sqr();
    }
    // Weighted LS fit of phase = common + slope·k over pilot subcarriers.
    // Guard against phase wrap: pilots are tracked per symbol so residuals
    // are small; unwrap relative to the weighted-circular-mean phase.
    let mean_phasor: Complex64 = (0..4)
        .map(|i| Complex64::from_polar(weights[i].max(1e-18), phases[i]))
        .sum();
    let mean_phase = mean_phasor.arg();
    for p in phases.iter_mut() {
        *p = jmb_dsp::complex::wrap_phase(*p - mean_phase);
    }

    let ks: Vec<f64> = params.pilot_subcarriers.iter().map(|&k| k as f64).collect();
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return PilotTrack {
            common_phase: 0.0,
            slope: 0.0,
        };
    }
    let kbar = ks.iter().zip(&weights).map(|(k, w)| k * w).sum::<f64>() / wsum;
    let pbar = phases.iter().zip(&weights).map(|(p, w)| p * w).sum::<f64>() / wsum;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..4 {
        num += weights[i] * (ks[i] - kbar) * (phases[i] - pbar);
        den += weights[i] * (ks[i] - kbar) * (ks[i] - kbar);
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    let common = jmb_dsp::complex::wrap_phase(pbar - slope * kbar + mean_phase);
    PilotTrack {
        common_phase: common,
        slope,
    }
}

/// Convenience: channel-estimate a *clean* loopback LTF and verify it returns
/// the injected channel. Exposed for other crates' tests.
pub fn estimate_ideal(params: &OfdmParams) -> ChannelEstimate {
    let ltf = crate::preamble::ltf(params);
    estimate_from_ltf(params, &ltf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preamble;

    fn params() -> OfdmParams {
        OfdmParams::default()
    }

    #[test]
    fn loopback_estimate_is_unity() {
        let p = params();
        let est = estimate_ideal(&p);
        assert_eq!(est.gains.len(), 52);
        for (k, g) in est.subcarriers.iter().zip(&est.gains) {
            assert!((g.re - 1.0).abs() < 1e-9 && g.im.abs() < 1e-9, "k={k}: {g}");
        }
        assert!((est.mean_power() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_complex_channel_recovered() {
        let p = params();
        let h = Complex64::from_polar(0.7, -2.1);
        let rx: Vec<Complex64> = preamble::ltf(&p).iter().map(|&x| x * h).collect();
        let est = estimate_from_ltf(&p, &rx);
        for g in &est.gains {
            assert!((*g - h).abs() < 1e-9);
        }
    }

    #[test]
    fn frequency_selective_channel_recovered() {
        // Two-tap channel h[n] = δ[n] + 0.5·δ[n−3]: per-subcarrier response
        // H_k = 1 + 0.5·e^{−j2πk·3/64}.
        let p = params();
        let tx = preamble::ltf(&p);
        let mut rx = vec![Complex64::ZERO; tx.len()];
        for n in 0..tx.len() {
            rx[n] += tx[n];
            if n >= 3 {
                rx[n] += tx[n - 3].scale(0.5);
            }
        }
        // The first 3 samples of the guard are corrupted by the missing
        // history, but channel estimation uses samples 32.. which are fine.
        let est = estimate_from_ltf(&p, &rx);
        for (&k, g) in est.subcarriers.iter().zip(&est.gains) {
            let want = Complex64::ONE
                + Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 * 3.0 / 64.0).scale(0.5);
            assert!((*g - want).abs() < 1e-8, "k={k}: got {g}, want {want}");
        }
    }

    #[test]
    fn averaging_reduces_noise() {
        // With antipodal noise on the two LTF repetitions the average cancels.
        let p = params();
        let tx = preamble::ltf(&p);
        let mut rx = tx.clone();
        let noise = Complex64::new(0.05, -0.03);
        for s in rx[32..96].iter_mut() {
            *s += noise;
        }
        for s in rx[96..160].iter_mut() {
            *s -= noise;
        }
        let est = estimate_from_ltf(&p, &rx);
        for g in &est.gains {
            assert!((*g - Complex64::ONE).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_lookup_and_data_order() {
        let p = params();
        let est = estimate_ideal(&p);
        assert!(est.gain_at(0).is_none(), "DC not occupied");
        assert!(est.gain_at(7).is_some());
        assert_eq!(est.data_gains(&p).len(), 48);
        let pg = est.pilot_gains(&p);
        assert_eq!(pg.len(), 4);
    }

    #[test]
    fn rotation_applies_uniformly() {
        let p = params();
        let est = estimate_ideal(&p);
        let rot = Complex64::cis(0.4);
        let r = est.rotated(rot);
        for (a, b) in est.gains.iter().zip(&r.gains) {
            assert!((*a * rot - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn pilot_tracking_common_phase() {
        let p = params();
        let phase = 0.2;
        let channel = [Complex64::ONE; 4];
        let rx = [
            Complex64::from_polar(1.0, phase) * PILOT_BASE[0],
            Complex64::from_polar(1.0, phase) * PILOT_BASE[1],
            Complex64::from_polar(1.0, phase) * PILOT_BASE[2],
            Complex64::from_polar(1.0, phase) * PILOT_BASE[3],
        ];
        let t = track_pilots(&p, &rx, &channel, 1.0);
        assert!((t.common_phase - phase).abs() < 1e-9, "{}", t.common_phase);
        assert!(t.slope.abs() < 1e-9);
    }

    #[test]
    fn pilot_tracking_slope() {
        let p = params();
        let slope = 0.003; // rad per subcarrier
        let channel = [Complex64::ONE; 4];
        let mut rx = [Complex64::ZERO; 4];
        for (i, &k) in p.pilot_subcarriers.iter().enumerate() {
            rx[i] = Complex64::from_polar(1.0, slope * k as f64) * PILOT_BASE[i];
        }
        let t = track_pilots(&p, &rx, &channel, 1.0);
        assert!(t.common_phase.abs() < 1e-9, "common {}", t.common_phase);
        assert!((t.slope - slope).abs() < 1e-9, "slope {}", t.slope);
    }

    #[test]
    fn pilot_tracking_with_polarity() {
        let p = params();
        let channel = [Complex64::from_polar(0.9, 0.5); 4];
        // Clean reception of polarity −1 pilots.
        let mut rx = [Complex64::ZERO; 4];
        for (i, r) in rx.iter_mut().enumerate() {
            *r = channel[i].scale(-PILOT_BASE[i]);
        }
        let t = track_pilots(&p, &rx, &channel, -1.0);
        assert!(t.common_phase.abs() < 1e-9);
        assert!(t.slope.abs() < 1e-9);
    }

    #[test]
    fn correction_undoes_tracked_rotation() {
        let p = params();
        let t = PilotTrack {
            common_phase: 0.15,
            slope: 0.002,
        };
        for &k in &p.data_subcarriers {
            let applied = Complex64::cis(0.15 + 0.002 * k as f64);
            let corrected = applied * t.correction(k);
            assert!((corrected - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_fit_ignores_dead_pilot() {
        // One pilot in a deep fade with garbage phase must not disturb the fit.
        let p = params();
        let phase = -0.1;
        let mut channel = [Complex64::ONE; 4];
        channel[2] = Complex64::new(1e-9, 0.0); // dead pilot
        let mut rx = [Complex64::ZERO; 4];
        for i in 0..4 {
            rx[i] = channel[i].scale(PILOT_BASE[i]) * Complex64::cis(phase);
        }
        rx[2] = Complex64::from_polar(1.0, 2.9); // garbage on the dead pilot
        let t = track_pilots(&p, &rx, &channel, 1.0);
        assert!((t.common_phase - phase).abs() < 1e-6, "{}", t.common_phase);
    }
}
