//! Convolutional encoding with 802.11 puncturing.
//!
//! The industry-standard rate-1/2, constraint-length-7 code with generator
//! polynomials g₀ = 133₈ and g₁ = 171₈, punctured to rates 2/3 and 3/4 as in
//! 802.11a/g. The matching soft-decision decoder lives in [`crate::viterbi`].

use crate::rates::CodeRate;

/// Generator polynomial g0 = 133 octal (LSB = newest bit).
pub const G0: u8 = 0o133;
/// Generator polynomial g1 = 171 octal.
pub const G1: u8 = 0o171;
/// Constraint length (7) ⇒ 64 trellis states, 6 tail bits.
pub const CONSTRAINT: usize = 7;
/// Number of tail (flush) bits appended by [`encode`].
pub const TAIL_BITS: usize = CONSTRAINT - 1;

#[inline]
fn parity(x: u8) -> u8 {
    (x.count_ones() & 1) as u8
}

/// Encodes `data` bits (0/1 values) at rate 1/2, appending 6 tail zeros to
/// flush the encoder back to state 0 (as 802.11 does per PPDU).
///
/// Output length is `2 * (data.len() + TAIL_BITS)`, ordered `g0` output then
/// `g1` output for each input bit.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * (data.len() + TAIL_BITS));
    encode_into(
        data.iter().chain(std::iter::repeat_n(&0u8, TAIL_BITS)),
        &mut out,
    );
    out
}

/// Encodes `data` bits at rate 1/2 **without** appending tail bits.
///
/// Used for streams that already contain their tail in-band, such as the
/// 802.11 SIGNAL field (whose 24 bits end in 6 zero tail bits) and the DATA
/// field (whose tail sits between the PSDU and the pad bits).
pub fn encode_raw(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 * data.len());
    encode_into(data.iter(), &mut out);
    out
}

fn encode_into<'a>(data: impl Iterator<Item = &'a u8>, out: &mut Vec<u8>) {
    let mut state: u8 = 0; // 6 previous bits
    for &bit in data {
        debug_assert!(bit <= 1, "input bits must be 0/1");
        // Shift register contents: current bit followed by 6 previous bits.
        let reg = (bit << 6) | state;
        out.push(parity(reg & G0));
        out.push(parity(reg & G1));
        state = reg >> 1;
    }
}

/// Puncturing pattern for a code rate: `true` = transmit, `false` = delete.
///
/// Patterns per IEEE 802.11-2012 §18.3.5.6, applied over the rate-1/2
/// encoder output stream (A₀B₀A₁B₁… order):
/// * 2/3 — period 4: keep A₀ B₀ A₁, drop B₁.
/// * 3/4 — period 6: keep A₀ B₀ A₁, drop B₁, drop A₂, keep B₂.
pub fn puncture_pattern(rate: CodeRate) -> &'static [bool] {
    match rate {
        CodeRate::Half => &[true],
        CodeRate::TwoThirds => &[true, true, true, false],
        CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
    }
}

/// Punctures a rate-1/2 coded stream to the given rate.
pub fn puncture(coded: &[u8], rate: CodeRate) -> Vec<u8> {
    let pat = puncture_pattern(rate);
    coded
        .iter()
        .zip(pat.iter().cycle())
        .filter_map(|(&b, &keep)| keep.then_some(b))
        .collect()
}

/// Re-inserts erasures (LLR 0.0) at punctured positions of a soft stream,
/// recovering the rate-1/2 geometry the Viterbi decoder expects.
///
/// `n_coded` is the length of the original (unpunctured) rate-1/2 stream.
///
/// # Panics
///
/// Panics if `soft.len()` does not equal the number of surviving positions
/// for `n_coded` bits under this rate's pattern.
pub fn depuncture(soft: &[f64], rate: CodeRate, n_coded: usize) -> Vec<f64> {
    let mut out = Vec::new();
    depuncture_into(soft, rate, n_coded, &mut out);
    out
}

/// Allocation-free [`depuncture`]: clears `out` and fills it.
///
/// # Panics
///
/// As [`depuncture`].
pub fn depuncture_into(soft: &[f64], rate: CodeRate, n_coded: usize, out: &mut Vec<f64>) {
    let pat = puncture_pattern(rate);
    let expected = (0..n_coded).filter(|i| pat[i % pat.len()]).count();
    // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — the demap stage hands depuncture exactly the surviving soft bits
    assert_eq!(
        soft.len(),
        expected,
        "depuncture: got {} soft bits, pattern expects {expected} for {n_coded} coded bits",
        soft.len()
    );
    out.clear();
    out.reserve(n_coded);
    let mut it = soft.iter();
    for i in 0..n_coded {
        if pat[i % pat.len()] {
            // jmb-allow(no-panic-hot-path): the assert above pins soft.len() to the pattern's surviving count — the iterator cannot run dry
            out.push(*it.next().expect("length checked above"));
        } else {
            out.push(0.0); // erasure: no information about this bit
        }
    }
}

/// Number of coded bits surviving puncturing for `n_data` input bits
/// (including tail) at the given rate.
pub fn punctured_len(n_data_with_tail: usize, rate: CodeRate) -> usize {
    let n_coded = 2 * n_data_with_tail;
    let pat = puncture_pattern(rate);
    (0..n_coded).filter(|i| pat[i % pat.len()]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_raw_matches_encode_with_explicit_tail() {
        let data = [1u8, 0, 1, 1, 0, 0, 1];
        let mut with_tail = data.to_vec();
        with_tail.extend_from_slice(&[0; TAIL_BITS]);
        assert_eq!(encode_raw(&with_tail), encode(&data));
        assert_eq!(encode_raw(&data).len(), 2 * data.len());
    }

    #[test]
    fn encode_length_and_tail() {
        let out = encode(&[1, 0, 1, 1]);
        assert_eq!(out.len(), 2 * (4 + TAIL_BITS));
        assert!(out.iter().all(|&b| b <= 1));
    }

    #[test]
    fn encode_all_zeros_is_all_zeros() {
        let out = encode(&[0; 16]);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn single_one_impulse_response() {
        // The impulse response of the encoder is the generator taps:
        // g0 = 133o = 1011011, g1 = 171o = 1111001 (MSB = current bit).
        let out = encode(&[1]);
        // Input 1 followed by 6 zero tail bits: outputs are successive taps.
        let g0_bits = [1, 0, 1, 1, 0, 1, 1]; // 133 octal, MSB first
        let g1_bits = [1, 1, 1, 1, 0, 0, 1]; // 171 octal, MSB first
        for i in 0..7 {
            assert_eq!(out[2 * i], g0_bits[i], "g0 tap {i}");
            assert_eq!(out[2 * i + 1], g1_bits[i], "g1 tap {i}");
        }
    }

    #[test]
    fn linearity_over_gf2() {
        // Convolutional codes are linear: enc(a) xor enc(b) == enc(a xor b).
        let a = [1u8, 0, 1, 1, 0, 0, 1, 0];
        let b = [0u8, 1, 1, 0, 1, 0, 1, 1];
        let ea = encode(&a);
        let eb = encode(&b);
        let axb: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let eab = encode(&axb);
        let xor: Vec<u8> = ea.iter().zip(&eb).map(|(x, y)| x ^ y).collect();
        assert_eq!(eab, xor);
    }

    #[test]
    fn puncture_rates() {
        let n = 24; // bits incl. tail
        let coded = vec![1u8; 2 * n];
        assert_eq!(puncture(&coded, CodeRate::Half).len(), 48);
        assert_eq!(puncture(&coded, CodeRate::TwoThirds).len(), 36); // 48*3/4
        assert_eq!(puncture(&coded, CodeRate::ThreeQuarters).len(), 32); // 48*2/3
        assert_eq!(punctured_len(n, CodeRate::Half), 48);
        assert_eq!(punctured_len(n, CodeRate::TwoThirds), 36);
        assert_eq!(punctured_len(n, CodeRate::ThreeQuarters), 32);
    }

    #[test]
    fn effective_rates() {
        // k data bits -> punctured_len coded bits ⇒ rate = k / len.
        for (rate, expect) in [
            (CodeRate::Half, 0.5),
            (CodeRate::TwoThirds, 2.0 / 3.0),
            (CodeRate::ThreeQuarters, 0.75),
        ] {
            let n = 1200;
            let len = punctured_len(n, rate);
            let r = n as f64 / len as f64;
            assert!((r - expect).abs() < 1e-9, "{rate:?}: {r}");
        }
    }

    #[test]
    fn depuncture_restores_positions() {
        let n_data = 12;
        let coded = encode(&(0..n_data).map(|i| (i % 2) as u8).collect::<Vec<_>>());
        let n_coded = coded.len();
        for rate in [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters] {
            let punct = puncture(&coded, rate);
            // Soft values: +1 for bit 0, -1 for bit 1 (sign convention).
            let soft: Vec<f64> = punct
                .iter()
                .map(|&b| if b == 0 { 1.0 } else { -1.0 })
                .collect();
            let restored = depuncture(&soft, rate, n_coded);
            assert_eq!(restored.len(), n_coded);
            let pat = puncture_pattern(rate);
            for (i, &s) in restored.iter().enumerate() {
                if pat[i % pat.len()] {
                    let expect = if coded[i] == 0 { 1.0 } else { -1.0 };
                    assert_eq!(s, expect, "position {i}");
                } else {
                    assert_eq!(s, 0.0, "erasure at {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "depuncture")]
    fn depuncture_length_mismatch_panics() {
        depuncture(&[1.0; 10], CodeRate::ThreeQuarters, 48);
    }
}
