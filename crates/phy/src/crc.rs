//! CRC-32 (IEEE 802.3) frame check sequence.
//!
//! Every JMB data frame carries the standard 802.11/Ethernet CRC-32 so the
//! receiver can decide whether a packet was delivered — the per-packet
//! success/failure signal that throughput measurements and the MAC's
//! retransmission logic are built on.

/// Polynomial 0x04C11DB7, reflected form.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF,
/// reflected — the standard Ethernet/802.11 FCS).
///
/// # Examples
///
/// ```
/// // The canonical check value for "123456789".
/// assert_eq!(jmb_phy::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends the 4-byte little-endian CRC to a payload.
pub fn append_crc(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Verifies and strips a trailing CRC. Returns the payload on success.
pub fn check_and_strip_crc(frame: &[u8]) -> Option<&[u8]> {
    if frame.len() < 4 {
        return None;
    }
    let (payload, fcs) = frame.split_at(frame.len() - 4);
    let expected = u32::from_le_bytes([fcs[0], fcs[1], fcs[2], fcs[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_then_check_roundtrip() {
        let payload = b"jmb joint beamforming";
        let framed = append_crc(payload);
        assert_eq!(framed.len(), payload.len() + 4);
        assert_eq!(check_and_strip_crc(&framed), Some(&payload[..]));
    }

    #[test]
    fn corruption_detected() {
        let mut framed = append_crc(b"payload bytes here");
        for i in 0..framed.len() {
            framed[i] ^= 0x40;
            assert_eq!(
                check_and_strip_crc(&framed),
                None,
                "flip at byte {i} undetected"
            );
            framed[i] ^= 0x40;
        }
        // Sanity: restored frame passes again.
        assert!(check_and_strip_crc(&framed).is_some());
    }

    #[test]
    fn short_frames_rejected() {
        assert_eq!(check_and_strip_crc(&[]), None);
        assert_eq!(check_and_strip_crc(&[1, 2, 3]), None);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let framed = append_crc(b"");
        assert_eq!(check_and_strip_crc(&framed), Some(&b""[..]));
    }
}
