//! Effective SNR and rate selection.
//!
//! JMB selects bitrates with "the effective SNR algorithm, which is designed
//! for rate selection for 802.11-like frequency selective wideband channels
//! \[13\]" (§9, Halperin et al.). The idea: per-subcarrier SNRs are mapped
//! through the modulation's BER curve, *averaged in BER domain* (where errors
//! actually combine), and mapped back to a single scalar "effective SNR" that
//! can be compared against flat-channel MCS thresholds.
//!
//! Because JMB's zero-forcing precoder gives every client the same
//! per-subcarrier signal power `k²` (§9), APs compute each client's
//! subcarrier SNRs as `k²/N` from the fed-back noise `N` and run this module
//! to pick the rate.

use crate::modulation::Modulation;
use crate::params::OfdmParams;
use crate::rates::Mcs;
use jmb_dsp::stats::{db_to_lin, lin_to_db};

/// Complementary error function, Abramowitz & Stegun 7.1.26-based
/// approximation (|error| < 1.5e-7 — far below any SNR modelling error).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)`.
pub fn q_func(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Uncoded bit-error rate of a modulation at per-symbol SNR `snr` (linear).
///
/// Standard Gray-mapped approximations:
/// * BPSK: `Q(√(2ρ))`
/// * QPSK: `Q(√ρ)`
/// * 16-QAM: `(3/4)·Q(√(ρ/5))`
/// * 64-QAM: `(7/12)·Q(√(ρ/21))`
pub fn ber(modulation: Modulation, snr: f64) -> f64 {
    let snr = snr.max(0.0);
    match modulation {
        Modulation::Bpsk => q_func((2.0 * snr).sqrt()),
        Modulation::Qpsk => q_func(snr.sqrt()),
        Modulation::Qam16 => 0.75 * q_func((snr / 5.0).sqrt()),
        Modulation::Qam64 => (7.0 / 12.0) * q_func((snr / 21.0).sqrt()),
    }
}

/// Inverse of [`ber`] in SNR: the linear SNR at which `modulation` has
/// bit-error rate `target`. Solved by bisection (BER is monotone in SNR).
pub fn snr_for_ber(modulation: Modulation, target: f64) -> f64 {
    let target = target.clamp(1e-12, 0.5);
    let (mut lo, mut hi) = (0.0f64, db_to_lin(40.0));
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if ber(modulation, mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Effective SNR of a frequency-selective channel for a modulation:
/// average the per-subcarrier BERs, then invert back to SNR.
///
/// `snrs_db` are per-subcarrier SNRs in dB. Returns effective SNR in dB.
pub fn effective_snr_db(modulation: Modulation, snrs_db: &[f64]) -> f64 {
    assert!(!snrs_db.is_empty(), "effective SNR of no subcarriers");
    let mean_ber = snrs_db
        .iter()
        .map(|&s| ber(modulation, db_to_lin(s)))
        .sum::<f64>()
        / snrs_db.len() as f64;
    lin_to_db(snr_for_ber(modulation, mean_ber))
}

/// Minimum effective SNR (dB) at which each MCS sustains a ~1% packet error
/// rate for ~1500-byte frames — the lookup table of \[13\], Table 1 ballpark.
///
/// Indexed like [`Mcs::ALL`].
pub const MCS_THRESHOLD_DB: [f64; 8] = [2.5, 5.0, 5.5, 8.5, 11.5, 15.0, 18.5, 20.5];

/// Per-MCS EESM β parameters, indexed like [`Mcs::ALL`].
///
/// Roughly 2× the LTE-calibrated values: our receiver feeds CSI-weighted
/// soft LLRs to a full-traceback Viterbi decoder over a 48-subcarrier
/// interleaver, which rides through deep per-subcarrier fades noticeably
/// better than the hard-combining LTE link models those β's were fit to
/// (see the workspace integration tests cross-validating rate selection
/// against the sample-level PHY).
pub const MCS_EESM_BETA: [f64; 8] = [1.5, 2.5, 3.0, 5.0, 8.0, 14.0, 28.0, 36.0];

/// Exponential effective-SNR mapping (EESM) for one MCS:
/// `eff = −β·ln( mean_k exp(−ρ_k/β) )`.
///
/// Identical to the per-subcarrier SNR on a flat channel. Unlike the raw
/// BER-mean of [`effective_snr_db`], EESM degrades *gracefully* when a few
/// subcarriers are dead (e.g. zero-forcing inversion holes): the coded
/// 802.11 PHY treats those as soft erasures — its interleaver spreads them
/// and the CSI-weighted Viterbi metric nulls them — rather than as a flood
/// of bit errors, and EESM models exactly that.
pub fn effective_snr_db_eesm(mcs: Mcs, snrs_db: &[f64]) -> f64 {
    assert!(!snrs_db.is_empty(), "effective SNR of no subcarriers");
    let beta = MCS_EESM_BETA[mcs.index()];
    let mean = snrs_db
        .iter()
        .map(|&s| (-db_to_lin(s) / beta).exp())
        .sum::<f64>()
        / snrs_db.len() as f64;
    lin_to_db((-beta * mean.ln()).max(1e-9))
}

/// Picks the fastest MCS whose threshold the EESM effective SNR clears.
///
/// Evaluates the effective SNR *per candidate MCS* (each weighs subcarrier
/// fades differently), as \[13\] prescribes. Returns `None` if even BPSK 1/2
/// is below threshold (no usable rate → defer).
pub fn select_mcs(snrs_db: &[f64]) -> Option<Mcs> {
    let mut best = None;
    for (i, mcs) in Mcs::ALL.iter().enumerate() {
        let eff = effective_snr_db_eesm(*mcs, snrs_db);
        if eff >= MCS_THRESHOLD_DB[i] {
            best = Some(*mcs);
        }
    }
    best
}

/// Data rate (bits/s) the selected MCS achieves, or 0 if no rate is usable.
pub fn achievable_rate(params: &OfdmParams, snrs_db: &[f64]) -> f64 {
    select_mcs(snrs_db).map_or(0.0, |m| m.bitrate(params))
}

/// Effective throughput (bits/s) including a packet-error-rate model: picks
/// the MCS maximising `rate · (1 − PER)`, with PER approximated from the
/// EESM margin above threshold.
///
/// This is what the experiment harness uses to turn a channel + noise state
/// into delivered throughput without running the full PHY on every packet.
pub fn expected_throughput(params: &OfdmParams, snrs_db: &[f64], n_bits: usize) -> f64 {
    let mut best = 0.0f64;
    for (i, mcs) in Mcs::ALL.iter().enumerate() {
        let eff = effective_snr_db_eesm(*mcs, snrs_db);
        if eff < MCS_THRESHOLD_DB[i] {
            continue;
        }
        // Post-FEC residual PER at/above threshold is small; model it as an
        // exponential fall-off above threshold so marginal rates are
        // discounted. 3 dB above threshold ≈ negligible loss.
        let margin_db = eff - MCS_THRESHOLD_DB[i];
        let per = (0.1f64 * (-margin_db / 1.0).exp()).min(1.0) * (n_bits as f64 / 12000.0).min(4.0);
        let goodput = mcs.bitrate(params) * (1.0 - per.min(1.0));
        best = best.max(goodput);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ChannelProfile;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-11);
    }

    #[test]
    fn q_func_known_values() {
        assert!((q_func(0.0) - 0.5).abs() < 1e-9);
        assert!((q_func(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q_func(3.0) - 1.349_898e-3).abs() < 1e-7);
    }

    #[test]
    fn ber_ordering_by_modulation() {
        // At equal SNR, denser constellations have higher BER.
        for &snr_db in &[5.0, 10.0, 15.0, 20.0] {
            let snr = db_to_lin(snr_db);
            let b = ber(Modulation::Bpsk, snr);
            let q = ber(Modulation::Qpsk, snr);
            let q16 = ber(Modulation::Qam16, snr);
            let q64 = ber(Modulation::Qam64, snr);
            assert!(b <= q && q <= q16 && q16 <= q64, "at {snr_db} dB");
        }
    }

    #[test]
    fn ber_monotone_decreasing_in_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mut prev = 1.0;
            for s in 0..30 {
                let b = ber(m, db_to_lin(s as f64));
                assert!(b <= prev + 1e-15, "{m:?} at {s} dB");
                prev = b;
            }
        }
    }

    #[test]
    fn bpsk_ber_textbook_point() {
        // BPSK at Eb/N0 ≈ 9.6 dB has BER ≈ 1e-5.
        let b = ber(Modulation::Bpsk, db_to_lin(9.6));
        assert!(b > 3e-6 && b < 3e-5, "BER {b}");
    }

    #[test]
    fn snr_for_ber_inverts_ber() {
        for m in [Modulation::Bpsk, Modulation::Qam16, Modulation::Qam64] {
            for &target in &[1e-2, 1e-3, 1e-5] {
                let snr = snr_for_ber(m, target);
                let back = ber(m, snr);
                assert!(
                    (back.log10() - target.log10()).abs() < 0.05,
                    "{m:?}: target {target}, got {back}"
                );
            }
        }
    }

    #[test]
    fn effective_snr_of_flat_channel_is_identity() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            // Pick mid-range SNRs where the BER curve is informative for the
            // modulation (flat very-high SNR saturates BER to ~0).
            for &snr in &[6.0, 10.0, 14.0] {
                let eff = effective_snr_db(m, &vec![snr; 48]);
                assert!((eff - snr).abs() < 0.1, "{m:?} at {snr}: eff {eff}");
            }
        }
    }

    #[test]
    fn effective_snr_penalises_fades() {
        // One deeply faded subcarrier drags the effective SNR below the mean.
        let mut snrs = vec![15.0; 48];
        snrs[0] = -5.0;
        let eff = effective_snr_db(Modulation::Qam16, &snrs);
        let mean = 15.0 * 47.0 / 48.0 - 5.0 / 48.0;
        assert!(eff < mean - 0.5, "eff {eff} vs mean {mean}");
    }

    #[test]
    fn select_mcs_monotone_in_snr() {
        let mut prev_rate = 0.0;
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        for snr_db in 0..32 {
            let snrs = vec![snr_db as f64; 48];
            let rate = achievable_rate(&p, &snrs);
            assert!(rate >= prev_rate, "rate dropped at {snr_db} dB");
            prev_rate = rate;
        }
    }

    #[test]
    fn select_mcs_endpoints() {
        assert_eq!(select_mcs(&vec![-5.0; 48]), None);
        assert_eq!(select_mcs(&vec![30.0; 48]), Some(Mcs::ALL[7]));
        assert_eq!(select_mcs(&vec![3.0; 48]), Some(Mcs::ALL[0]));
    }

    #[test]
    fn paper_snr_bands_rates() {
        // Sanity against §11.2: 802.11 (half-rate 10 MHz profile) throughput
        // at low SNR ≈ 7.75 Mbps, medium ≈ 14.9, high ≈ 23.6. Our table should
        // put low/mid/high-band flat channels in the same rate neighbourhoods:
        // low (6–12 dB) → 6-18 Mbps class, high (>18 dB) → 24-27 Mbps class.
        let p = OfdmParams::new(ChannelProfile::Usrp10MHz);
        let low = achievable_rate(&p, &vec![9.0; 48]) / 1e6;
        let med = achievable_rate(&p, &vec![15.0; 48]) / 1e6;
        let high = achievable_rate(&p, &vec![21.0; 48]) / 1e6;
        assert!((3.0..=9.0).contains(&low), "low {low}");
        assert!((9.0..=18.0).contains(&med), "med {med}");
        assert!((18.0..=27.0).contains(&high), "high {high}");
        assert!(low < med && med < high);
    }

    #[test]
    fn expected_throughput_below_peak_rate() {
        let p = OfdmParams::new(ChannelProfile::Usrp10MHz);
        let snrs = vec![22.0; 48];
        let t = expected_throughput(&p, &snrs, 12000);
        let peak = achievable_rate(&p, &snrs);
        assert!(t > 0.5 * peak && t <= peak * 1.0001, "t {t} peak {peak}");
    }

    #[test]
    fn expected_throughput_zero_below_floor() {
        let p = OfdmParams::default();
        assert_eq!(expected_throughput(&p, &vec![-10.0; 48], 12000), 0.0);
    }

    #[test]
    #[should_panic(expected = "no subcarriers")]
    fn effective_snr_rejects_empty() {
        effective_snr_db(Modulation::Bpsk, &[]);
    }
}
