//! Full packet transmit and receive chains.
//!
//! A JMB frame is an 802.11a/g-style PPDU:
//!
//! ```text
//! | STF 160 | LTF 160 | SIGNAL (1 sym) | DATA (N syms) |
//! ```
//!
//! * **SIGNAL** — BPSK 1/2, uncoded-rate header: 4-bit RATE, 12-bit LENGTH,
//!   parity, tail. Never scrambled.
//! * **DATA** — SERVICE(16) + PSDU + tail(6) + pad, scrambled, convolutionally
//!   coded, punctured, interleaved, mapped, OFDM-modulated with pilots.
//!
//! The PSDU carries the caller's payload plus a CRC-32.
//!
//! The chain is exposed at two levels:
//! * time domain ([`FrameTx::tx_frame`] / [`FrameRx::rx_frame`]) — full
//!   waveforms for the sample-level simulator;
//! * frequency domain ([`FrameTx::build_bins`] /
//!   [`FrameRx::decode_stream_bins`]) — per-symbol 64-bin arrays, which is
//!   what JMB's joint beamformer manipulates (precoding is per subcarrier)
//!   and what the fast per-subcarrier simulator transports.

use crate::chanest::{self, ChannelEstimate};
use crate::convcode;
use crate::crc;
use crate::interleaver::Interleaver;
use crate::modulation::Modulation;
use crate::ofdm::Ofdm;
use crate::ofdm::{equalize, equalize_into};
use crate::params::OfdmParams;
use crate::preamble;
use crate::rates::Mcs;
use crate::scrambler::{pilot_polarity_sequence, Scrambler};
use crate::sync;
use crate::viterbi;
use jmb_dsp::Complex64;

/// Default scrambler seed shared by transmitter and receiver.
pub const DEFAULT_SCRAMBLER_SEED: u8 = 0x5D;

/// Maximum PSDU length representable in the 12-bit SIGNAL LENGTH field.
pub const MAX_PSDU: usize = 4095;

/// 802.11 RATE field encodings, indexed like [`Mcs::ALL`].
const RATE_BITS: [u8; 8] = [
    0b1101, 0b1111, 0b0101, 0b0111, 0b1001, 0b1011, 0b0001, 0b0011,
];

/// Transmit-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// Payload too large for the LENGTH field.
    PayloadTooLarge(usize),
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::PayloadTooLarge(n) => write!(f, "payload of {n} bytes exceeds {MAX_PSDU}"),
        }
    }
}

impl std::error::Error for TxError {}

/// Receive-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxError {
    /// No preamble detected in the buffer.
    NoPreamble,
    /// Buffer ends before the frame does.
    Truncated,
    /// SIGNAL field failed its parity check or encodes an unknown rate.
    BadSignal,
    /// Frame check sequence (CRC-32) mismatch after decoding.
    CrcFailed,
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NoPreamble => write!(f, "no preamble detected"),
            RxError::Truncated => write!(f, "buffer truncated mid-frame"),
            RxError::BadSignal => write!(f, "SIGNAL field invalid"),
            RxError::CrcFailed => write!(f, "CRC check failed"),
        }
    }
}

impl std::error::Error for RxError {}

/// A frame rendered in the frequency domain: one 64-bin vector per OFDM
/// symbol (SIGNAL first, then DATA), pilots and data already placed.
#[derive(Debug, Clone)]
pub struct StreamBins {
    /// MCS of the DATA portion.
    pub mcs: Mcs,
    /// PSDU length in bytes (payload + CRC).
    pub psdu_len: usize,
    /// Per-symbol FFT bins (each `fft_size` long).
    pub symbols: Vec<Vec<Complex64>>,
}

/// The transmitter.
#[derive(Debug, Clone)]
pub struct FrameTx {
    ofdm: Ofdm,
    seed: u8,
}

impl FrameTx {
    /// Creates a transmitter with the default scrambler seed.
    pub fn new(params: OfdmParams) -> Self {
        FrameTx {
            ofdm: Ofdm::new(params),
            seed: DEFAULT_SCRAMBLER_SEED,
        }
    }

    /// The numerology in use.
    pub fn params(&self) -> &OfdmParams {
        self.ofdm.params()
    }

    /// Builds the frequency-domain symbols (SIGNAL + DATA) for a payload.
    pub fn build_bins(&self, mcs: Mcs, payload: &[u8]) -> Result<StreamBins, TxError> {
        let params = self.ofdm.params();
        let psdu = crc::append_crc(payload);
        if psdu.len() > MAX_PSDU {
            return Err(TxError::PayloadTooLarge(psdu.len()));
        }
        let polarity = pilot_polarity_sequence();
        let mut symbols = Vec::new();

        // --- SIGNAL: 24 bits → rate-1/2 → 48 coded bits → BPSK, polarity p0.
        let signal_bits = Self::signal_bits(mcs, psdu.len());
        let coded = convcode::encode_raw(&signal_bits);
        let il_bpsk = Interleaver::new(params, Modulation::Bpsk);
        let interleaved = il_bpsk.interleave(&coded);
        let syms = Modulation::Bpsk.map_stream(&interleaved);
        symbols.push(self.ofdm.assemble_bins(&syms, polarity[0]));

        // --- DATA.
        let ndbps = mcs.data_bits_per_symbol(params);
        let ncbps = mcs.coded_bits_per_symbol(params);
        let n_sym = mcs.symbols_for_psdu(params, psdu.len());
        let n_bits = n_sym * ndbps;

        // SERVICE (16 zero bits) + PSDU bits (LSB-first per byte) + tail + pad.
        let mut bits = vec![0u8; 16];
        for &byte in &psdu {
            for b in 0..8 {
                bits.push((byte >> b) & 1);
            }
        }
        let tail_start = bits.len();
        bits.resize(n_bits, 0); // tail + pad as zeros
                                // Scramble everything, then re-zero tail and pad so the encoder is
                                // flushed to state 0 at the end of the stream (pad content is
                                // ignored by the receiver).
        let mut scr = Scrambler::new(self.seed);
        scr.scramble_in_place(&mut bits);
        for b in bits[tail_start..].iter_mut() {
            *b = 0;
        }

        let coded = convcode::encode_raw(&bits);
        let punctured = convcode::puncture(&coded, mcs.code_rate);
        debug_assert_eq!(punctured.len(), n_sym * ncbps);

        let il = Interleaver::new(params, mcs.modulation);
        for (n, block) in punctured.chunks(ncbps).enumerate() {
            let interleaved = il.interleave(block);
            let syms = mcs.modulation.map_stream(&interleaved);
            let p = polarity[(n + 1) % polarity.len()];
            symbols.push(self.ofdm.assemble_bins(&syms, p));
        }

        Ok(StreamBins {
            mcs,
            psdu_len: psdu.len(),
            symbols,
        })
    }

    /// Renders frequency-domain symbols into the full time-domain packet
    /// (prepends STF + LTF).
    pub fn assemble_samples(&self, bins: &StreamBins) -> Vec<Complex64> {
        let params = self.ofdm.params();
        let mut out = preamble::preamble(params);
        out.reserve(bins.symbols.len() * params.symbol_len());
        for sym in &bins.symbols {
            out.extend(self.ofdm.bins_to_samples(sym));
        }
        out
    }

    /// Convenience: payload → full time-domain packet.
    pub fn tx_frame(&self, mcs: Mcs, payload: &[u8]) -> Result<Vec<Complex64>, TxError> {
        Ok(self.assemble_samples(&self.build_bins(mcs, payload)?))
    }

    /// Total packet length in samples for a payload at an MCS.
    pub fn frame_len(&self, mcs: Mcs, payload_len: usize) -> usize {
        let params = self.ofdm.params();
        let n_sym = 1 + mcs.symbols_for_psdu(params, payload_len + 4);
        320 + n_sym * params.symbol_len()
    }

    /// SIGNAL field bits: RATE(4) | reserved(1) | LENGTH(12, LSB first) |
    /// parity(1) | tail(6).
    fn signal_bits(mcs: Mcs, psdu_len: usize) -> Vec<u8> {
        let mut bits = Vec::with_capacity(24);
        let rate = RATE_BITS[mcs.index()];
        for b in (0..4).rev() {
            bits.push((rate >> b) & 1);
        }
        bits.push(0); // reserved
        for b in 0..12 {
            bits.push(((psdu_len >> b) & 1) as u8);
        }
        let parity = bits.iter().fold(0u8, |a, &b| a ^ b);
        bits.push(parity);
        bits.extend_from_slice(&[0; 6]);
        bits
    }
}

/// Everything the receiver learned from one frame.
#[derive(Debug, Clone)]
pub struct RxResult {
    /// Decoded payload (CRC verified and stripped).
    pub payload: Vec<u8>,
    /// MCS announced in SIGNAL.
    pub mcs: Mcs,
    /// Estimated CFO in Hz (0 for the frequency-domain entry point).
    pub cfo_hz: f64,
    /// Channel estimate from the LTF.
    pub channel: ChannelEstimate,
    /// Estimated complex-noise variance per subcarrier sample.
    pub noise_var: f64,
    /// Post-equalisation error-vector magnitude in dB (lower = cleaner).
    pub evm_db: f64,
}

impl RxResult {
    /// Per-subcarrier SNR in dB derived from the channel estimate and noise
    /// — what JMB clients feed back for effective-SNR rate selection (§9).
    pub fn snr_per_subcarrier_db(&self) -> Vec<f64> {
        self.channel
            .gains
            .iter()
            .map(|g| jmb_dsp::stats::lin_to_db(g.norm_sqr() / self.noise_var.max(1e-18)))
            .collect()
    }
}

/// Reusable receive-path scratch buffers (DESIGN.md §3.11).
///
/// Every allocation the per-frame decode chain needs lives here: the
/// CFO-corrected sample window, the flattened demodulated bins, the
/// per-symbol equalise/demap staging buffers, the whole-frame soft-bit
/// stream, and the Viterbi survivor masks. Allocate one per receiver (or
/// per thread — the receiver itself stays immutable and shareable) and pass
/// it to the `*_with` entry points; buffers grow to the largest frame seen
/// and are recycled across frames. The scratch carries no state between
/// frames: decoding with a recycled scratch is byte-identical to decoding
/// with a fresh one.
#[derive(Debug, Clone, Default)]
pub struct RxScratch {
    /// CFO-corrected time-domain window (time-domain entry points only).
    work: Vec<Complex64>,
    /// Flattened demodulated bins, `n_symbols × fft_size`.
    bins: Vec<Complex64>,
    /// One symbol's pilot-corrected data subcarriers.
    data: Vec<Complex64>,
    /// One symbol's equalised data subcarriers.
    eq: Vec<Complex64>,
    /// One symbol's LLRs (pre-deinterleave).
    llrs: Vec<f64>,
    /// Whole-frame deinterleaved soft bits.
    soft: Vec<f64>,
    /// Whole-frame depunctured (rate-1/2) soft bits.
    restored: Vec<f64>,
    /// Viterbi output bits.
    bits: Vec<u8>,
    /// Viterbi survivor masks.
    viterbi: viterbi::ViterbiScratch,
}

impl RxScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

std::thread_local! {
    /// Scratch used by the non-`_with` convenience entry points, so casual
    /// callers get the same allocation-amortised fast path as sweeps that
    /// thread their own [`RxScratch`].
    static TLS_SCRATCH: std::cell::RefCell<RxScratch> =
        std::cell::RefCell::new(RxScratch::new());
}

/// Runs `f` with the thread-local scratch, falling back to a fresh scratch
/// if the thread-local one is already borrowed (a reentrant decode from a
/// callback) rather than panicking.
fn with_tls_scratch<R>(f: impl FnOnce(&mut RxScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut s) => f(&mut s),
        Err(_) => f(&mut RxScratch::new()),
    })
}

/// The receiver.
#[derive(Debug, Clone)]
pub struct FrameRx {
    ofdm: Ofdm,
    seed: u8,
}

impl FrameRx {
    /// Creates a receiver with the default scrambler seed.
    pub fn new(params: OfdmParams) -> Self {
        FrameRx {
            ofdm: Ofdm::new(params),
            seed: DEFAULT_SCRAMBLER_SEED,
        }
    }

    /// The numerology in use.
    pub fn params(&self) -> &OfdmParams {
        self.ofdm.params()
    }

    /// Full receive chain: detect → sync → estimate → decode.
    pub fn rx_frame(&self, samples: &[Complex64]) -> Result<RxResult, RxError> {
        with_tls_scratch(|scratch| self.rx_frame_with(scratch, samples))
    }

    /// [`FrameRx::rx_frame`] with caller-owned scratch buffers — the
    /// allocation-amortised entry point for decode-heavy sweeps.
    pub fn rx_frame_with(
        &self,
        scratch: &mut RxScratch,
        samples: &[Complex64],
    ) -> Result<RxResult, RxError> {
        let params = self.ofdm.params();
        let s = sync::synchronize(params, samples).ok_or(RxError::NoPreamble)?;
        self.rx_frame_at_with(scratch, samples, s.stf_start, s.cfo_hz)
    }

    /// Receive chain with externally supplied timing and CFO (used when the
    /// simulator's scheduling already pins the frame position, and by slave
    /// APs that are triggered by the lead's header).
    pub fn rx_frame_at(
        &self,
        samples: &[Complex64],
        stf_start: usize,
        cfo_hz: f64,
    ) -> Result<RxResult, RxError> {
        with_tls_scratch(|scratch| self.rx_frame_at_with(scratch, samples, stf_start, cfo_hz))
    }

    /// [`FrameRx::rx_frame_at`] with caller-owned scratch buffers.
    pub fn rx_frame_at_with(
        &self,
        scratch: &mut RxScratch,
        samples: &[Complex64],
        stf_start: usize,
        cfo_hz: f64,
    ) -> Result<RxResult, RxError> {
        let params = self.ofdm.params();
        if stf_start + 320 + params.symbol_len() > samples.len() {
            return Err(RxError::Truncated);
        }
        // CFO-correct from the start of the frame.
        scratch.work.clear();
        scratch.work.extend_from_slice(&samples[stf_start..]);
        sync::correct_cfo(params, &mut scratch.work, cfo_hz, 0.0);

        // Channel + noise from LTF.
        let ltf = &scratch.work[160..320];
        let channel = chanest::estimate_from_ltf(params, ltf);
        let noise_var = noise_from_ltf(params, ltf);

        // Demodulate all remaining whole symbols into one flat bins buffer
        // (borrowed out of the scratch so the decode stage can reuse the
        // rest of it).
        let sym_len = params.symbol_len();
        let n_avail = (scratch.work.len() - 320) / sym_len;
        let mut flat = std::mem::take(&mut scratch.bins);
        flat.clear();
        flat.reserve(n_avail * params.fft_size);
        for i in 0..n_avail {
            let sym = &scratch.work[320 + i * sym_len..320 + (i + 1) * sym_len];
            self.ofdm.demodulate_symbol_into(sym, &mut flat);
        }
        let views: Vec<&[Complex64]> = flat.chunks_exact(params.fft_size).collect();
        let result = self.decode_stream_bins_with(scratch, &views, &channel, noise_var);
        drop(views);
        scratch.bins = flat;
        let mut result = result?;
        result.cfo_hz = cfo_hz;
        Ok(result)
    }

    /// Frequency-domain receive chain: `bins` holds one 64-bin vector per
    /// received OFDM symbol (SIGNAL first). Used directly by the
    /// per-subcarrier fidelity simulator and by [`FrameRx::rx_frame_at`].
    pub fn decode_stream_bins<S: AsRef<[Complex64]>>(
        &self,
        bins: &[S],
        channel: &ChannelEstimate,
        noise_var: f64,
    ) -> Result<RxResult, RxError> {
        with_tls_scratch(|scratch| self.decode_stream_bins_with(scratch, bins, channel, noise_var))
    }

    /// [`FrameRx::decode_stream_bins`] with caller-owned scratch buffers.
    ///
    /// The batched pipeline: per DATA symbol the pilot-corrected
    /// subcarriers, equalised values and LLRs are staged in preallocated
    /// buffers, and the deinterleaved soft bits accumulate into one
    /// contiguous whole-frame stream that feeds depuncture → Viterbi
    /// without further copies. Decoded output is bitwise identical to the
    /// historical per-symbol allocate-and-scatter flow.
    pub fn decode_stream_bins_with<S: AsRef<[Complex64]>>(
        &self,
        scratch: &mut RxScratch,
        bins: &[S],
        channel: &ChannelEstimate,
        noise_var: f64,
    ) -> Result<RxResult, RxError> {
        let params = self.ofdm.params();
        if bins.is_empty() {
            return Err(RxError::Truncated);
        }
        let polarity = pilot_polarity_sequence();
        let data_gains = channel.data_gains(params);
        let pilot_gains = channel.pilot_gains(params);
        let csi: Vec<f64> = data_gains.iter().map(|g| g.norm_sqr()).collect();

        // --- SIGNAL.
        let (mcs, psdu_len) =
            self.decode_signal(bins[0].as_ref(), channel, noise_var, polarity[0])?;
        let n_sym = mcs.symbols_for_psdu(params, psdu_len);
        if bins.len() < 1 + n_sym {
            return Err(RxError::Truncated);
        }

        // --- DATA symbols: pilot-track, equalise, soft-demap, deinterleave.
        let ncbps = mcs.coded_bits_per_symbol(params);
        let il = Interleaver::new(params, mcs.modulation);
        scratch.soft.clear();
        scratch.soft.reserve(n_sym * ncbps);
        let mut evm_acc = 0.0f64;
        let mut evm_n = 0usize;
        for n in 0..n_sym {
            let b = bins[1 + n].as_ref();
            let p = polarity[(n + 1) % polarity.len()];
            let pilots = self.ofdm.extract_pilots(b);
            let track = chanest::track_pilots(params, &pilots, &pilot_gains, p);
            scratch.data.clear();
            for &k in &params.data_subcarriers {
                scratch.data.push(b[params.bin(k)] * track.correction(k));
            }
            equalize_into(&scratch.data, &data_gains, &mut scratch.eq);
            scratch.llrs.clear();
            mcs.modulation.demap_soft_evm_into(
                &scratch.eq,
                noise_var,
                &csi,
                &mut scratch.llrs,
                &mut evm_acc,
            );
            evm_n += scratch.eq.len();
            il.deinterleave_into(&scratch.llrs, &mut scratch.soft);
        }

        // --- Decode: depuncture → Viterbi → descramble → CRC.
        let ndbps = mcs.data_bits_per_symbol(params);
        let n_coded = 2 * n_sym * ndbps;
        convcode::depuncture_into(&scratch.soft, mcs.code_rate, n_coded, &mut scratch.restored);
        // Viterbi truncates 6 tail bits from the end of the stream; we only
        // need the SERVICE + PSDU prefix.
        viterbi::decode_with(&scratch.restored, &mut scratch.viterbi, &mut scratch.bits)
            .map_err(|_| RxError::Truncated)?;
        let needed = 16 + 8 * psdu_len;
        if scratch.bits.len() < needed {
            return Err(RxError::Truncated);
        }
        let mut scr = Scrambler::new(self.seed);
        scr.scramble_in_place(&mut scratch.bits);
        let bits = &scratch.bits;
        let mut psdu = Vec::with_capacity(psdu_len);
        for i in 0..psdu_len {
            let mut byte = 0u8;
            for b in 0..8 {
                byte |= bits[16 + 8 * i + b] << b;
            }
            psdu.push(byte);
        }
        let payload = crc::check_and_strip_crc(&psdu)
            .ok_or(RxError::CrcFailed)?
            .to_vec();

        let evm = if evm_n > 0 {
            evm_acc / evm_n as f64
        } else {
            f64::NAN
        };
        Ok(RxResult {
            payload,
            mcs,
            cfo_hz: 0.0,
            channel: channel.clone(),
            noise_var,
            evm_db: jmb_dsp::stats::lin_to_db(evm.max(1e-15)),
        })
    }

    fn decode_signal(
        &self,
        bins: &[Complex64],
        channel: &ChannelEstimate,
        noise_var: f64,
        polarity: f64,
    ) -> Result<(Mcs, usize), RxError> {
        let params = self.ofdm.params();
        let data_gains = channel.data_gains(params);
        let pilot_gains = channel.pilot_gains(params);
        let pilots = self.ofdm.extract_pilots(bins);
        let track = chanest::track_pilots(params, &pilots, &pilot_gains, polarity);
        let mut data = self.ofdm.extract_data(bins);
        for (v, &k) in data.iter_mut().zip(&params.data_subcarriers) {
            *v *= track.correction(k);
        }
        let eq = equalize(&data, &data_gains);
        let csi: Vec<f64> = data_gains.iter().map(|g| g.norm_sqr()).collect();
        let llrs = Modulation::Bpsk.demap_soft_stream(&eq, noise_var, &csi);
        let il = Interleaver::new(params, Modulation::Bpsk);
        let soft = il.deinterleave(&llrs);
        let bits = viterbi::decode(&soft).map_err(|_| RxError::BadSignal)?;
        debug_assert_eq!(bits.len(), 18);

        // Parity over the 17 info bits must match bit 17.
        let parity = bits[..17].iter().fold(0u8, |a, &b| a ^ b);
        if parity != bits[17] {
            return Err(RxError::BadSignal);
        }
        let rate = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3];
        let idx = RATE_BITS
            .iter()
            .position(|&r| r == rate)
            .ok_or(RxError::BadSignal)?;
        let mut len = 0usize;
        for b in 0..12 {
            len |= (bits[5 + b] as usize) << b;
        }
        if !(4..=MAX_PSDU).contains(&len) {
            return Err(RxError::BadSignal);
        }
        Ok((Mcs::ALL[idx], len))
    }
}

/// Estimates complex-noise variance from the two repeated LTF symbols:
/// the halves carry identical signal, so their difference is pure noise.
///
/// # Panics
///
/// Panics if `ltf_samples.len() != 160`.
pub fn noise_from_ltf(params: &OfdmParams, ltf_samples: &[Complex64]) -> f64 {
    // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — decode slices exactly one LTF window
    assert_eq!(ltf_samples.len(), preamble::LTF_LEN);
    let plan = jmb_dsp::fft::plan(params.fft_size);
    let mut sym1 = ltf_samples[32..96].to_vec();
    let mut sym2 = ltf_samples[96..160].to_vec();
    plan.forward(&mut sym1);
    plan.forward(&mut sym2);
    let occupied = params.occupied_subcarriers();
    let mut acc = 0.0;
    for &k in &occupied {
        let d = sym1[params.bin(k)] - sym2[params.bin(k)];
        acc += d.norm_sqr();
    }
    // Var(Y1−Y2) = 2·Var(noise per bin).
    (acc / occupied.len() as f64 / 2.0).max(1e-15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ChannelProfile;

    fn chain() -> (FrameTx, FrameRx) {
        let p = OfdmParams::new(ChannelProfile::Usrp10MHz);
        (FrameTx::new(p.clone()), FrameRx::new(p))
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn loopback_all_mcs() {
        let (tx, rx) = chain();
        let data = payload(200);
        for mcs in Mcs::ALL {
            let samples = tx.tx_frame(mcs, &data).unwrap();
            let got = rx.rx_frame(&samples).expect("decode");
            assert_eq!(got.payload, data, "{mcs}");
            assert_eq!(got.mcs, mcs);
            assert!(got.evm_db < -40.0, "{mcs}: EVM {}", got.evm_db);
        }
    }

    #[test]
    fn loopback_with_cfo() {
        let (tx, rx) = chain();
        let p = tx.params().clone();
        let data = payload(100);
        let samples = tx.tx_frame(Mcs::ALL[2], &data).unwrap();
        // Apply a 20 kHz CFO (≈8 ppm at 2.4 GHz).
        let ts = p.sample_period();
        let shifted: Vec<Complex64> = samples
            .iter()
            .enumerate()
            .map(|(n, &x)| x * Complex64::cis(2.0 * std::f64::consts::PI * 20e3 * n as f64 * ts))
            .collect();
        let got = rx.rx_frame(&shifted).expect("decode with CFO");
        assert_eq!(got.payload, data);
        assert!((got.cfo_hz - 20e3).abs() < 100.0, "cfo {}", got.cfo_hz);
    }

    #[test]
    fn loopback_with_flat_channel_and_padding() {
        let (tx, rx) = chain();
        let data = payload(64);
        let samples = tx.tx_frame(Mcs::ALL[4], &data).unwrap();
        let h = Complex64::from_polar(0.5, 2.2);
        let mut sig = vec![Complex64::ZERO; 300];
        sig.extend(samples.iter().map(|&x| x * h));
        sig.extend(vec![Complex64::ZERO; 100]);
        let got = rx.rx_frame(&sig).expect("decode");
        assert_eq!(got.payload, data);
    }

    #[test]
    fn loopback_multipath_channel() {
        // Two-tap channel within the CP: handled entirely by equalisation.
        let (tx, rx) = chain();
        let data = payload(150);
        let samples = tx.tx_frame(Mcs::ALL[5], &data).unwrap();
        let mut sig = vec![Complex64::ZERO; samples.len() + 10];
        for (n, &x) in samples.iter().enumerate() {
            sig[n] += x;
            sig[n + 5] += x * Complex64::from_polar(0.4, -1.0);
        }
        let got = rx.rx_frame(&sig).expect("decode multipath");
        assert_eq!(got.payload, data);
    }

    #[test]
    fn corrupted_frame_fails_crc_or_signal() {
        let (tx, rx) = chain();
        let data = payload(80);
        let mut samples = tx.tx_frame(Mcs::ALL[7], &data).unwrap();
        // Obliterate a stretch of DATA (not the preamble).
        for s in samples[450..700].iter_mut() {
            *s = Complex64::ZERO;
        }
        match rx.rx_frame(&samples) {
            Err(RxError::CrcFailed) | Err(RxError::BadSignal) | Err(RxError::Truncated) => {}
            other => panic!("expected decode failure, got {other:?}"),
        }
    }

    #[test]
    fn noise_only_is_no_preamble() {
        let (_, rx) = chain();
        let mut s: u64 = 3;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        let noise: Vec<Complex64> = (0..4000)
            .map(|_| Complex64::new(next(), next()) * 0.1)
            .collect();
        assert_eq!(rx.rx_frame(&noise).unwrap_err(), RxError::NoPreamble);
    }

    #[test]
    fn payload_too_large_rejected() {
        let (tx, _) = chain();
        let err = tx.tx_frame(Mcs::BASE, &payload(4092)).unwrap_err();
        assert!(matches!(err, TxError::PayloadTooLarge(4096)));
        // 4091 bytes + 4 CRC = 4095 fits.
        assert!(tx.build_bins(Mcs::ALL[7], &payload(4091)).is_ok());
    }

    #[test]
    fn frame_len_matches_assembled() {
        let (tx, _) = chain();
        for mcs in [Mcs::ALL[0], Mcs::ALL[3], Mcs::ALL[7]] {
            for n in [0usize, 1, 100, 1500] {
                let samples = tx.tx_frame(mcs, &payload(n)).unwrap();
                assert_eq!(samples.len(), tx.frame_len(mcs, n), "{mcs} n={n}");
            }
        }
    }

    #[test]
    fn empty_payload_roundtrip() {
        let (tx, rx) = chain();
        let samples = tx.tx_frame(Mcs::ALL[1], &[]).unwrap();
        let got = rx.rx_frame(&samples).unwrap();
        assert!(got.payload.is_empty());
    }

    #[test]
    fn bins_roundtrip_without_time_domain() {
        // Frequency-domain path used by the fast simulator.
        let (tx, rx) = chain();
        let p = tx.params().clone();
        let data = payload(300);
        let bins = tx.build_bins(Mcs::ALL[6], &data).unwrap();
        let channel = chanest::estimate_ideal(&p);
        let got = rx
            .decode_stream_bins(&bins.symbols, &channel, 1e-6)
            .expect("bins decode");
        assert_eq!(got.payload, data);
    }

    #[test]
    fn bins_decode_with_diagonal_channel() {
        // Per-subcarrier complex gains (what the client sees after JMB
        // beamforming) applied in the frequency domain.
        let (tx, rx) = chain();
        let p = tx.params().clone();
        let data = payload(120);
        let bins = tx.build_bins(Mcs::ALL[3], &data).unwrap();
        // Build a frequency-selective diagonal channel.
        let gain = |k: i32| Complex64::from_polar(0.8 + 0.01 * k as f64, 0.05 * k as f64);
        let rx_bins: Vec<Vec<Complex64>> = bins
            .symbols
            .iter()
            .map(|sym| {
                let mut out = vec![Complex64::ZERO; p.fft_size];
                for k in p.occupied_subcarriers() {
                    out[p.bin(k)] = sym[p.bin(k)] * gain(k);
                }
                out
            })
            .collect();
        let channel = ChannelEstimate {
            subcarriers: p.occupied_subcarriers(),
            gains: p.occupied_subcarriers().iter().map(|&k| gain(k)).collect(),
        };
        let got = rx.decode_stream_bins(&rx_bins, &channel, 1e-6).unwrap();
        assert_eq!(got.payload, data);
    }

    #[test]
    fn snr_report_reflects_channel() {
        let (tx, rx) = chain();
        let data = payload(50);
        let samples = tx.tx_frame(Mcs::ALL[0], &data).unwrap();
        let h = Complex64::from_polar(2.0, 0.3); // +6 dB
        let boosted: Vec<Complex64> = samples.iter().map(|&x| x * h).collect();
        let got = rx.rx_frame(&boosted).unwrap();
        let snrs = got.snr_per_subcarrier_db();
        assert_eq!(snrs.len(), 52);
        // All subcarriers should report (near-)identical SNR for a flat channel.
        let spread = snrs.iter().cloned().fold(f64::MIN, f64::max)
            - snrs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 20.0, "flat channel SNR spread {spread}");
    }

    #[test]
    fn signal_bits_layout() {
        let bits = FrameTx::signal_bits(Mcs::ALL[0], 100);
        assert_eq!(bits.len(), 24);
        assert_eq!(&bits[..4], &[1, 1, 0, 1], "RATE for 6 Mbps class");
        assert_eq!(bits[4], 0, "reserved");
        // length 100 = 0b000001100100, LSB first.
        let len: usize = (0..12).map(|b| (bits[5 + b] as usize) << b).sum();
        assert_eq!(len, 100);
        assert_eq!(&bits[18..], &[0; 6], "tail");
    }

    #[test]
    fn wifi20_profile_loopback() {
        let p = OfdmParams::new(ChannelProfile::Wifi20MHz);
        let tx = FrameTx::new(p.clone());
        let rx = FrameRx::new(p);
        let data = payload(500);
        let samples = tx.tx_frame(Mcs::ALL[7], &data).unwrap();
        assert_eq!(rx.rx_frame(&samples).unwrap().payload, data);
    }
}
