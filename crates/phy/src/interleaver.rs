//! 802.11 block interleaver.
//!
//! Coded bits within one OFDM symbol are interleaved by two permutations
//! (IEEE 802.11-2012 §18.3.5.7): the first spreads adjacent coded bits onto
//! non-adjacent subcarriers (so a faded subcarrier produces scattered, not
//! burst, errors for the Viterbi decoder); the second rotates bits across
//! constellation bit positions (so no coded bit is stuck in the
//! low-reliability LSBs of a QAM symbol).

use crate::modulation::Modulation;
use crate::params::OfdmParams;

/// Interleaver for one `(modulation, params)` combination, operating on one
/// OFDM symbol's worth of coded bits (`N_CBPS`).
#[derive(Debug, Clone)]
pub struct Interleaver {
    /// Permutation: interleaved position `j` holds input bit `perm[j]`.
    perm: Vec<usize>,
    /// Inverse permutation.
    inv: Vec<usize>,
}

impl Interleaver {
    /// Builds the interleaver for a modulation under the given numerology.
    pub fn new(params: &OfdmParams, modulation: Modulation) -> Self {
        let n_cbps = params.n_data_subcarriers() * modulation.bits_per_symbol();
        let n_bpsc = modulation.bits_per_symbol();
        let s = (n_bpsc / 2).max(1);
        let d = n_cbps / 16;

        // Standard formulation maps input index k → i → j. We store the
        // forward map out[j] = in[k]: build k→j then invert.
        let mut k_to_j = vec![0usize; n_cbps];
        for (k, slot) in k_to_j.iter_mut().enumerate() {
            let i = d * (k % 16) + k / 16;
            *slot = s * (i / s) + (i + n_cbps - (16 * i) / n_cbps) % s;
        }
        let mut perm = vec![0usize; n_cbps];
        for (k, &j) in k_to_j.iter().enumerate() {
            perm[j] = k;
        }
        let mut inv = vec![0usize; n_cbps];
        for (j, &k) in perm.iter().enumerate() {
            inv[k] = j;
        }
        Interleaver { perm, inv }
    }

    /// Block size (`N_CBPS`).
    pub fn block_len(&self) -> usize {
        self.perm.len()
    }

    /// Interleaves one symbol block of coded bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != block_len()`.
    pub fn interleave<T: Copy>(&self, bits: &[T]) -> Vec<T> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — block length is fixed by the MCS
        assert_eq!(
            bits.len(),
            self.block_len(),
            "interleave: block size mismatch"
        );
        self.perm.iter().map(|&k| bits[k]).collect()
    }

    /// Deinterleaves one symbol block (works on soft values too).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != block_len()`.
    pub fn deinterleave<T: Copy>(&self, bits: &[T]) -> Vec<T> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — block length is fixed by the MCS
        assert_eq!(
            bits.len(),
            self.block_len(),
            "deinterleave: block size mismatch"
        );
        self.inv.iter().map(|&j| bits[j]).collect()
    }

    /// Deinterleaves one symbol block, appending to `out` instead of
    /// allocating (the batched receive path calls this once per symbol).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != block_len()`.
    pub fn deinterleave_into<T: Copy>(&self, bits: &[T], out: &mut Vec<T>) {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — block length is fixed by the MCS
        assert_eq!(
            bits.len(),
            self.block_len(),
            "deinterleave: block size mismatch"
        );
        out.extend(self.inv.iter().map(|&j| bits[j]));
    }

    /// Interleaves a multi-symbol stream block by block.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not a whole number of blocks.
    pub fn interleave_stream<T: Copy>(&self, bits: &[T]) -> Vec<T> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — streams are produced whole-block by the encoder
        assert_eq!(bits.len() % self.block_len(), 0, "stream not whole blocks");
        bits.chunks(self.block_len())
            .flat_map(|b| self.interleave(b))
            .collect()
    }

    /// Deinterleaves a multi-symbol stream block by block.
    ///
    /// # Panics
    ///
    /// Panics if the stream is not a whole number of blocks.
    pub fn deinterleave_stream<T: Copy>(&self, bits: &[T]) -> Vec<T> {
        // jmb-allow(no-panic-hot-path): documented precondition (# Panics) — streams are produced whole-block by the encoder
        assert_eq!(bits.len() % self.block_len(), 0, "stream not whole blocks");
        bits.chunks(self.block_len())
            .flat_map(|b| self.deinterleave(b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    #[test]
    fn block_sizes() {
        let p = OfdmParams::default();
        let sizes: Vec<usize> = ALL
            .iter()
            .map(|&m| Interleaver::new(&p, m).block_len())
            .collect();
        assert_eq!(sizes, vec![48, 96, 192, 288]);
    }

    #[test]
    fn is_a_permutation() {
        let p = OfdmParams::default();
        for m in ALL {
            let il = Interleaver::new(&p, m);
            let input: Vec<usize> = (0..il.block_len()).collect();
            let mut out = il.interleave(&input);
            out.sort_unstable();
            assert_eq!(out, input, "{m:?}: not a permutation");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let p = OfdmParams::default();
        for m in ALL {
            let il = Interleaver::new(&p, m);
            let input: Vec<u16> = (0..il.block_len() as u16).collect();
            assert_eq!(il.deinterleave(&il.interleave(&input)), input, "{m:?}");
            assert_eq!(il.interleave(&il.deinterleave(&input)), input, "{m:?}");
        }
    }

    #[test]
    fn adjacent_bits_spread_apart() {
        // First-permutation property: adjacent coded bits map at least
        // N_CBPS/16 subcarrier-bit positions apart.
        let p = OfdmParams::default();
        for m in ALL {
            let il = Interleaver::new(&p, m);
            let n = il.block_len();
            let input: Vec<usize> = (0..n).collect();
            let out = il.interleave(&input);
            // Position of each input bit in the output.
            let mut pos = vec![0usize; n];
            for (j, &k) in out.iter().enumerate() {
                pos[k] = j;
            }
            for k in 0..n - 1 {
                let dist = pos[k].abs_diff(pos[k + 1]);
                assert!(
                    dist >= n / 16 - 2,
                    "{m:?}: adjacent coded bits only {dist} apart"
                );
            }
        }
    }

    #[test]
    fn standard_bpsk_first_entries() {
        // For BPSK N_CBPS=48, s=1, the interleaver reduces to the first
        // permutation: k → i = 3·(k mod 16) + k/16. So output position j
        // holds input bit k with 3·(k mod 16) + k/16 = j.
        let p = OfdmParams::default();
        let il = Interleaver::new(&p, Modulation::Bpsk);
        let input: Vec<usize> = (0..48).collect();
        let out = il.interleave(&input);
        // j=0 ← k=0; j=1 ← k=16; j=2 ← k=32; j=3 ← k=1 ...
        assert_eq!(&out[..6], &[0, 16, 32, 1, 17, 33]);
    }

    #[test]
    fn works_on_soft_values() {
        let p = OfdmParams::default();
        let il = Interleaver::new(&p, Modulation::Qpsk);
        let soft: Vec<f64> = (0..96).map(|i| i as f64 * 0.25 - 10.0).collect();
        assert_eq!(il.deinterleave(&il.interleave(&soft)), soft);
    }

    #[test]
    fn stream_roundtrip() {
        let p = OfdmParams::default();
        let il = Interleaver::new(&p, Modulation::Qam16);
        let stream: Vec<u32> = (0..192 * 3).collect();
        assert_eq!(
            il.deinterleave_stream(&il.interleave_stream(&stream)),
            stream
        );
    }

    #[test]
    #[should_panic(expected = "block size mismatch")]
    fn wrong_block_size_panics() {
        let p = OfdmParams::default();
        Interleaver::new(&p, Modulation::Bpsk).interleave(&[0u8; 47]);
    }
}
