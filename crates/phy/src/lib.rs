//! # jmb-phy — an 802.11-style OFDM physical layer
//!
//! A from-scratch software implementation of the OFDM PHY that JMB's APs and
//! clients run: 64-subcarrier OFDM with 48 data subcarriers and 4 pilots,
//! BPSK/QPSK/16-QAM/64-QAM modulation, the standard K=7 (133,171)
//! convolutional code with soft-decision Viterbi decoding, the 802.11 block
//! interleaver and scrambler, standard short/long training preambles, packet
//! detection, carrier-frequency-offset estimation, least-squares channel
//! estimation with pilot phase tracking, and effective-SNR rate selection.
//!
//! The paper's USRP implementation "implement\[s\] OFDM in GNURadio, using
//! various 802.11 modulations (BPSK, 4QAM, 16QAM, and 64QAM), coding rates,
//! and choose\[s\] between them using the effective-SNR bitrate selection
//! algorithm" (§10a) — this crate is the Rust equivalent of that stack.
//!
//! Layering:
//!
//! ```text
//! frame    — full tx/rx packet chains (preamble + SIGNAL + DATA)
//!   ├── sync      — detection, timing, CFO estimation/correction
//!   ├── chanest   — LTF channel estimation, pilot phase tracking
//!   ├── ofdm      — subcarrier mapping, IFFT/FFT, cyclic prefix, equalizer
//!   ├── modulation— constellation map / soft demap
//!   ├── interleaver, convcode, viterbi, scrambler, crc
//!   └── preamble  — STF/LTF sequences
//! params   — numerology (64-FFT, CP 16, pilot positions, channel profiles)
//! rates    — MCS table
//! esnr     — effective SNR and rate selection
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chanest;
pub mod convcode;
pub mod crc;
pub mod esnr;
pub mod frame;
pub mod interleaver;
pub mod modulation;
pub mod ofdm;
pub mod params;
pub mod preamble;
pub mod rates;
pub mod scrambler;
pub mod sync;
pub mod viterbi;

pub use frame::{FrameRx, FrameTx, RxError};
pub use modulation::Modulation;
pub use params::{ChannelProfile, OfdmParams};
pub use rates::{CodeRate, Mcs};
